//! 1-D halo exchange with communication/computation overlap: a stencil
//! iteration where interior updates (independent of the ghosts) overlap the
//! ghost exchange — the directive body of Listing 7 applied to the classic
//! pattern library.
//!
//! Run with: `cargo run -p bench --example halo_exchange`

use commint::prelude::*;
use mpisim::Comm;
use netsim::{run, SimConfig, Time};

const CELLS: usize = 64;
const ITERS: usize = 10;

fn stencil(overlap: bool) -> (f64, Time) {
    let res = run(SimConfig::new(8), move |ctx| {
        let comm = Comm::world(ctx);
        let mut session = CommSession::new(ctx, comm).without_ir();
        let me = session.rank() as i64;
        let n = session.size();
        let rank = session.rank();

        // Local field with two ghost cells.
        let mut field = vec![0.0f64; CELLS + 2];
        for (i, f) in field.iter_mut().enumerate() {
            *f = (me as f64) + (i as f64) * 0.01;
        }

        let interior_cost = Time::from_micros(40);

        for _ in 0..ITERS {
            let left_edge = [field[1]];
            let right_edge = [field[CELLS]];
            let mut left_ghost = [field[0]];
            let mut right_ghost = [field[CELLS + 1]];

            let params = CommParams::new();
            session
                .region(&params, |reg| {
                    reg.p2p()
                        .site(1)
                        .sender(RankExpr::rank() - RankExpr::lit(1))
                        .receiver(RankExpr::rank() + RankExpr::lit(1))
                        .sendwhen(RankExpr::rank().lt(RankExpr::nranks() - RankExpr::lit(1)))
                        .receivewhen(RankExpr::rank().gt(RankExpr::lit(0)))
                        .sbuf(Prim::new("right_edge", &right_edge))
                        .rbuf(PrimMut::new("left_ghost", &mut left_ghost))
                        .run()
                        .unwrap();
                    let call = reg
                        .p2p()
                        .site(2)
                        .sender(RankExpr::rank() + RankExpr::lit(1))
                        .receiver(RankExpr::rank() - RankExpr::lit(1))
                        .sendwhen(RankExpr::rank().gt(RankExpr::lit(0)))
                        .receivewhen(RankExpr::rank().lt(RankExpr::nranks() - RankExpr::lit(1)))
                        .sbuf(Prim::new("left_edge", &left_edge))
                        .rbuf(PrimMut::new("right_ghost", &mut right_ghost));
                    if overlap {
                        // Interior update overlapped with the exchange.
                        call.overlap(|ctx| ctx.compute(interior_cost)).unwrap();
                    } else {
                        call.run().unwrap();
                    }
                })
                .unwrap();
            if !overlap {
                session.ctx().compute(interior_cost);
            }

            // Apply ghosts and relax the field (Jacobi-ish sweep).
            if rank > 0 {
                field[0] = left_ghost[0];
            }
            if rank < n - 1 {
                field[CELLS + 1] = right_ghost[0];
            }
            let snapshot = field.clone();
            for i in 1..=CELLS {
                field[i] = 0.25 * snapshot[i - 1] + 0.5 * snapshot[i] + 0.25 * snapshot[i + 1];
            }
        }
        session.flush();
        (field.iter().sum::<f64>(), ctx.now())
    });
    let checksum: f64 = res.per_rank.iter().map(|&(s, _)| s).sum();
    (checksum, res.makespan())
}

fn main() {
    let (sum_seq, t_seq) = stencil(false);
    let (sum_ovl, t_ovl) = stencil(true);
    println!("1-D halo exchange, 8 ranks x {CELLS} cells, {ITERS} iterations");
    println!("  sequential : checksum {sum_seq:.6}, makespan {t_seq}");
    println!("  overlapped : checksum {sum_ovl:.6}, makespan {t_ovl}");
    assert!(
        (sum_seq - sum_ovl).abs() < 1e-9,
        "overlap changed the answer"
    );
    println!(
        "  overlap speedup: {:.2}x (same answer)",
        t_seq.as_nanos() as f64 / t_ovl.as_nanos() as f64
    );
}
