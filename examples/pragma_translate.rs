//! The compiler's view: parse the paper's literal pragma syntax, run the
//! static analyses, and emit the translated library calls for every target
//! — what the Open64 pass does in the paper, as a standalone tool.
//!
//! Run with: `cargo run -p bench --example pragma_translate`

use commint::clause::Target;
use mpisim::dtype::BasicType;
use pragma_front::{analyze, translate, SymbolTable};

const SOURCE: &str = r#"
// Listing 3, verbatim pattern: even ranks stream buf1 elements to the next
// odd rank under one comm_parameters region.
#pragma comm_parameters sender(rank-1)
    receiver(rank+1) sendwhen(rank%2==0)
    receivewhen(rank%2==1) count(size)
    max_comm_iter(n) place_sync(END_PARAM_REGION)
{
    for(p=0; p < n; p++)
    #pragma comm_p2p sbuf(&buf1[p]) rbuf(&buf2[p])
    { }
}
"#;

fn main() {
    let mut syms = SymbolTable::new();
    syms.declare_prim("buf1", BasicType::F64, 64)
        .declare_prim("buf2", BasicType::F64, 64)
        .declare_prim("size", BasicType::I32, 1);

    println!("===== source =====");
    println!("{SOURCE}");

    // Static analysis at 16 ranks with the loop bound bound to 4.
    let vars = [("n".to_string(), 4i64), ("size".to_string(), 1)].into();
    let report =
        pragma_front::analyze_with_vars(SOURCE, &syms, 16, &vars).expect("parse + analyze");
    println!("===== analysis (16 ranks, n=4) =====");
    print!("{}", report.render());

    for target in Target::ALL {
        println!("\n===== generated code: {} =====", target.keyword());
        print!("{}", translate(SOURCE, &syms, target).expect("translate"));
    }

    // A deliberately mismatched program: the analyzer catches it.
    let bad = "#pragma comm_p2p sender(rank-2) receiver(rank+1) \
               sendwhen(rank==0) receivewhen(rank==1) sbuf(buf1) rbuf(buf2)";
    let report = analyze(bad, &syms, 8).expect("parse");
    println!("\n===== mismatch detection =====");
    print!("{}", report.render());
}
