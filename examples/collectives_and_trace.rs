//! The collective-directive extension (the paper's §V future work) plus the
//! trace tooling: broadcast parameters to a group, reduce results back, and
//! render the reconstructed timeline/communication matrix.
//!
//! Run with: `cargo run -p bench --example collectives_and_trace`

use commint::coll::{CollKind, ReduceOp};
use commint::prelude::*;
use commint::traceview::TraceView;
use mpisim::Comm;
use netsim::{run, SimConfig, Time};

fn main() {
    let nranks = 6;
    let res = run(SimConfig::new(nranks).with_trace(), |ctx| {
        let comm = Comm::world(ctx);
        let mut session = CommSession::new(ctx, comm);
        let me = session.rank();

        // comm_bcast root(0): simulation parameters to everyone.
        let mut params = if me == 0 {
            [0.01f64, 300.0, 1.5]
        } else {
            [0.0; 3]
        };
        comm_coll!(session, BCAST { root(0) count(3) } => bcast(&mut params)).unwrap();
        assert_eq!(params, [0.01, 300.0, 1.5]);

        // Local "work" proportional to rank.
        ctx_compute(&mut session, me);

        // comm_reduce root(0) op(SUM): partial results back to the master.
        let mut partial = [me as f64 * params[0] * 100.0];
        comm_coll!(session, REDUCE(ReduceOp::Sum) { root(0) site(9801) } => reduce(&mut partial))
            .unwrap();

        // comm_alltoall among the even group: exchange boundary ids.
        let send: Vec<f64> = (0..nranks).map(|j| (me * 10 + j) as f64).collect();
        let mut recv = vec![0.0f64; nranks];
        session
            .coll(CollKind::AllToAll)
            .site(9802)
            .groupwhen((RankExpr::rank() % RankExpr::lit(2)).eq(RankExpr::lit(0)))
            .count(1)
            .alltoall(&send, &mut recv)
            .unwrap();

        session.flush();
        partial[0]
    });

    println!("reduced result on rank 0: {:.2}\n", res.per_rank[0]);

    let view = TraceView::build(res.trace.as_deref().unwrap_or(&[]));
    println!("== timeline (\"#\" compute, \"*\" communication) ==");
    print!("{}", view.gantt(64));
    println!("\n== communication matrix (bytes) ==");
    print!("{}", view.matrix_table());
}

fn ctx_compute(session: &mut CommSession<'_>, me: usize) {
    session
        .ctx()
        .compute(Time::from_micros(5 * (me as u64 + 1)));
}
