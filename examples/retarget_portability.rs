//! Retargeting: the paper's central portability claim — "the programmer
//! would only need to assert the desired message passing implementation
//! using the `target` clause".
//!
//! The same even→odd pairwise region (Listing 2) runs unchanged under all
//! three translation targets; the data is identical, the virtual cost
//! profile differs exactly as the library characteristics dictate.
//!
//! Run with: `cargo run -p bench --example retarget_portability`

use commint::prelude::*;
use mpisim::Comm;
use netsim::{run, SimConfig, Time};

fn pairwise(target: Target, nranks: usize, msgs: usize) -> (Vec<i64>, Time) {
    let res = run(SimConfig::new(nranks), move |ctx| {
        let comm = Comm::world(ctx);
        let mut session = CommSession::new(ctx, comm).without_ir();
        let me = session.rank() as i64;
        let mut got = -1i64;

        // #pragma comm_parameters sender(rank-1) receiver(rank+1)
        //     sendwhen(rank%2==0) receivewhen(rank%2==1)
        //     max_comm_iter(msgs) target(<target>)
        let params = CommParams::new()
            .sender(RankExpr::rank() - RankExpr::lit(1))
            .receiver(RankExpr::rank() + RankExpr::lit(1))
            .sendwhen(
                (RankExpr::rank() % RankExpr::lit(2))
                    .eq(RankExpr::lit(0))
                    .and(RankExpr::rank().lt(RankExpr::nranks() - RankExpr::lit(1))),
            )
            .receivewhen((RankExpr::rank() % RankExpr::lit(2)).eq(RankExpr::lit(1)))
            .max_comm_iter(msgs as i64)
            .target(target);
        session
            .region(&params, |reg| {
                for k in 0..msgs {
                    let src = [me * 1000 + k as i64];
                    let mut dst = [-1i64];
                    reg.p2p()
                        .site(1)
                        .sbuf(Prim::new("src", &src))
                        .rbuf(PrimMut::new("dst", &mut dst))
                        .run()
                        .unwrap();
                    if dst[0] >= 0 {
                        got = dst[0];
                    }
                }
            })
            .unwrap();
        session.flush();
        (got, ctx.now())
    });
    let values = res.per_rank.iter().map(|&(v, _)| v).collect();
    (values, res.makespan())
}

fn main() {
    let nranks = 16;
    let msgs = 8;
    println!("even ranks send {msgs} small messages to the next odd rank (Listing 2)\n");
    let mut reference: Option<Vec<i64>> = None;
    for target in Target::ALL {
        let (values, time) = pairwise(target, nranks, msgs);
        match &reference {
            None => reference = Some(values.clone()),
            Some(r) => assert_eq!(r, &values, "retargeting changed the data!"),
        }
        println!(
            "{:>24}: makespan {:>12}  (identical data: yes)",
            target.keyword(),
            format!("{time}")
        );
    }
    println!("\nSHMEM wins on frequent small transfers; the code never changed.");
}
