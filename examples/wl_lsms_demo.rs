//! The assembled WL-LSMS mini-app: atom distribution, Wang–Landau sampling
//! with per-step spin scatter and distributed energy evaluation — run once
//! per communication variant to show identical physics with different
//! virtual cost.
//!
//! Run with: `cargo run -p bench --example wl_lsms_demo`

use wl_lsms::{run_full_app, AtomSizes, SpinVariant, Topology};

fn main() {
    let topo = Topology::new(3, 8); // 3 LSMS instances x 8 ranks + WL master
    let sizes = AtomSizes { jmt: 200, numc: 8 };
    let steps = 12;

    println!(
        "WL-LSMS mini-app: {} ranks ({} instances x {}), {} WL steps\n",
        topo.total_ranks(),
        topo.instances,
        topo.ranks_per_lsms,
        steps
    );

    let mut reference: Option<Vec<f64>> = None;
    for variant in [
        SpinVariant::Original,
        SpinVariant::OriginalWaitall,
        SpinVariant::DirectiveMpi2,
        SpinVariant::DirectiveShmem,
    ] {
        let result = run_full_app(&topo, variant, sizes, steps);
        match &reference {
            None => reference = Some(result.energies.clone()),
            Some(r) => assert_eq!(r, &result.energies, "{variant:?} changed the physics!"),
        }
        println!(
            "{:>45}: makespan {:>12}, WL stages {}, E0 trajectory head {:?}",
            variant.label(),
            format!("{}", result.time),
            result.wl_stages,
            &result.energies[..3.min(result.energies.len())]
                .iter()
                .map(|e| (e * 1000.0).round() / 1000.0)
                .collect::<Vec<_>>()
        );
    }
    println!("\nAll variants computed identical walker energies.");
}
