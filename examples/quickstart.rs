//! Quickstart: the paper's Listing 1 — a ring communication pattern
//! expressed with one `comm_p2p` directive and its four required clauses —
//! run on a simulated 8-rank machine, then statically analyzed.
//!
//! ```text
//! prev = (rank-1+nprocs)%nprocs;
//! next = (rank+1)%nprocs;
//! #pragma comm_p2p sender(prev) receiver(next) sbuf(buf1) rbuf(buf2)
//! ```
//!
//! Run with: `cargo run -p bench --example quickstart`

use commint::analysis::{classify, deadlock_report, resolve_graph};
use commint::prelude::*;
use mpisim::Comm;
use netsim::{run, SimConfig};

fn main() {
    let nranks = 8;

    let res = run(SimConfig::new(nranks), |ctx| {
        let comm = Comm::world(ctx);
        let mut session = CommSession::new(ctx, comm);
        let me = session.rank() as i64;

        // prev = (rank-1+nprocs)%nprocs ; next = (rank+1)%nprocs
        let prev = (RankExpr::rank() - RankExpr::lit(1) + RankExpr::nranks()) % RankExpr::nranks();
        let next = (RankExpr::rank() + RankExpr::lit(1)) % RankExpr::nranks();

        let buf1 = [me * 10, me * 10 + 1, me * 10 + 2];
        let mut buf2 = [0i64; 3];

        // #pragma comm_p2p sender(prev) receiver(next) sbuf(buf1) rbuf(buf2)
        session
            .p2p()
            .sender(prev)
            .receiver(next)
            .sbuf(Prim::new("buf1", &buf1))
            .rbuf(PrimMut::new("buf2", &mut buf2))
            .run()
            .expect("ring directive");

        let program = session.finish();
        (buf2, program)
    });

    println!("== data after the ring shift ==");
    for (rank, (buf2, _)) in res.per_rank.iter().enumerate() {
        println!("rank {rank}: received {buf2:?}");
        let prev = (rank + nranks - 1) % nranks;
        assert_eq!(buf2[0] as usize, prev * 10, "wrong neighbour data");
    }

    // Static analysis on the IR rank 0 recorded.
    let program = &res.per_rank[0].1;
    let p2p = &program[0].body[0];
    let graph = resolve_graph(p2p, Some(&program[0].clauses), nranks, &Default::default());
    println!("\n== compiler-style analysis ==");
    println!("pattern        : {:?}", classify(&graph, nranks));
    println!("fully matched  : {}", graph.fully_matched());
    println!("deadlock report: {:?}", deadlock_report(&graph));
    println!("\nvirtual makespan: {}", res.makespan());
}
