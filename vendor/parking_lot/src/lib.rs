//! Offline shim for the [`parking_lot`](https://crates.io/crates/parking_lot)
//! API subset this workspace uses, implemented over `std::sync`.
//!
//! The container builds without network access to crates.io, so the
//! workspace vendors the handful of primitives it needs: `Mutex` whose
//! `lock()` returns the guard directly (no `Result`), a `Condvar` that
//! waits on `&mut MutexGuard`, and an infallible `RwLock`. Poisoning is
//! deliberately ignored (a panicked rank thread already aborts the whole
//! simulation via the runtime's join logic).

use std::ops::{Deref, DerefMut};
use std::sync as ss;

/// A mutual-exclusion lock with parking_lot's infallible API.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: ss::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`]. Wraps the std guard in an `Option`
/// so [`Condvar::wait`] can take and restore it by value.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<ss::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: ss::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(ss::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(
                self.inner
                    .lock()
                    .unwrap_or_else(ss::PoisonError::into_inner),
            ),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(ss::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(ss::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(ss::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Condition variable compatible with [`MutexGuard`].
#[derive(Default, Debug)]
pub struct Condvar {
    inner: ss::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: ss::Condvar::new(),
        }
    }

    /// Block until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self
            .inner
            .wait(g)
            .unwrap_or_else(ss::PoisonError::into_inner);
        guard.inner = Some(g);
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Reader-writer lock with parking_lot's infallible API.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: ss::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: ss::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: ss::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: ss::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self
                .inner
                .read()
                .unwrap_or_else(ss::PoisonError::into_inner),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self
                .inner
                .write()
                .unwrap_or_else(ss::PoisonError::into_inner),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let m = Arc::new(Mutex::new(0usize));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let h = thread::spawn(move || {
            let mut g = m2.lock();
            while *g == 0 {
                cv2.wait(&mut g);
            }
            *g
        });
        thread::sleep(std::time::Duration::from_millis(5));
        *m.lock() = 7;
        cv.notify_all();
        assert_eq!(h.join().unwrap(), 7);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(l.read()[3], 4);
    }
}
