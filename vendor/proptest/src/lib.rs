//! Offline shim for the [`proptest`](https://crates.io/crates/proptest)
//! API subset this workspace's property tests use.
//!
//! Differences from real proptest, deliberately accepted for an offline
//! container build:
//!
//! * **Deterministic generation** — every test case is derived from a
//!   fixed seed mixed with the test-function name and case index (a
//!   splitmix64 stream), so failures reproduce exactly and no
//!   `proptest-regressions` files are needed.
//! * **No shrinking** — a failing case reports its case index and panics;
//!   the deterministic seed means re-running hits the same case.
//! * **Uniform `prop_oneof!`** — arm weights are not supported (none of
//!   the workspace's tests use them).

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

pub mod collection;

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

// ---------------------------------------------------------------------------
// Deterministic RNG
// ---------------------------------------------------------------------------

/// Splitmix64 stream: statistically fine for test-case generation and
/// trivially reproducible.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E3779B97F4A7C15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is irrelevant at test-generation quality.
        self.next_u64() % bound
    }
}

/// FNV-1a over the test name, used to decorrelate the per-test streams.
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Config and case errors
// ---------------------------------------------------------------------------

/// Runner configuration (only the knobs the workspace uses).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Outcome of one generated case body.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: discard the case and generate another.
    Reject,
    /// `prop_assert*!` failed: the property does not hold.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

// ---------------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy: Clone {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> T + Clone,
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Discard values failing the predicate (regenerates, bounded).
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        F: Fn(&Self::Value) -> bool + Clone,
        Self: Sized,
    {
        Filter {
            inner: self,
            reason,
            f,
        }
    }

    /// Generate via an intermediate strategy derived from a value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        S2: Strategy,
        F: Fn(Self::Value) -> S2 + Clone,
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Build recursive structures: `depth` levels of `expand` applied on
    /// top of `self` as the leaf strategy. The `_desired_size` and
    /// `_expected_branch_size` tuning knobs of real proptest are accepted
    /// and ignored — termination comes from the leaf arms of the
    /// expansion's `prop_oneof!`.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        expand: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut cur = self.boxed();
        for _ in 0..depth {
            cur = expand(cur).boxed();
        }
        cur
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let this = self;
        BoxedStrategy {
            gen: Rc::new(move |rng| this.generate(rng)),
        }
    }
}

/// A type-erased, cheaply-cloneable strategy.
pub struct BoxedStrategy<T> {
    gen: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen: Rc::clone(&self.gen),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T + Clone,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool + Clone,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({}) rejected 1000 consecutive values",
            self.reason
        );
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2 + Clone,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between type-erased arms (backs `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies: any::<T>(), ranges, tuples
// ---------------------------------------------------------------------------

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T`.
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

/// `any::<T>()`: generate arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Mostly finite values across a wide dynamic range, with the
        // occasional special value so filters are exercised.
        match rng.below(16) {
            0 => f64::INFINITY,
            1 => f64::NEG_INFINITY,
            2 => f64::NAN,
            3 => 0.0,
            _ => {
                let mantissa = (rng.next_u64() % (1 << 53)) as f64 / (1u64 << 53) as f64;
                let exp = rng.below(61) as i32 - 30;
                let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
                sign * mantissa * 2f64.powi(exp)
            }
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let u = rng.next_u64() as f64 / u64::MAX as f64;
        self.start + u * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:ident . $i:tt),+ ))+) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Uniform choice over strategy arms with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*), a, b
        );
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{}` != `{}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Discard the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Define property tests: each named function runs its body over
/// `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident($($pat:pat_param in $strat:expr),* $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let base = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
                let mut passed: u32 = 0;
                let mut attempt: u64 = 0;
                while passed < config.cases {
                    attempt += 1;
                    assert!(
                        attempt < 20 * (config.cases as u64) + 1_000,
                        "{}: too many rejected cases ({} passed of {})",
                        stringify!($name), passed, config.cases
                    );
                    let mut rng = $crate::TestRng::from_seed(base ^ attempt.wrapping_mul(0xA076_1D64_78BD_642F));
                    $(let $pat = $crate::Strategy::generate(&$strat, &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { { $body } ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => continue,
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case failed: {} (case attempt {})\n{}",
                                stringify!($name), attempt, msg
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate as proptest;
    use crate::TestRng;
    use proptest::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Tree {
        Leaf(i64),
        Node(Box<Tree>, Box<Tree>),
    }

    fn tree_strategy() -> impl Strategy<Value = Tree> {
        let leaf = (0i64..10).prop_map(Tree::Leaf);
        leaf.prop_recursive(3, 16, 2, |inner| {
            prop_oneof![
                inner.clone(),
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b))),
            ]
        })
    }

    fn depth(t: &Tree) -> usize {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3usize..17, y in -5i64..=5, b in any::<bool>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!(b == (b as u8 == 1));
        }

        #[test]
        fn vec_lengths(v in proptest::collection::vec(0u8..255, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
        }

        #[test]
        fn assume_rejects(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn filters_apply(x in any::<f64>().prop_filter("finite", |v| v.is_finite())) {
            prop_assert!(x.is_finite());
        }

        #[test]
        fn recursive_bounded(t in tree_strategy()) {
            prop_assert!(depth(&t) <= 3, "depth {} for {:?}", depth(&t), t);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let gen = || {
            let mut rng = TestRng::from_seed(42);
            (0..8)
                .map(|_| (0u64..1000).generate(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(gen(), gen());
    }
}
