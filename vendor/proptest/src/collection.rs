//! Collection strategies: `vec(element, size_range)`.

use std::ops::{Range, RangeInclusive};

use crate::{Strategy, TestRng};

/// A range of collection sizes.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    /// Inclusive lower bound.
    pub lo: usize,
    /// Inclusive upper bound.
    pub hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from a [`SizeRange`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo + 1) as u64;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generate vectors of `element` values with lengths in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
