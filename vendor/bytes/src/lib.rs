//! Offline shim for the [`bytes`](https://crates.io/crates/bytes) crate:
//! just [`Bytes`], a cheaply-cloneable immutable byte buffer.
//!
//! Cloning is O(1): either a pointer copy (static data) or an `Arc`
//! refcount bump (owned data). This is the property the simulator relies
//! on — an [`Envelope`](../netsim/msg) carries its payload by `Bytes` so
//! parking a message in the unexpected queue never copies the bytes.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
}

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub const fn new() -> Self {
        Bytes {
            repr: Repr::Static(&[]),
        }
    }

    /// Wrap a static slice without copying.
    pub const fn from_static(data: &'static [u8]) -> Self {
        Bytes {
            repr: Repr::Static(data),
        }
    }

    /// Copy a slice into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            repr: Repr::Shared(Arc::from(data)),
        }
    }

    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Static(s) => s,
            Repr::Shared(a) => a,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            repr: Repr::Shared(Arc::from(v)),
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Self {
        Bytes {
            repr: Repr::Shared(Arc::from(b)),
        }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(32) {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.len() > 32 {
            write!(f, "..{}B", self.len())?;
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_and_owned_agree() {
        let a = Bytes::from_static(b"abc");
        let b = Bytes::copy_from_slice(b"abc");
        let c = Bytes::from(b"abc".to_vec());
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(&a[..], b"abc");
        assert_eq!(a.len(), 3);
        assert_eq!(a[1], b'b');
    }

    #[test]
    fn clone_is_shallow() {
        let a = Bytes::from(vec![0u8; 1024]);
        let b = a.clone();
        assert_eq!(a.as_slice().as_ptr(), b.as_slice().as_ptr());
    }

    #[test]
    fn empty() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::default().len(), 0);
    }
}
