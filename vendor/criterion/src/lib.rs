//! Offline shim for the [`criterion`](https://crates.io/crates/criterion)
//! API subset this workspace's benches use. Measures wall-clock time with
//! `std::time::Instant`, prints a one-line mean/min per benchmark, and
//! skips criterion's statistical machinery — good enough to compare the
//! simulator's own hot paths before/after a change without a network
//! dependency.

use std::time::{Duration, Instant};

/// Re-export matching criterion's helper.
pub use std::hint::black_box;

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    pub fn new() -> Self {
        Criterion { sample_size: 10 }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&name.into(), self.sample_size.max(1), f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size.max(1),
            _parent: self,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, id.into()), self.sample_size, f);
        self
    }

    /// Finish the group (report separator).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Time the routine. One warmup call, then `iters_per_sample`
    /// invocations per recorded sample.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        black_box(routine()); // warmup / lazy-init
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        self.samples
            .push(start.elapsed() / self.iters_per_sample as u32);
    }
}

fn run_bench<F>(name: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample: 1,
    };
    for _ in 0..sample_size {
        f(&mut b);
    }
    if b.samples.is_empty() {
        println!("{name:<60} (no samples)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = b.samples.iter().min().copied().unwrap_or_default();
    println!(
        "{name:<60} mean {:>12} min {:>12} ({} samples)",
        fmt_duration(mean),
        fmt_duration(min),
        b.samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Group benchmark functions under one callable name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::new();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_smoke() {
        let mut c = Criterion::new();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(2) * 2));
    }
}
