//! # commlint — a static analyzer for communication intent
//!
//! The driver the paper's "analysis framework" needs: parse pragma sources
//! with `pragma-front`, run the full `commint` analysis suite over a *range*
//! of rank counts, and report coded, span-carrying diagnostics
//! (`CI000`–`CI008`, see [`commint::diag::LintCode`]) with a failing
//! rank-count witness per finding. A library (`lint_source`) plus a CLI
//! binary (`commlint`) with `--format json` for CI gates.
//!
//! Sources are self-describing: comment annotations declare the symbol
//! table and analysis parameters, so a `.comm` file carries everything the
//! linter needs:
//!
//! ```text
//! // @decl buf1: double[16]
//! // @var n = 4
//! // @ranks 2..=16
//! #pragma comm_p2p sender((rank-1+nprocs)%nprocs) ...
//! ```

pub mod hash;
pub mod json;

use std::collections::HashMap;

use commint::clause::{Diagnostic, Severity};
use commint::diag::{lint_region_at, Diag, LintCode, Verification};
use commint::dir::ParamsSpec;
use mpisim::dtype::BasicType;
use pragma_front::{parse, Item, ParseError, SymbolTable};

/// Inclusive rank-count range to sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RankRange {
    /// Smallest communicator size analyzed.
    pub min: usize,
    /// Largest communicator size analyzed.
    pub max: usize,
}

impl Default for RankRange {
    fn default() -> Self {
        RankRange { min: 2, max: 16 }
    }
}

impl RankRange {
    /// Parse `lo..=hi` (or a single `n`).
    pub fn parse(s: &str) -> Option<RankRange> {
        if let Some((lo, hi)) = s.split_once("..=") {
            let (min, max) = (lo.trim().parse().ok()?, hi.trim().parse().ok()?);
            (min >= 1 && min <= max).then_some(RankRange { min, max })
        } else {
            let n: usize = s.trim().parse().ok()?;
            (n >= 1).then_some(RankRange { min: n, max: n })
        }
    }
}

impl std::fmt::Display for RankRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}..={}", self.min, self.max)
    }
}

/// Linter configuration shared across files.
#[derive(Clone, Debug, Default)]
pub struct LintOptions {
    /// Rank counts to sweep (per-file `@ranks` annotations override this).
    pub ranks: RankRange,
    /// Clause variables bound for analysis.
    pub vars: HashMap<String, i64>,
}

/// One `@decl` buffer declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeclAnn {
    /// Buffer name.
    pub name: String,
    /// Element basic type.
    pub ty: BasicType,
    /// Logical length in elements.
    pub len: usize,
    /// Optional `vector(blocklen, stride) of mem` strided layout: each
    /// logical element is `blocklen` contiguous values every `stride`,
    /// carved from a backing array of `mem` values.
    pub vector: Option<(usize, usize, usize)>,
}

/// Self-describing annotations scanned from `// @...` comments.
#[derive(Clone, Debug, Default)]
pub struct Annotations {
    /// `@decl name: type[len]` buffer declarations (optionally with a
    /// `vector(blocklen, stride) of mem` layout suffix).
    pub decls: Vec<DeclAnn>,
    /// `@var name = value` bindings.
    pub vars: HashMap<String, i64>,
    /// `@ranks lo..=hi` sweep override.
    pub ranks: Option<RankRange>,
}

/// Install every `@decl` into a symbol table, honoring strided layouts.
pub fn apply_decls(symbols: &mut SymbolTable, ann: &Annotations) {
    for d in &ann.decls {
        match d.vector {
            Some((blocklen, stride, mem)) => {
                symbols.declare_strided(&d.name, d.ty, blocklen, stride, d.len, mem);
            }
            None => {
                symbols.declare_prim(&d.name, d.ty, d.len);
            }
        }
    }
}

/// Map a C-ish type keyword to a basic type (the `pragmacc --buf` mapping).
pub fn basic_type_of(kw: &str) -> Option<BasicType> {
    match kw {
        "char" | "u8" => Some(BasicType::U8),
        "int" | "i32" => Some(BasicType::I32),
        "long" | "i64" => Some(BasicType::I64),
        "float" | "f32" => Some(BasicType::F32),
        "double" | "f64" => Some(BasicType::F64),
        _ => None,
    }
}

/// Scan `// @decl` / `// @var` / `// @ranks` annotations. Malformed
/// annotations are ignored (they are comments to every other consumer).
pub fn scan_annotations(src: &str) -> Annotations {
    let mut out = Annotations::default();
    for line in src.lines() {
        let Some(rest) = line.trim_start().strip_prefix("//") else {
            continue;
        };
        let rest = rest.trim();
        if let Some(decl) = rest.strip_prefix("@decl ") {
            // name: type[len] [vector(blocklen, stride) of mem]
            let Some((name, ty)) = decl.split_once(':') else {
                continue;
            };
            let ty = ty.trim();
            let Some((kw, rest)) = ty.split_once('[') else {
                continue;
            };
            let Some((len, tail)) = rest.split_once(']') else {
                continue;
            };
            let (Some(bt), Ok(len)) = (basic_type_of(kw.trim()), len.trim().parse()) else {
                continue;
            };
            let vector = match tail.trim() {
                "" => None,
                tail => {
                    let Some(v) = parse_vector_suffix(tail) else {
                        continue;
                    };
                    Some(v)
                }
            };
            out.decls.push(DeclAnn {
                name: name.trim().to_string(),
                ty: bt,
                len,
                vector,
            });
        } else if let Some(var) = rest.strip_prefix("@var ") {
            let Some((name, value)) = var.split_once('=') else {
                continue;
            };
            if let Ok(v) = value.trim().parse::<i64>() {
                out.vars.insert(name.trim().to_string(), v);
            }
        } else if let Some(ranks) = rest.strip_prefix("@ranks ") {
            if let Some(r) = RankRange::parse(ranks) {
                out.ranks = Some(r);
            }
        }
    }
    out
}

/// Parse a `vector(blocklen, stride) of mem` decl suffix.
fn parse_vector_suffix(tail: &str) -> Option<(usize, usize, usize)> {
    let args = tail.strip_prefix("vector")?.trim_start();
    let (args, mem) = args.strip_prefix('(')?.split_once(')')?;
    let (blocklen, stride) = args.split_once(',')?;
    let mem = mem.trim().strip_prefix("of ")?;
    let blocklen: usize = blocklen.trim().parse().ok()?;
    let stride: usize = stride.trim().parse().ok()?;
    let mem: usize = mem.trim().parse().ok()?;
    (blocklen > 0 && stride > 0).then_some((blocklen, stride, mem))
}

/// Lint result for one source.
#[derive(Clone, Debug)]
pub struct LintReport {
    /// Rank counts actually swept.
    pub ranks: RankRange,
    /// Merged diagnostics, most severe first.
    pub diags: Vec<Diag>,
}

impl LintReport {
    /// The most severe diagnostic present.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diags.iter().map(|d| d.severity).max()
    }

    /// Whether the CI gate should fail (any warning-or-above).
    pub fn gate_fails(&self) -> bool {
        self.max_severity() >= Some(Severity::Warning)
    }

    /// Count diagnostics of a severity.
    pub fn count(&self, sev: Severity) -> usize {
        self.diags.iter().filter(|d| d.severity == sev).count()
    }
}

/// A region view of any non-collective item: standalone `comm_p2p`s are
/// wrapped in a default region, mirroring how the engine executes them.
/// Public so other analysis drivers (`commprove`) see the same regions the
/// sweep lints.
pub fn region_view(item: &Item) -> Option<ParamsSpec> {
    match item {
        Item::Region(r) => Some(r.clone()),
        Item::P2p(p) => Some(ParamsSpec {
            clauses: Default::default(),
            body: vec![p.clone()],
            spans: p.spans.clone(),
        }),
        Item::Coll(_) => None,
    }
}

/// Map a parse/validation diagnostic into the lint catalog (`CI000`
/// directive-rule). Pairing-rule messages are dropped: the IR-level `CI005`
/// check reports them with clause spans and rank context. Public so other
/// analysis drivers (`commprove`) report parse problems identically.
pub fn map_parse_diag(d: &Diagnostic) -> Option<Diag> {
    if d.message.contains("must both be present") {
        return None;
    }
    Some(Diag {
        code: LintCode::DirectiveRule,
        severity: d.severity,
        message: d.message.clone(),
        span: d.span,
        region: 0,
        site: None,
        key: d.message.clone(),
        witness: None,
        verification: None,
    })
}

/// Dedup diagnostics by identity `(code, region, site, key)` in the given
/// order, keeping the first occurrence (and therefore its witness).
fn dedup_in_order(diags: Vec<Diag>) -> Vec<Diag> {
    let mut seen: std::collections::HashSet<(LintCode, usize, Option<u32>, String)> =
        std::collections::HashSet::new();
    diags
        .into_iter()
        .filter(|d| seen.insert((d.code, d.region, d.site, d.key.clone())))
        .collect()
}

/// Sweep one region over a rank range: run [`lint_region_at`] at every
/// count in ascending order, merging findings by identity so each keeps
/// its *first* (smallest-rank-count) witness. This is the per-region unit
/// of work the incremental cache (`commintd`) stores; the batch driver
/// assembles the same artifacts via [`assemble_lint_report`], so the two
/// front ends share one code path.
pub fn sweep_region(
    region_index: usize,
    spec: &ParamsSpec,
    ranks: RankRange,
    vars: &HashMap<String, i64>,
) -> Vec<Diag> {
    dedup_in_order(
        (ranks.min..=ranks.max)
            .flat_map(|n| lint_region_at(region_index, spec, n, vars))
            .collect(),
    )
}

/// Assemble a [`LintReport`] from parse diagnostics plus per-region sweep
/// artifacts (each the output of [`sweep_region`], or its cached
/// equivalent). Identities never collide across groups — parse
/// diagnostics are the only `CI000` producers and the sweep identity
/// includes the region index — so group-local dedup composes into the
/// global dedup, and the final sort key extends the identity, making the
/// sorted order independent of assembly order: the report is
/// byte-identical however the artifacts were produced.
pub fn assemble_lint_report(
    parse_diags: Vec<Diag>,
    region_sweeps: Vec<Vec<Diag>>,
    ranks: RankRange,
) -> LintReport {
    let mut diags = dedup_in_order(parse_diags);
    for sweep in region_sweeps {
        diags.extend(sweep);
    }
    // Most severe first; then stable source order for determinism.
    diags.sort_by(|a, b| {
        b.severity
            .cmp(&a.severity)
            .then(a.code.cmp(&b.code))
            .then(a.region.cmp(&b.region))
            .then(a.site.cmp(&b.site))
            .then(a.key.cmp(&b.key))
    });
    // The sweep only ever checked this finite range; say so on every
    // finding. `commprove` upgrades findings it can decide parametrically.
    for d in &mut diags {
        d.verification = Some(Verification::Swept {
            min: ranks.min,
            max: ranks.max,
        });
    }
    LintReport { ranks, diags }
}

/// Map every parse/validation diagnostic through [`map_parse_diag`].
pub fn parse_diags(parsed: &pragma_front::Parsed) -> Vec<Diag> {
    parsed
        .diagnostics
        .iter()
        .filter_map(map_parse_diag)
        .collect()
}

/// Lint pre-parsed directives over a rank range with `vars` bound: run
/// [`lint_region_at`] at every count, merge findings by identity, and keep
/// the *first* (smallest-rank-count) witness for each.
pub fn lint_parsed(
    parsed: &pragma_front::Parsed,
    ranks: RankRange,
    vars: &HashMap<String, i64>,
) -> LintReport {
    let regions: Vec<ParamsSpec> = parsed.items.iter().filter_map(region_view).collect();
    // The per-count lints are independent; fan them out over a small worker
    // pool, then regroup per region in ascending-count order — exactly the
    // order [`sweep_region`] produces sequentially, so the assembled report
    // is byte-identical to per-region (cached) sweeps.
    let counts: Vec<usize> = (ranks.min..=ranks.max).collect();
    let jobs = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut per_region: Vec<Vec<Diag>> = (0..regions.len()).map(|_| Vec::new()).collect();
    for per_count in lint_counts(&regions, &counts, vars, jobs) {
        for diag in per_count {
            per_region[diag.region].push(diag);
        }
    }
    let sweeps = per_region.into_iter().map(dedup_in_order).collect();
    assemble_lint_report(parse_diags(parsed), sweeps, ranks)
}

/// Run every region's lints at each rank count in `counts`, in parallel,
/// returning the diagnostics grouped per count in `counts` order (each
/// group preserves region order). Striped assignment keeps the load even —
/// lint cost grows with the rank count, so contiguous chunks would leave
/// the high-count worker the straggler.
fn lint_counts(
    regions: &[ParamsSpec],
    counts: &[usize],
    vars: &HashMap<String, i64>,
    jobs: usize,
) -> Vec<Vec<Diag>> {
    let lint_one = |nranks: usize| -> Vec<Diag> {
        regions
            .iter()
            .enumerate()
            .flat_map(|(ri, spec)| lint_region_at(ri, spec, nranks, vars))
            .collect()
    };
    let jobs = jobs.max(1).min(counts.len());
    if jobs <= 1 {
        return counts.iter().map(|&n| lint_one(n)).collect();
    }
    let mut out: Vec<Vec<Diag>> = (0..counts.len()).map(|_| Vec::new()).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..jobs)
            .map(|j| {
                let lint_one = &lint_one;
                s.spawn(move || {
                    counts
                        .iter()
                        .enumerate()
                        .skip(j)
                        .step_by(jobs)
                        .map(|(i, &n)| (i, lint_one(n)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            for (i, diags) in h.join().expect("lint worker panicked") {
                out[i] = diags;
            }
        }
    });
    out
}

/// Parse and lint one source. Per-file `@decl`/`@var` annotations extend
/// `symbols`/`opts.vars`; `@ranks` overrides the sweep range.
pub fn lint_source(
    src: &str,
    symbols: &SymbolTable,
    opts: &LintOptions,
) -> Result<LintReport, ParseError> {
    let ann = scan_annotations(src);
    let mut symbols = symbols.clone();
    apply_decls(&mut symbols, &ann);
    let mut vars = opts.vars.clone();
    vars.extend(ann.vars);
    let ranks = ann.ranks.unwrap_or(opts.ranks);
    let parsed = parse(src, &symbols)?;
    Ok(lint_parsed(&parsed, ranks, &vars))
}

/// Render the full lint-code catalog (`commlint --list-codes`): one line
/// per code with its short name, verification mode — `lint+prove ∀N` for
/// properties `commprove` decides for every rank count, `lint sweep` for
/// the rest — and one-line summary.
pub fn render_code_catalog() -> String {
    let name_w = LintCode::ALL
        .iter()
        .map(|c| c.name().len())
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    for code in LintCode::ALL {
        let mode = if code.provable() {
            "lint+prove ∀N"
        } else {
            "lint sweep   "
        };
        out.push_str(&format!(
            "{}  {:name_w$}  {mode}  {}\n",
            code.code(),
            code.name(),
            code.summary()
        ));
    }
    out
}

/// Render one file's report as `path:line:col: severity[CODE name]: ...`
/// lines (clippy-style, one diagnostic per line).
pub fn render_text(path: &str, report: &LintReport) -> String {
    let mut out = String::new();
    for d in &report.diags {
        let loc = match d.span {
            Some(sp) => format!("{path}:{sp}"),
            None => path.to_string(),
        };
        out.push_str(&format!(
            "{loc}: {}[{} {}]: {}",
            d.severity.keyword(),
            d.code.code(),
            d.code.name(),
            d.message
        ));
        if let Some(w) = &d.witness {
            out.push_str(&format!(" (fails at nranks={}", w.nranks));
            if !w.ranks.is_empty() {
                let shown: Vec<String> = w.ranks.iter().take(8).map(|r| r.to_string()).collect();
                out.push_str(&format!("; ranks {}", shown.join(",")));
                if w.ranks.len() > 8 {
                    out.push_str(&format!(" and {} more", w.ranks.len() - 8));
                }
            }
            out.push(')');
        }
        if let Some(v) = &d.verification {
            out.push_str(&format!(" [{v}]"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const RING: &str = "\
// @decl buf1: double[16]
// @decl buf2: double[16]
// @ranks 2..=8
#pragma comm_p2p sender((rank-1+nprocs)%nprocs) receiver((rank+1)%nprocs) \
  sbuf(buf1) rbuf(buf2) count(16)";

    #[test]
    fn code_catalog_lists_every_code_once() {
        let cat = render_code_catalog();
        assert_eq!(cat.lines().count(), LintCode::ALL.len());
        for code in LintCode::ALL {
            let line = cat
                .lines()
                .find(|l| l.starts_with(code.code()))
                .unwrap_or_else(|| panic!("{} missing from catalog", code.code()));
            assert!(line.contains(code.name()), "{line}");
            assert!(line.contains(code.summary()), "{line}");
            let mode = if code.provable() {
                "lint+prove ∀N"
            } else {
                "lint sweep"
            };
            assert!(line.contains(mode), "{line}");
        }
    }

    #[test]
    fn annotations_scanned() {
        let ann = scan_annotations(RING);
        assert_eq!(ann.decls.len(), 2);
        assert_eq!(
            ann.decls[0],
            DeclAnn {
                name: "buf1".to_string(),
                ty: BasicType::F64,
                len: 16,
                vector: None,
            }
        );
        assert_eq!(ann.ranks, Some(RankRange { min: 2, max: 8 }));
        // Malformed annotations are ignored, not errors.
        let ann = scan_annotations("// @decl oops\n// @var x\n// @ranks ?");
        assert!(ann.decls.is_empty() && ann.vars.is_empty() && ann.ranks.is_none());
    }

    #[test]
    fn ring_lints_to_a_single_note() {
        let report = lint_source(RING, &SymbolTable::new(), &LintOptions::default()).unwrap();
        assert_eq!(report.ranks, RankRange { min: 2, max: 8 });
        // The canonical ring produces exactly the advisory CI002 note:
        // warning-free, so the CI gate passes.
        assert!(!report.gate_fails(), "{:?}", report.diags);
        assert!(report
            .diags
            .iter()
            .all(|d| d.code == LintCode::BlockingDeadlockCycle && d.severity == Severity::Note));
        // Witness is the smallest swept count.
        assert_eq!(report.diags[0].witness.as_ref().unwrap().nranks, 2);
    }

    #[test]
    fn witness_keeps_smallest_failing_count() {
        // sender(1) receiver(0) from rank 2's perspective is fine at
        // nranks=2 but rank 2 sends unmatched at nranks>=3.
        let src = "\
// @decl a: int[4]
// @decl b: int[4]
// @ranks 2..=6
#pragma comm_p2p sender(0) receiver(1) sendwhen(rank==0||rank==2) receivewhen(rank==1) \
  sbuf(a) rbuf(b) count(4)";
        let report = lint_source(src, &SymbolTable::new(), &LintOptions::default()).unwrap();
        let d = report
            .diags
            .iter()
            .find(|d| d.code == LintCode::UnmatchedSend)
            .expect("unmatched send");
        assert_eq!(d.witness.as_ref().unwrap().nranks, 3);
    }

    #[test]
    fn parallel_sweep_matches_sequential() {
        // The worker-pool sweep must be indistinguishable from the
        // sequential one — same diagnostics, same order, same witnesses —
        // at any worker count (including more workers than counts).
        let src = "\
// @decl a: int[4]
// @decl b: int[4]
#pragma comm_p2p sender(0) receiver(1) sendwhen(rank==0||rank==2) receivewhen(rank==1) \
  sbuf(a) rbuf(b) count(4)";
        let parsed = parse(src, &{
            let mut t = SymbolTable::new();
            apply_decls(&mut t, &scan_annotations(src));
            t
        })
        .unwrap();
        let regions: Vec<ParamsSpec> = parsed.items.iter().filter_map(region_view).collect();
        let counts: Vec<usize> = (2..=16).collect();
        let vars = HashMap::new();
        let seq = lint_counts(&regions, &counts, &vars, 1);
        for jobs in [2, 3, 5, 32] {
            let par = lint_counts(&regions, &counts, &vars, jobs);
            assert_eq!(seq, par, "jobs={jobs} diverged from sequential sweep");
        }
    }

    #[test]
    fn per_region_sweeps_assemble_byte_identically() {
        // The incremental front end computes sweeps one region at a time
        // (possibly from cache) and assembles; the batch front end fans
        // out per count. Same report, byte for byte.
        let src = "\
// @decl a: int[4]
// @decl b: int[8]
// @ranks 2..=6
#pragma comm_parameters sender(0) receiver(1) sendwhen(rank==0) receivewhen(rank==1)
{
    #pragma comm_p2p sbuf(a) rbuf(b) count(4)
    { }
}
#pragma comm_p2p sender(0) receiver(1) sendwhen(rank==0||rank==2) receivewhen(rank==1) \
  sbuf(a) rbuf(b) count(4)";
        let ann = scan_annotations(src);
        let mut symbols = SymbolTable::new();
        apply_decls(&mut symbols, &ann);
        let parsed = parse(src, &symbols).unwrap();
        let ranks = ann.ranks.unwrap();
        let batch = lint_parsed(&parsed, ranks, &ann.vars);
        let regions: Vec<ParamsSpec> = parsed.items.iter().filter_map(region_view).collect();
        let sweeps: Vec<Vec<Diag>> = regions
            .iter()
            .enumerate()
            .map(|(ri, spec)| sweep_region(ri, spec, ranks, &ann.vars))
            .collect();
        let assembled = assemble_lint_report(parse_diags(&parsed), sweeps, ranks);
        assert_eq!(batch.ranks, assembled.ranks);
        assert_eq!(batch.diags, assembled.diags);
        assert!(!batch.diags.is_empty(), "workload should produce findings");
    }

    #[test]
    fn rank_range_parses() {
        assert_eq!(
            RankRange::parse("2..=64"),
            Some(RankRange { min: 2, max: 64 })
        );
        assert_eq!(RankRange::parse("5"), Some(RankRange { min: 5, max: 5 }));
        assert_eq!(RankRange::parse("0..=4"), None);
        assert_eq!(RankRange::parse("8..=2"), None);
        assert_eq!(RankRange::parse("x"), None);
    }

    #[test]
    fn text_rendering_includes_span_and_witness() {
        let src = "\
// @decl a: int[4]
// @decl b: int[4]
#pragma comm_p2p sender(0) receiver(1) sendwhen(rank==0) receivewhen(rank<0) \
  sbuf(a) rbuf(b) count(4)";
        let report = lint_source(src, &SymbolTable::new(), &LintOptions::default()).unwrap();
        assert!(report.gate_fails());
        let text = render_text("x.comm", &report);
        assert!(text.contains("x.comm:3:"), "{text}");
        assert!(text.contains("error[CI001 unmatched-send]"), "{text}");
        assert!(text.contains("fails at nranks=2"), "{text}");
        assert!(text.contains("[swept 2..=16]"), "{text}");
    }
}
