//! `commlint` — lint communication-intent pragma sources.
//!
//! ```text
//! commlint [--ranks LO..=HI] [--format text|json] \
//!          [--var name=value]... [--buf name:type:len]... FILE...
//! commlint --list-codes
//! ```
//!
//! Exit status: 0 clean (notes allowed), 1 any warning-or-above finding,
//! 2 usage or parse error (`--help` documents the same). Sources may carry
//! `// @decl`, `// @var` and `// @ranks` annotations; `--buf`/`--var`
//! supply the same information on the command line, and a per-file
//! `@ranks` overrides `--ranks`.

use std::process::ExitCode;

use commlint::{
    basic_type_of, json::render_json, lint_source, render_code_catalog, render_text, LintOptions,
    RankRange,
};
use pragma_front::SymbolTable;

const USAGE: &str = "usage: commlint [--ranks LO..=HI] [--format text|json] [--hash] \
[--var name=value]... [--buf name:type:len]... FILE...";

const HELP: &str = "\
commlint — lint communication-intent pragma sources.

usage: commlint [--ranks LO..=HI] [--format text|json] [--hash]
                [--var name=value]... [--buf name:type:len]... FILE...
       commlint --list-codes

--list-codes prints the catalog: every code with its name, one-line
summary and verification mode (`lint+prove ∀N` when commprove can decide
the property for all rank counts, `lint sweep` otherwise).

--hash prints, instead of linting, each region's structural cache hash —
the content-addressed key the analysis daemon (`commintd`) caches under.
The hash covers the canonical token stream (never whitespace or
comments), the file's annotations and variable bindings, the rank range,
and the region's index and first site id; a formatting-only edit provably
leaves every hash unchanged.

Every finding states its verification mode: `swept LO..=K` means commlint
checked that finite rank-count range and nothing beyond it (use `commprove`
for verdicts quantified over all rank counts). Per-file `// @ranks`
annotations override --ranks; `// @decl` / `// @var` extend --buf / --var.

exit status:
  0  clean — no finding above note severity (the CI gate passes)
  1  at least one warning- or error-severity finding (the CI gate fails)
  2  usage error, unreadable input, or pragma parse error";

fn fail(msg: &str) -> ExitCode {
    eprintln!("commlint: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut opts = LintOptions::default();
    let mut symbols = SymbolTable::new();
    let mut format = "text".to_string();
    let mut hash_mode = false;
    let mut files: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--ranks" => {
                let Some(spec) = args.next() else {
                    return fail("--ranks needs a value");
                };
                let Some(r) = RankRange::parse(&spec) else {
                    return fail(&format!("bad --ranks `{spec}` (want LO..=HI, LO>=1)"));
                };
                opts.ranks = r;
            }
            "--format" => {
                let Some(f) = args.next() else {
                    return fail("--format needs a value");
                };
                if f != "text" && f != "json" {
                    return fail(&format!("bad --format `{f}` (want text or json)"));
                }
                format = f;
            }
            "--var" => {
                let Some(spec) = args.next() else {
                    return fail("--var needs name=value");
                };
                let Some((name, value)) = spec.split_once('=') else {
                    return fail(&format!("bad --var `{spec}` (want name=value)"));
                };
                let Ok(value) = value.trim().parse::<i64>() else {
                    return fail(&format!("bad --var value in `{spec}`"));
                };
                opts.vars.insert(name.trim().to_string(), value);
            }
            "--buf" => {
                let Some(spec) = args.next() else {
                    return fail("--buf needs name:type:len");
                };
                let parts: Vec<&str> = spec.split(':').collect();
                let [name, ty, len] = parts.as_slice() else {
                    return fail(&format!("bad --buf `{spec}` (want name:type:len)"));
                };
                let Some(bt) = basic_type_of(ty) else {
                    return fail(&format!("unknown --buf type `{ty}`"));
                };
                let Ok(len) = len.parse::<usize>() else {
                    return fail(&format!("bad --buf length in `{spec}`"));
                };
                symbols.declare_prim(name, bt, len);
            }
            "--hash" => hash_mode = true,
            "--list-codes" => {
                print!("{}", render_code_catalog());
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{HELP}");
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with("--") => {
                return fail(&format!("unknown flag `{arg}`"));
            }
            _ => files.push(arg),
        }
    }
    if files.is_empty() {
        return fail("no input files");
    }

    if hash_mode {
        for path in &files {
            let src = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => return fail(&format!("cannot read `{path}`: {e}")),
            };
            for (region, site_base, h) in
                commlint::hash::region_hashes(&src, &opts.vars, opts.ranks)
            {
                println!("{path}: region {region} (site base {site_base}): {h:016x}");
            }
        }
        return ExitCode::SUCCESS;
    }

    let mut reports = Vec::new();
    for path in &files {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => return fail(&format!("cannot read `{path}`: {e}")),
        };
        match lint_source(&src, &symbols, &opts) {
            Ok(report) => reports.push((path.clone(), report)),
            Err(e) => {
                eprintln!("commlint: {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let gate_fails = reports.iter().any(|(_, r)| r.gate_fails());
    if format == "json" {
        print!("{}", render_json(&reports));
    } else {
        for (path, report) in &reports {
            print!("{}", render_text(path, report));
        }
        let (e, w, n) = reports.iter().fold((0, 0, 0), |(e, w, n), (_, r)| {
            use commint::clause::Severity;
            (
                e + r.count(Severity::Error),
                w + r.count(Severity::Warning),
                n + r.count(Severity::Note),
            )
        });
        eprintln!(
            "commlint: {} file(s), {e} error(s), {w} warning(s), {n} note(s)",
            reports.len()
        );
    }
    if gate_fails {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
