//! Structural hashing of spec regions: the key-derivation half of the
//! content-addressed analysis cache (`commint::cas`).
//!
//! A source file splits into *region chunks* at top-level `#pragma`
//! directives ([`split_regions`]); each chunk's identity is the FNV-1a
//! hash of its **canonical token stream** — the `pragma_front::lex` output
//! rendered kind-by-kind — so whitespace, comments, and `\` line
//! continuations never perturb the hash ([`token_fingerprint`]). A
//! formatting-only edit therefore provably maps to the same keys and hits
//! the cache; any token-level change (an identifier, a count, an operator)
//! changes the fingerprint and misses.
//!
//! The full cache key of an analysis artifact also folds in everything
//! else the artifact reads: the file's annotations (`@decl`/`@var`), the
//! analysis variable bindings, the rank range, the region's index and
//! first site id ([`structural_hash`]). Those last two matter because
//! diagnostics embed absolute region indexes and site ids: inserting a
//! region above shifts them, and the key must shift too.

use std::collections::HashMap;

use commint::cas::Fnv64;
use pragma_front::lex::{lex, Tok, Token};

use crate::{Annotations, RankRange};

/// One top-level directive chunk of a source file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegionChunk {
    /// Byte range of the chunk in the source (`start` is the `#pragma`,
    /// `end` is the start of the next top-level chunk or EOF).
    pub start: usize,
    pub end: usize,
    /// 1-based line/column of `start` (for re-anchoring relative spans).
    pub line: usize,
    pub col: usize,
    /// Directive keyword following `#pragma` (e.g. `comm_parameters`).
    pub name: String,
    /// Whether the chunk lints as a region (`comm_parameters` block or
    /// standalone `comm_p2p`); collectives do not.
    pub is_region: bool,
    /// Number of `comm_p2p` sites inside the chunk. Site ids are assigned
    /// file-wide in source order, so a chunk's first site id is 1 plus the
    /// sum of `sites` over all preceding chunks.
    pub sites: usize,
}

impl RegionChunk {
    /// The chunk's text within `src`.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

/// Split a source file into top-level directive chunks by lexing and
/// tracking brace depth: a `#pragma` at depth 0 opens a new chunk that
/// runs to the next depth-0 `#pragma` (or EOF). Nested `comm_p2p`
/// pragmas inside a `comm_parameters` body stay within their parent's
/// chunk. Returns an empty list when the file does not lex (the parser
/// will report the error; there is nothing stable to hash).
pub fn split_regions(src: &str) -> Vec<RegionChunk> {
    split_regions_tokens(src)
        .into_iter()
        .map(|(c, _)| c)
        .collect()
}

/// Like [`split_regions`], but also hands back each chunk's tokens from
/// the same single lex pass, spans file-absolute. Chunks begin and end
/// at token boundaries and the lexer discards comments and whitespace,
/// so a chunk's token slice is exactly what lexing its text in
/// isolation would yield (with relative spans rebased) — callers can
/// fingerprint and re-anchor without lexing the file again per chunk.
pub fn split_regions_tokens(src: &str) -> Vec<(RegionChunk, Vec<Token>)> {
    let Ok(tokens) = lex(src) else {
        return Vec::new();
    };
    let mut chunks: Vec<(RegionChunk, usize)> = Vec::new();
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate() {
        match &t.tok {
            Tok::LBrace => depth += 1,
            Tok::RBrace => depth = depth.saturating_sub(1),
            Tok::Pragma => {
                let name = match tokens.get(i + 1).map(|t| &t.tok) {
                    Some(Tok::Ident(n)) => n.clone(),
                    _ => String::new(),
                };
                if name == "comm_p2p" && depth > 0 {
                    if let Some((last, _)) = chunks.last_mut() {
                        last.sites += 1;
                    }
                }
                if depth == 0 {
                    if let Some((last, _)) = chunks.last_mut() {
                        last.end = t.span.offset;
                    }
                    let is_region = name == "comm_parameters" || name == "comm_p2p";
                    let sites = usize::from(name == "comm_p2p");
                    chunks.push((
                        RegionChunk {
                            start: t.span.offset,
                            end: src.len(),
                            line: t.span.line,
                            col: t.span.col,
                            name,
                            is_region,
                            sites,
                        },
                        i,
                    ));
                }
            }
            _ => {}
        }
    }
    let eof = tokens
        .iter()
        .position(|t| t.tok == Tok::Eof)
        .unwrap_or(tokens.len());
    let bounds: Vec<usize> = chunks.iter().map(|(_, i)| *i).collect();
    chunks
        .into_iter()
        .enumerate()
        .map(|(ci, (chunk, tstart))| {
            let tend = bounds.get(ci + 1).copied().unwrap_or(eof);
            (chunk, tokens[tstart..tend].to_vec())
        })
        .collect()
}

/// Fold one token into a hasher, canonically: the discriminant plus any
/// payload, never the source spelling or position.
fn fold_token(h: &mut Fnv64, t: &Token) {
    match &t.tok {
        Tok::Ident(s) => {
            h.write_u64(1);
            h.write_str(s);
        }
        Tok::Int(v) => {
            h.write_u64(2);
            h.write_i64(*v);
        }
        other => {
            // Punctuation and keywords render to distinct fixed strings.
            h.write_u64(3);
            h.write_str(&other.to_string());
        }
    }
}

/// Hash a text slice's canonical token stream. Returns `None` when the
/// slice does not lex. Whitespace- and comment-insensitive by
/// construction: the lexer discards both before we ever see them.
pub fn token_fingerprint(text: &str) -> Option<u64> {
    let tokens = lex(text).ok()?;
    Some(fingerprint_tokens(&tokens))
}

/// Hash an already-lexed token slice (stopping at `Eof` if present).
/// `fold_token` reads only token kind and payload — never spans — so a
/// slice of a full-file lex fingerprints identically to lexing the same
/// text in isolation.
pub fn fingerprint_tokens(tokens: &[Token]) -> u64 {
    let mut h = Fnv64::new();
    for t in tokens {
        if t.tok == Tok::Eof {
            break;
        }
        fold_token(&mut h, t);
    }
    h.finish()
}

/// Fold the analysis environment shared by every region of a file: `@decl`
/// declarations (in declaration order — order is observable through
/// buffer pairing), merged variable bindings (sorted — `HashMap` order is
/// not canonical), and the effective rank range.
pub fn env_hash(ann: &Annotations, vars: &HashMap<String, i64>, ranks: RankRange) -> u64 {
    let mut h = Fnv64::new();
    h.write_str("env");
    for d in &ann.decls {
        h.write_str(&d.name);
        h.write_str(&format!("{:?}", d.ty));
        h.write_u64(d.len as u64);
        match d.vector {
            Some((b, s, m)) => {
                h.write_u64(1)
                    .write_u64(b as u64)
                    .write_u64(s as u64)
                    .write_u64(m as u64);
            }
            None => {
                h.write_u64(0);
            }
        }
    }
    let mut sorted: Vec<(&String, &i64)> = vars.iter().collect();
    sorted.sort();
    h.write_u64(sorted.len() as u64);
    for (k, v) in sorted {
        h.write_str(k);
        h.write_i64(*v);
    }
    h.write_u64(ranks.min as u64).write_u64(ranks.max as u64);
    h.finish()
}

/// The structural hash of one region: canonical token stream of its
/// chunk, plus the file environment, plus the region's absolute index
/// and first site id (both observable in diagnostics, so both
/// key-relevant). Returns `None` when the chunk does not lex.
pub fn structural_hash(
    region_text: &str,
    env: u64,
    region_index: usize,
    site_base: u32,
) -> Option<u64> {
    let toks = token_fingerprint(region_text)?;
    Some(structural_hash_parts(toks, env, region_index, site_base))
}

/// [`structural_hash`] over an already-lexed token slice (as returned by
/// [`split_regions_tokens`]); infallible because the tokens exist.
pub fn structural_hash_tokens(
    tokens: &[Token],
    env: u64,
    region_index: usize,
    site_base: u32,
) -> u64 {
    structural_hash_parts(fingerprint_tokens(tokens), env, region_index, site_base)
}

fn structural_hash_parts(toks: u64, env: u64, region_index: usize, site_base: u32) -> u64 {
    let mut h = Fnv64::new();
    h.write_str("region");
    h.write_u64(toks);
    h.write_u64(env);
    h.write_u64(region_index as u64);
    h.write_u64(site_base as u64);
    h.finish()
}

/// Per-region structural hashes of a whole file, in region order:
/// `(region_index, first_site_id, hash)`. The env folds the file's own
/// annotations over `extra_vars`/`default_ranks` exactly as
/// [`crate::lint_source`] does, so the hashes key the same analyses the
/// CLI runs. Backs `commlint --hash`.
pub fn region_hashes(
    src: &str,
    extra_vars: &HashMap<String, i64>,
    default_ranks: RankRange,
) -> Vec<(usize, u32, u64)> {
    let ann = crate::scan_annotations(src);
    let mut vars = extra_vars.clone();
    vars.extend(ann.vars.clone());
    let ranks = ann.ranks.unwrap_or(default_ranks);
    let env = env_hash(&ann, &vars, ranks);
    let mut out = Vec::new();
    let mut region_index = 0usize;
    let mut site_base = 1u32;
    for (chunk, toks) in split_regions_tokens(src) {
        if chunk.is_region {
            let h = structural_hash_tokens(&toks, env, region_index, site_base);
            out.push((region_index, site_base, h));
            region_index += 1;
        }
        site_base += chunk.sites as u32;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const TWO_REGIONS: &str = "\
// @decl a: double[3]
// @decl b: double[3]
// @var v = 1
// @ranks 2..=4
#pragma comm_parameters sender(0) receiver(v) sendwhen(rank==0) receivewhen(rank==v) count(3)
{
    #pragma comm_p2p sbuf(a) rbuf(b)
    { }
}
#pragma comm_p2p sender(0) receiver(1) sendwhen(rank==0) receivewhen(rank==1) \
  sbuf(a) rbuf(b) count(3)
";

    #[test]
    fn splitter_finds_top_level_chunks() {
        let chunks = split_regions(TWO_REGIONS);
        assert_eq!(chunks.len(), 2, "{chunks:?}");
        assert_eq!(chunks[0].name, "comm_parameters");
        assert_eq!(chunks[0].sites, 1);
        assert_eq!(chunks[1].name, "comm_p2p");
        assert_eq!(chunks[1].sites, 1);
        assert!(chunks.iter().all(|c| c.is_region));
        // Chunks tile the directive-bearing tail of the file.
        assert_eq!(chunks[0].end, chunks[1].start);
        assert_eq!(chunks[1].end, TWO_REGIONS.len());
        // The nested comm_p2p stays inside its parent chunk.
        assert!(chunks[0].text(TWO_REGIONS).contains("comm_p2p"));
    }

    #[test]
    fn fingerprint_ignores_whitespace_and_comments() {
        let a = token_fingerprint("#pragma comm_p2p sbuf(a) rbuf(b) count(3)").unwrap();
        let b = token_fingerprint(
            "#pragma comm_p2p /* layout note */ sbuf( a )\n   rbuf(b) // trailing\n count(3)",
        )
        .unwrap();
        let c = token_fingerprint("#pragma comm_p2p \\\n  sbuf(a) rbuf(b) count(3)").unwrap();
        assert_eq!(a, b);
        assert_eq!(a, c);
        // A token-level change misses.
        let d = token_fingerprint("#pragma comm_p2p sbuf(a) rbuf(b) count(4)").unwrap();
        assert_ne!(a, d);
    }

    #[test]
    fn hashes_stable_under_formatting_edit() {
        let before = region_hashes(TWO_REGIONS, &HashMap::new(), RankRange::default());
        let formatted = TWO_REGIONS.replace("sbuf(a) rbuf(b)", "sbuf( a )  rbuf( b ) /* x */");
        let after = region_hashes(&formatted, &HashMap::new(), RankRange::default());
        assert_eq!(before, after);
    }

    #[test]
    fn editing_one_region_leaves_the_other_hash_alone() {
        let before = region_hashes(TWO_REGIONS, &HashMap::new(), RankRange::default());
        assert_eq!(before.len(), 2);
        // Token-level edit confined to region 1 (region 0's nested p2p has
        // no `count`, so the pattern cannot match there).
        let edited = TWO_REGIONS.replace("sbuf(a) rbuf(b) count(3)", "sbuf(b) rbuf(a) count(3)");
        let after = region_hashes(&edited, &HashMap::new(), RankRange::default());
        assert_eq!(before[0], after[0], "region 0 untouched");
        assert_ne!(before[1].2, after[1].2, "region 1 edited");
    }

    #[test]
    fn annotation_change_shifts_every_hash() {
        let before = region_hashes(TWO_REGIONS, &HashMap::new(), RankRange::default());
        let after = region_hashes(
            &TWO_REGIONS.replace("@var v = 1", "@var v = 2"),
            &HashMap::new(),
            RankRange::default(),
        );
        for (b, a) in before.iter().zip(&after) {
            assert_ne!(b.2, a.2, "env change must reach every region key");
        }
    }

    #[test]
    fn site_bases_account_for_preceding_sites() {
        let hashes = region_hashes(TWO_REGIONS, &HashMap::new(), RankRange::default());
        assert_eq!(hashes[0].1, 1, "sites are 1-based");
        assert_eq!(hashes[1].1, 2, "region 0 consumed one site id");
    }
}
