//! Hand-rolled JSON rendering for `commlint --format json`.
//!
//! The schema is stable — CI consumers and the golden-file tests depend on
//! it. Schema 2 adds the top-level `"schema"` marker and a per-diagnostic
//! `"verification"` object saying how broadly the finding was established
//! (`swept` for the concrete sweep; `proved`/`proved-congruent` when
//! `commprove` decided it for all rank counts):
//!
//! ```json
//! {
//!   "schema": 2,
//!   "files": [
//!     {
//!       "path": "...",
//!       "ranks": { "min": 2, "max": 16 },
//!       "diagnostics": [
//!         {
//!           "code": "CI001",
//!           "name": "unmatched-send",
//!           "severity": "error",
//!           "message": "...",
//!           "span": { "line": 3, "col": 28 },
//!           "region": 0,
//!           "site": 0,
//!           "witness": { "nranks": 3, "ranks": [2] },
//!           "verification": { "kind": "swept", "min": 2, "max": 16 }
//!         }
//!       ]
//!     }
//!   ],
//!   "summary": { "errors": 1, "warnings": 0, "notes": 0 }
//! }
//! ```
//!
//! Output is pretty-printed with two-space indent and a trailing newline so
//! golden files diff cleanly.

use commint::clause::Severity;
use commint::diag::Verification;

use crate::LintReport;

/// Schema version of the JSON document.
pub const SCHEMA: u32 = 2;

/// Minimal JSON string escaping (control chars, quote, backslash).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render a [`Verification`] as a one-line JSON object (`null` if absent).
/// Shared with `commprove`, which emits the same per-diagnostic shape.
pub fn verification_json(v: Option<&Verification>) -> String {
    match v {
        None => "null".to_string(),
        Some(Verification::Proved { from }) => {
            format!("{{ \"kind\": \"proved\", \"from\": {from} }}")
        }
        Some(Verification::ProvedCongruent {
            from,
            modulus,
            residues,
        }) => {
            let rs: Vec<String> = residues.iter().map(|r| r.to_string()).collect();
            format!(
                "{{ \"kind\": \"proved-congruent\", \"from\": {from}, \"modulus\": {modulus}, \
                 \"residues\": [{}] }}",
                rs.join(", ")
            )
        }
        Some(Verification::Swept { min, max }) => {
            format!("{{ \"kind\": \"swept\", \"min\": {min}, \"max\": {max} }}")
        }
    }
}

fn diag_json(d: &commint::diag::Diag, indent: &str) -> String {
    let span = match d.span {
        Some(sp) => format!("{{ \"line\": {}, \"col\": {} }}", sp.line, sp.col),
        None => "null".to_string(),
    };
    let site = match d.site {
        Some(s) => s.to_string(),
        None => "null".to_string(),
    };
    let witness = match &d.witness {
        Some(w) => {
            let ranks: Vec<String> = w.ranks.iter().map(|r| r.to_string()).collect();
            format!(
                "{{ \"nranks\": {}, \"ranks\": [{}] }}",
                w.nranks,
                ranks.join(", ")
            )
        }
        None => "null".to_string(),
    };
    let verification = verification_json(d.verification.as_ref());
    format!(
        "{indent}{{\n\
         {indent}  \"code\": \"{}\",\n\
         {indent}  \"name\": \"{}\",\n\
         {indent}  \"severity\": \"{}\",\n\
         {indent}  \"message\": \"{}\",\n\
         {indent}  \"span\": {span},\n\
         {indent}  \"region\": {},\n\
         {indent}  \"site\": {site},\n\
         {indent}  \"witness\": {witness},\n\
         {indent}  \"verification\": {verification}\n\
         {indent}}}",
        d.code.code(),
        d.code.name(),
        d.severity.keyword(),
        escape(&d.message),
        d.region,
    )
}

fn file_json(path: &str, report: &LintReport, indent: &str) -> String {
    let diags: Vec<String> = report
        .diags
        .iter()
        .map(|d| diag_json(d, &format!("{indent}    ")))
        .collect();
    let diags = if diags.is_empty() {
        "[]".to_string()
    } else {
        format!("[\n{}\n{indent}  ]", diags.join(",\n"))
    };
    format!(
        "{indent}{{\n\
         {indent}  \"path\": \"{}\",\n\
         {indent}  \"ranks\": {{ \"min\": {}, \"max\": {} }},\n\
         {indent}  \"diagnostics\": {diags}\n\
         {indent}}}",
        escape(path),
        report.ranks.min,
        report.ranks.max,
    )
}

/// Render reports for a set of files as one JSON document.
pub fn render_json(files: &[(String, LintReport)]) -> String {
    let (mut errors, mut warnings, mut notes) = (0usize, 0usize, 0usize);
    for (_, r) in files {
        errors += r.count(Severity::Error);
        warnings += r.count(Severity::Warning);
        notes += r.count(Severity::Note);
    }
    let entries: Vec<String> = files
        .iter()
        .map(|(path, r)| file_json(path, r, "    "))
        .collect();
    let files_json = if entries.is_empty() {
        "[]".to_string()
    } else {
        format!("[\n{}\n  ]", entries.join(",\n"))
    };
    format!(
        "{{\n  \"schema\": {SCHEMA},\n  \"files\": {files_json},\n  \"summary\": {{ \"errors\": {errors}, \"warnings\": {warnings}, \"notes\": {notes} }}\n}}\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lint_source, LintOptions, RankRange};
    use pragma_front::SymbolTable;

    #[test]
    fn escaping_covers_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn json_document_shape() {
        let src = "\
// @decl a: int[4]
// @decl b: int[4]
#pragma comm_p2p sender(0) receiver(1) sendwhen(rank==0) receivewhen(rank<0) \
  sbuf(a) rbuf(b) count(4)";
        let report = lint_source(
            src,
            &SymbolTable::new(),
            &LintOptions {
                ranks: RankRange { min: 2, max: 4 },
                ..Default::default()
            },
        )
        .unwrap();
        let doc = render_json(&[("f.comm".to_string(), report)]);
        assert!(doc.contains("\"schema\": 2"), "{doc}");
        assert!(
            doc.contains("\"verification\": { \"kind\": \"swept\", \"min\": 2, \"max\": 4 }"),
            "{doc}"
        );
        assert!(doc.contains("\"path\": \"f.comm\""), "{doc}");
        assert!(
            doc.contains("\"ranks\": { \"min\": 2, \"max\": 4 }"),
            "{doc}"
        );
        assert!(doc.contains("\"code\": \"CI001\""), "{doc}");
        assert!(doc.contains("\"witness\": { \"nranks\": 2"), "{doc}");
        assert!(doc.ends_with("}\n"), "{doc}");
    }

    #[test]
    fn empty_input_summarizes_to_zero() {
        let doc = render_json(&[]);
        assert!(doc.contains("\"files\": []"));
        assert!(doc.contains("\"errors\": 0, \"warnings\": 0, \"notes\": 0"));
    }
}
