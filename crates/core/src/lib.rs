//! # commint — communication-intent directives for message passing
//!
//! A Rust reproduction of the directive system from *"Toward Abstracting
//! the Communication Intent in Applications to Improve Portability and
//! Productivity"* (Mintz et al., IPDPSW 2013).
//!
//! The paper proposes two compiler directives — `comm_parameters` and
//! `comm_p2p` with ten clauses — that express *what* point-to-point
//! communication a program intends, leaving the *how* (library calls,
//! data-type handling, synchronization) to the translator. The same
//! annotated region retargets between MPI two-sided, MPI one-sided
//! (`MPI_Put`) and SHMEM.
//!
//! Rust has no pragmas, so the directive surface here is twofold:
//! * a typed builder API ([`CommSession::region`], [`Region::p2p`]) plus
//!   the [`comm_parameters!`]/[`comm_p2p!`] macros, and
//! * the `pragma-front` crate, which parses the paper's literal
//!   `#pragma comm_p2p …` syntax into the same IR.
//!
//! Both feed one directive IR ([`dir::ParamsSpec`]) that the static
//! analyses ([`analysis`]) and the execution engine ([`scope`]) consume.
//! The engine implements the paper's automatic behaviours: data-type
//! inference with derived-datatype caching, count inference from the
//! smallest buffer, synchronization consolidation with `place_sync`
//! placement and `max_comm_iter` budgeting, communication/computation
//! overlap, and symmetric staging management for one-sided targets.
//!
//! ## Quick example — the paper's Listing 1 ring
//!
//! ```
//! use commint::prelude::*;
//! use mpisim::Comm;
//! use netsim::{run, SimConfig};
//!
//! let res = run(SimConfig::new(4), |ctx| {
//!     let comm = Comm::world(ctx);
//!     let mut session = CommSession::new(ctx, comm);
//!     let me = session.rank() as i64;
//!     let buf1 = [me; 8];
//!     let mut buf2 = [0i64; 8];
//!     // #pragma comm_p2p sender(prev) receiver(next) sbuf(buf1) rbuf(buf2)
//!     session
//!         .p2p()
//!         .sender((RankExpr::rank() - RankExpr::lit(1) + RankExpr::nranks()) % RankExpr::nranks())
//!         .receiver((RankExpr::rank() + RankExpr::lit(1)) % RankExpr::nranks())
//!         .sbuf(Prim::new("buf1", &buf1))
//!         .rbuf(PrimMut::new("buf2", &mut buf2))
//!         .run()
//!         .unwrap();
//!     buf2[0]
//! });
//! assert_eq!(res.per_rank, vec![3, 0, 1, 2]);
//! ```

pub mod analysis;
pub mod buffer;
pub mod cas;
pub mod clause;
pub mod coll;
pub mod diag;
pub mod dir;
pub mod expr;
pub mod interval;
pub mod lower;
pub mod macros;
pub mod nf;
pub mod overlay;
pub mod patterns;
pub mod race;
pub mod scope;
pub mod traceview;

pub use buffer::{Prim, PrimMut, PrimStrided, PrimStridedMut, RecvBuf, SendBuf, Struc, StrucMut};
pub use clause::{ClauseSet, Diagnostic, DirectiveKind, PlaceSync, Severity, Target};
pub use coll::{CollKind, ReduceOp};
pub use diag::{Diag, DirSpans, LintCode, RankWitness, SrcSpan, Verification};
pub use dir::{P2pSpec, ParamsSpec};
pub use expr::{CondExpr, EvalEnv, ExprError, RankExpr};
pub use interval::{Access, AccessKind, ByteSpan};
pub use nf::{ClassParams, LinForm, ModForm, NormCond, NormErr, NormExpr};
pub use overlay::{Decision, Overlay, SiteDecision, OVERLAY_SCHEMA};
pub use race::{analyze_ops, RaceFinding, RaceOp, RaceProgram};
pub use scope::{CommParams, CommSession, DirectiveError, P2pCall, Region};

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::buffer::{
        Prim, PrimMut, PrimStrided, PrimStridedMut, Soa, SoaMut, Struc, StrucMut,
    };
    pub use crate::clause::{PlaceSync, Target};
    pub use crate::expr::{CondExpr, EvalEnv, RankExpr};
    pub use crate::lower::{choose_lowering, Lowering, LoweringPolicy};
    pub use crate::overlay::{Decision, Overlay, SiteDecision};
    pub use crate::scope::{CommParams, CommSession, DirectiveError};
    pub use crate::{comm_coll, comm_p2p, comm_parameters};
}
