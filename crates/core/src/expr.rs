//! Clause expression ASTs.
//!
//! The paper's clauses take C expressions evaluated per-rank:
//! `sender(rank-1)`, `receiver((rank+1)%nprocs)`, `sendwhen(rank%2==0)`.
//! Keeping these as *data* (rather than opaque closures) is what makes the
//! communication statically analyzable — the compiler-style analyses in
//! [`crate::analysis`] resolve them for every rank to recover the intended
//! communication graph, classify the pattern, and check send/receive
//! matching. An [`RankExpr::Opaque`] escape hatch carries arbitrary Rust
//! closures for things no small AST covers; analyses degrade gracefully on
//! it (the program still runs, classification reports `Irregular`).

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Variable bindings for clause evaluation, scanned linearly by name.
///
/// A directive scope binds a handful of names, but the lookup runs on every
/// directive instance of every rank — a short scan with early-exit string
/// compares beats hashing at that size, and rebinding an existing name
/// (what directive loops do once per iteration) touches no allocator.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct VarTable(Vec<(String, i64)>);

impl VarTable {
    /// The bound value of `name`, if any.
    pub fn get(&self, name: &str) -> Option<i64> {
        self.0.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Bind `name`, updating in place if already bound.
    pub fn set(&mut self, name: &str, value: i64) {
        match self.0.iter_mut().find(|(n, _)| n == name) {
            Some((_, v)) => *v = value,
            None => self.0.push((name.to_string(), value)),
        }
    }

    /// Iterate over `(name, value)` bindings in binding order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, i64)> {
        self.0.iter().map(|(n, v)| (n.as_str(), *v))
    }

    /// Number of bound names.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether no names are bound.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl From<&HashMap<String, i64>> for VarTable {
    fn from(m: &HashMap<String, i64>) -> Self {
        let mut t = VarTable(m.iter().map(|(n, v)| (n.clone(), *v)).collect());
        // HashMap iteration order is arbitrary; keep the table deterministic.
        t.0.sort();
        t
    }
}

impl From<HashMap<String, i64>> for VarTable {
    fn from(m: HashMap<String, i64>) -> Self {
        let mut t = VarTable(m.into_iter().collect());
        t.0.sort();
        t
    }
}

impl FromIterator<(String, i64)> for VarTable {
    fn from_iter<I: IntoIterator<Item = (String, i64)>>(iter: I) -> Self {
        let mut t = VarTable::default();
        for (n, v) in iter {
            t.set(&n, v);
        }
        t
    }
}

/// Evaluation environment for clause expressions: the SPMD identity plus
/// user variables (loop bounds, privileged ranks, ...).
#[derive(Clone, Debug, Default)]
pub struct EvalEnv {
    /// Communicator-local rank of the evaluating process.
    pub rank: i64,
    /// Communicator size.
    pub nranks: i64,
    /// User variables referenced by name in expressions.
    pub vars: VarTable,
}

impl EvalEnv {
    /// Environment for `rank` of `nranks` with no variables.
    pub fn new(rank: usize, nranks: usize) -> Self {
        EvalEnv {
            rank: rank as i64,
            nranks: nranks as i64,
            vars: VarTable::default(),
        }
    }

    /// Set a variable (builder style).
    pub fn with(mut self, name: &str, value: i64) -> Self {
        self.vars.set(name, value);
        self
    }

    /// Set a variable, updating in place if already bound.
    pub fn set(&mut self, name: &str, value: i64) {
        self.vars.set(name, value);
    }
}

/// Expression evaluation errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExprError {
    /// A `Var` was not present in the environment.
    UnknownVar(String),
    /// Division or modulo by zero.
    DivByZero,
}

impl fmt::Display for ExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExprError::UnknownVar(v) => write!(f, "unknown variable `{v}`"),
            ExprError::DivByZero => write!(f, "division by zero"),
        }
    }
}

impl std::error::Error for ExprError {}

/// An integer-valued clause expression (`sender`, `receiver`, `count`,
/// `max_comm_iter`).
#[derive(Clone)]
pub enum RankExpr {
    /// The evaluating process's rank.
    Rank,
    /// The communicator size (`nprocs`).
    NRanks,
    /// An integer literal.
    Const(i64),
    /// A named user variable.
    Var(String),
    /// Arithmetic.
    Add(Box<RankExpr>, Box<RankExpr>),
    Sub(Box<RankExpr>, Box<RankExpr>),
    Mul(Box<RankExpr>, Box<RankExpr>),
    Div(Box<RankExpr>, Box<RankExpr>),
    Mod(Box<RankExpr>, Box<RankExpr>),
    Neg(Box<RankExpr>),
    /// An opaque Rust closure with a display label. Analyses treat it as
    /// unresolvable; execution evaluates it.
    Opaque(Arc<dyn Fn(&EvalEnv) -> i64 + Send + Sync>, &'static str),
}

impl RankExpr {
    /// Shorthand: the `rank` variable.
    pub fn rank() -> RankExpr {
        RankExpr::Rank
    }

    /// Shorthand: the `nprocs` variable.
    pub fn nranks() -> RankExpr {
        RankExpr::NRanks
    }

    /// Shorthand: a literal.
    pub fn lit(v: i64) -> RankExpr {
        RankExpr::Const(v)
    }

    /// Shorthand: a named variable.
    pub fn var(name: &str) -> RankExpr {
        RankExpr::Var(name.to_string())
    }

    /// Wrap a Rust closure with a display label.
    pub fn opaque(
        label: &'static str,
        f: impl Fn(&EvalEnv) -> i64 + Send + Sync + 'static,
    ) -> RankExpr {
        RankExpr::Opaque(Arc::new(f), label)
    }

    /// Modulo (C semantics: sign of dividend).
    #[allow(clippy::should_implement_trait)] // C-style `%`, not std::ops::Rem
    pub fn rem(self, rhs: RankExpr) -> RankExpr {
        RankExpr::Mod(Box::new(self), Box::new(rhs))
    }

    /// Evaluate under `env`.
    pub fn eval(&self, env: &EvalEnv) -> Result<i64, ExprError> {
        Ok(match self {
            RankExpr::Rank => env.rank,
            RankExpr::NRanks => env.nranks,
            RankExpr::Const(v) => *v,
            RankExpr::Var(name) => env
                .vars
                .get(name)
                .ok_or_else(|| ExprError::UnknownVar(name.clone()))?,
            RankExpr::Add(a, b) => a.eval(env)?.wrapping_add(b.eval(env)?),
            RankExpr::Sub(a, b) => a.eval(env)?.wrapping_sub(b.eval(env)?),
            RankExpr::Mul(a, b) => a.eval(env)?.wrapping_mul(b.eval(env)?),
            RankExpr::Div(a, b) => {
                let d = b.eval(env)?;
                if d == 0 {
                    return Err(ExprError::DivByZero);
                }
                a.eval(env)?.wrapping_div(d)
            }
            RankExpr::Mod(a, b) => {
                let d = b.eval(env)?;
                if d == 0 {
                    return Err(ExprError::DivByZero);
                }
                a.eval(env)?.wrapping_rem(d)
            }
            RankExpr::Neg(a) => a.eval(env)?.wrapping_neg(),
            RankExpr::Opaque(f, _) => f(env),
        })
    }

    /// Whether the expression contains an opaque closure (unresolvable by
    /// static analysis without execution).
    pub fn has_opaque(&self) -> bool {
        match self {
            RankExpr::Rank | RankExpr::NRanks | RankExpr::Const(_) | RankExpr::Var(_) => false,
            RankExpr::Add(a, b)
            | RankExpr::Sub(a, b)
            | RankExpr::Mul(a, b)
            | RankExpr::Div(a, b)
            | RankExpr::Mod(a, b) => a.has_opaque() || b.has_opaque(),
            RankExpr::Neg(a) => a.has_opaque(),
            RankExpr::Opaque(..) => true,
        }
    }

    /// Free variable names referenced by the expression.
    pub fn free_vars(&self, out: &mut Vec<String>) {
        match self {
            RankExpr::Var(name) if !out.contains(name) => {
                out.push(name.clone());
            }
            RankExpr::Add(a, b)
            | RankExpr::Sub(a, b)
            | RankExpr::Mul(a, b)
            | RankExpr::Div(a, b)
            | RankExpr::Mod(a, b) => {
                a.free_vars(out);
                b.free_vars(out);
            }
            RankExpr::Neg(a) => a.free_vars(out),
            _ => {}
        }
    }

    /// Display labels of every opaque closure in the expression, in
    /// syntactic order without duplicates.
    pub fn opaque_labels(&self, out: &mut Vec<&'static str>) {
        match self {
            RankExpr::Rank | RankExpr::NRanks | RankExpr::Const(_) | RankExpr::Var(_) => {}
            RankExpr::Add(a, b)
            | RankExpr::Sub(a, b)
            | RankExpr::Mul(a, b)
            | RankExpr::Div(a, b)
            | RankExpr::Mod(a, b) => {
                a.opaque_labels(out);
                b.opaque_labels(out);
            }
            RankExpr::Neg(a) => a.opaque_labels(out),
            RankExpr::Opaque(_, label) if !out.contains(label) => out.push(label),
            RankExpr::Opaque(..) => {}
        }
    }

    // -- comparison builders producing conditions ---------------------------

    /// `self == rhs`
    pub fn eq(self, rhs: RankExpr) -> CondExpr {
        CondExpr::Eq(self, rhs)
    }
    /// `self != rhs`
    pub fn ne(self, rhs: RankExpr) -> CondExpr {
        CondExpr::Ne(self, rhs)
    }
    /// `self < rhs`
    pub fn lt(self, rhs: RankExpr) -> CondExpr {
        CondExpr::Lt(self, rhs)
    }
    /// `self <= rhs`
    pub fn le(self, rhs: RankExpr) -> CondExpr {
        CondExpr::Le(self, rhs)
    }
    /// `self > rhs`
    pub fn gt(self, rhs: RankExpr) -> CondExpr {
        CondExpr::Gt(self, rhs)
    }
    /// `self >= rhs`
    pub fn ge(self, rhs: RankExpr) -> CondExpr {
        CondExpr::Ge(self, rhs)
    }
}

impl fmt::Debug for RankExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for RankExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RankExpr::Rank => write!(f, "rank"),
            RankExpr::NRanks => write!(f, "nprocs"),
            RankExpr::Const(v) => write!(f, "{v}"),
            RankExpr::Var(name) => write!(f, "{name}"),
            RankExpr::Add(a, b) => write!(f, "({a}+{b})"),
            RankExpr::Sub(a, b) => write!(f, "({a}-{b})"),
            RankExpr::Mul(a, b) => write!(f, "({a}*{b})"),
            RankExpr::Div(a, b) => write!(f, "({a}/{b})"),
            RankExpr::Mod(a, b) => write!(f, "({a}%{b})"),
            RankExpr::Neg(a) => write!(f, "(-{a})"),
            RankExpr::Opaque(_, label) => write!(f, "<{label}>"),
        }
    }
}

impl From<i64> for RankExpr {
    fn from(v: i64) -> Self {
        RankExpr::Const(v)
    }
}

impl From<usize> for RankExpr {
    fn from(v: usize) -> Self {
        RankExpr::Const(v as i64)
    }
}

impl From<i32> for RankExpr {
    fn from(v: i32) -> Self {
        RankExpr::Const(i64::from(v))
    }
}

impl std::ops::Add for RankExpr {
    type Output = RankExpr;
    fn add(self, rhs: RankExpr) -> RankExpr {
        RankExpr::Add(Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Sub for RankExpr {
    type Output = RankExpr;
    fn sub(self, rhs: RankExpr) -> RankExpr {
        RankExpr::Sub(Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Mul for RankExpr {
    type Output = RankExpr;
    fn mul(self, rhs: RankExpr) -> RankExpr {
        RankExpr::Mul(Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Div for RankExpr {
    type Output = RankExpr;
    fn div(self, rhs: RankExpr) -> RankExpr {
        RankExpr::Div(Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Rem for RankExpr {
    type Output = RankExpr;
    fn rem(self, rhs: RankExpr) -> RankExpr {
        RankExpr::Mod(Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Neg for RankExpr {
    type Output = RankExpr;
    fn neg(self) -> RankExpr {
        RankExpr::Neg(Box::new(self))
    }
}

/// A Boolean clause expression (`sendwhen`, `receivewhen`).
#[derive(Clone)]
pub enum CondExpr {
    /// Constant true.
    True,
    /// Constant false.
    False,
    Eq(RankExpr, RankExpr),
    Ne(RankExpr, RankExpr),
    Lt(RankExpr, RankExpr),
    Le(RankExpr, RankExpr),
    Gt(RankExpr, RankExpr),
    Ge(RankExpr, RankExpr),
    And(Box<CondExpr>, Box<CondExpr>),
    Or(Box<CondExpr>, Box<CondExpr>),
    Not(Box<CondExpr>),
    /// Opaque Rust predicate with a display label.
    Opaque(Arc<dyn Fn(&EvalEnv) -> bool + Send + Sync>, &'static str),
}

impl CondExpr {
    /// Wrap a Rust predicate with a display label.
    pub fn opaque(
        label: &'static str,
        f: impl Fn(&EvalEnv) -> bool + Send + Sync + 'static,
    ) -> CondExpr {
        CondExpr::Opaque(Arc::new(f), label)
    }

    /// Logical and.
    pub fn and(self, rhs: CondExpr) -> CondExpr {
        CondExpr::And(Box::new(self), Box::new(rhs))
    }

    /// Logical or.
    pub fn or(self, rhs: CondExpr) -> CondExpr {
        CondExpr::Or(Box::new(self), Box::new(rhs))
    }

    /// Logical negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> CondExpr {
        CondExpr::Not(Box::new(self))
    }

    /// Evaluate under `env`.
    pub fn eval(&self, env: &EvalEnv) -> Result<bool, ExprError> {
        Ok(match self {
            CondExpr::True => true,
            CondExpr::False => false,
            CondExpr::Eq(a, b) => a.eval(env)? == b.eval(env)?,
            CondExpr::Ne(a, b) => a.eval(env)? != b.eval(env)?,
            CondExpr::Lt(a, b) => a.eval(env)? < b.eval(env)?,
            CondExpr::Le(a, b) => a.eval(env)? <= b.eval(env)?,
            CondExpr::Gt(a, b) => a.eval(env)? > b.eval(env)?,
            CondExpr::Ge(a, b) => a.eval(env)? >= b.eval(env)?,
            CondExpr::And(a, b) => a.eval(env)? && b.eval(env)?,
            CondExpr::Or(a, b) => a.eval(env)? || b.eval(env)?,
            CondExpr::Not(a) => !a.eval(env)?,
            CondExpr::Opaque(f, _) => f(env),
        })
    }

    /// Whether the condition contains an opaque closure.
    pub fn has_opaque(&self) -> bool {
        match self {
            CondExpr::True | CondExpr::False => false,
            CondExpr::Eq(a, b)
            | CondExpr::Ne(a, b)
            | CondExpr::Lt(a, b)
            | CondExpr::Le(a, b)
            | CondExpr::Gt(a, b)
            | CondExpr::Ge(a, b) => a.has_opaque() || b.has_opaque(),
            CondExpr::And(a, b) | CondExpr::Or(a, b) => a.has_opaque() || b.has_opaque(),
            CondExpr::Not(a) => a.has_opaque(),
            CondExpr::Opaque(..) => true,
        }
    }

    /// Free variable names referenced by the condition.
    pub fn free_vars(&self, out: &mut Vec<String>) {
        match self {
            CondExpr::Eq(a, b)
            | CondExpr::Ne(a, b)
            | CondExpr::Lt(a, b)
            | CondExpr::Le(a, b)
            | CondExpr::Gt(a, b)
            | CondExpr::Ge(a, b) => {
                a.free_vars(out);
                b.free_vars(out);
            }
            CondExpr::And(a, b) | CondExpr::Or(a, b) => {
                a.free_vars(out);
                b.free_vars(out);
            }
            CondExpr::Not(a) => a.free_vars(out),
            _ => {}
        }
    }

    /// Display labels of every opaque closure in the condition, including
    /// those nested inside comparison operands, in syntactic order without
    /// duplicates.
    pub fn opaque_labels(&self, out: &mut Vec<&'static str>) {
        match self {
            CondExpr::True | CondExpr::False => {}
            CondExpr::Eq(a, b)
            | CondExpr::Ne(a, b)
            | CondExpr::Lt(a, b)
            | CondExpr::Le(a, b)
            | CondExpr::Gt(a, b)
            | CondExpr::Ge(a, b) => {
                a.opaque_labels(out);
                b.opaque_labels(out);
            }
            CondExpr::And(a, b) | CondExpr::Or(a, b) => {
                a.opaque_labels(out);
                b.opaque_labels(out);
            }
            CondExpr::Not(a) => a.opaque_labels(out),
            CondExpr::Opaque(_, label) if !out.contains(label) => out.push(label),
            CondExpr::Opaque(..) => {}
        }
    }
}

impl fmt::Debug for CondExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for CondExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CondExpr::True => write!(f, "1"),
            CondExpr::False => write!(f, "0"),
            CondExpr::Eq(a, b) => write!(f, "({a}=={b})"),
            CondExpr::Ne(a, b) => write!(f, "({a}!={b})"),
            CondExpr::Lt(a, b) => write!(f, "({a}<{b})"),
            CondExpr::Le(a, b) => write!(f, "({a}<={b})"),
            CondExpr::Gt(a, b) => write!(f, "({a}>{b})"),
            CondExpr::Ge(a, b) => write!(f, "({a}>={b})"),
            CondExpr::And(a, b) => write!(f, "({a}&&{b})"),
            CondExpr::Or(a, b) => write!(f, "({a}||{b})"),
            CondExpr::Not(a) => write!(f, "(!{a})"),
            CondExpr::Opaque(_, label) => write!(f, "<{label}>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(rank: i64, nranks: i64) -> EvalEnv {
        EvalEnv {
            rank,
            nranks,
            vars: Default::default(),
        }
    }

    #[test]
    fn ring_expressions() {
        // prev = (rank-1+nprocs)%nprocs ; next = (rank+1)%nprocs (Listing 1)
        let prev = (RankExpr::rank() - RankExpr::lit(1) + RankExpr::nranks()) % RankExpr::nranks();
        let next = (RankExpr::rank() + RankExpr::lit(1)) % RankExpr::nranks();
        let e = env(0, 4);
        assert_eq!(prev.eval(&e).unwrap(), 3);
        assert_eq!(next.eval(&e).unwrap(), 1);
        let e = env(3, 4);
        assert_eq!(prev.eval(&e).unwrap(), 2);
        assert_eq!(next.eval(&e).unwrap(), 0);
    }

    #[test]
    fn even_odd_conditions() {
        // sendwhen(rank%2==0) receivewhen(rank%2==1) (Listing 2)
        let sendwhen = (RankExpr::rank() % RankExpr::lit(2)).eq(RankExpr::lit(0));
        let recvwhen = (RankExpr::rank() % RankExpr::lit(2)).eq(RankExpr::lit(1));
        assert!(sendwhen.eval(&env(0, 8)).unwrap());
        assert!(!sendwhen.eval(&env(1, 8)).unwrap());
        assert!(recvwhen.eval(&env(1, 8)).unwrap());
        assert!(!recvwhen.eval(&env(2, 8)).unwrap());
    }

    #[test]
    fn variables_and_errors() {
        let e = RankExpr::var("from_rank");
        assert_eq!(
            e.eval(&env(0, 2)).unwrap_err(),
            ExprError::UnknownVar("from_rank".to_string())
        );
        let mut en = env(0, 2);
        en.set("from_rank", 5);
        assert_eq!(e.eval(&en).unwrap(), 5);

        let div = RankExpr::rank() / RankExpr::lit(0);
        assert_eq!(div.eval(&env(1, 2)).unwrap_err(), ExprError::DivByZero);
        let md = RankExpr::rank() % RankExpr::lit(0);
        assert_eq!(md.eval(&env(1, 2)).unwrap_err(), ExprError::DivByZero);
    }

    #[test]
    fn c_modulo_semantics() {
        // (rank-1) % n is negative for rank 0 in C; the paper's Listing 1
        // therefore adds nprocs first. Verify we reproduce C semantics.
        let e = (RankExpr::rank() - RankExpr::lit(1)) % RankExpr::nranks();
        assert_eq!(e.eval(&env(0, 4)).unwrap(), -1);
    }

    #[test]
    fn display_renders_c_like() {
        let next = (RankExpr::rank() + RankExpr::lit(1)) % RankExpr::nranks();
        assert_eq!(next.to_string(), "((rank+1)%nprocs)");
        let c = (RankExpr::rank() % RankExpr::lit(2)).eq(RankExpr::lit(0));
        assert_eq!(c.to_string(), "((rank%2)==0)");
    }

    #[test]
    fn opaque_exprs_evaluate_and_flag() {
        let e = RankExpr::opaque("twice_rank", |env| env.rank * 2);
        assert_eq!(e.eval(&env(3, 8)).unwrap(), 6);
        assert!(e.has_opaque());
        assert!(!(RankExpr::rank() + RankExpr::lit(1)).has_opaque());
        let c = CondExpr::opaque("is_root", |env| env.rank == 0);
        assert!(c.eval(&env(0, 8)).unwrap());
        assert!(c.has_opaque());
        assert_eq!(e.to_string(), "<twice_rank>");
    }

    #[test]
    fn free_vars_collected() {
        let e = RankExpr::var("n") * RankExpr::var("m") + RankExpr::var("n");
        let mut vars = Vec::new();
        e.free_vars(&mut vars);
        assert_eq!(vars, vec!["n".to_string(), "m".to_string()]);

        let c = RankExpr::var("root").eq(RankExpr::rank());
        let mut vars = Vec::new();
        c.free_vars(&mut vars);
        assert_eq!(vars, vec!["root".to_string()]);
    }

    #[test]
    fn boolean_combinators() {
        let a = RankExpr::rank().lt(RankExpr::lit(4));
        let b = RankExpr::rank().ge(RankExpr::lit(2));
        let both = a.clone().and(b.clone());
        assert!(both.eval(&env(3, 8)).unwrap());
        assert!(!both.eval(&env(5, 8)).unwrap());
        let either = a.or(b);
        assert!(either.eval(&env(5, 8)).unwrap());
        assert!(!CondExpr::True.not().eval(&env(0, 1)).unwrap());
    }
}
