//! Compiler-style static analyses over the directive IR.
//!
//! This is the payoff the paper argues for: once communication is expressed
//! through directives with analyzable clauses, "all source and destination
//! information can be incorporated into an analysis framework for automated
//! analysis and optimization". Given a [`ParamsSpec`] (from the builder API
//! or the pragma parser) and a communicator size, these analyses:
//!
//! * resolve the per-rank communication graph ([`resolve_graph`]),
//! * classify the pattern ([`classify`]: cyclic/linear shifts, ring,
//!   nearest-neighbour pairs, fan-in/fan-out, exchanges),
//! * check send/receive **matching completeness** ([`check_matching`]) —
//!   the static guarantee hand-written MPI cannot give,
//! * verify **buffer independence** across adjacent `comm_p2p` instances,
//!   the precondition for synchronization consolidation
//!   ([`buffer_independence`]),
//! * and estimate the synchronization savings of consolidation
//!   ([`sync_report`]), the effect Figure 4 measures.

use std::collections::{BTreeMap, HashMap, HashSet};

use crate::clause::ClauseSet;
use crate::dir::{P2pSpec, ParamsSpec};
use crate::expr::{EvalEnv, ExprError};

/// One directed communication edge resolved for a concrete rank count.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Edge {
    /// Sending rank.
    pub src: usize,
    /// Receiving rank.
    pub dst: usize,
}

/// The resolved communication graph of one `comm_p2p` instance.
#[derive(Clone, Debug, Default)]
pub struct CommGraph {
    /// Declared send edges (from the senders' perspective).
    pub sends: Vec<Edge>,
    /// Declared receive edges (from the receivers' perspective).
    pub recvs: Vec<Edge>,
    /// Ranks whose clauses could not be resolved statically (opaque
    /// expressions or unbound variables).
    pub unresolved: Vec<usize>,
    /// Ranks whose merged `sendwhen` evaluated true, recorded even when
    /// the receiver expression did not resolve. Every rank when the
    /// clause is absent — only meaningful to consumers (CI005) when the
    /// predicate pair is present.
    pub senders: Vec<usize>,
    /// Ranks whose merged `receivewhen` evaluated true (same caveats).
    pub receivers: Vec<usize>,
    /// Whether any `sendwhen`/`receivewhen` evaluation errored.
    pub when_unknown: bool,
}

impl CommGraph {
    /// Send edges that no receiver declares.
    pub fn unmatched_sends(&self) -> Vec<Edge> {
        let recvs: HashSet<&Edge> = self.recvs.iter().collect();
        self.sends
            .iter()
            .filter(|e| !recvs.contains(e))
            .copied()
            .collect()
    }

    /// Receive edges that no sender declares.
    pub fn unmatched_recvs(&self) -> Vec<Edge> {
        let sends: HashSet<&Edge> = self.sends.iter().collect();
        self.recvs
            .iter()
            .filter(|e| !sends.contains(e))
            .copied()
            .collect()
    }

    /// Whether every declared send has a matching declared receive and vice
    /// versa (and everything resolved).
    pub fn fully_matched(&self) -> bool {
        self.unresolved.is_empty()
            && self.unmatched_sends().is_empty()
            && self.unmatched_recvs().is_empty()
    }

    /// The matched edges (intersection of send and receive declarations).
    pub fn matched(&self) -> Vec<Edge> {
        let recvs: HashSet<&Edge> = self.recvs.iter().collect();
        let mut out: Vec<Edge> = self
            .sends
            .iter()
            .filter(|e| recvs.contains(e))
            .copied()
            .collect();
        out.sort();
        out.dedup();
        out
    }
}

/// Resolve the communication graph of a `comm_p2p` instance (its clauses
/// merged with the enclosing region's) for `nranks` ranks, with `vars`
/// bound.
pub fn resolve_graph(
    p2p: &P2pSpec,
    outer: Option<&ClauseSet>,
    nranks: usize,
    vars: &HashMap<String, i64>,
) -> CommGraph {
    let merged = match outer {
        Some(o) => p2p.clauses.merged_with(o),
        None => p2p.clauses.clone(),
    };
    let mut g = CommGraph::default();
    // One environment for the whole scan: only the rank changes, and the
    // variable table conversion (allocation + sort) is paid once, not per
    // rank.
    let mut env = EvalEnv {
        rank: 0,
        nranks: nranks as i64,
        vars: vars.into(),
    };
    for r in 0..nranks {
        env.rank = r as i64;
        let sends = match &merged.sendwhen {
            Some(c) => c.eval(&env),
            None => Ok(true),
        };
        let recvs = match &merged.receivewhen {
            Some(c) => c.eval(&env),
            None => Ok(true),
        };
        let mut resolved = true;
        match &sends {
            Ok(true) => g.senders.push(r),
            Ok(false) => {}
            Err(_) => g.when_unknown = true,
        }
        match &recvs {
            Ok(true) => g.receivers.push(r),
            Ok(false) => {}
            Err(_) => g.when_unknown = true,
        }
        match sends {
            Ok(true) => match merged.receiver.as_ref().map(|e| e.eval(&env)) {
                Some(Ok(d)) if d >= 0 && (d as usize) < nranks => g.sends.push(Edge {
                    src: r,
                    dst: d as usize,
                }),
                Some(Ok(_)) | None => resolved = false,
                Some(Err(ExprError::UnknownVar(_))) | Some(Err(ExprError::DivByZero)) => {
                    resolved = false
                }
            },
            Ok(false) => {}
            Err(_) => resolved = false,
        }
        match recvs {
            Ok(true) => match merged.sender.as_ref().map(|e| e.eval(&env)) {
                Some(Ok(s)) if s >= 0 && (s as usize) < nranks => g.recvs.push(Edge {
                    src: s as usize,
                    dst: r,
                }),
                Some(Ok(_)) | None => resolved = false,
                Some(Err(_)) => resolved = false,
            },
            Ok(false) => {}
            Err(_) => resolved = false,
        }
        if !resolved {
            g.unresolved.push(r);
        }
    }
    g
}

/// Classified communication patterns ("there are a variety of
/// point-to-point communication patterns that are recurring in scientific
/// applications" — the basis for the directive interface).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pattern {
    /// No communication.
    Empty,
    /// Every rank sends to `(rank + k) % n`; `k = 1` is the classic ring.
    CyclicShift { k: usize },
    /// Ranks `0..n-k` send to `rank + k` (no wraparound).
    LinearShift { k: usize },
    /// Disjoint sender→receiver pairs (e.g. even ranks to the next odd
    /// rank, paper Listing 2).
    DisjointPairs,
    /// One root sends to multiple ranks (scatter-flavoured).
    FanOut { root: usize },
    /// Multiple ranks send to one root (gather-flavoured).
    FanIn { root: usize },
    /// Symmetric pairwise exchange (both directions between pairs).
    Exchange,
    /// Anything else.
    Irregular,
}

/// Classify the *matched* edges of a graph over `nranks` ranks.
pub fn classify(graph: &CommGraph, nranks: usize) -> Pattern {
    let edges = graph.matched();
    if edges.is_empty() {
        return Pattern::Empty;
    }
    let n = nranks;

    // Cyclic shift: all ranks send, dst = (src + k) mod n for one k.
    if edges.len() == n {
        let k0 = (edges[0].dst + n - edges[0].src) % n;
        if k0 != 0
            && edges.iter().all(|e| (e.dst + n - e.src) % n == k0)
            && edges.iter().map(|e| e.src).collect::<HashSet<_>>().len() == n
        {
            return Pattern::CyclicShift { k: k0 };
        }
    }

    // Linear shift: srcs are 0..n-k, dst = src + k.
    if let Some(first) = edges.first() {
        if first.dst > first.src {
            let k = first.dst - first.src;
            let expected: Vec<Edge> = (0..n.saturating_sub(k))
                .map(|s| Edge { src: s, dst: s + k })
                .collect();
            let mut sorted = edges.clone();
            sorted.sort();
            if sorted == expected {
                return Pattern::LinearShift { k };
            }
        }
    }

    let srcs: HashSet<usize> = edges.iter().map(|e| e.src).collect();
    let dsts: HashSet<usize> = edges.iter().map(|e| e.dst).collect();

    // Fan-out / fan-in.
    if srcs.len() == 1 && edges.len() > 1 {
        return Pattern::FanOut {
            root: *srcs.iter().next().expect("nonempty"),
        };
    }
    if dsts.len() == 1 && edges.len() > 1 {
        return Pattern::FanIn {
            root: *dsts.iter().next().expect("nonempty"),
        };
    }

    // Exchange: edge set symmetric under reversal, on disjoint pairs.
    let set: HashSet<Edge> = edges.iter().copied().collect();
    if edges.iter().all(|e| {
        set.contains(&Edge {
            src: e.dst,
            dst: e.src,
        })
    }) && edges.iter().all(|e| e.src != e.dst)
    {
        return Pattern::Exchange;
    }

    // Disjoint pairs: senders and receivers disjoint, each appears once.
    if srcs.is_disjoint(&dsts) && srcs.len() == edges.len() && dsts.len() == edges.len() {
        return Pattern::DisjointPairs;
    }

    Pattern::Irregular
}

/// A matching-completeness diagnosis for one `comm_p2p`.
#[derive(Clone, Debug, Default)]
pub struct MatchReport {
    /// Sends no receiver declares (will hang a blocking receiver / leak a
    /// message).
    pub unmatched_sends: Vec<Edge>,
    /// Receives no sender declares (will block forever).
    pub unmatched_recvs: Vec<Edge>,
    /// Ranks that could not be resolved.
    pub unresolved: Vec<usize>,
}

impl MatchReport {
    /// Whether the instance is statically safe.
    pub fn is_clean(&self) -> bool {
        self.unmatched_sends.is_empty()
            && self.unmatched_recvs.is_empty()
            && self.unresolved.is_empty()
    }
}

/// Check matching completeness for every `comm_p2p` in a region.
pub fn check_matching(
    spec: &ParamsSpec,
    nranks: usize,
    vars: &HashMap<String, i64>,
) -> Vec<MatchReport> {
    spec.body
        .iter()
        .map(|p| {
            let g = resolve_graph(p, Some(&spec.clauses), nranks, vars);
            MatchReport {
                unmatched_sends: g.unmatched_sends(),
                unmatched_recvs: g.unmatched_recvs(),
                unresolved: g.unresolved.clone(),
            }
        })
        .collect()
}

/// Buffer-independence verdict across the `comm_p2p` instances of a region:
/// the precondition for consolidating their synchronization into one call.
#[derive(Clone, Debug, Default)]
pub struct IndependenceReport {
    /// Pairs of p2p indices whose buffers overlap in memory, with the
    /// offending buffer names.
    pub conflicts: Vec<(usize, usize, String, String)>,
}

impl IndependenceReport {
    /// Whether consolidation is legal for the whole region.
    pub fn independent(&self) -> bool {
        self.conflicts.is_empty()
    }
}

/// Check pairwise buffer independence between adjacent `comm_p2p`
/// instances. Write-write and write-read overlaps are conflicts; two sends
/// reading the same buffer are not.
pub fn buffer_independence(spec: &ParamsSpec) -> IndependenceReport {
    use crate::interval::{Access, ByteSpan};
    let mut report = IndependenceReport::default();
    // Each phase pairs one access role of instance `a` with one of `b`;
    // the shared interval engine supplies the conflict rule (overlap with
    // at least one writer), so two sends reading the same buffer never
    // conflict. Phase order is part of the report's stable conflict order.
    let access = |b: &crate::buffer::BufMeta, write: bool| {
        let span = ByteSpan::of_buf(b);
        if write {
            Access::write(span)
        } else {
            Access::read(span)
        }
    };
    for i in 0..spec.body.len() {
        for j in (i + 1)..spec.body.len() {
            let (a, b) = (&spec.body[i], &spec.body[j]);
            let phases: [(&[_], bool, &[_], bool); 3] = [
                (&a.rbuf[..], true, &b.rbuf[..], true),
                (&a.rbuf[..], true, &b.sbuf[..], false),
                (&a.sbuf[..], false, &b.rbuf[..], true),
            ];
            for (xs, xw, ys, yw) in phases {
                for x in xs {
                    for y in ys {
                        if access(x, xw).conflicts(&access(y, yw)) {
                            report
                                .conflicts
                                .push((i, j, x.name.clone(), y.name.clone()));
                        }
                    }
                }
            }
        }
    }
    report
}

/// Synchronization-consolidation estimate for one region: how many wait
/// calls the naive per-request translation makes vs. the directive
/// translation's single consolidated call (per executing rank, per
/// iteration).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SyncReport {
    /// Wait calls in the per-request translation (one `MPI_Wait` per send
    /// and per receive).
    pub naive_wait_calls: usize,
    /// Completion calls after consolidation (one `Waitall`-class call at
    /// the placed sync point).
    pub consolidated_calls: usize,
    /// Requests covered by the consolidated call.
    pub requests_covered: usize,
    /// Whether consolidation is legal (buffers independent).
    pub legal: bool,
}

/// Estimate synchronization savings for a region resolved at `nranks`.
/// Counts the busiest rank's requests (the paper's figures measure the
/// critical path).
pub fn sync_report(spec: &ParamsSpec, nranks: usize, vars: &HashMap<String, i64>) -> SyncReport {
    let mut per_rank: HashMap<usize, usize> = HashMap::new();
    for p in &spec.body {
        let g = resolve_graph(p, Some(&spec.clauses), nranks, vars);
        let nbuf = p.sbuf.len().max(1);
        for e in g.sends {
            *per_rank.entry(e.src).or_insert(0) += nbuf;
        }
        for e in g.recvs {
            *per_rank.entry(e.dst).or_insert(0) += nbuf;
        }
    }
    let busiest = per_rank.values().copied().max().unwrap_or(0);
    let legal = buffer_independence(spec).independent();
    SyncReport {
        naive_wait_calls: busiest,
        consolidated_calls: usize::from(busiest > 0),
        requests_covered: busiest,
        legal,
    }
}

/// Per-rank communication volume statically derived from a region: what a
/// compiler reports to guide data-layout and placement decisions ("provide
/// a way to understand how communication patterns affect the program's
/// data and the communication requirements of an application", §V).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VolumeReport {
    /// Bytes sent per rank.
    pub sent: Vec<usize>,
    /// Bytes received per rank.
    pub received: Vec<usize>,
}

impl VolumeReport {
    /// Total bytes moved.
    pub fn total(&self) -> usize {
        self.sent.iter().sum()
    }

    /// The busiest sender (rank, bytes).
    pub fn hotspot(&self) -> Option<(usize, usize)> {
        self.sent
            .iter()
            .copied()
            .enumerate()
            .max_by_key(|&(_, b)| b)
            .filter(|&(_, b)| b > 0)
    }
}

/// Compute per-rank send/receive volumes for one region execution.
pub fn volume_report(
    spec: &ParamsSpec,
    nranks: usize,
    vars: &HashMap<String, i64>,
) -> VolumeReport {
    let mut report = VolumeReport {
        sent: vec![0; nranks],
        received: vec![0; nranks],
    };
    for p in &spec.body {
        let merged = p.clauses.merged_with(&spec.clauses);
        let g = resolve_graph(p, Some(&spec.clauses), nranks, vars);
        for e in g.matched() {
            let count = merged
                .count
                .as_ref()
                .and_then(|c| {
                    c.eval(&EvalEnv {
                        rank: e.src as i64,
                        nranks: nranks as i64,
                        vars: vars.into(),
                    })
                    .ok()
                })
                .map(|v| v.max(0) as usize)
                .or_else(|| p.inferred_count())
                .unwrap_or(0);
            let bytes: usize = p.sbuf.iter().map(|b| count * b.elem.packed_size()).sum();
            report.sent[e.src] += bytes;
            report.received[e.dst] += bytes;
        }
    }
    report
}

/// Structural deadlock check: the directive translation only emits
/// non-blocking operations completed by one consolidated wait per region,
/// which cannot deadlock as long as matching is complete. For a
/// hypothetical blocking-call translation, a cycle in the matched graph
/// with no buffering would deadlock; this reports both facts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeadlockReport {
    /// The generated (non-blocking) code is deadlock-free.
    pub nonblocking_safe: bool,
    /// A blocking-send translation would deadlock (matched graph has a
    /// cycle).
    pub blocking_would_deadlock: bool,
    /// The ranks of one wait-for cycle, in cycle order (empty when acyclic).
    pub cycle: Vec<usize>,
}

/// Find one directed cycle in `edges`, returned as the ranks along it in
/// cycle order. Iterative (explicit stack), so adversarially deep graphs —
/// e.g. a shift pattern over hundreds of thousands of ranks — cannot
/// overflow the call stack. Deterministic: neighbours are visited in sorted
/// order from the smallest root.
pub fn find_cycle(edges: &[Edge]) -> Option<Vec<usize>> {
    let mut adj: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for e in edges {
        adj.entry(e.src).or_default().push(e.dst);
    }
    for next in adj.values_mut() {
        next.sort_unstable();
        next.dedup();
    }
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;
    let mut color: HashMap<usize, u8> = HashMap::new();
    let roots: Vec<usize> = adj.keys().copied().collect();
    for root in roots {
        if color.get(&root).copied().unwrap_or(WHITE) != WHITE {
            continue;
        }
        // Explicit DFS stack of (node, next-neighbour index); `path` mirrors
        // the stack's nodes so a back edge can be cut into a cycle.
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        let mut path: Vec<usize> = vec![root];
        color.insert(root, GRAY);
        while let Some(frame) = stack.last_mut() {
            let u = frame.0;
            let next = adj.get(&u).and_then(|ns| ns.get(frame.1)).copied();
            frame.1 += 1;
            match next {
                Some(v) => match color.get(&v).copied().unwrap_or(WHITE) {
                    WHITE => {
                        color.insert(v, GRAY);
                        stack.push((v, 0));
                        path.push(v);
                    }
                    GRAY => {
                        // Back edge: every GRAY node is on `path`.
                        let start = path
                            .iter()
                            .position(|&p| p == v)
                            .expect("gray node is on the active path");
                        return Some(path[start..].to_vec());
                    }
                    _ => {}
                },
                None => {
                    color.insert(u, BLACK);
                    stack.pop();
                    path.pop();
                }
            }
        }
    }
    None
}

/// Analyze deadlock freedom of one `comm_p2p`'s matched graph.
pub fn deadlock_report(graph: &CommGraph) -> DeadlockReport {
    let cycle = find_cycle(&graph.matched());
    DeadlockReport {
        nonblocking_safe: graph.fully_matched(),
        blocking_would_deadlock: cycle.is_some(),
        cycle: cycle.unwrap_or_default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::{BufMeta, ElemKind};
    use crate::expr::RankExpr;
    use mpisim::dtype::BasicType;

    fn meta(name: &str, lo: usize, bytes: usize) -> BufMeta {
        BufMeta {
            name: name.to_string(),
            elem: ElemKind::Prim(BasicType::U8),
            len: bytes,
            addr: (lo, lo + bytes),
        }
    }

    fn p2p(clauses: ClauseSet) -> P2pSpec {
        P2pSpec {
            clauses,
            sbuf: vec![meta("s", 0, 8)],
            rbuf: vec![meta("r", 100, 8)],
            ..P2pSpec::default()
        }
    }

    fn ring_clauses() -> ClauseSet {
        ClauseSet {
            sender: Some(
                (RankExpr::rank() - RankExpr::lit(1) + RankExpr::nranks()) % RankExpr::nranks(),
            ),
            receiver: Some((RankExpr::rank() + RankExpr::lit(1)) % RankExpr::nranks()),
            ..ClauseSet::default()
        }
    }

    #[test]
    fn ring_resolves_and_classifies() {
        let g = resolve_graph(&p2p(ring_clauses()), None, 5, &HashMap::new());
        assert!(g.fully_matched());
        assert_eq!(g.matched().len(), 5);
        assert_eq!(classify(&g, 5), Pattern::CyclicShift { k: 1 });
    }

    #[test]
    fn even_odd_classifies_as_pairs() {
        let clauses = ClauseSet {
            sender: Some(RankExpr::rank() - RankExpr::lit(1)),
            receiver: Some(RankExpr::rank() + RankExpr::lit(1)),
            sendwhen: Some((RankExpr::rank() % RankExpr::lit(2)).eq(RankExpr::lit(0))),
            receivewhen: Some((RankExpr::rank() % RankExpr::lit(2)).eq(RankExpr::lit(1))),
            ..ClauseSet::default()
        };
        let g = resolve_graph(&p2p(clauses), None, 8, &HashMap::new());
        assert!(
            g.fully_matched(),
            "unmatched: {:?}/{:?}",
            g.unmatched_sends(),
            g.unmatched_recvs()
        );
        assert_eq!(classify(&g, 8), Pattern::DisjointPairs);
    }

    #[test]
    fn fan_out_from_root() {
        // Root 0 sends to `dest`; every rank evaluates the same var, only
        // the matching receiver accepts. Resolve per dest and union.
        let mut sends = Vec::new();
        let mut recvs = Vec::new();
        for dest in 1..6i64 {
            let clauses = ClauseSet {
                sender: Some(RankExpr::lit(0)),
                receiver: Some(RankExpr::var("dest")),
                sendwhen: Some(RankExpr::rank().eq(RankExpr::lit(0))),
                receivewhen: Some(RankExpr::rank().eq(RankExpr::var("dest"))),
                ..ClauseSet::default()
            };
            let vars: HashMap<String, i64> = [("dest".to_string(), dest)].into();
            let g = resolve_graph(&p2p(clauses), None, 6, &vars);
            sends.extend(g.sends);
            recvs.extend(g.recvs);
        }
        let g = CommGraph {
            sends,
            recvs,
            unresolved: vec![],
            ..CommGraph::default()
        };
        assert!(g.fully_matched());
        assert_eq!(classify(&g, 6), Pattern::FanOut { root: 0 });
    }

    #[test]
    fn fan_in_classification() {
        let g = CommGraph {
            sends: (1..5).map(|s| Edge { src: s, dst: 0 }).collect(),
            recvs: (1..5).map(|s| Edge { src: s, dst: 0 }).collect(),
            unresolved: vec![],
            ..CommGraph::default()
        };
        assert_eq!(classify(&g, 5), Pattern::FanIn { root: 0 });
    }

    #[test]
    fn exchange_classification() {
        let mut edges = Vec::new();
        for p in [(0, 1), (1, 0), (2, 3), (3, 2)] {
            edges.push(Edge { src: p.0, dst: p.1 });
        }
        let g = CommGraph {
            sends: edges.clone(),
            recvs: edges,
            unresolved: vec![],
            ..CommGraph::default()
        };
        assert_eq!(classify(&g, 4), Pattern::Exchange);
    }

    #[test]
    fn linear_shift_classification() {
        let edges: Vec<Edge> = (0..6).map(|s| Edge { src: s, dst: s + 2 }).collect();
        let g = CommGraph {
            sends: edges.clone(),
            recvs: edges,
            unresolved: vec![],
            ..CommGraph::default()
        };
        assert_eq!(classify(&g, 8), Pattern::LinearShift { k: 2 });
    }

    #[test]
    fn empty_and_irregular() {
        let g = CommGraph::default();
        assert_eq!(classify(&g, 4), Pattern::Empty);
        let g = CommGraph {
            sends: vec![
                Edge { src: 0, dst: 1 },
                Edge { src: 1, dst: 0 },
                Edge { src: 2, dst: 1 },
            ],
            recvs: vec![
                Edge { src: 0, dst: 1 },
                Edge { src: 1, dst: 0 },
                Edge { src: 2, dst: 1 },
            ],
            unresolved: vec![],
            ..CommGraph::default()
        };
        assert_eq!(classify(&g, 3), Pattern::Irregular);
    }

    #[test]
    fn mismatch_detected() {
        // Senders declare rank+1, receivers expect rank-2: mismatched.
        let clauses = ClauseSet {
            sender: Some(RankExpr::rank() - RankExpr::lit(2)),
            receiver: Some(RankExpr::rank() + RankExpr::lit(1)),
            sendwhen: Some(RankExpr::rank().eq(RankExpr::lit(0))),
            receivewhen: Some(RankExpr::rank().eq(RankExpr::lit(1))),
            ..ClauseSet::default()
        };
        let g = resolve_graph(&p2p(clauses), None, 4, &HashMap::new());
        assert!(!g.fully_matched());
        assert_eq!(g.unmatched_sends(), vec![Edge { src: 0, dst: 1 }]);
        // Rank 1 expects from rank -1... no: 1-2 = -1 -> unresolved rank 1.
        assert!(g.unresolved.contains(&1));
    }

    #[test]
    fn unknown_vars_mark_unresolved() {
        let clauses = ClauseSet {
            sender: Some(RankExpr::var("mystery")),
            receiver: Some(RankExpr::lit(0)),
            ..ClauseSet::default()
        };
        let g = resolve_graph(&p2p(clauses), None, 3, &HashMap::new());
        assert_eq!(g.unresolved.len(), 3);
        assert!(!g.fully_matched());
    }

    #[test]
    fn opaque_exprs_resolve_dynamically() {
        // Opaque closures evaluate fine during resolution (we have the
        // closure); they are "unresolvable" only for a *source-level*
        // compiler, which pragma-front models separately.
        let clauses = ClauseSet {
            sender: Some(RankExpr::opaque("prev", |e| {
                (e.rank - 1 + e.nranks) % e.nranks
            })),
            receiver: Some(RankExpr::opaque("next", |e| (e.rank + 1) % e.nranks)),
            ..ClauseSet::default()
        };
        let g = resolve_graph(&p2p(clauses), None, 4, &HashMap::new());
        assert!(g.fully_matched());
        assert_eq!(classify(&g, 4), Pattern::CyclicShift { k: 1 });
    }

    #[test]
    fn independence_conflicts_found() {
        let spec = ParamsSpec {
            clauses: ring_clauses(),
            spans: Default::default(),
            body: vec![
                P2pSpec {
                    clauses: ClauseSet::default(),
                    sbuf: vec![meta("a", 0, 16)],
                    rbuf: vec![meta("x", 100, 16)],
                    has_overlap_body: false,
                    site: 0,
                    spans: Default::default(),
                },
                P2pSpec {
                    clauses: ClauseSet::default(),
                    // reads the bytes p2p#0 writes
                    sbuf: vec![meta("x_alias", 108, 8)],
                    rbuf: vec![meta("y", 200, 8)],
                    has_overlap_body: false,
                    site: 1,
                    spans: Default::default(),
                },
            ],
        };
        let rep = buffer_independence(&spec);
        assert!(!rep.independent());
        assert_eq!(rep.conflicts.len(), 1);
        let (i, j, a, b) = &rep.conflicts[0];
        assert_eq!((*i, *j), (0, 1));
        assert_eq!((a.as_str(), b.as_str()), ("x", "x_alias"));
    }

    #[test]
    fn independence_shared_reads_allowed() {
        let spec = ParamsSpec {
            clauses: ring_clauses(),
            spans: Default::default(),
            body: vec![
                P2pSpec {
                    clauses: ClauseSet::default(),
                    sbuf: vec![meta("shared", 0, 16)],
                    rbuf: vec![meta("x", 100, 16)],
                    has_overlap_body: false,
                    site: 0,
                    spans: Default::default(),
                },
                P2pSpec {
                    clauses: ClauseSet::default(),
                    sbuf: vec![meta("shared", 0, 16)],
                    rbuf: vec![meta("y", 200, 16)],
                    has_overlap_body: false,
                    site: 1,
                    spans: Default::default(),
                },
            ],
        };
        assert!(buffer_independence(&spec).independent());
    }

    #[test]
    fn sync_savings_estimate() {
        // Fan-out of 16 messages from rank 0 (the setEvec shape): the naive
        // translation waits 16 times on the root; consolidation waits once.
        let mut body = Vec::new();
        for _ in 0..1 {
            body.push(P2pSpec {
                clauses: ClauseSet::default(),
                sbuf: vec![meta("ev", 0, 24)],
                rbuf: vec![meta("evec", 100, 24)],
                has_overlap_body: true,
                site: 0,
                spans: Default::default(),
            });
        }
        let spec = ParamsSpec {
            spans: Default::default(),
            clauses: ClauseSet {
                sender: Some(RankExpr::lit(0)),
                receiver: Some(RankExpr::var("dest")),
                sendwhen: Some(RankExpr::rank().eq(RankExpr::lit(0))),
                receivewhen: Some(RankExpr::rank().eq(RankExpr::var("dest"))),
                ..ClauseSet::default()
            },
            body,
        };
        // Resolve across all 16 destinations to count the root's requests.
        let mut total_naive = 0;
        for dest in 1..17i64 {
            let vars: HashMap<String, i64> = [("dest".to_string(), dest)].into();
            let rep = sync_report(&spec, 17, &vars);
            assert!(rep.legal);
            total_naive += rep.naive_wait_calls;
        }
        assert_eq!(total_naive, 16);
    }

    #[test]
    fn volume_report_ring_and_hotspot() {
        // Ring of 6: every rank sends 8 bytes.
        let spec = ParamsSpec {
            clauses: ring_clauses(),
            spans: Default::default(),
            body: vec![p2p(ClauseSet::default())],
        };
        let v = volume_report(&spec, 6, &HashMap::new());
        assert_eq!(v.sent, vec![8; 6]);
        assert_eq!(v.received, vec![8; 6]);
        assert_eq!(v.total(), 48);
        // Uniform ring: any rank may be the "hotspot" but all tie at 8.
        assert_eq!(v.hotspot().map(|(_, b)| b), Some(8));

        // Fan-out: the root is the hotspot.
        let fan = ParamsSpec {
            spans: Default::default(),
            clauses: ClauseSet {
                sender: Some(RankExpr::lit(0)),
                receiver: Some(RankExpr::var("d")),
                sendwhen: Some(RankExpr::rank().eq(RankExpr::lit(0))),
                receivewhen: Some(RankExpr::rank().eq(RankExpr::var("d"))),
                count: Some(RankExpr::lit(4)),
                ..ClauseSet::default()
            },
            body: vec![p2p(ClauseSet::default())],
        };
        let mut total = VolumeReport {
            sent: vec![0; 5],
            received: vec![0; 5],
        };
        for d in 1..5i64 {
            let vars: HashMap<String, i64> = [("d".to_string(), d)].into();
            let v = volume_report(&fan, 5, &vars);
            for r in 0..5 {
                total.sent[r] += v.sent[r];
                total.received[r] += v.received[r];
            }
        }
        assert_eq!(total.hotspot(), Some((0, 16)));
        assert_eq!(total.received[1], 4);
    }

    #[test]
    fn deadlock_reporting() {
        let ring = resolve_graph(&p2p(ring_clauses()), None, 4, &HashMap::new());
        let rep = deadlock_report(&ring);
        assert!(rep.nonblocking_safe);
        assert!(
            rep.blocking_would_deadlock,
            "a blocking ring without buffering deadlocks"
        );
        // The witness cycle is the whole ring, in cycle order.
        assert_eq!(rep.cycle.len(), 4);
        for w in rep.cycle.windows(2) {
            assert_eq!(w[1], (w[0] + 1) % 4);
        }

        // A linear chain does not deadlock even blocking.
        let chain = CommGraph {
            sends: (0..3).map(|s| Edge { src: s, dst: s + 1 }).collect(),
            recvs: (0..3).map(|s| Edge { src: s, dst: s + 1 }).collect(),
            unresolved: vec![],
            ..CommGraph::default()
        };
        let rep = deadlock_report(&chain);
        assert!(rep.nonblocking_safe);
        assert!(!rep.blocking_would_deadlock);
        assert!(rep.cycle.is_empty());
    }

    #[test]
    fn find_cycle_handles_adversarially_deep_graphs() {
        // A 200k-node chain closed into one giant cycle: the old recursive
        // DFS would overflow the (2 MiB test-thread) stack here.
        const N: usize = 200_000;
        let mut edges: Vec<Edge> = (0..N - 1).map(|s| Edge { src: s, dst: s + 1 }).collect();
        assert_eq!(find_cycle(&edges), None);
        edges.push(Edge { src: N - 1, dst: 0 });
        let cycle = find_cycle(&edges).expect("closed chain is cyclic");
        assert_eq!(cycle.len(), N);
        assert_eq!(cycle[0], 0);
        assert_eq!(*cycle.last().unwrap(), N - 1);
    }

    #[test]
    fn find_cycle_reports_inner_cycle_only() {
        // Tail 0->1->2 leading into the cycle 2->3->4->2.
        let edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 2)].map(|(src, dst)| Edge { src, dst });
        assert_eq!(find_cycle(&edges), Some(vec![2, 3, 4]));
    }

    #[test]
    fn check_matching_over_region() {
        let spec = ParamsSpec {
            clauses: ring_clauses(),
            spans: Default::default(),
            body: vec![p2p(ClauseSet::default()), p2p(ClauseSet::default())],
        };
        let reports = check_matching(&spec, 6, &HashMap::new());
        assert_eq!(reports.len(), 2);
        assert!(reports.iter().all(|r| r.is_clean()));
    }
}
