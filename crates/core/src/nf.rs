//! Affine-congruence normal form for clause expressions.
//!
//! The paper's clause expressions are overwhelmingly *affine-plus-modular*
//! in `rank` and `nprocs`: `sender(rank-1)`, `receiver((rank+1)%nprocs)`,
//! `sendwhen(rank%2==0)`. This module normalizes [`RankExpr`] /
//! [`CondExpr`] trees into a closed normal form —
//!
//! ```text
//! NormExpr ::= a·rank + n·nprocs + c                  (Lin)
//!            | (a·rank + n·nprocs + c) mod m          (Mod), m = k or nprocs+k
//!            | (a·rank + n·nprocs + c) div k          (Div), constant k
//! NormCond ::= true | false | NormExpr ⋈ NormExpr | ∧ | ∨ | ¬
//! ```
//!
//! — or reports *why* an expression falls outside the class
//! ([`NormErr`]: opaque host code, unbound variables, non-affine shapes).
//! Arithmetic uses C semantics throughout (`%` keeps the dividend's sign,
//! `/` truncates toward zero), matching [`RankExpr::eval`] exactly.
//!
//! From a normal form, [`ClassParams`] extracts the two numbers the
//! parametric verifier (`commprove`) case-splits on: the **period**
//! `lcm` — the least common multiple of every constant modulus, divisor
//! and rank coefficient, so that middle-rank behaviour is a function of
//! `rank mod lcm` and the communicator-size dependence has period `lcm`
//! in `nprocs` — and the **boundary** width, a conservative bound on how
//! far from rank 0 and rank N-1 the "special" ranks can reach.

use std::fmt;

use crate::expr::{CondExpr, RankExpr, VarTable};

/// `a·rank + n·nprocs + c`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinForm {
    /// Coefficient of `rank`.
    pub a: i64,
    /// Coefficient of `nprocs`.
    pub n: i64,
    /// Constant term (bound variables are substituted into it).
    pub c: i64,
}

impl LinForm {
    /// A constant.
    pub const fn konst(c: i64) -> LinForm {
        LinForm { a: 0, n: 0, c }
    }

    /// Whether the form is a constant (no `rank` / `nprocs` dependence).
    pub fn is_const(&self) -> bool {
        self.a == 0 && self.n == 0
    }

    fn add(self, o: LinForm) -> Result<LinForm, NormErr> {
        Ok(LinForm {
            a: self.a.checked_add(o.a).ok_or(NormErr::Overflow)?,
            n: self.n.checked_add(o.n).ok_or(NormErr::Overflow)?,
            c: self.c.checked_add(o.c).ok_or(NormErr::Overflow)?,
        })
    }

    fn neg(self) -> Result<LinForm, NormErr> {
        Ok(LinForm {
            a: self.a.checked_neg().ok_or(NormErr::Overflow)?,
            n: self.n.checked_neg().ok_or(NormErr::Overflow)?,
            c: self.c.checked_neg().ok_or(NormErr::Overflow)?,
        })
    }

    fn scale(self, k: i64) -> Result<LinForm, NormErr> {
        Ok(LinForm {
            a: self.a.checked_mul(k).ok_or(NormErr::Overflow)?,
            n: self.n.checked_mul(k).ok_or(NormErr::Overflow)?,
            c: self.c.checked_mul(k).ok_or(NormErr::Overflow)?,
        })
    }

    /// Multiply by a constant (extent arithmetic: an element count scaled
    /// by the element size gives the byte extent of a remote access
    /// interval `[base, base + count·elem)`). `None` on coefficient
    /// overflow.
    pub fn scaled(self, k: i64) -> Option<LinForm> {
        self.scale(k).ok()
    }

    /// Evaluate at a concrete `(rank, nprocs)`; wrapping like
    /// [`RankExpr::eval`].
    pub fn eval(&self, rank: i64, nranks: i64) -> i64 {
        self.a
            .wrapping_mul(rank)
            .wrapping_add(self.n.wrapping_mul(nranks))
            .wrapping_add(self.c)
    }
}

impl fmt::Display for LinForm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        let mut term = |f: &mut fmt::Formatter<'_>, coef: i64, name: &str| -> fmt::Result {
            if coef == 0 {
                return Ok(());
            }
            if first {
                first = false;
                if coef == -1 {
                    write!(f, "-{name}")?;
                } else if coef == 1 {
                    write!(f, "{name}")?;
                } else {
                    write!(f, "{coef}*{name}")?;
                }
            } else if coef < 0 {
                if coef == -1 {
                    write!(f, "-{name}")?;
                } else {
                    write!(f, "{}*{name}", coef)?;
                }
            } else if coef == 1 {
                write!(f, "+{name}")?;
            } else {
                write!(f, "+{coef}*{name}")?;
            }
            Ok(())
        };
        term(f, self.a, "rank")?;
        term(f, self.n, "nprocs")?;
        if self.c != 0 || first {
            if first || self.c < 0 {
                write!(f, "{}", self.c)?;
            } else {
                write!(f, "+{}", self.c)?;
            }
        }
        Ok(())
    }
}

/// The modulus of a [`NormExpr::Mod`]: a non-zero constant, or
/// `nprocs + k` (the communicator size itself when `k = 0`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModForm {
    /// A constant modulus `k != 0`.
    Const(i64),
    /// `nprocs + k`.
    NProcs(i64),
}

impl fmt::Display for ModForm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModForm::Const(k) => write!(f, "{k}"),
            ModForm::NProcs(0) => write!(f, "nprocs"),
            ModForm::NProcs(k) if *k < 0 => write!(f, "nprocs{k}"),
            ModForm::NProcs(k) => write!(f, "nprocs+{k}"),
        }
    }
}

/// An integer clause expression in affine-congruence normal form.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NormExpr {
    /// `a·rank + n·nprocs + c`.
    Lin(LinForm),
    /// `(a·rank + n·nprocs + c) % m`, C remainder semantics.
    Mod(LinForm, ModForm),
    /// `(a·rank + n·nprocs + c) / k`, C truncation, constant `k != 0`.
    Div(LinForm, i64),
}

impl NormExpr {
    /// Evaluate at a concrete `(rank, nprocs)`. `None` when the modulus or
    /// divisor evaluates to zero (matching [`crate::expr::ExprError::DivByZero`]).
    pub fn eval(&self, rank: i64, nranks: i64) -> Option<i64> {
        match self {
            NormExpr::Lin(l) => Some(l.eval(rank, nranks)),
            NormExpr::Mod(l, m) => {
                let m = match m {
                    ModForm::Const(k) => *k,
                    ModForm::NProcs(k) => nranks.wrapping_add(*k),
                };
                (m != 0).then(|| l.eval(rank, nranks).wrapping_rem(m))
            }
            NormExpr::Div(l, k) => Some(l.eval(rank, nranks).wrapping_div(*k)),
        }
    }

    fn lin(&self) -> Result<LinForm, NormErr> {
        match self {
            NormExpr::Lin(l) => Ok(*l),
            _ => Err(NormErr::NonAffine(
                "mod/div term used inside further arithmetic".into(),
            )),
        }
    }

    /// Scale the whole expression by a constant `k > 0`. Multiplication
    /// distributes over an affine form but not over `mod`/`div` remainders,
    /// so those (and overflow) yield `None`. Used by the race analysis to
    /// turn an element-count normal form into a byte-extent normal form.
    pub fn scaled(&self, k: i64) -> Option<NormExpr> {
        match self {
            NormExpr::Lin(l) => l.scaled(k).map(NormExpr::Lin),
            NormExpr::Mod(..) | NormExpr::Div(..) => None,
        }
    }
}

impl fmt::Display for NormExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NormExpr::Lin(l) => write!(f, "{l}"),
            NormExpr::Mod(l, m) => write!(f, "({l}) mod {m}"),
            NormExpr::Div(l, k) => write!(f, "({l}) div {k}"),
        }
    }
}

/// Comparison operator of a [`NormCond::Cmp`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// Apply to concrete values.
    pub fn apply(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }

    /// The C-like operator token.
    pub fn token(self) -> &'static str {
        match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// A boolean clause expression in normal form: comparisons between
/// normalized integer expressions under boolean combinators.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NormCond {
    /// Constant truth value.
    Bool(bool),
    /// `lhs ⋈ rhs`.
    Cmp(CmpOp, NormExpr, NormExpr),
    And(Box<NormCond>, Box<NormCond>),
    Or(Box<NormCond>, Box<NormCond>),
    Not(Box<NormCond>),
}

impl NormCond {
    /// Evaluate at a concrete `(rank, nprocs)`; `None` on division by zero.
    pub fn eval(&self, rank: i64, nranks: i64) -> Option<bool> {
        match self {
            NormCond::Bool(b) => Some(*b),
            NormCond::Cmp(op, a, b) => Some(op.apply(a.eval(rank, nranks)?, b.eval(rank, nranks)?)),
            NormCond::And(a, b) => Some(a.eval(rank, nranks)? && b.eval(rank, nranks)?),
            NormCond::Or(a, b) => Some(a.eval(rank, nranks)? || b.eval(rank, nranks)?),
            NormCond::Not(a) => Some(!a.eval(rank, nranks)?),
        }
    }
}

impl fmt::Display for NormCond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NormCond::Bool(b) => write!(f, "{}", if *b { "true" } else { "false" }),
            NormCond::Cmp(op, a, b) => write!(f, "({a}) {} ({b})", op.token()),
            NormCond::And(a, b) => write!(f, "({a} && {b})"),
            NormCond::Or(a, b) => write!(f, "({a} || {b})"),
            NormCond::Not(a) => write!(f, "!({a})"),
        }
    }
}

/// Why an expression falls outside the affine-congruence class. The
/// verifier degrades to the concrete sweep when it sees one of these.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NormErr {
    /// Opaque host code (a Rust closure) — unresolvable without execution.
    Opaque(&'static str),
    /// A variable with no binding at analysis time.
    UnboundVar(String),
    /// A shape the normal form cannot express (nonlinear products, nested
    /// mod/div, non-constant divisors, ...).
    NonAffine(String),
    /// A constant zero modulus or divisor (always a runtime error).
    ZeroDivisor,
    /// Coefficient arithmetic overflowed i64.
    Overflow,
}

impl fmt::Display for NormErr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NormErr::Opaque(label) => write!(f, "opaque host code `<{label}>`"),
            NormErr::UnboundVar(v) => write!(f, "unbound variable `{v}`"),
            NormErr::NonAffine(why) => write!(f, "not affine-congruence: {why}"),
            NormErr::ZeroDivisor => write!(f, "constant zero modulus/divisor"),
            NormErr::Overflow => write!(f, "coefficient overflow"),
        }
    }
}

impl std::error::Error for NormErr {}

/// Normalize an integer clause expression, substituting `vars` as
/// constants.
pub fn normalize_expr(e: &RankExpr, vars: &VarTable) -> Result<NormExpr, NormErr> {
    Ok(match e {
        RankExpr::Rank => NormExpr::Lin(LinForm { a: 1, n: 0, c: 0 }),
        RankExpr::NRanks => NormExpr::Lin(LinForm { a: 0, n: 1, c: 0 }),
        RankExpr::Const(v) => NormExpr::Lin(LinForm::konst(*v)),
        RankExpr::Var(name) => NormExpr::Lin(LinForm::konst(
            vars.get(name)
                .ok_or_else(|| NormErr::UnboundVar(name.clone()))?,
        )),
        RankExpr::Add(a, b) => NormExpr::Lin(
            normalize_expr(a, vars)?
                .lin()?
                .add(normalize_expr(b, vars)?.lin()?)?,
        ),
        RankExpr::Sub(a, b) => NormExpr::Lin(
            normalize_expr(a, vars)?
                .lin()?
                .add(normalize_expr(b, vars)?.lin()?.neg()?)?,
        ),
        RankExpr::Neg(a) => NormExpr::Lin(normalize_expr(a, vars)?.lin()?.neg()?),
        RankExpr::Mul(a, b) => {
            let (a, b) = (
                normalize_expr(a, vars)?.lin()?,
                normalize_expr(b, vars)?.lin()?,
            );
            if a.is_const() {
                NormExpr::Lin(b.scale(a.c)?)
            } else if b.is_const() {
                NormExpr::Lin(a.scale(b.c)?)
            } else {
                return Err(NormErr::NonAffine("product of two non-constants".into()));
            }
        }
        RankExpr::Div(a, b) => {
            let num = normalize_expr(a, vars)?.lin()?;
            let den = normalize_expr(b, vars)?.lin()?;
            if !den.is_const() {
                return Err(NormErr::NonAffine("non-constant divisor".into()));
            }
            if den.c == 0 {
                return Err(NormErr::ZeroDivisor);
            }
            if num.is_const() {
                NormExpr::Lin(LinForm::konst(
                    num.c.checked_div(den.c).ok_or(NormErr::Overflow)?,
                ))
            } else {
                NormExpr::Div(num, den.c)
            }
        }
        RankExpr::Mod(a, b) => {
            let num = normalize_expr(a, vars)?.lin()?;
            let den = normalize_expr(b, vars)?.lin()?;
            let m = if den.is_const() {
                if den.c == 0 {
                    return Err(NormErr::ZeroDivisor);
                }
                ModForm::Const(den.c)
            } else if den.a == 0 && den.n == 1 {
                // The middle-breakpoint class `(a·rank) mod nprocs` with
                // |a| > 1 wraps at rank ≈ N/a — a cut that *moves* with N
                // and defeats the boundary-anchoring argument. Only unit
                // rank coefficients are admitted under a size-linear
                // modulus.
                if num.a.abs() > 1 {
                    return Err(NormErr::NonAffine(
                        "rank coefficient with |a| > 1 under a nprocs-linear modulus".into(),
                    ));
                }
                ModForm::NProcs(den.c)
            } else {
                return Err(NormErr::NonAffine(
                    "modulus neither constant nor nprocs-linear".into(),
                ));
            };
            if num.is_const() {
                if let ModForm::Const(k) = m {
                    return Ok(NormExpr::Lin(LinForm::konst(
                        num.c.checked_rem(k).ok_or(NormErr::Overflow)?,
                    )));
                }
            }
            NormExpr::Mod(num, m)
        }
        RankExpr::Opaque(_, label) => return Err(NormErr::Opaque(label)),
    })
}

/// Normalize a boolean clause expression, substituting `vars`.
pub fn normalize_cond(c: &CondExpr, vars: &VarTable) -> Result<NormCond, NormErr> {
    let cmp = |op: CmpOp, a: &RankExpr, b: &RankExpr| -> Result<NormCond, NormErr> {
        Ok(NormCond::Cmp(
            op,
            normalize_expr(a, vars)?,
            normalize_expr(b, vars)?,
        ))
    };
    Ok(match c {
        CondExpr::True => NormCond::Bool(true),
        CondExpr::False => NormCond::Bool(false),
        CondExpr::Eq(a, b) => cmp(CmpOp::Eq, a, b)?,
        CondExpr::Ne(a, b) => cmp(CmpOp::Ne, a, b)?,
        CondExpr::Lt(a, b) => cmp(CmpOp::Lt, a, b)?,
        CondExpr::Le(a, b) => cmp(CmpOp::Le, a, b)?,
        CondExpr::Gt(a, b) => cmp(CmpOp::Gt, a, b)?,
        CondExpr::Ge(a, b) => cmp(CmpOp::Ge, a, b)?,
        CondExpr::And(a, b) => NormCond::And(
            Box::new(normalize_cond(a, vars)?),
            Box::new(normalize_cond(b, vars)?),
        ),
        CondExpr::Or(a, b) => NormCond::Or(
            Box::new(normalize_cond(a, vars)?),
            Box::new(normalize_cond(b, vars)?),
        ),
        CondExpr::Not(a) => NormCond::Not(Box::new(normalize_cond(a, vars)?)),
        CondExpr::Opaque(_, label) => return Err(NormErr::Opaque(label)),
    })
}

/// Largest case-split period the verifier accepts; above this the spec is
/// treated as outside the decidable class (the sweep takes over).
pub const LCM_CAP: u64 = 512;

/// The two case-split parameters extracted from a set of normal forms.
///
/// * `lcm` — period: middle-rank behaviour is a function of `rank mod lcm`,
///   and for `N` above the threshold the verdict of every lint property is
///   a function of `N mod lcm` (see DESIGN.md §6d for the argument).
/// * `boundary` — how far the "special" ranks reach from rank 0 and rank
///   N-1: a conservative sum of every constant offset, modulus and
///   comparison constant in the forms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClassParams {
    /// Case-split period (`>= 1`; saturates at `LCM_CAP + 1` = ineligible).
    pub lcm: u64,
    /// Boundary width (saturating).
    pub boundary: u64,
}

impl Default for ClassParams {
    fn default() -> Self {
        ClassParams {
            lcm: 1,
            boundary: 0,
        }
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

impl ClassParams {
    /// Join two parameter sets: lcm of the periods (capped) and *sum* of
    /// the boundaries, so independent offsets cannot mask each other.
    pub fn join(self, o: ClassParams) -> ClassParams {
        let l = if self.lcm == 0 || o.lcm == 0 {
            1
        } else {
            let g = gcd(self.lcm, o.lcm);
            (self.lcm / g).saturating_mul(o.lcm)
        };
        ClassParams {
            lcm: l.min(LCM_CAP + 1),
            boundary: self.boundary.saturating_add(o.boundary),
        }
    }

    /// Whether the period stayed under [`LCM_CAP`].
    pub fn eligible(&self) -> bool {
        self.lcm <= LCM_CAP
    }

    fn of_lin(l: &LinForm) -> ClassParams {
        ClassParams {
            // A rank coefficient |a| > 1 strides the rank space; fold it
            // into the period so residue classes of rank (and of N) cover
            // the stride pattern.
            lcm: (l.a.unsigned_abs()).max(1),
            boundary: l
                .a
                .unsigned_abs()
                .saturating_add(l.n.unsigned_abs())
                .saturating_add(l.c.unsigned_abs()),
        }
    }

    /// Parameters of one normalized integer expression.
    pub fn of_expr(e: &NormExpr) -> ClassParams {
        match e {
            NormExpr::Lin(l) => Self::of_lin(l),
            NormExpr::Mod(l, m) => {
                let inner = Self::of_lin(l);
                let outer = match m {
                    ModForm::Const(k) => ClassParams {
                        lcm: k.unsigned_abs().max(1),
                        boundary: k.unsigned_abs(),
                    },
                    ModForm::NProcs(k) => ClassParams {
                        lcm: 1,
                        boundary: k.unsigned_abs().saturating_add(1),
                    },
                };
                inner.join(outer)
            }
            NormExpr::Div(l, k) => Self::of_lin(l).join(ClassParams {
                lcm: k.unsigned_abs().max(1),
                boundary: k.unsigned_abs(),
            }),
        }
    }

    /// Parameters of one normalized condition.
    pub fn of_cond(c: &NormCond) -> ClassParams {
        match c {
            NormCond::Bool(_) => ClassParams::default(),
            NormCond::Cmp(_, a, b) => Self::of_expr(a).join(Self::of_expr(b)),
            NormCond::And(a, b) | NormCond::Or(a, b) => Self::of_cond(a).join(Self::of_cond(b)),
            NormCond::Not(a) => Self::of_cond(a),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::EvalEnv;

    fn vt() -> VarTable {
        let mut t = VarTable::default();
        t.set("k", 3);
        t
    }

    #[test]
    fn extent_scaling_distributes_over_affine_forms_only() {
        // count(2*rank + 4) with 8-byte elements: the byte extent is the
        // affine form scaled through, and evaluation commutes.
        let count = RankExpr::lit(2) * RankExpr::rank() + RankExpr::lit(4);
        let nf = normalize_expr(&count, &vt()).unwrap();
        let bytes = nf.scaled(8).expect("affine form scales");
        assert_eq!(bytes, NormExpr::Lin(LinForm { a: 16, n: 0, c: 32 }));
        for rank in 0..6 {
            assert_eq!(bytes.eval(rank, 6), nf.eval(rank, 6).map(|c| c * 8));
        }
        // A remainder does not distribute: (rank mod 3) * 8 != (8*rank) mod 3.
        let modular = normalize_expr(&(RankExpr::rank() % RankExpr::lit(3)), &vt()).unwrap();
        assert_eq!(modular.scaled(8), None);
        // Coefficient overflow is surfaced, not wrapped.
        assert_eq!(LinForm::konst(i64::MAX).scaled(2), None);
    }

    #[test]
    fn ring_normalizes() {
        // (rank-1+nprocs)%nprocs
        let prev = (RankExpr::rank() - RankExpr::lit(1) + RankExpr::nranks()) % RankExpr::nranks();
        let nf = normalize_expr(&prev, &vt()).unwrap();
        assert_eq!(
            nf,
            NormExpr::Mod(LinForm { a: 1, n: 1, c: -1 }, ModForm::NProcs(0))
        );
        assert_eq!(nf.to_string(), "(rank+nprocs-1) mod nprocs");
        let p = ClassParams::of_expr(&nf);
        assert_eq!(p.lcm, 1);
        assert!(p.eligible());
    }

    #[test]
    fn vars_substitute_and_unbound_reject() {
        let e = RankExpr::rank() + RankExpr::var("k");
        assert_eq!(
            normalize_expr(&e, &vt()).unwrap(),
            NormExpr::Lin(LinForm { a: 1, n: 0, c: 3 })
        );
        let e = RankExpr::rank() + RankExpr::var("mystery");
        assert_eq!(
            normalize_expr(&e, &VarTable::default()),
            Err(NormErr::UnboundVar("mystery".into()))
        );
    }

    #[test]
    fn out_of_class_shapes_reject() {
        let nonlinear = RankExpr::rank() * RankExpr::rank();
        assert!(matches!(
            normalize_expr(&nonlinear, &vt()),
            Err(NormErr::NonAffine(_))
        ));
        let nested = (RankExpr::rank() % RankExpr::lit(2)) + RankExpr::lit(1);
        assert!(matches!(
            normalize_expr(&nested, &vt()),
            Err(NormErr::NonAffine(_))
        ));
        let zero = RankExpr::rank() % RankExpr::lit(0);
        assert_eq!(normalize_expr(&zero, &vt()), Err(NormErr::ZeroDivisor));
        let opaque = RankExpr::opaque("f", |e| e.rank);
        assert_eq!(normalize_expr(&opaque, &vt()), Err(NormErr::Opaque("f")));
        let strided = (RankExpr::lit(2) * RankExpr::rank()) % RankExpr::nranks();
        assert!(matches!(
            normalize_expr(&strided, &vt()),
            Err(NormErr::NonAffine(_))
        ));
    }

    #[test]
    fn normal_form_eval_matches_expr_eval() {
        let exprs = [
            (RankExpr::rank() + RankExpr::lit(1)) % RankExpr::nranks(),
            (RankExpr::rank() - RankExpr::lit(1) + RankExpr::nranks()) % RankExpr::nranks(),
            RankExpr::rank() % RankExpr::lit(2),
            (RankExpr::rank() - RankExpr::lit(5)) / RankExpr::lit(2),
            RankExpr::nranks() / RankExpr::lit(2),
            (RankExpr::rank() + RankExpr::lit(1)) % (RankExpr::nranks() - RankExpr::lit(1)),
        ];
        for e in &exprs {
            let nf = normalize_expr(e, &VarTable::default()).unwrap();
            for n in 1..=12i64 {
                for r in 0..n {
                    let env = EvalEnv {
                        rank: r,
                        nranks: n,
                        vars: VarTable::default(),
                    };
                    assert_eq!(
                        e.eval(&env).ok(),
                        nf.eval(r, n),
                        "{e} vs {nf} at rank {r} / {n}"
                    );
                }
            }
        }
    }

    #[test]
    fn cond_normalizes_and_evals() {
        let c = (RankExpr::rank() % RankExpr::lit(2))
            .eq(RankExpr::lit(0))
            .and(RankExpr::rank().lt(RankExpr::nranks() - RankExpr::lit(1)));
        let nf = normalize_cond(&c, &vt()).unwrap();
        for n in 2..=8i64 {
            for r in 0..n {
                let env = EvalEnv {
                    rank: r,
                    nranks: n,
                    vars: VarTable::default(),
                };
                assert_eq!(c.eval(&env).ok(), nf.eval(r, n));
            }
        }
        let p = ClassParams::of_cond(&nf);
        assert_eq!(p.lcm, 2);
        assert!(p.boundary >= 2);
    }

    #[test]
    fn params_join_caps() {
        let a = ClassParams {
            lcm: 509,
            boundary: 1,
        }; // prime
        let b = ClassParams {
            lcm: 4,
            boundary: 2,
        };
        let j = a.join(b);
        assert_eq!(j.lcm, LCM_CAP + 1);
        assert!(!j.eligible());
        assert_eq!(j.boundary, 3);
    }
}
