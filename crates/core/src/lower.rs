//! Static lowering: render the library calls the compiler would generate
//! for a directive region, per target — "the directives can then be
//! translated by the compiler into message passing calls that efficiently
//! implement the intended pattern and be targeted to multiple communication
//! libraries".
//!
//! The output is C-flavoured source text (what an Open64 lowering pass
//! emits), used by the pragma front-end's `--emit` mode, by documentation,
//! and by golden tests that pin the translation's shape: non-blocking
//! operations, automatic datatype construction, and exactly one
//! consolidated synchronization per region at the placed sync point.

use crate::buffer::ElemKind;
use crate::clause::{PlaceSync, Target};
use crate::dir::{P2pSpec, ParamsSpec};
use mpisim::dtype::BasicType;

/// Generated code for one region, split by role so SPMD readers can see
/// which guard each block sits under.
#[derive(Clone, Debug, Default)]
pub struct GeneratedCode {
    /// Declarations and one-time datatype construction.
    pub prologue: Vec<String>,
    /// The per-`comm_p2p` communication calls (with their guards).
    pub body: Vec<String>,
    /// The consolidated synchronization block.
    pub sync: Vec<String>,
}

impl GeneratedCode {
    /// Render as one source listing.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for section in [&self.prologue, &self.body, &self.sync] {
            for line in section {
                out.push_str(line);
                out.push('\n');
            }
        }
        out
    }
}

fn c_type(b: BasicType) -> &'static str {
    match b {
        BasicType::U8 => "char",
        BasicType::I32 => "int",
        BasicType::I64 => "long long",
        BasicType::F32 => "float",
        BasicType::F64 => "double",
    }
}

fn mpi_type_expr(elem: &ElemKind, var_hint: &str) -> String {
    match elem {
        ElemKind::Prim(b) => b.mpi_name().to_string(),
        ElemKind::Composite(layout) => format!("{}_{}_mpitype", var_hint, layout.name),
        ElemKind::Strided { .. } => format!("{var_hint}_vec_mpitype"),
    }
}

fn shmem_put_call(elem: &ElemKind) -> &'static str {
    match elem {
        ElemKind::Prim(b) => shmemsim::TypedPut::for_elem_size(b.size()).call_name(),
        // Strided blocks go out as size-matched puts per block; composites
        // need a byte-granular put.
        ElemKind::Strided { ty, .. } => shmemsim::TypedPut::for_elem_size(ty.size()).call_name(),
        ElemKind::Composite(_) => "shmem_putmem",
    }
}

fn count_expr(p2p: &P2pSpec, outer: &ParamsSpec) -> String {
    let merged = p2p.clauses.merged_with(&outer.clauses);
    match merged.count {
        Some(e) => e.to_string(),
        None => p2p
            .inferred_count()
            .map(|c| c.to_string())
            .unwrap_or_else(|| "/* inferred */".to_string()),
    }
}

/// Lower a region to the calls generated for `target`.
pub fn lower(spec: &ParamsSpec, target: Target) -> GeneratedCode {
    let mut code = GeneratedCode::default();
    let mut req_count = 0usize;
    let mut datatypes_emitted: Vec<String> = Vec::new();

    let merged_of = |p2p: &P2pSpec| p2p.clauses.merged_with(&spec.clauses);

    // Prologue: derived datatypes for composite buffers (MPI targets), one
    // per distinct layout per scope.
    if target != Target::Shmem {
        for p2p in &spec.body {
            for b in p2p.sbuf.iter().chain(&p2p.rbuf) {
                match &b.elem {
                    ElemKind::Composite(layout) => {
                        let var = format!("{}_{}_mpitype", b.name, layout.name);
                        if !datatypes_emitted.contains(&var) {
                            datatypes_emitted.push(var.clone());
                            code.prologue.push(format!("MPI_Datatype {var};"));
                            code.prologue
                                .extend(layout.to_datatype().describe_mpi_calls(&var));
                        }
                    }
                    ElemKind::Strided {
                        ty,
                        blocklen,
                        stride,
                    } => {
                        let var = format!("{}_vec_mpitype", b.name);
                        if !datatypes_emitted.contains(&var) {
                            datatypes_emitted.push(var.clone());
                            code.prologue.push(format!("MPI_Datatype {var};"));
                            code.prologue.push(format!(
                                "MPI_Type_vector(1, {blocklen}, {stride}, {}, &{var});",
                                ty.mpi_name()
                            ));
                            code.prologue.push(format!("MPI_Type_commit(&{var});"));
                        }
                    }
                    ElemKind::Prim(_) => {}
                }
            }
        }
    }

    for (i, p2p) in spec.body.iter().enumerate() {
        let merged = merged_of(p2p);
        let cnt = count_expr(p2p, spec);
        let sendwhen = merged
            .sendwhen
            .as_ref()
            .map(|c| c.to_string())
            .unwrap_or_else(|| "1".to_string());
        let recvwhen = merged
            .receivewhen
            .as_ref()
            .map(|c| c.to_string())
            .unwrap_or_else(|| "1".to_string());
        let receiver = merged
            .receiver
            .as_ref()
            .map(|e| e.to_string())
            .unwrap_or_else(|| "/*receiver*/".to_string());
        let sender = merged
            .sender
            .as_ref()
            .map(|e| e.to_string())
            .unwrap_or_else(|| "/*sender*/".to_string());
        let tag = format!("COMM_DIR_TAG+{}", p2p.site);

        code.body
            .push(format!("/* comm_p2p #{i} (site {}) */", p2p.site));
        match target {
            Target::Mpi2Side => {
                code.body.push(format!("if ({sendwhen}) {{"));
                for b in &p2p.sbuf {
                    let ty = mpi_type_expr(&b.elem, &b.name);
                    code.body.push(format!(
                        "  MPI_Isend({buf}, {cnt}, {ty}, {receiver}, {tag}, comm, &req[{r}]);",
                        buf = b.name,
                        r = req_count
                    ));
                    req_count += 1;
                }
                code.body.push("}".to_string());
                code.body.push(format!("if ({recvwhen}) {{"));
                for b in &p2p.rbuf {
                    let ty = mpi_type_expr(&b.elem, &b.name);
                    code.body.push(format!(
                        "  MPI_Irecv({buf}, {cnt}, {ty}, {sender}, {tag}, comm, &req[{r}]);",
                        buf = b.name,
                        r = req_count
                    ));
                    req_count += 1;
                }
                code.body.push("}".to_string());
            }
            Target::Mpi1Side => {
                code.body.push(format!("if ({sendwhen}) {{"));
                for b in &p2p.sbuf {
                    let ty = mpi_type_expr(&b.elem, &b.name);
                    code.body.push(format!(
                        "  MPI_Put({buf}, {cnt}, {ty}, {receiver}, {buf}_disp, {cnt}, {ty}, win);",
                        buf = b.name,
                    ));
                    req_count += 1;
                }
                code.body.push("}".to_string());
            }
            Target::Shmem => {
                code.body.push(format!("if ({sendwhen}) {{"));
                for b in &p2p.sbuf {
                    let call = shmem_put_call(&b.elem);
                    let size = if call == "shmem_putmem" {
                        format!("({cnt})*sizeof({})", elem_c_size_hint(&b.elem))
                    } else {
                        cnt.clone()
                    };
                    code.body.push(format!(
                        "  {call}({buf}_sym, {buf}, {size}, {receiver});",
                        buf = b.name,
                    ));
                    req_count += 1;
                }
                code.body.push("}".to_string());
            }
        }
    }

    // Consolidated synchronization at the placed point.
    let placement = match spec.place_sync() {
        PlaceSync::EndParamRegion => "end of this comm_parameters region",
        PlaceSync::BeginNextParamRegion => "beginning of next comm_parameters region",
        PlaceSync::EndAdjParamRegions => "end of last adjacent comm_parameters region",
    };
    code.sync.push(format!("/* sync placed at: {placement} */"));
    match target {
        Target::Mpi2Side => {
            code.sync.push(format!(
                "MPI_Waitall({req_count}, req, MPI_STATUSES_IGNORE);"
            ));
        }
        Target::Mpi1Side => {
            code.sync.push("MPI_Win_fence(0, win);".to_string());
        }
        Target::Shmem => {
            code.sync.push("shmem_quiet();".to_string());
            code.sync.push("shmem_barrier_all();".to_string());
        }
    }
    code
}

fn elem_c_size_hint(elem: &ElemKind) -> String {
    match elem {
        ElemKind::Prim(b) | ElemKind::Strided { ty: b, .. } => c_type(*b).to_string(),
        ElemKind::Composite(l) => l.name.clone(),
    }
}

/// Lower a collective directive (the §V extension): MPI targets get the
/// native collective over a derived group communicator; SHMEM gets
/// generated puts plus synchronization.
pub fn lower_coll(spec: &crate::dir::CollSpec, target: Target) -> GeneratedCode {
    use crate::coll::CollKind;
    let mut code = GeneratedCode::default();
    let cnt = spec
        .count
        .as_ref()
        .map(|e| e.to_string())
        .unwrap_or_else(|| {
            spec.sbuf
                .iter()
                .chain(&spec.rbuf)
                .map(|b| b.len)
                .min()
                .unwrap_or(0)
                .to_string()
        });
    let root = spec
        .root
        .as_ref()
        .map(|e| e.to_string())
        .unwrap_or_else(|| "0".to_string());
    let sname = spec
        .sbuf
        .first()
        .map(|b| b.name.clone())
        .unwrap_or_else(|| "sbuf".into());
    let rname = spec
        .rbuf
        .first()
        .map(|b| b.name.clone())
        .unwrap_or_else(|| "rbuf".into());
    let ty = spec
        .sbuf
        .first()
        .or_else(|| spec.rbuf.first())
        .map(|b| mpi_type_expr(&b.elem, &b.name))
        .unwrap_or_else(|| "MPI_BYTE".into());

    // Group construction from groupwhen (the "groups of processes" part).
    let comm_var = match &spec.groupwhen {
        Some(c) => {
            code.prologue.push(format!(
                "MPI_Comm group_comm; MPI_Comm_split(comm, ({c}) ? 1 : MPI_UNDEFINED, rank, &group_comm);"
            ));
            "group_comm"
        }
        None => "comm",
    };

    match target {
        Target::Mpi2Side | Target::Mpi1Side => {
            let call = match spec.kind {
                CollKind::Bcast => format!("MPI_Bcast({rname}, {cnt}, {ty}, {root}, {comm_var});"),
                CollKind::Gather => format!(
                    "MPI_Gather({sname}, {cnt}, {ty}, {rname}, {cnt}, {ty}, {root}, {comm_var});"
                ),
                CollKind::Scatter => format!(
                    "MPI_Scatter({sname}, {cnt}, {ty}, {rname}, {cnt}, {ty}, {root}, {comm_var});"
                ),
                CollKind::AllToAll => {
                    format!("MPI_Alltoall({sname}, {cnt}, {ty}, {rname}, {cnt}, {ty}, {comm_var});")
                }
                CollKind::Reduce(op) => format!(
                    "MPI_Reduce({sname}, {rname}, {cnt}, {ty}, {}, {root}, {comm_var});",
                    op.mpi_name()
                ),
            };
            code.body.push(call);
        }
        Target::Shmem => {
            // Generated one-sided translation: puts + consolidated sync.
            match spec.kind {
                CollKind::Bcast => {
                    code.body.push(format!("if (rank == {root}) {{"));
                    code.body.push(format!(
                        "  for (pe = 0; pe < npes; pe++) if (group[pe]) {}({rname}_sym, {rname}, {cnt}, pe);",
                        shmem_put_call(&spec.rbuf.first().map(|b| b.elem.clone()).unwrap_or(ElemKind::Prim(BasicType::U8)))
                    ));
                    code.body.push("}".to_string());
                }
                CollKind::Gather | CollKind::Reduce(_) => {
                    code.body.push(format!(
                        "{}({rname}_sym + my_group_index*{cnt}, {sname}, {cnt}, {root});",
                        shmem_put_call(
                            &spec
                                .sbuf
                                .first()
                                .map(|b| b.elem.clone())
                                .unwrap_or(ElemKind::Prim(BasicType::U8))
                        )
                    ));
                }
                CollKind::Scatter => {
                    code.body.push(format!("if (rank == {root}) {{"));
                    code.body.push(format!(
                        "  for (pe = 0; pe < npes; pe++) if (group[pe]) {}({rname}_sym, {sname} + idx(pe)*{cnt}, {cnt}, pe);",
                        shmem_put_call(&spec.rbuf.first().map(|b| b.elem.clone()).unwrap_or(ElemKind::Prim(BasicType::U8)))
                    ));
                    code.body.push("}".to_string());
                }
                CollKind::AllToAll => {
                    code.body.push(format!(
                        "for (pe = 0; pe < npes; pe++) if (group[pe]) {}({rname}_sym + my_group_index*{cnt}, {sname} + idx(pe)*{cnt}, {cnt}, pe);",
                        shmem_put_call(&spec.sbuf.first().map(|b| b.elem.clone()).unwrap_or(ElemKind::Prim(BasicType::U8)))
                    ));
                }
            }
            code.sync.push("shmem_quiet();".to_string());
            code.sync
                .push("shmem_barrier(group_start, 0, group_size, pSync);".to_string());
        }
    }
    code
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::{BufMeta, CompositeLayout, FieldDef};
    use crate::clause::ClauseSet;
    use crate::expr::RankExpr;

    fn prim_meta(name: &str, ty: BasicType, len: usize) -> BufMeta {
        BufMeta {
            name: name.to_string(),
            elem: ElemKind::Prim(ty),
            len,
            addr: (0, len * ty.size()),
        }
    }

    fn ring_spec() -> ParamsSpec {
        ParamsSpec {
            clauses: ClauseSet {
                sender: Some(
                    (RankExpr::rank() - RankExpr::lit(1) + RankExpr::nranks()) % RankExpr::nranks(),
                ),
                receiver: Some((RankExpr::rank() + RankExpr::lit(1)) % RankExpr::nranks()),
                ..ClauseSet::default()
            },
            body: vec![P2pSpec {
                clauses: ClauseSet::default(),
                sbuf: vec![prim_meta("buf1", BasicType::F64, 16)],
                rbuf: vec![prim_meta("buf2", BasicType::F64, 16)],
                ..P2pSpec::default()
            }],
            spans: Default::default(),
        }
    }

    #[test]
    fn mpi2_translation_shape() {
        let code = lower(&ring_spec(), Target::Mpi2Side);
        let text = code.render();
        assert!(text.contains("MPI_Isend(buf1, 16, MPI_DOUBLE"));
        assert!(text.contains("MPI_Irecv(buf2, 16, MPI_DOUBLE"));
        assert!(text.contains("MPI_Waitall(2, req"));
        assert!(!text.contains("MPI_Wait(")); // never per-request waits
    }

    #[test]
    fn mpi1_translation_shape() {
        let code = lower(&ring_spec(), Target::Mpi1Side);
        let text = code.render();
        assert!(text.contains("MPI_Put(buf1"));
        assert!(text.contains("MPI_Win_fence"));
        assert!(!text.contains("MPI_Isend"));
    }

    #[test]
    fn shmem_translation_selects_typed_put() {
        let code = lower(&ring_spec(), Target::Shmem);
        let text = code.render();
        assert!(text.contains("shmem_put64(buf1_sym, buf1, 16"), "{text}");
        assert!(text.contains("shmem_quiet();"));
        assert!(text.contains("shmem_barrier_all();"));
    }

    #[test]
    fn composite_gets_datatype_prologue_for_mpi_only() {
        let layout = CompositeLayout {
            name: "AtomScalars".to_string(),
            extent: 24,
            fields: vec![
                FieldDef {
                    name: "jmt".to_string(),
                    offset: 0,
                    ty: BasicType::I32,
                    blocklen: 1,
                },
                FieldDef {
                    name: "xstart".to_string(),
                    offset: 8,
                    ty: BasicType::F64,
                    blocklen: 1,
                },
            ],
        };
        let mut spec = ring_spec();
        spec.body[0].sbuf = vec![BufMeta {
            name: "atom".to_string(),
            elem: ElemKind::Composite(layout.clone()),
            len: 1,
            addr: (0, 24),
        }];
        spec.body[0].rbuf = spec.body[0].sbuf.clone();
        spec.body[0].clauses.count = Some(RankExpr::lit(1));

        let mpi = lower(&spec, Target::Mpi2Side).render();
        assert!(mpi.contains("MPI_Type_create_struct"));
        assert!(mpi.contains("MPI_Type_commit"));
        assert!(mpi.contains("atom_AtomScalars_mpitype"));

        let shm = lower(&spec, Target::Shmem).render();
        assert!(!shm.contains("MPI_Type_create_struct"));
        assert!(shm.contains("shmem_putmem"));
    }

    #[test]
    fn sync_placement_annotated() {
        let mut spec = ring_spec();
        spec.clauses.place_sync = Some(PlaceSync::EndAdjParamRegions);
        let text = lower(&spec, Target::Mpi2Side).render();
        assert!(text.contains("end of last adjacent"));
    }

    #[test]
    fn guards_render_conditions() {
        let mut spec = ring_spec();
        spec.clauses.sendwhen = Some((RankExpr::rank() % RankExpr::lit(2)).eq(RankExpr::lit(0)));
        spec.clauses.receivewhen = Some((RankExpr::rank() % RankExpr::lit(2)).eq(RankExpr::lit(1)));
        let text = lower(&spec, Target::Mpi2Side).render();
        assert!(text.contains("if (((rank%2)==0))"));
        assert!(text.contains("if (((rank%2)==1))"));
    }
}
