//! Static lowering: render the library calls the compiler would generate
//! for a directive region, per target — "the directives can then be
//! translated by the compiler into message passing calls that efficiently
//! implement the intended pattern and be targeted to multiple communication
//! libraries".
//!
//! The output is C-flavoured source text (what an Open64 lowering pass
//! emits), used by the pragma front-end's `--emit` mode, by documentation,
//! and by golden tests that pin the translation's shape: non-blocking
//! operations, automatic datatype construction, and exactly one
//! consolidated synchronization per region at the placed sync point.

use crate::buffer::ElemKind;
use crate::clause::{PlaceSync, Target};
use crate::dir::{P2pSpec, ParamsSpec};
use crate::expr::EvalEnv;
use crate::overlay::Overlay;
use mpisim::dtype::BasicType;
use netsim::{CostModel, MachineModel};

/// Generated code for one region, split by role so SPMD readers can see
/// which guard each block sits under.
#[derive(Clone, Debug, Default)]
pub struct GeneratedCode {
    /// Declarations and one-time datatype construction.
    pub prologue: Vec<String>,
    /// The per-`comm_p2p` communication calls (with their guards).
    pub body: Vec<String>,
    /// The consolidated synchronization block.
    pub sync: Vec<String>,
}

impl GeneratedCode {
    /// Render as one source listing.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for section in [&self.prologue, &self.body, &self.sync] {
            for line in section {
                out.push_str(line);
                out.push('\n');
            }
        }
        out
    }
}

fn c_type(b: BasicType) -> &'static str {
    match b {
        BasicType::U8 => "char",
        BasicType::I32 => "int",
        BasicType::I64 => "long long",
        BasicType::F32 => "float",
        BasicType::F64 => "double",
    }
}

fn mpi_type_expr(elem: &ElemKind, var_hint: &str) -> String {
    match elem {
        ElemKind::Prim(b) => b.mpi_name().to_string(),
        ElemKind::Composite(layout) => format!("{}_{}_mpitype", var_hint, layout.name),
        ElemKind::Strided { .. } => format!("{var_hint}_vec_mpitype"),
        // Struct-of-arrays never lowers through a reusable relative
        // datatype (the arrays' base addresses are unrelated); the hint
        // only appears in diagnostics.
        ElemKind::Soa(_) => format!("{var_hint}_soa_mpitype"),
    }
}

fn shmem_put_call(elem: &ElemKind) -> &'static str {
    match elem {
        ElemKind::Prim(b) => shmemsim::TypedPut::for_elem_size(b.size()).call_name(),
        // Strided layouts ship in one strided typed put — the transfer
        // engine walks the stride, no intermediate copy.
        ElemKind::Strided { ty, .. } => shmemsim::TypedPut::for_elem_size(ty.size()).iput_name(),
        ElemKind::Composite(_) | ElemKind::Soa(_) => "shmem_putmem",
    }
}

/// How one buffer of a directive is marshalled for a target — the decision
/// the layout engine makes per directive site, per buffer and per target
/// from the machine's cost model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lowering {
    /// Contiguous memory: hand the pointer to the library unchanged.
    Direct,
    /// Commit and use a derived datatype; the library's gather engine
    /// walks the layout (MPI vector/struct types).
    Datatype,
    /// `n` zero-copy transfers, one per contiguous constituent of the
    /// layout: per-array direct sends for struct-of-arrays on MPI
    /// two-sided, size-matched typed/strided puts (`shmem_iput*`) on the
    /// one-sided targets.
    Split {
        /// Constituent transfers per directive execution.
        n: usize,
    },
    /// Pack into a contiguous intermediate and unpack on the receiver —
    /// the Listing-4 shape, kept only where the constituent fan-out costs
    /// more than one copy of the payload.
    Pack,
}

impl Lowering {
    /// Short label for benchmarks and diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            Lowering::Direct => "direct",
            Lowering::Datatype => "ddt",
            Lowering::Split { .. } => "typed-put",
            Lowering::Pack => "pack",
        }
    }
}

/// Pick the cheapest marshalling strategy for `count` elements of `elem`
/// on `target` under `model` (decision table in DESIGN.md §9).
///
/// The inputs are SPMD-uniform — the element descriptor, the directive's
/// count clause and the job-wide model — so every rank of a directive
/// site reaches the same decision without negotiation.
pub fn choose_lowering(
    elem: &ElemKind,
    count: usize,
    target: Target,
    model: &CostModel,
) -> Lowering {
    let bytes = count.saturating_mul(elem.packed_size()) as f64;
    match elem {
        ElemKind::Prim(_) => Lowering::Direct,
        ElemKind::Strided { .. } => match target {
            // One strided typed put ships the whole layout with no
            // intermediate copy and no extra call: nothing beats free.
            Target::Shmem => Lowering::Split { n: 1 },
            Target::Mpi2Side | Target::Mpi1Side => datatype_or_pack(model),
        },
        ElemKind::Composite(_) => match target {
            Target::Mpi2Side | Target::Mpi1Side => datatype_or_pack(model),
            // One strided put per field walks the array-of-structs without
            // a copy; packing touches every byte once on the sender.
            Target::Shmem => {
                split_or_pack(elem.field_count(), model.o_put as f64, 1.0, bytes, model)
            }
        },
        ElemKind::Soa(_) => {
            let n = elem.field_count();
            match target {
                // Each parallel array is contiguous: n direct sends move
                // the payload copy-free at (n-1) extra per-message
                // software overheads, while packing copies every byte on
                // the sender (pack) and again on the receiver (unpack).
                Target::Mpi2Side => split_or_pack(
                    n,
                    (model.o_send + model.o_recv + model.o_req_poll) as f64,
                    2.0,
                    bytes,
                    model,
                ),
                // One-sided receivers drain staging either way; only the
                // sender-side pack copy is at stake.
                Target::Mpi1Side | Target::Shmem => {
                    split_or_pack(n, model.o_put as f64, 1.0, bytes, model)
                }
            }
        }
    }
}

/// Session-level override of the lowering chooser, for A/B benchmarking
/// the layout engine against the fixed strategies it replaces.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LoweringPolicy {
    /// Cost-model-driven per-site choice (`choose_lowering`) — the layout
    /// engine proper, and the default.
    #[default]
    Auto,
    /// Listing-4 baseline: every buffer is packed into a contiguous
    /// intermediate and unpacked on the receiver, contiguous or not.
    AlwaysPack,
    /// Derived datatypes wherever the target has a datatype engine;
    /// degrades to Pack on SHMEM (which has none).
    AlwaysDatatype,
}

impl LoweringPolicy {
    /// Resolve the marshalling strategy this policy uses for `count`
    /// elements of `elem` on `target` under `model`.
    pub fn resolve(
        self,
        elem: &ElemKind,
        count: usize,
        target: Target,
        model: &CostModel,
    ) -> Lowering {
        match self {
            LoweringPolicy::Auto => choose_lowering(elem, count, target, model),
            LoweringPolicy::AlwaysPack => Lowering::Pack,
            LoweringPolicy::AlwaysDatatype => match (elem, target) {
                (ElemKind::Prim(_), _) => Lowering::Direct,
                (_, Target::Shmem) => Lowering::Pack,
                _ => Lowering::Datatype,
            },
        }
    }
}

fn datatype_or_pack(model: &CostModel) -> Lowering {
    // Both engines touch every payload byte; the cheaper per-byte one wins
    // (the one-time commit amortizes through the per-scope datatype cache).
    if model.datatype_per_byte <= model.pack_per_byte {
        Lowering::Datatype
    } else {
        Lowering::Pack
    }
}

fn split_or_pack(
    n: usize,
    per_msg: f64,
    pack_sides: f64,
    bytes: f64,
    model: &CostModel,
) -> Lowering {
    let split_cost = n.saturating_sub(1) as f64 * per_msg;
    let pack_cost = pack_sides * model.pack_per_byte * bytes;
    // Ties go to the zero-copy side.
    if split_cost <= pack_cost {
        Lowering::Split { n }
    } else {
        Lowering::Pack
    }
}

fn model_for(target: Target, machine: &MachineModel) -> CostModel {
    match target {
        Target::Shmem => machine.shmem,
        Target::Mpi2Side | Target::Mpi1Side => machine.mpi,
    }
}

fn count_expr(p2p: &P2pSpec, outer: &ParamsSpec) -> String {
    let merged = p2p.clauses.merged_with(&outer.clauses);
    match merged.count {
        Some(e) => e.to_string(),
        None => p2p
            .inferred_count()
            .map(|c| c.to_string())
            .unwrap_or_else(|| "/* inferred */".to_string()),
    }
}

/// Best static estimate of the per-execution element count, for the
/// lowering chooser: a constant count clause, else the inferred minimum
/// buffer length.
fn static_count(p2p: &P2pSpec, outer: &ParamsSpec) -> usize {
    let merged = p2p.clauses.merged_with(&outer.clauses);
    if let Some(e) = &merged.count {
        if let Ok(v) = e.eval(&EvalEnv::new(0, 2)) {
            if v >= 0 {
                return v as usize;
            }
        }
    }
    p2p.inferred_count().unwrap_or(1)
}

/// Lower a region to the calls generated for `target`, using the default
/// Gemini machine description for lowering decisions.
pub fn lower(spec: &ParamsSpec, target: Target) -> GeneratedCode {
    lower_with_model(spec, target, &MachineModel::gemini())
}

/// Lower a region to the calls generated for `target`, choosing each
/// buffer's marshalling (pack vs derived datatype vs typed put) per
/// directive site from `machine`'s cost model.
pub fn lower_with_model(
    spec: &ParamsSpec,
    target: Target,
    machine: &MachineModel,
) -> GeneratedCode {
    let model = model_for(target, machine);
    let mut code = GeneratedCode::default();
    let mut req_count = 0usize;
    let mut datatypes_emitted: Vec<String> = Vec::new();
    let mut packs_emitted: Vec<String> = Vec::new();
    let mut deferred_unpacks: Vec<String> = Vec::new();

    let merged_of = |p2p: &P2pSpec| p2p.clauses.merged_with(&spec.clauses);

    // Prologue: derived datatypes (MPI targets) and pack staging buffers,
    // one per distinct buffer, only where the chooser selected them.
    for p2p in &spec.body {
        let scount = static_count(p2p, spec);
        for b in p2p.sbuf.iter().chain(&p2p.rbuf) {
            match choose_lowering(&b.elem, scount, target, &model) {
                Lowering::Datatype => match &b.elem {
                    ElemKind::Composite(layout) => {
                        let var = format!("{}_{}_mpitype", b.name, layout.name);
                        if !datatypes_emitted.contains(&var) {
                            datatypes_emitted.push(var.clone());
                            code.prologue.push(format!("MPI_Datatype {var};"));
                            code.prologue
                                .extend(layout.to_datatype().describe_mpi_calls(&var));
                        }
                    }
                    ElemKind::Strided {
                        ty,
                        blocklen,
                        stride,
                    } => {
                        let var = format!("{}_vec_mpitype", b.name);
                        if !datatypes_emitted.contains(&var) {
                            datatypes_emitted.push(var.clone());
                            code.prologue.push(format!("MPI_Datatype {var};"));
                            code.prologue.push(format!(
                                "MPI_Type_vector(1, {blocklen}, {stride}, {}, &{var});",
                                ty.mpi_name()
                            ));
                            code.prologue.push(format!("MPI_Type_commit(&{var});"));
                        }
                    }
                    _ => {}
                },
                Lowering::Pack => {
                    let var = format!("{}_pack", b.name);
                    if !packs_emitted.contains(&var) {
                        packs_emitted.push(var.clone());
                        let cap = scount.max(1) * b.elem.packed_size();
                        code.prologue.push(format!(
                            "char {var}[{cap}]; int {var}_pos = 0; /* pack staging: fan-out dearer than one copy */"
                        ));
                    }
                }
                Lowering::Direct | Lowering::Split { .. } => {}
            }
        }
    }

    for (i, p2p) in spec.body.iter().enumerate() {
        let merged = merged_of(p2p);
        let cnt = count_expr(p2p, spec);
        let scount = static_count(p2p, spec);
        let sendwhen = merged
            .sendwhen
            .as_ref()
            .map(|c| c.to_string())
            .unwrap_or_else(|| "1".to_string());
        let recvwhen = merged
            .receivewhen
            .as_ref()
            .map(|c| c.to_string())
            .unwrap_or_else(|| "1".to_string());
        let receiver = merged
            .receiver
            .as_ref()
            .map(|e| e.to_string())
            .unwrap_or_else(|| "/*receiver*/".to_string());
        let sender = merged
            .sender
            .as_ref()
            .map(|e| e.to_string())
            .unwrap_or_else(|| "/*sender*/".to_string());
        let tag = format!("COMM_DIR_TAG+{}", p2p.site);

        // Per-field count expression of a struct-of-arrays member.
        let field_cnt = |blocklen: usize| {
            if blocklen == 1 {
                cnt.clone()
            } else {
                format!("({cnt})*{blocklen}")
            }
        };

        code.body
            .push(format!("/* comm_p2p #{i} (site {}) */", p2p.site));
        match target {
            Target::Mpi2Side => {
                code.body.push(format!("if ({sendwhen}) {{"));
                for b in &p2p.sbuf {
                    let low = choose_lowering(&b.elem, scount, target, &model);
                    match (&b.elem, low) {
                        (ElemKind::Soa(l), Lowering::Split { .. }) => {
                            code.body.push(format!(
                                "  /* soa {}: one direct send per array (zero-copy) */",
                                b.name
                            ));
                            for f in &l.fields {
                                code.body.push(format!(
                                    "  MPI_Isend({fname}, {fc}, {ty}, {receiver}, {tag}, comm, &req[{r}]);",
                                    fname = f.name,
                                    fc = field_cnt(f.blocklen),
                                    ty = f.ty.mpi_name(),
                                    r = req_count
                                ));
                                req_count += 1;
                            }
                        }
                        (ElemKind::Soa(l), _) => {
                            for f in &l.fields {
                                code.body.push(format!(
                                    "  MPI_Pack({fname}, {fc}, {ty}, {buf}_pack, sizeof {buf}_pack, &{buf}_pack_pos, comm);",
                                    fname = f.name,
                                    fc = field_cnt(f.blocklen),
                                    ty = f.ty.mpi_name(),
                                    buf = b.name,
                                ));
                            }
                            code.body.push(format!(
                                "  MPI_Isend({buf}_pack, {buf}_pack_pos, MPI_PACKED, {receiver}, {tag}, comm, &req[{r}]);",
                                buf = b.name,
                                r = req_count
                            ));
                            req_count += 1;
                        }
                        (_, Lowering::Pack) => {
                            code.body.push(format!(
                                "  pack_fields({buf}_pack, &{buf}_pack_pos, {buf}, {cnt}); /* field-wise pack */",
                                buf = b.name,
                            ));
                            code.body.push(format!(
                                "  MPI_Isend({buf}_pack, {buf}_pack_pos, MPI_PACKED, {receiver}, {tag}, comm, &req[{r}]);",
                                buf = b.name,
                                r = req_count
                            ));
                            req_count += 1;
                        }
                        _ => {
                            let ty = mpi_type_expr(&b.elem, &b.name);
                            code.body.push(format!(
                                "  MPI_Isend({buf}, {cnt}, {ty}, {receiver}, {tag}, comm, &req[{r}]);",
                                buf = b.name,
                                r = req_count
                            ));
                            req_count += 1;
                        }
                    }
                }
                code.body.push("}".to_string());
                code.body.push(format!("if ({recvwhen}) {{"));
                for b in &p2p.rbuf {
                    let low = choose_lowering(&b.elem, scount, target, &model);
                    match (&b.elem, low) {
                        (ElemKind::Soa(l), Lowering::Split { .. }) => {
                            for f in &l.fields {
                                code.body.push(format!(
                                    "  MPI_Irecv({fname}, {fc}, {ty}, {sender}, {tag}, comm, &req[{r}]);",
                                    fname = f.name,
                                    fc = field_cnt(f.blocklen),
                                    ty = f.ty.mpi_name(),
                                    r = req_count
                                ));
                                req_count += 1;
                            }
                        }
                        (ElemKind::Soa(l), _) => {
                            let psize = b.elem.packed_size();
                            code.body.push(format!(
                                "  MPI_Irecv({buf}_pack, ({cnt})*{psize}, MPI_PACKED, {sender}, {tag}, comm, &req[{r}]);",
                                buf = b.name,
                                r = req_count
                            ));
                            req_count += 1;
                            let mut cum = 0usize;
                            for f in &l.fields {
                                deferred_unpacks.push(format!(
                                    "memcpy({fname}, {buf}_pack + ({cnt})*{cum}, ({fc})*{es}); /* unpack */",
                                    fname = f.name,
                                    buf = b.name,
                                    fc = field_cnt(f.blocklen),
                                    es = f.ty.size(),
                                ));
                                cum += f.blocklen * f.ty.size();
                            }
                        }
                        (_, Lowering::Pack) => {
                            let psize = b.elem.packed_size();
                            code.body.push(format!(
                                "  MPI_Irecv({buf}_pack, ({cnt})*{psize}, MPI_PACKED, {sender}, {tag}, comm, &req[{r}]);",
                                buf = b.name,
                                r = req_count
                            ));
                            req_count += 1;
                            deferred_unpacks.push(format!(
                                "unpack_fields({buf}, {buf}_pack, {cnt}); /* field-wise unpack */",
                                buf = b.name,
                            ));
                        }
                        _ => {
                            let ty = mpi_type_expr(&b.elem, &b.name);
                            code.body.push(format!(
                                "  MPI_Irecv({buf}, {cnt}, {ty}, {sender}, {tag}, comm, &req[{r}]);",
                                buf = b.name,
                                r = req_count
                            ));
                            req_count += 1;
                        }
                    }
                }
                code.body.push("}".to_string());
            }
            Target::Mpi1Side => {
                code.body.push(format!("if ({sendwhen}) {{"));
                for b in &p2p.sbuf {
                    let low = choose_lowering(&b.elem, scount, target, &model);
                    match (&b.elem, low) {
                        (ElemKind::Soa(l), Lowering::Split { .. }) => {
                            code.body.push(format!(
                                "  /* soa {}: one put per array (zero-copy) */",
                                b.name
                            ));
                            for f in &l.fields {
                                code.body.push(format!(
                                    "  MPI_Put({fname}, {fc}, {ty}, {receiver}, {fname}_disp, {fc}, {ty}, win);",
                                    fname = f.name,
                                    fc = field_cnt(f.blocklen),
                                    ty = f.ty.mpi_name(),
                                ));
                            }
                        }
                        (ElemKind::Soa(l), _) => {
                            for f in &l.fields {
                                code.body.push(format!(
                                    "  MPI_Pack({fname}, {fc}, {ty}, {buf}_pack, sizeof {buf}_pack, &{buf}_pack_pos, comm);",
                                    fname = f.name,
                                    fc = field_cnt(f.blocklen),
                                    ty = f.ty.mpi_name(),
                                    buf = b.name,
                                ));
                            }
                            code.body.push(format!(
                                "  MPI_Put({buf}_pack, {buf}_pack_pos, MPI_BYTE, {receiver}, {buf}_disp, {buf}_pack_pos, MPI_BYTE, win);",
                                buf = b.name,
                            ));
                        }
                        (_, Lowering::Pack) => {
                            code.body.push(format!(
                                "  pack_fields({buf}_pack, &{buf}_pack_pos, {buf}, {cnt}); /* field-wise pack */",
                                buf = b.name,
                            ));
                            code.body.push(format!(
                                "  MPI_Put({buf}_pack, {buf}_pack_pos, MPI_BYTE, {receiver}, {buf}_disp, {buf}_pack_pos, MPI_BYTE, win);",
                                buf = b.name,
                            ));
                        }
                        _ => {
                            let ty = mpi_type_expr(&b.elem, &b.name);
                            code.body.push(format!(
                                "  MPI_Put({buf}, {cnt}, {ty}, {receiver}, {buf}_disp, {cnt}, {ty}, win);",
                                buf = b.name,
                            ));
                        }
                    }
                    req_count += 1;
                }
                code.body.push("}".to_string());
            }
            Target::Shmem => {
                code.body.push(format!("if ({sendwhen}) {{"));
                for b in &p2p.sbuf {
                    let low = choose_lowering(&b.elem, scount, target, &model);
                    match (&b.elem, low) {
                        (
                            ElemKind::Strided {
                                ty,
                                blocklen,
                                stride,
                            },
                            _,
                        ) => {
                            let tp = shmemsim::TypedPut::for_elem_size(ty.size());
                            if *blocklen == 1 {
                                code.body.push(format!(
                                    "  {call}({buf}_sym, {buf}, {stride}, {stride}, {cnt}, {receiver});",
                                    call = tp.iput_name(),
                                    buf = b.name,
                                ));
                            } else {
                                code.body.push(format!(
                                    "  {call}({buf}_sym, {buf}, ({cnt})*{blocklen}, {receiver}); /* {cnt} blocks of {blocklen}, stride {stride} */",
                                    call = tp.call_name(),
                                    buf = b.name,
                                ));
                            }
                        }
                        (ElemKind::Soa(l), Lowering::Split { .. }) => {
                            code.body.push(format!(
                                "  /* soa {}: one typed put per array (zero-copy) */",
                                b.name
                            ));
                            for f in &l.fields {
                                let tp = shmemsim::TypedPut::for_elem_size(f.ty.size());
                                code.body.push(format!(
                                    "  {call}({fname}_sym, {fname}, {fc}, {receiver});",
                                    call = tp.call_name(),
                                    fname = f.name,
                                    fc = field_cnt(f.blocklen),
                                ));
                            }
                        }
                        (ElemKind::Composite(lay), Lowering::Split { .. }) => {
                            code.body.push(format!(
                                "  /* {}: one strided put per field walks the structs in place */",
                                b.name
                            ));
                            for f in &lay.fields {
                                let es = f.ty.size();
                                let tp = shmemsim::TypedPut::for_elem_size(es);
                                if f.blocklen == 1 && lay.extent % es == 0 {
                                    let stride = lay.extent / es;
                                    code.body.push(format!(
                                        "  {call}({buf}_{fname}_sym, &{buf}[0].{fname}, {stride}, {stride}, {cnt}, {receiver});",
                                        call = tp.iput_name(),
                                        buf = b.name,
                                        fname = f.name,
                                    ));
                                } else {
                                    code.body.push(format!(
                                        "  {call}({buf}_{fname}_sym, &{buf}[0].{fname}, {bytes}, {receiver}); /* x {cnt} records */",
                                        call = tp.call_name(),
                                        buf = b.name,
                                        fname = f.name,
                                        bytes = f.blocklen * es,
                                    ));
                                }
                            }
                        }
                        (ElemKind::Soa(l), _) => {
                            for f in &l.fields {
                                code.body.push(format!(
                                    "  pack_bytes({buf}_pack, &{buf}_pack_pos, {fname}, ({fc})*{es});",
                                    buf = b.name,
                                    fname = f.name,
                                    fc = field_cnt(f.blocklen),
                                    es = f.ty.size(),
                                ));
                            }
                            code.body.push(format!(
                                "  shmem_putmem({buf}_sym, {buf}_pack, {buf}_pack_pos, {receiver});",
                                buf = b.name,
                            ));
                        }
                        (_, Lowering::Pack) => {
                            code.body.push(format!(
                                "  pack_bytes({buf}_pack, &{buf}_pack_pos, {buf}, ({cnt})*{psize});",
                                buf = b.name,
                                psize = b.elem.packed_size(),
                            ));
                            code.body.push(format!(
                                "  shmem_putmem({buf}_sym, {buf}_pack, {buf}_pack_pos, {receiver});",
                                buf = b.name,
                            ));
                        }
                        _ => {
                            let call = shmem_put_call(&b.elem);
                            let size = if call == "shmem_putmem" {
                                format!("({cnt})*sizeof({})", elem_c_size_hint(&b.elem))
                            } else {
                                cnt.clone()
                            };
                            code.body.push(format!(
                                "  {call}({buf}_sym, {buf}, {size}, {receiver});",
                                buf = b.name,
                            ));
                        }
                    }
                    req_count += 1;
                }
                code.body.push("}".to_string());
            }
        }
    }

    // Consolidated synchronization at the placed point.
    let placement = match spec.place_sync() {
        PlaceSync::EndParamRegion => "end of this comm_parameters region",
        PlaceSync::BeginNextParamRegion => "beginning of next comm_parameters region",
        PlaceSync::EndAdjParamRegions => "end of last adjacent comm_parameters region",
    };
    code.sync.push(format!("/* sync placed at: {placement} */"));
    match target {
        Target::Mpi2Side => {
            code.sync.push(format!(
                "MPI_Waitall({req_count}, req, MPI_STATUSES_IGNORE);"
            ));
            code.sync.extend(deferred_unpacks);
        }
        Target::Mpi1Side => {
            code.sync.push("MPI_Win_fence(0, win);".to_string());
        }
        Target::Shmem => {
            code.sync.push("shmem_quiet();".to_string());
            code.sync.push("shmem_barrier_all();".to_string());
        }
    }
    code
}

/// Lower a region with a tuning [`Overlay`] applied: per-site retargets,
/// sync-placement overrides, and the coalesced (small-message aggregation)
/// translation — `MPI_Pack` each instance into a per-site batch buffer,
/// one `MPI_PACKED` Isend per `batch` instances (plus a region-end
/// remainder flush), `MPI_Unpack` on the receiver. SHMEM coalescing packs
/// the same frames and ships them with one `shmem_putmem` per flush.
/// Without an overlay decision a site lowers exactly as [`lower`] does.
pub fn lower_tuned(spec: &ParamsSpec, target: Target, overlay: &Overlay) -> GeneratedCode {
    let mut placed = spec.clone();
    for p2p in &spec.body {
        if let Some(p) = overlay.place_sync_for(p2p.site) {
            placed.clauses.place_sync = Some(p);
        }
    }
    // Untouched sites keep the plain translation; splice tuned sites in.
    let base = lower(&placed, target);
    let mut code = GeneratedCode {
        prologue: base.prologue,
        body: Vec::new(),
        sync: Vec::new(),
    };
    let mut req_count = 0usize;
    let mut flush_reqs: Vec<String> = Vec::new();

    for (i, p2p) in placed.body.iter().enumerate() {
        let site = p2p.site;
        let site_target = overlay.retarget_for(site).unwrap_or(target);
        // Coalescing applies to 2-sided and SHMEM; one-sided puts have no
        // per-message software overhead worth eliding.
        let batch = match site_target {
            Target::Mpi2Side | Target::Shmem => overlay.coalesce_batch_for(site),
            Target::Mpi1Side => None,
        };

        let merged = p2p.clauses.merged_with(&placed.clauses);
        let cnt = count_expr(p2p, &placed);
        let sendwhen = merged
            .sendwhen
            .as_ref()
            .map(|c| c.to_string())
            .unwrap_or_else(|| "1".to_string());
        let recvwhen = merged
            .receivewhen
            .as_ref()
            .map(|c| c.to_string())
            .unwrap_or_else(|| "1".to_string());
        let receiver = merged
            .receiver
            .as_ref()
            .map(|e| e.to_string())
            .unwrap_or_else(|| "/*receiver*/".to_string());
        let sender = merged
            .sender
            .as_ref()
            .map(|e| e.to_string())
            .unwrap_or_else(|| "/*sender*/".to_string());

        let Some(batch) = batch else {
            // Keep / retarget-only: reuse the plain per-site lowering.
            let sub = ParamsSpec {
                clauses: placed.clauses.clone(),
                body: vec![p2p.clone()],
                spans: Default::default(),
            };
            let one = lower(&sub, site_target);
            if site_target != target {
                code.body.push(format!(
                    "/* tuned: site {site} retargeted to {site_target} */"
                ));
            }
            for line in one.body {
                code.body
                    .push(line.replace("comm_p2p #0", &format!("comm_p2p #{i}")));
            }
            if site_target == Target::Mpi2Side {
                // Renumber this site's request slots into the region array.
                let n: usize = p2p.sbuf.len() + p2p.rbuf.len();
                for line in code.body.iter_mut().rev().take(n + 4) {
                    for k in (0..n).rev() {
                        *line = line
                            .replace(&format!("&req[{k}]"), &format!("&req[{}]", req_count + k));
                    }
                }
                req_count += n;
            }
            continue;
        };

        let buf = format!("coal_buf_s{site}");
        let pos = format!("coal_pos_s{site}");
        let n_acc = format!("coal_n_s{site}");
        code.prologue.push(format!(
            "char {buf}[COAL_SLOT_BYTES]; int {pos} = 0, {n_acc} = 0; /* site {site}: batch {batch} */"
        ));
        code.body.push(format!(
            "/* comm_p2p #{i} (site {site}) — tuned: coalesce batch={batch} */"
        ));
        match site_target {
            Target::Mpi2Side => {
                let tag = format!("COMM_COAL_TAG+{site}");
                code.body.push(format!("if ({sendwhen}) {{"));
                for b in &p2p.sbuf {
                    let ty = mpi_type_expr(&b.elem, &b.name);
                    code.body.push(format!(
                        "  MPI_Pack({buf_name}, {cnt}, {ty}, {buf}, COAL_SLOT_BYTES, &{pos}, comm);",
                        buf_name = b.name,
                    ));
                }
                code.body.push(format!(
                    "  if (++{n_acc} == {batch}) {{ MPI_Isend({buf}, {pos}, MPI_PACKED, {receiver}, {tag}, comm, &req[{req_count}]); {pos} = 0; {n_acc} = 0; }}"
                ));
                code.body.push("}".to_string());
                flush_reqs.push(format!(
                    "if ({pos}) MPI_Isend({buf}, {pos}, MPI_PACKED, {receiver}, {tag}, comm, &req[{r}]);",
                    r = req_count + 1
                ));
                code.body.push(format!("if ({recvwhen}) {{"));
                code.body.push(format!(
                    "  if (coal_avail_s{site} == 0) {{ MPI_Recv(coal_rbuf_s{site}, COAL_SLOT_BYTES, MPI_PACKED, {sender}, {tag}, comm, &status); coal_rpos_s{site} = 0; }}"
                ));
                for b in &p2p.rbuf {
                    let ty = mpi_type_expr(&b.elem, &b.name);
                    code.body.push(format!(
                        "  MPI_Unpack(coal_rbuf_s{site}, COAL_SLOT_BYTES, &coal_rpos_s{site}, {buf_name}, {cnt}, {ty}, comm);",
                        buf_name = b.name,
                    ));
                }
                code.body.push("}".to_string());
                req_count += 2;
            }
            Target::Shmem => {
                code.body.push(format!("if ({sendwhen}) {{"));
                for b in &p2p.sbuf {
                    code.body.push(format!(
                        "  coal_frame({buf}, &{pos}, {buf_name}, ({cnt})*sizeof({sz}));",
                        buf_name = b.name,
                        sz = elem_c_size_hint(&b.elem),
                    ));
                }
                code.body.push(format!(
                    "  if (++{n_acc} == {batch}) {{ shmem_putmem(coal_sym_s{site} + coal_slot_s{site}*COAL_SLOT_BYTES, {buf}, {pos}, {receiver}); {pos} = 0; {n_acc} = 0; }}"
                ));
                code.body.push("}".to_string());
                flush_reqs.push(format!(
                    "if ({pos}) shmem_putmem(coal_sym_s{site} + coal_slot_s{site}*COAL_SLOT_BYTES, {buf}, {pos}, {receiver});"
                ));
                code.body.push(format!("if ({recvwhen}) {{"));
                code.body.push(format!(
                    "  if (coal_avail_s{site} == 0) shmem_wait_until(&coal_signal_s{site}, SHMEM_CMP_GT, coal_seen_s{site}++);"
                ));
                for b in &p2p.rbuf {
                    code.body.push(format!(
                        "  coal_peel(coal_sym_s{site}, &coal_rpos_s{site}, {buf_name}, ({cnt})*sizeof({sz}));",
                        buf_name = b.name,
                        sz = elem_c_size_hint(&b.elem),
                    ));
                }
                code.body.push("}".to_string());
            }
            Target::Mpi1Side => unreachable!("coalescing never targets MPI one-sided"),
        }
    }

    // Region-end remainder flushes precede the consolidated sync.
    code.sync
        .push("/* tuned: flush partial coalesce batches at region end */".to_string());
    code.sync.extend(flush_reqs);
    let placement = match placed.place_sync() {
        PlaceSync::EndParamRegion => "end of this comm_parameters region",
        PlaceSync::BeginNextParamRegion => "beginning of next comm_parameters region",
        PlaceSync::EndAdjParamRegions => "end of last adjacent comm_parameters region",
    };
    code.sync.push(format!("/* sync placed at: {placement} */"));
    match target {
        Target::Mpi2Side => {
            code.sync.push(format!(
                "MPI_Waitall({req_count}, req, MPI_STATUSES_IGNORE);"
            ));
        }
        Target::Mpi1Side => {
            code.sync.push("MPI_Win_fence(0, win);".to_string());
        }
        Target::Shmem => {
            code.sync.push("shmem_quiet();".to_string());
            code.sync.push("shmem_barrier_all();".to_string());
        }
    }
    code
}

fn elem_c_size_hint(elem: &ElemKind) -> String {
    match elem {
        ElemKind::Prim(b) | ElemKind::Strided { ty: b, .. } => c_type(*b).to_string(),
        ElemKind::Composite(l) => l.name.clone(),
        ElemKind::Soa(l) => l.name.clone(),
    }
}

/// Lower a collective directive (the §V extension): MPI targets get the
/// native collective over a derived group communicator; SHMEM gets
/// generated puts plus synchronization.
pub fn lower_coll(spec: &crate::dir::CollSpec, target: Target) -> GeneratedCode {
    use crate::coll::CollKind;
    let mut code = GeneratedCode::default();
    let cnt = spec
        .count
        .as_ref()
        .map(|e| e.to_string())
        .unwrap_or_else(|| {
            spec.sbuf
                .iter()
                .chain(&spec.rbuf)
                .map(|b| b.len)
                .min()
                .unwrap_or(0)
                .to_string()
        });
    let root = spec
        .root
        .as_ref()
        .map(|e| e.to_string())
        .unwrap_or_else(|| "0".to_string());
    let sname = spec
        .sbuf
        .first()
        .map(|b| b.name.clone())
        .unwrap_or_else(|| "sbuf".into());
    let rname = spec
        .rbuf
        .first()
        .map(|b| b.name.clone())
        .unwrap_or_else(|| "rbuf".into());
    let ty = spec
        .sbuf
        .first()
        .or_else(|| spec.rbuf.first())
        .map(|b| mpi_type_expr(&b.elem, &b.name))
        .unwrap_or_else(|| "MPI_BYTE".into());

    // Group construction from groupwhen (the "groups of processes" part).
    let comm_var = match &spec.groupwhen {
        Some(c) => {
            code.prologue.push(format!(
                "MPI_Comm group_comm; MPI_Comm_split(comm, ({c}) ? 1 : MPI_UNDEFINED, rank, &group_comm);"
            ));
            "group_comm"
        }
        None => "comm",
    };

    match target {
        Target::Mpi2Side | Target::Mpi1Side => {
            let call = match spec.kind {
                CollKind::Bcast => format!("MPI_Bcast({rname}, {cnt}, {ty}, {root}, {comm_var});"),
                CollKind::Gather => format!(
                    "MPI_Gather({sname}, {cnt}, {ty}, {rname}, {cnt}, {ty}, {root}, {comm_var});"
                ),
                CollKind::Scatter => format!(
                    "MPI_Scatter({sname}, {cnt}, {ty}, {rname}, {cnt}, {ty}, {root}, {comm_var});"
                ),
                CollKind::AllToAll => {
                    format!("MPI_Alltoall({sname}, {cnt}, {ty}, {rname}, {cnt}, {ty}, {comm_var});")
                }
                CollKind::Reduce(op) => format!(
                    "MPI_Reduce({sname}, {rname}, {cnt}, {ty}, {}, {root}, {comm_var});",
                    op.mpi_name()
                ),
            };
            code.body.push(call);
        }
        Target::Shmem => {
            // Generated one-sided translation: puts + consolidated sync.
            match spec.kind {
                CollKind::Bcast => {
                    code.body.push(format!("if (rank == {root}) {{"));
                    code.body.push(format!(
                        "  for (pe = 0; pe < npes; pe++) if (group[pe]) {}({rname}_sym, {rname}, {cnt}, pe);",
                        shmem_put_call(&spec.rbuf.first().map(|b| b.elem.clone()).unwrap_or(ElemKind::Prim(BasicType::U8)))
                    ));
                    code.body.push("}".to_string());
                }
                CollKind::Gather | CollKind::Reduce(_) => {
                    code.body.push(format!(
                        "{}({rname}_sym + my_group_index*{cnt}, {sname}, {cnt}, {root});",
                        shmem_put_call(
                            &spec
                                .sbuf
                                .first()
                                .map(|b| b.elem.clone())
                                .unwrap_or(ElemKind::Prim(BasicType::U8))
                        )
                    ));
                }
                CollKind::Scatter => {
                    code.body.push(format!("if (rank == {root}) {{"));
                    code.body.push(format!(
                        "  for (pe = 0; pe < npes; pe++) if (group[pe]) {}({rname}_sym, {sname} + idx(pe)*{cnt}, {cnt}, pe);",
                        shmem_put_call(&spec.rbuf.first().map(|b| b.elem.clone()).unwrap_or(ElemKind::Prim(BasicType::U8)))
                    ));
                    code.body.push("}".to_string());
                }
                CollKind::AllToAll => {
                    code.body.push(format!(
                        "for (pe = 0; pe < npes; pe++) if (group[pe]) {}({rname}_sym + my_group_index*{cnt}, {sname} + idx(pe)*{cnt}, {cnt}, pe);",
                        shmem_put_call(&spec.sbuf.first().map(|b| b.elem.clone()).unwrap_or(ElemKind::Prim(BasicType::U8)))
                    ));
                }
            }
            code.sync.push("shmem_quiet();".to_string());
            code.sync
                .push("shmem_barrier(group_start, 0, group_size, pSync);".to_string());
        }
    }
    code
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::{BufMeta, CompositeLayout, FieldDef};
    use crate::clause::ClauseSet;
    use crate::expr::RankExpr;

    fn prim_meta(name: &str, ty: BasicType, len: usize) -> BufMeta {
        BufMeta {
            name: name.to_string(),
            elem: ElemKind::Prim(ty),
            len,
            addr: (0, len * ty.size()),
        }
    }

    fn ring_spec() -> ParamsSpec {
        ParamsSpec {
            clauses: ClauseSet {
                sender: Some(
                    (RankExpr::rank() - RankExpr::lit(1) + RankExpr::nranks()) % RankExpr::nranks(),
                ),
                receiver: Some((RankExpr::rank() + RankExpr::lit(1)) % RankExpr::nranks()),
                ..ClauseSet::default()
            },
            body: vec![P2pSpec {
                clauses: ClauseSet::default(),
                sbuf: vec![prim_meta("buf1", BasicType::F64, 16)],
                rbuf: vec![prim_meta("buf2", BasicType::F64, 16)],
                ..P2pSpec::default()
            }],
            spans: Default::default(),
        }
    }

    #[test]
    fn mpi2_translation_shape() {
        let code = lower(&ring_spec(), Target::Mpi2Side);
        let text = code.render();
        assert!(text.contains("MPI_Isend(buf1, 16, MPI_DOUBLE"));
        assert!(text.contains("MPI_Irecv(buf2, 16, MPI_DOUBLE"));
        assert!(text.contains("MPI_Waitall(2, req"));
        assert!(!text.contains("MPI_Wait(")); // never per-request waits
    }

    #[test]
    fn mpi1_translation_shape() {
        let code = lower(&ring_spec(), Target::Mpi1Side);
        let text = code.render();
        assert!(text.contains("MPI_Put(buf1"));
        assert!(text.contains("MPI_Win_fence"));
        assert!(!text.contains("MPI_Isend"));
    }

    #[test]
    fn shmem_translation_selects_typed_put() {
        let code = lower(&ring_spec(), Target::Shmem);
        let text = code.render();
        assert!(text.contains("shmem_put64(buf1_sym, buf1, 16"), "{text}");
        assert!(text.contains("shmem_quiet();"));
        assert!(text.contains("shmem_barrier_all();"));
    }

    #[test]
    fn composite_gets_datatype_prologue_for_mpi_only() {
        let layout = CompositeLayout {
            name: "AtomScalars".to_string(),
            extent: 24,
            fields: vec![
                FieldDef {
                    name: "jmt".to_string(),
                    offset: 0,
                    ty: BasicType::I32,
                    blocklen: 1,
                },
                FieldDef {
                    name: "xstart".to_string(),
                    offset: 8,
                    ty: BasicType::F64,
                    blocklen: 1,
                },
            ],
        };
        let mut spec = ring_spec();
        spec.body[0].sbuf = vec![BufMeta {
            name: "atom".to_string(),
            elem: ElemKind::Composite(layout.clone()),
            len: 1,
            addr: (0, 24),
        }];
        spec.body[0].rbuf = spec.body[0].sbuf.clone();
        spec.body[0].clauses.count = Some(RankExpr::lit(1));

        let mpi = lower(&spec, Target::Mpi2Side).render();
        assert!(mpi.contains("MPI_Type_create_struct"));
        assert!(mpi.contains("MPI_Type_commit"));
        assert!(mpi.contains("atom_AtomScalars_mpitype"));

        let shm = lower(&spec, Target::Shmem).render();
        assert!(!shm.contains("MPI_Type_create_struct"));
        assert!(shm.contains("shmem_putmem"));
    }

    fn soa4_meta(name: &str, len: usize) -> BufMeta {
        use crate::buffer::{SoaField, SoaLayout};
        let fields = ["vr", "rhotot", "ec", "nc"]
            .iter()
            .map(|f| SoaField {
                name: format!("{name}_{f}"),
                ty: BasicType::F64,
                blocklen: 1,
            })
            .collect();
        BufMeta {
            name: name.to_string(),
            elem: ElemKind::Soa(SoaLayout {
                name: format!("{name}Soa"),
                fields,
            }),
            len,
            addr: (0, len * 32),
        }
    }

    #[test]
    fn chooser_decision_table_gemini() {
        let m = MachineModel::gemini();
        let prim = ElemKind::Prim(BasicType::F64);
        let strided = ElemKind::Strided {
            ty: BasicType::F64,
            blocklen: 1,
            stride: 4,
        };
        let comp = ElemKind::Composite(CompositeLayout {
            name: "S".into(),
            extent: 24,
            fields: vec![
                FieldDef {
                    name: "a".into(),
                    offset: 0,
                    ty: BasicType::I32,
                    blocklen: 1,
                },
                FieldDef {
                    name: "b".into(),
                    offset: 8,
                    ty: BasicType::F64,
                    blocklen: 1,
                },
            ],
        });
        let soa = soa4_meta("x", 0).elem;

        // Contiguous memory is always handed over unchanged.
        assert_eq!(
            choose_lowering(&prim, 16, Target::Mpi2Side, &m.mpi),
            Lowering::Direct
        );
        assert_eq!(
            choose_lowering(&prim, 16, Target::Shmem, &m.shmem),
            Lowering::Direct
        );
        // MPI's datatype engine is cheaper per byte than packing on Gemini.
        assert_eq!(
            choose_lowering(&strided, 16, Target::Mpi2Side, &m.mpi),
            Lowering::Datatype
        );
        assert_eq!(
            choose_lowering(&comp, 16, Target::Mpi1Side, &m.mpi),
            Lowering::Datatype
        );
        // SHMEM strided: one iput, no copy, regardless of size.
        assert_eq!(
            choose_lowering(&strided, 1, Target::Shmem, &m.shmem),
            Lowering::Split { n: 1 }
        );
        // SHMEM composite: small payload packs (fan-out o_put dominates)...
        assert_eq!(
            choose_lowering(&comp, 1, Target::Shmem, &m.shmem),
            Lowering::Pack
        );
        // ...large payload splits into per-field strided puts.
        assert_eq!(
            choose_lowering(&comp, 100, Target::Shmem, &m.shmem),
            Lowering::Split { n: 2 }
        );
        // MPI two-sided SoA: per-array sends win only once the double
        // pack/unpack copy outweighs (n-1) message overheads.
        assert_eq!(
            choose_lowering(&soa, 10, Target::Mpi2Side, &m.mpi),
            Lowering::Pack
        );
        assert_eq!(
            choose_lowering(&soa, 1000, Target::Mpi2Side, &m.mpi),
            Lowering::Split { n: 4 }
        );
        // One-sided SoA: only the sender-side copy is at stake, but o_put
        // is cheap, so the crossover sits low.
        assert_eq!(
            choose_lowering(&soa, 100, Target::Shmem, &m.shmem),
            Lowering::Split { n: 4 }
        );
    }

    #[test]
    fn soa_split_emits_per_array_sends_on_mpi2() {
        let mut spec = ring_spec();
        spec.body[0].sbuf = vec![soa4_meta("s", 1000)];
        spec.body[0].rbuf = vec![soa4_meta("r", 1000)];
        spec.body[0].clauses.count = Some(RankExpr::lit(1000));
        let text = lower(&spec, Target::Mpi2Side).render();
        assert!(text.contains("MPI_Isend(s_vr, 1000, MPI_DOUBLE"), "{text}");
        assert!(text.contains("MPI_Isend(s_nc, 1000, MPI_DOUBLE"), "{text}");
        assert!(
            text.contains("MPI_Irecv(r_rhotot, 1000, MPI_DOUBLE"),
            "{text}"
        );
        assert!(text.contains("MPI_Waitall(8, req"), "{text}");
        assert!(!text.contains("MPI_Pack"), "{text}");
        assert!(!text.contains("MPI_Type_create_struct"), "{text}");
    }

    #[test]
    fn soa_small_packs_on_mpi2() {
        let mut spec = ring_spec();
        spec.body[0].sbuf = vec![soa4_meta("s", 10)];
        spec.body[0].rbuf = vec![soa4_meta("r", 10)];
        spec.body[0].clauses.count = Some(RankExpr::lit(10));
        let text = lower(&spec, Target::Mpi2Side).render();
        assert!(text.contains("char s_pack["), "{text}");
        assert!(
            text.contains("MPI_Pack(s_vr, 10, MPI_DOUBLE, s_pack"),
            "{text}"
        );
        assert!(
            text.contains("MPI_Isend(s_pack, s_pack_pos, MPI_PACKED"),
            "{text}"
        );
        assert!(
            text.contains("MPI_Irecv(r_pack, (10)*32, MPI_PACKED"),
            "{text}"
        );
        // Unpacks are deferred to after the consolidated waitall.
        assert!(
            text.contains("memcpy(r_vr, r_pack + (10)*0, (10)*8)"),
            "{text}"
        );
        assert!(
            text.contains("memcpy(r_nc, r_pack + (10)*24, (10)*8)"),
            "{text}"
        );
    }

    #[test]
    fn soa_split_emits_typed_puts_on_shmem() {
        let mut spec = ring_spec();
        spec.body[0].sbuf = vec![soa4_meta("s", 100)];
        spec.body[0].rbuf = vec![soa4_meta("r", 100)];
        spec.body[0].clauses.count = Some(RankExpr::lit(100));
        let text = lower(&spec, Target::Shmem).render();
        assert!(text.contains("shmem_put64(s_vr_sym, s_vr, 100"), "{text}");
        assert!(text.contains("shmem_put64(s_nc_sym, s_nc, 100"), "{text}");
        assert!(!text.contains("pack_bytes"), "{text}");
    }

    #[test]
    fn strided_lowers_to_iput_on_shmem() {
        let mut spec = ring_spec();
        spec.body[0].sbuf = vec![BufMeta {
            name: "v".to_string(),
            elem: ElemKind::Strided {
                ty: BasicType::F64,
                blocklen: 1,
                stride: 4,
            },
            len: 61,
            addr: (0, 61 * 8),
        }];
        spec.body[0].rbuf = vec![prim_meta("w", BasicType::F64, 16)];
        spec.body[0].clauses.count = Some(RankExpr::lit(16));
        let text = lower(&spec, Target::Shmem).render();
        assert!(text.contains("shmem_iput64(v_sym, v, 4, 4, 16"), "{text}");
        assert!(!text.contains("pack_bytes"), "{text}");
    }

    #[test]
    fn sync_placement_annotated() {
        let mut spec = ring_spec();
        spec.clauses.place_sync = Some(PlaceSync::EndAdjParamRegions);
        let text = lower(&spec, Target::Mpi2Side).render();
        assert!(text.contains("end of last adjacent"));
    }

    #[test]
    fn tuned_lowering_without_decisions_matches_plain() {
        let spec = ring_spec();
        let plain = lower(&spec, Target::Mpi2Side).render();
        let tuned = lower_tuned(&spec, Target::Mpi2Side, &Overlay::default()).render();
        // Same calls; the tuned variant only adds the (empty) flush note.
        for line in plain.lines().filter(|l| !l.starts_with("/*")) {
            assert!(tuned.contains(line), "missing {line:?} in tuned output");
        }
    }

    #[test]
    fn tuned_coalesced_mpi2_shape() {
        use crate::overlay::{Decision, SiteDecision};
        let mut spec = ring_spec();
        spec.body[0].site = 9;
        let mut ov = Overlay::default();
        ov.set(SiteDecision::new(9, Decision::Coalesce { batch: 16 }));
        let text = lower_tuned(&spec, Target::Mpi2Side, &ov).render();
        assert!(text.contains("MPI_Pack(buf1, 16, MPI_DOUBLE"), "{text}");
        assert!(text.contains("== 16) { MPI_Isend(coal_buf_s9"), "{text}");
        assert!(text.contains("MPI_PACKED"), "{text}");
        assert!(text.contains("MPI_Unpack(coal_rbuf_s9"), "{text}");
        assert!(
            text.contains("if (coal_pos_s9) MPI_Isend"),
            "region-end remainder flush: {text}"
        );
        assert!(text.contains("MPI_Waitall"), "{text}");
        // The per-instance Isend of the plain translation is gone.
        assert!(!text.contains("MPI_Isend(buf1"), "{text}");
    }

    #[test]
    fn tuned_coalesced_shmem_shape() {
        use crate::overlay::{Decision, SiteDecision};
        let mut spec = ring_spec();
        spec.body[0].site = 9;
        let mut ov = Overlay::default();
        ov.set(SiteDecision::new(9, Decision::Coalesce { batch: 4 }));
        let text = lower_tuned(&spec, Target::Shmem, &ov).render();
        assert!(text.contains("shmem_putmem(coal_sym_s9"), "{text}");
        assert!(text.contains("coal_frame(coal_buf_s9"), "{text}");
        assert!(text.contains("shmem_quiet();"), "{text}");
        assert!(!text.contains("shmem_put64(buf1_sym"), "{text}");
    }

    #[test]
    fn tuned_retarget_and_place_sync() {
        use crate::overlay::{Decision, SiteDecision};
        let mut spec = ring_spec();
        spec.body[0].site = 9;
        let mut ov = Overlay::default();
        ov.set(SiteDecision::new(9, Decision::Retarget(Target::Shmem)));
        let text = lower_tuned(&spec, Target::Mpi2Side, &ov).render();
        assert!(text.contains("retargeted to"), "{text}");
        assert!(text.contains("shmem_put64(buf1_sym"), "{text}");

        let mut ov2 = Overlay::default();
        ov2.set(SiteDecision::new(
            9,
            Decision::PlaceSync(PlaceSync::BeginNextParamRegion),
        ));
        let text2 = lower_tuned(&spec, Target::Mpi2Side, &ov2).render();
        assert!(text2.contains("beginning of next"), "{text2}");
    }

    #[test]
    fn guards_render_conditions() {
        let mut spec = ring_spec();
        spec.clauses.sendwhen = Some((RankExpr::rank() % RankExpr::lit(2)).eq(RankExpr::lit(0)));
        spec.clauses.receivewhen = Some((RankExpr::rank() % RankExpr::lit(2)).eq(RankExpr::lit(1)));
        let text = lower(&spec, Target::Mpi2Side).render();
        assert!(text.contains("if (((rank%2)==0))"));
        assert!(text.contains("if (((rank%2)==1))"));
    }
}
