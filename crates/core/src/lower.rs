//! Static lowering: render the library calls the compiler would generate
//! for a directive region, per target — "the directives can then be
//! translated by the compiler into message passing calls that efficiently
//! implement the intended pattern and be targeted to multiple communication
//! libraries".
//!
//! The output is C-flavoured source text (what an Open64 lowering pass
//! emits), used by the pragma front-end's `--emit` mode, by documentation,
//! and by golden tests that pin the translation's shape: non-blocking
//! operations, automatic datatype construction, and exactly one
//! consolidated synchronization per region at the placed sync point.

use crate::buffer::ElemKind;
use crate::clause::{PlaceSync, Target};
use crate::dir::{P2pSpec, ParamsSpec};
use crate::overlay::Overlay;
use mpisim::dtype::BasicType;

/// Generated code for one region, split by role so SPMD readers can see
/// which guard each block sits under.
#[derive(Clone, Debug, Default)]
pub struct GeneratedCode {
    /// Declarations and one-time datatype construction.
    pub prologue: Vec<String>,
    /// The per-`comm_p2p` communication calls (with their guards).
    pub body: Vec<String>,
    /// The consolidated synchronization block.
    pub sync: Vec<String>,
}

impl GeneratedCode {
    /// Render as one source listing.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for section in [&self.prologue, &self.body, &self.sync] {
            for line in section {
                out.push_str(line);
                out.push('\n');
            }
        }
        out
    }
}

fn c_type(b: BasicType) -> &'static str {
    match b {
        BasicType::U8 => "char",
        BasicType::I32 => "int",
        BasicType::I64 => "long long",
        BasicType::F32 => "float",
        BasicType::F64 => "double",
    }
}

fn mpi_type_expr(elem: &ElemKind, var_hint: &str) -> String {
    match elem {
        ElemKind::Prim(b) => b.mpi_name().to_string(),
        ElemKind::Composite(layout) => format!("{}_{}_mpitype", var_hint, layout.name),
        ElemKind::Strided { .. } => format!("{var_hint}_vec_mpitype"),
    }
}

fn shmem_put_call(elem: &ElemKind) -> &'static str {
    match elem {
        ElemKind::Prim(b) => shmemsim::TypedPut::for_elem_size(b.size()).call_name(),
        // Strided blocks go out as size-matched puts per block; composites
        // need a byte-granular put.
        ElemKind::Strided { ty, .. } => shmemsim::TypedPut::for_elem_size(ty.size()).call_name(),
        ElemKind::Composite(_) => "shmem_putmem",
    }
}

fn count_expr(p2p: &P2pSpec, outer: &ParamsSpec) -> String {
    let merged = p2p.clauses.merged_with(&outer.clauses);
    match merged.count {
        Some(e) => e.to_string(),
        None => p2p
            .inferred_count()
            .map(|c| c.to_string())
            .unwrap_or_else(|| "/* inferred */".to_string()),
    }
}

/// Lower a region to the calls generated for `target`.
pub fn lower(spec: &ParamsSpec, target: Target) -> GeneratedCode {
    let mut code = GeneratedCode::default();
    let mut req_count = 0usize;
    let mut datatypes_emitted: Vec<String> = Vec::new();

    let merged_of = |p2p: &P2pSpec| p2p.clauses.merged_with(&spec.clauses);

    // Prologue: derived datatypes for composite buffers (MPI targets), one
    // per distinct layout per scope.
    if target != Target::Shmem {
        for p2p in &spec.body {
            for b in p2p.sbuf.iter().chain(&p2p.rbuf) {
                match &b.elem {
                    ElemKind::Composite(layout) => {
                        let var = format!("{}_{}_mpitype", b.name, layout.name);
                        if !datatypes_emitted.contains(&var) {
                            datatypes_emitted.push(var.clone());
                            code.prologue.push(format!("MPI_Datatype {var};"));
                            code.prologue
                                .extend(layout.to_datatype().describe_mpi_calls(&var));
                        }
                    }
                    ElemKind::Strided {
                        ty,
                        blocklen,
                        stride,
                    } => {
                        let var = format!("{}_vec_mpitype", b.name);
                        if !datatypes_emitted.contains(&var) {
                            datatypes_emitted.push(var.clone());
                            code.prologue.push(format!("MPI_Datatype {var};"));
                            code.prologue.push(format!(
                                "MPI_Type_vector(1, {blocklen}, {stride}, {}, &{var});",
                                ty.mpi_name()
                            ));
                            code.prologue.push(format!("MPI_Type_commit(&{var});"));
                        }
                    }
                    ElemKind::Prim(_) => {}
                }
            }
        }
    }

    for (i, p2p) in spec.body.iter().enumerate() {
        let merged = merged_of(p2p);
        let cnt = count_expr(p2p, spec);
        let sendwhen = merged
            .sendwhen
            .as_ref()
            .map(|c| c.to_string())
            .unwrap_or_else(|| "1".to_string());
        let recvwhen = merged
            .receivewhen
            .as_ref()
            .map(|c| c.to_string())
            .unwrap_or_else(|| "1".to_string());
        let receiver = merged
            .receiver
            .as_ref()
            .map(|e| e.to_string())
            .unwrap_or_else(|| "/*receiver*/".to_string());
        let sender = merged
            .sender
            .as_ref()
            .map(|e| e.to_string())
            .unwrap_or_else(|| "/*sender*/".to_string());
        let tag = format!("COMM_DIR_TAG+{}", p2p.site);

        code.body
            .push(format!("/* comm_p2p #{i} (site {}) */", p2p.site));
        match target {
            Target::Mpi2Side => {
                code.body.push(format!("if ({sendwhen}) {{"));
                for b in &p2p.sbuf {
                    let ty = mpi_type_expr(&b.elem, &b.name);
                    code.body.push(format!(
                        "  MPI_Isend({buf}, {cnt}, {ty}, {receiver}, {tag}, comm, &req[{r}]);",
                        buf = b.name,
                        r = req_count
                    ));
                    req_count += 1;
                }
                code.body.push("}".to_string());
                code.body.push(format!("if ({recvwhen}) {{"));
                for b in &p2p.rbuf {
                    let ty = mpi_type_expr(&b.elem, &b.name);
                    code.body.push(format!(
                        "  MPI_Irecv({buf}, {cnt}, {ty}, {sender}, {tag}, comm, &req[{r}]);",
                        buf = b.name,
                        r = req_count
                    ));
                    req_count += 1;
                }
                code.body.push("}".to_string());
            }
            Target::Mpi1Side => {
                code.body.push(format!("if ({sendwhen}) {{"));
                for b in &p2p.sbuf {
                    let ty = mpi_type_expr(&b.elem, &b.name);
                    code.body.push(format!(
                        "  MPI_Put({buf}, {cnt}, {ty}, {receiver}, {buf}_disp, {cnt}, {ty}, win);",
                        buf = b.name,
                    ));
                    req_count += 1;
                }
                code.body.push("}".to_string());
            }
            Target::Shmem => {
                code.body.push(format!("if ({sendwhen}) {{"));
                for b in &p2p.sbuf {
                    let call = shmem_put_call(&b.elem);
                    let size = if call == "shmem_putmem" {
                        format!("({cnt})*sizeof({})", elem_c_size_hint(&b.elem))
                    } else {
                        cnt.clone()
                    };
                    code.body.push(format!(
                        "  {call}({buf}_sym, {buf}, {size}, {receiver});",
                        buf = b.name,
                    ));
                    req_count += 1;
                }
                code.body.push("}".to_string());
            }
        }
    }

    // Consolidated synchronization at the placed point.
    let placement = match spec.place_sync() {
        PlaceSync::EndParamRegion => "end of this comm_parameters region",
        PlaceSync::BeginNextParamRegion => "beginning of next comm_parameters region",
        PlaceSync::EndAdjParamRegions => "end of last adjacent comm_parameters region",
    };
    code.sync.push(format!("/* sync placed at: {placement} */"));
    match target {
        Target::Mpi2Side => {
            code.sync.push(format!(
                "MPI_Waitall({req_count}, req, MPI_STATUSES_IGNORE);"
            ));
        }
        Target::Mpi1Side => {
            code.sync.push("MPI_Win_fence(0, win);".to_string());
        }
        Target::Shmem => {
            code.sync.push("shmem_quiet();".to_string());
            code.sync.push("shmem_barrier_all();".to_string());
        }
    }
    code
}

/// Lower a region with a tuning [`Overlay`] applied: per-site retargets,
/// sync-placement overrides, and the coalesced (small-message aggregation)
/// translation — `MPI_Pack` each instance into a per-site batch buffer,
/// one `MPI_PACKED` Isend per `batch` instances (plus a region-end
/// remainder flush), `MPI_Unpack` on the receiver. SHMEM coalescing packs
/// the same frames and ships them with one `shmem_putmem` per flush.
/// Without an overlay decision a site lowers exactly as [`lower`] does.
pub fn lower_tuned(spec: &ParamsSpec, target: Target, overlay: &Overlay) -> GeneratedCode {
    let mut placed = spec.clone();
    for p2p in &spec.body {
        if let Some(p) = overlay.place_sync_for(p2p.site) {
            placed.clauses.place_sync = Some(p);
        }
    }
    // Untouched sites keep the plain translation; splice tuned sites in.
    let base = lower(&placed, target);
    let mut code = GeneratedCode {
        prologue: base.prologue,
        body: Vec::new(),
        sync: Vec::new(),
    };
    let mut req_count = 0usize;
    let mut flush_reqs: Vec<String> = Vec::new();

    for (i, p2p) in placed.body.iter().enumerate() {
        let site = p2p.site;
        let site_target = overlay.retarget_for(site).unwrap_or(target);
        // Coalescing applies to 2-sided and SHMEM; one-sided puts have no
        // per-message software overhead worth eliding.
        let batch = match site_target {
            Target::Mpi2Side | Target::Shmem => overlay.coalesce_batch_for(site),
            Target::Mpi1Side => None,
        };

        let merged = p2p.clauses.merged_with(&placed.clauses);
        let cnt = count_expr(p2p, &placed);
        let sendwhen = merged
            .sendwhen
            .as_ref()
            .map(|c| c.to_string())
            .unwrap_or_else(|| "1".to_string());
        let recvwhen = merged
            .receivewhen
            .as_ref()
            .map(|c| c.to_string())
            .unwrap_or_else(|| "1".to_string());
        let receiver = merged
            .receiver
            .as_ref()
            .map(|e| e.to_string())
            .unwrap_or_else(|| "/*receiver*/".to_string());
        let sender = merged
            .sender
            .as_ref()
            .map(|e| e.to_string())
            .unwrap_or_else(|| "/*sender*/".to_string());

        let Some(batch) = batch else {
            // Keep / retarget-only: reuse the plain per-site lowering.
            let sub = ParamsSpec {
                clauses: placed.clauses.clone(),
                body: vec![p2p.clone()],
                spans: Default::default(),
            };
            let one = lower(&sub, site_target);
            if site_target != target {
                code.body.push(format!(
                    "/* tuned: site {site} retargeted to {site_target} */"
                ));
            }
            for line in one.body {
                code.body
                    .push(line.replace("comm_p2p #0", &format!("comm_p2p #{i}")));
            }
            if site_target == Target::Mpi2Side {
                // Renumber this site's request slots into the region array.
                let n: usize = p2p.sbuf.len() + p2p.rbuf.len();
                for line in code.body.iter_mut().rev().take(n + 4) {
                    for k in (0..n).rev() {
                        *line = line
                            .replace(&format!("&req[{k}]"), &format!("&req[{}]", req_count + k));
                    }
                }
                req_count += n;
            }
            continue;
        };

        let buf = format!("coal_buf_s{site}");
        let pos = format!("coal_pos_s{site}");
        let n_acc = format!("coal_n_s{site}");
        code.prologue.push(format!(
            "char {buf}[COAL_SLOT_BYTES]; int {pos} = 0, {n_acc} = 0; /* site {site}: batch {batch} */"
        ));
        code.body.push(format!(
            "/* comm_p2p #{i} (site {site}) — tuned: coalesce batch={batch} */"
        ));
        match site_target {
            Target::Mpi2Side => {
                let tag = format!("COMM_COAL_TAG+{site}");
                code.body.push(format!("if ({sendwhen}) {{"));
                for b in &p2p.sbuf {
                    let ty = mpi_type_expr(&b.elem, &b.name);
                    code.body.push(format!(
                        "  MPI_Pack({buf_name}, {cnt}, {ty}, {buf}, COAL_SLOT_BYTES, &{pos}, comm);",
                        buf_name = b.name,
                    ));
                }
                code.body.push(format!(
                    "  if (++{n_acc} == {batch}) {{ MPI_Isend({buf}, {pos}, MPI_PACKED, {receiver}, {tag}, comm, &req[{req_count}]); {pos} = 0; {n_acc} = 0; }}"
                ));
                code.body.push("}".to_string());
                flush_reqs.push(format!(
                    "if ({pos}) MPI_Isend({buf}, {pos}, MPI_PACKED, {receiver}, {tag}, comm, &req[{r}]);",
                    r = req_count + 1
                ));
                code.body.push(format!("if ({recvwhen}) {{"));
                code.body.push(format!(
                    "  if (coal_avail_s{site} == 0) {{ MPI_Recv(coal_rbuf_s{site}, COAL_SLOT_BYTES, MPI_PACKED, {sender}, {tag}, comm, &status); coal_rpos_s{site} = 0; }}"
                ));
                for b in &p2p.rbuf {
                    let ty = mpi_type_expr(&b.elem, &b.name);
                    code.body.push(format!(
                        "  MPI_Unpack(coal_rbuf_s{site}, COAL_SLOT_BYTES, &coal_rpos_s{site}, {buf_name}, {cnt}, {ty}, comm);",
                        buf_name = b.name,
                    ));
                }
                code.body.push("}".to_string());
                req_count += 2;
            }
            Target::Shmem => {
                code.body.push(format!("if ({sendwhen}) {{"));
                for b in &p2p.sbuf {
                    code.body.push(format!(
                        "  coal_frame({buf}, &{pos}, {buf_name}, ({cnt})*sizeof({sz}));",
                        buf_name = b.name,
                        sz = elem_c_size_hint(&b.elem),
                    ));
                }
                code.body.push(format!(
                    "  if (++{n_acc} == {batch}) {{ shmem_putmem(coal_sym_s{site} + coal_slot_s{site}*COAL_SLOT_BYTES, {buf}, {pos}, {receiver}); {pos} = 0; {n_acc} = 0; }}"
                ));
                code.body.push("}".to_string());
                flush_reqs.push(format!(
                    "if ({pos}) shmem_putmem(coal_sym_s{site} + coal_slot_s{site}*COAL_SLOT_BYTES, {buf}, {pos}, {receiver});"
                ));
                code.body.push(format!("if ({recvwhen}) {{"));
                code.body.push(format!(
                    "  if (coal_avail_s{site} == 0) shmem_wait_until(&coal_signal_s{site}, SHMEM_CMP_GT, coal_seen_s{site}++);"
                ));
                for b in &p2p.rbuf {
                    code.body.push(format!(
                        "  coal_peel(coal_sym_s{site}, &coal_rpos_s{site}, {buf_name}, ({cnt})*sizeof({sz}));",
                        buf_name = b.name,
                        sz = elem_c_size_hint(&b.elem),
                    ));
                }
                code.body.push("}".to_string());
            }
            Target::Mpi1Side => unreachable!("coalescing never targets MPI one-sided"),
        }
    }

    // Region-end remainder flushes precede the consolidated sync.
    code.sync
        .push("/* tuned: flush partial coalesce batches at region end */".to_string());
    code.sync.extend(flush_reqs);
    let placement = match placed.place_sync() {
        PlaceSync::EndParamRegion => "end of this comm_parameters region",
        PlaceSync::BeginNextParamRegion => "beginning of next comm_parameters region",
        PlaceSync::EndAdjParamRegions => "end of last adjacent comm_parameters region",
    };
    code.sync.push(format!("/* sync placed at: {placement} */"));
    match target {
        Target::Mpi2Side => {
            code.sync.push(format!(
                "MPI_Waitall({req_count}, req, MPI_STATUSES_IGNORE);"
            ));
        }
        Target::Mpi1Side => {
            code.sync.push("MPI_Win_fence(0, win);".to_string());
        }
        Target::Shmem => {
            code.sync.push("shmem_quiet();".to_string());
            code.sync.push("shmem_barrier_all();".to_string());
        }
    }
    code
}

fn elem_c_size_hint(elem: &ElemKind) -> String {
    match elem {
        ElemKind::Prim(b) | ElemKind::Strided { ty: b, .. } => c_type(*b).to_string(),
        ElemKind::Composite(l) => l.name.clone(),
    }
}

/// Lower a collective directive (the §V extension): MPI targets get the
/// native collective over a derived group communicator; SHMEM gets
/// generated puts plus synchronization.
pub fn lower_coll(spec: &crate::dir::CollSpec, target: Target) -> GeneratedCode {
    use crate::coll::CollKind;
    let mut code = GeneratedCode::default();
    let cnt = spec
        .count
        .as_ref()
        .map(|e| e.to_string())
        .unwrap_or_else(|| {
            spec.sbuf
                .iter()
                .chain(&spec.rbuf)
                .map(|b| b.len)
                .min()
                .unwrap_or(0)
                .to_string()
        });
    let root = spec
        .root
        .as_ref()
        .map(|e| e.to_string())
        .unwrap_or_else(|| "0".to_string());
    let sname = spec
        .sbuf
        .first()
        .map(|b| b.name.clone())
        .unwrap_or_else(|| "sbuf".into());
    let rname = spec
        .rbuf
        .first()
        .map(|b| b.name.clone())
        .unwrap_or_else(|| "rbuf".into());
    let ty = spec
        .sbuf
        .first()
        .or_else(|| spec.rbuf.first())
        .map(|b| mpi_type_expr(&b.elem, &b.name))
        .unwrap_or_else(|| "MPI_BYTE".into());

    // Group construction from groupwhen (the "groups of processes" part).
    let comm_var = match &spec.groupwhen {
        Some(c) => {
            code.prologue.push(format!(
                "MPI_Comm group_comm; MPI_Comm_split(comm, ({c}) ? 1 : MPI_UNDEFINED, rank, &group_comm);"
            ));
            "group_comm"
        }
        None => "comm",
    };

    match target {
        Target::Mpi2Side | Target::Mpi1Side => {
            let call = match spec.kind {
                CollKind::Bcast => format!("MPI_Bcast({rname}, {cnt}, {ty}, {root}, {comm_var});"),
                CollKind::Gather => format!(
                    "MPI_Gather({sname}, {cnt}, {ty}, {rname}, {cnt}, {ty}, {root}, {comm_var});"
                ),
                CollKind::Scatter => format!(
                    "MPI_Scatter({sname}, {cnt}, {ty}, {rname}, {cnt}, {ty}, {root}, {comm_var});"
                ),
                CollKind::AllToAll => {
                    format!("MPI_Alltoall({sname}, {cnt}, {ty}, {rname}, {cnt}, {ty}, {comm_var});")
                }
                CollKind::Reduce(op) => format!(
                    "MPI_Reduce({sname}, {rname}, {cnt}, {ty}, {}, {root}, {comm_var});",
                    op.mpi_name()
                ),
            };
            code.body.push(call);
        }
        Target::Shmem => {
            // Generated one-sided translation: puts + consolidated sync.
            match spec.kind {
                CollKind::Bcast => {
                    code.body.push(format!("if (rank == {root}) {{"));
                    code.body.push(format!(
                        "  for (pe = 0; pe < npes; pe++) if (group[pe]) {}({rname}_sym, {rname}, {cnt}, pe);",
                        shmem_put_call(&spec.rbuf.first().map(|b| b.elem.clone()).unwrap_or(ElemKind::Prim(BasicType::U8)))
                    ));
                    code.body.push("}".to_string());
                }
                CollKind::Gather | CollKind::Reduce(_) => {
                    code.body.push(format!(
                        "{}({rname}_sym + my_group_index*{cnt}, {sname}, {cnt}, {root});",
                        shmem_put_call(
                            &spec
                                .sbuf
                                .first()
                                .map(|b| b.elem.clone())
                                .unwrap_or(ElemKind::Prim(BasicType::U8))
                        )
                    ));
                }
                CollKind::Scatter => {
                    code.body.push(format!("if (rank == {root}) {{"));
                    code.body.push(format!(
                        "  for (pe = 0; pe < npes; pe++) if (group[pe]) {}({rname}_sym, {sname} + idx(pe)*{cnt}, {cnt}, pe);",
                        shmem_put_call(&spec.rbuf.first().map(|b| b.elem.clone()).unwrap_or(ElemKind::Prim(BasicType::U8)))
                    ));
                    code.body.push("}".to_string());
                }
                CollKind::AllToAll => {
                    code.body.push(format!(
                        "for (pe = 0; pe < npes; pe++) if (group[pe]) {}({rname}_sym + my_group_index*{cnt}, {sname} + idx(pe)*{cnt}, {cnt}, pe);",
                        shmem_put_call(&spec.sbuf.first().map(|b| b.elem.clone()).unwrap_or(ElemKind::Prim(BasicType::U8)))
                    ));
                }
            }
            code.sync.push("shmem_quiet();".to_string());
            code.sync
                .push("shmem_barrier(group_start, 0, group_size, pSync);".to_string());
        }
    }
    code
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::{BufMeta, CompositeLayout, FieldDef};
    use crate::clause::ClauseSet;
    use crate::expr::RankExpr;

    fn prim_meta(name: &str, ty: BasicType, len: usize) -> BufMeta {
        BufMeta {
            name: name.to_string(),
            elem: ElemKind::Prim(ty),
            len,
            addr: (0, len * ty.size()),
        }
    }

    fn ring_spec() -> ParamsSpec {
        ParamsSpec {
            clauses: ClauseSet {
                sender: Some(
                    (RankExpr::rank() - RankExpr::lit(1) + RankExpr::nranks()) % RankExpr::nranks(),
                ),
                receiver: Some((RankExpr::rank() + RankExpr::lit(1)) % RankExpr::nranks()),
                ..ClauseSet::default()
            },
            body: vec![P2pSpec {
                clauses: ClauseSet::default(),
                sbuf: vec![prim_meta("buf1", BasicType::F64, 16)],
                rbuf: vec![prim_meta("buf2", BasicType::F64, 16)],
                ..P2pSpec::default()
            }],
            spans: Default::default(),
        }
    }

    #[test]
    fn mpi2_translation_shape() {
        let code = lower(&ring_spec(), Target::Mpi2Side);
        let text = code.render();
        assert!(text.contains("MPI_Isend(buf1, 16, MPI_DOUBLE"));
        assert!(text.contains("MPI_Irecv(buf2, 16, MPI_DOUBLE"));
        assert!(text.contains("MPI_Waitall(2, req"));
        assert!(!text.contains("MPI_Wait(")); // never per-request waits
    }

    #[test]
    fn mpi1_translation_shape() {
        let code = lower(&ring_spec(), Target::Mpi1Side);
        let text = code.render();
        assert!(text.contains("MPI_Put(buf1"));
        assert!(text.contains("MPI_Win_fence"));
        assert!(!text.contains("MPI_Isend"));
    }

    #[test]
    fn shmem_translation_selects_typed_put() {
        let code = lower(&ring_spec(), Target::Shmem);
        let text = code.render();
        assert!(text.contains("shmem_put64(buf1_sym, buf1, 16"), "{text}");
        assert!(text.contains("shmem_quiet();"));
        assert!(text.contains("shmem_barrier_all();"));
    }

    #[test]
    fn composite_gets_datatype_prologue_for_mpi_only() {
        let layout = CompositeLayout {
            name: "AtomScalars".to_string(),
            extent: 24,
            fields: vec![
                FieldDef {
                    name: "jmt".to_string(),
                    offset: 0,
                    ty: BasicType::I32,
                    blocklen: 1,
                },
                FieldDef {
                    name: "xstart".to_string(),
                    offset: 8,
                    ty: BasicType::F64,
                    blocklen: 1,
                },
            ],
        };
        let mut spec = ring_spec();
        spec.body[0].sbuf = vec![BufMeta {
            name: "atom".to_string(),
            elem: ElemKind::Composite(layout.clone()),
            len: 1,
            addr: (0, 24),
        }];
        spec.body[0].rbuf = spec.body[0].sbuf.clone();
        spec.body[0].clauses.count = Some(RankExpr::lit(1));

        let mpi = lower(&spec, Target::Mpi2Side).render();
        assert!(mpi.contains("MPI_Type_create_struct"));
        assert!(mpi.contains("MPI_Type_commit"));
        assert!(mpi.contains("atom_AtomScalars_mpitype"));

        let shm = lower(&spec, Target::Shmem).render();
        assert!(!shm.contains("MPI_Type_create_struct"));
        assert!(shm.contains("shmem_putmem"));
    }

    #[test]
    fn sync_placement_annotated() {
        let mut spec = ring_spec();
        spec.clauses.place_sync = Some(PlaceSync::EndAdjParamRegions);
        let text = lower(&spec, Target::Mpi2Side).render();
        assert!(text.contains("end of last adjacent"));
    }

    #[test]
    fn tuned_lowering_without_decisions_matches_plain() {
        let spec = ring_spec();
        let plain = lower(&spec, Target::Mpi2Side).render();
        let tuned = lower_tuned(&spec, Target::Mpi2Side, &Overlay::default()).render();
        // Same calls; the tuned variant only adds the (empty) flush note.
        for line in plain.lines().filter(|l| !l.starts_with("/*")) {
            assert!(tuned.contains(line), "missing {line:?} in tuned output");
        }
    }

    #[test]
    fn tuned_coalesced_mpi2_shape() {
        use crate::overlay::{Decision, SiteDecision};
        let mut spec = ring_spec();
        spec.body[0].site = 9;
        let mut ov = Overlay::default();
        ov.set(SiteDecision::new(9, Decision::Coalesce { batch: 16 }));
        let text = lower_tuned(&spec, Target::Mpi2Side, &ov).render();
        assert!(text.contains("MPI_Pack(buf1, 16, MPI_DOUBLE"), "{text}");
        assert!(text.contains("== 16) { MPI_Isend(coal_buf_s9"), "{text}");
        assert!(text.contains("MPI_PACKED"), "{text}");
        assert!(text.contains("MPI_Unpack(coal_rbuf_s9"), "{text}");
        assert!(
            text.contains("if (coal_pos_s9) MPI_Isend"),
            "region-end remainder flush: {text}"
        );
        assert!(text.contains("MPI_Waitall"), "{text}");
        // The per-instance Isend of the plain translation is gone.
        assert!(!text.contains("MPI_Isend(buf1"), "{text}");
    }

    #[test]
    fn tuned_coalesced_shmem_shape() {
        use crate::overlay::{Decision, SiteDecision};
        let mut spec = ring_spec();
        spec.body[0].site = 9;
        let mut ov = Overlay::default();
        ov.set(SiteDecision::new(9, Decision::Coalesce { batch: 4 }));
        let text = lower_tuned(&spec, Target::Shmem, &ov).render();
        assert!(text.contains("shmem_putmem(coal_sym_s9"), "{text}");
        assert!(text.contains("coal_frame(coal_buf_s9"), "{text}");
        assert!(text.contains("shmem_quiet();"), "{text}");
        assert!(!text.contains("shmem_put64(buf1_sym"), "{text}");
    }

    #[test]
    fn tuned_retarget_and_place_sync() {
        use crate::overlay::{Decision, SiteDecision};
        let mut spec = ring_spec();
        spec.body[0].site = 9;
        let mut ov = Overlay::default();
        ov.set(SiteDecision::new(9, Decision::Retarget(Target::Shmem)));
        let text = lower_tuned(&spec, Target::Mpi2Side, &ov).render();
        assert!(text.contains("retargeted to"), "{text}");
        assert!(text.contains("shmem_put64(buf1_sym"), "{text}");

        let mut ov2 = Overlay::default();
        ov2.set(SiteDecision::new(
            9,
            Decision::PlaceSync(PlaceSync::BeginNextParamRegion),
        ));
        let text2 = lower_tuned(&spec, Target::Mpi2Side, &ov2).render();
        assert!(text2.contains("beginning of next"), "{text2}");
    }

    #[test]
    fn guards_render_conditions() {
        let mut spec = ring_spec();
        spec.clauses.sendwhen = Some((RankExpr::rank() % RankExpr::lit(2)).eq(RankExpr::lit(0)));
        spec.clauses.receivewhen = Some((RankExpr::rank() % RankExpr::lit(2)).eq(RankExpr::lit(1)));
        let text = lower(&spec, Target::Mpi2Side).render();
        assert!(text.contains("if (((rank%2)==0))"));
        assert!(text.contains("if (((rank%2)==1))"));
    }
}
