//! Collective-communication directives — the paper's stated future work,
//! implemented: "we are working to extend the directives to express groups
//! of processes, and their collective communication/synchronization in a
//! variety of many-to-one, one-to-many and all-to-all patterns" (§V).
//!
//! One directive, `comm_coll`, with the familiar clause style:
//!
//! * `kind` — `BCAST` (one-to-many), `GATHER` (many-to-one), `SCATTER`
//!   (one-to-many, distinct payloads), `ALLTOALL` (all-to-all), `REDUCE`
//!   (many-to-one with combination);
//! * `root(expr)` — the distinguished rank for rooted kinds;
//! * `groupwhen(cond)` — *which processes participate*: the group-of-
//!   processes expression the paper calls for (default: every rank);
//! * `count(expr)`, `target(keyword)` — as for `comm_p2p`.
//!
//! Lowering follows the point-to-point machinery: MPI two-sided kinds
//! generate non-blocking trees/fan-outs with one consolidated completion;
//! one-sided targets generate puts into per-site symmetric staging with
//! point-wise delivery waits. The code generator emits the native MPI
//! collective (`MPI_Bcast`, ...) where one exists.

use crate::buffer::{Prim, PrimElem, PrimMut};
use crate::clause::{Diagnostic, Target};
use crate::expr::{CondExpr, EvalEnv, RankExpr};
use crate::scope::{CommParams, CommSession, DirectiveError};

/// The collective pattern kinds (paper §V's taxonomy).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CollKind {
    /// One-to-many: the root's buffer lands on every participant.
    Bcast,
    /// Many-to-one: every participant's buffer lands on the root,
    /// concatenated in participant order.
    Gather,
    /// One-to-many with distinct payloads: participant `i` receives the
    /// `i`-th chunk of the root's buffer.
    Scatter,
    /// All-to-all personalized exchange among the participants.
    AllToAll,
    /// Many-to-one with elementwise combination on the root.
    Reduce(ReduceOp),
}

/// Reduction operators for [`CollKind::Reduce`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReduceOp {
    /// Elementwise sum.
    Sum,
    /// Elementwise maximum.
    Max,
    /// Elementwise minimum.
    Min,
}

impl ReduceOp {
    fn combine_f64(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
        }
    }

    /// MPI operator name (codegen).
    pub fn mpi_name(self) -> &'static str {
        match self {
            ReduceOp::Sum => "MPI_SUM",
            ReduceOp::Max => "MPI_MAX",
            ReduceOp::Min => "MPI_MIN",
        }
    }
}

impl CollKind {
    /// The directive keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            CollKind::Bcast => "BCAST",
            CollKind::Gather => "GATHER",
            CollKind::Scatter => "SCATTER",
            CollKind::AllToAll => "ALLTOALL",
            CollKind::Reduce(_) => "REDUCE",
        }
    }

    /// The native MPI call the code generator emits.
    pub fn mpi_call(self) -> &'static str {
        match self {
            CollKind::Bcast => "MPI_Bcast",
            CollKind::Gather => "MPI_Gather",
            CollKind::Scatter => "MPI_Scatter",
            CollKind::AllToAll => "MPI_Alltoall",
            CollKind::Reduce(_) => "MPI_Reduce",
        }
    }

    /// Whether the kind has a distinguished root.
    pub fn rooted(self) -> bool {
        !matches!(self, CollKind::AllToAll)
    }
}

/// Builder for a `comm_coll` directive on a session. Executes immediately
/// with one consolidated synchronization (collectives are synchronization
/// points by nature).
pub struct CollCall<'s, 'a> {
    session: &'s mut CommSession<'a>,
    kind: CollKind,
    root: Option<RankExpr>,
    groupwhen: Option<CondExpr>,
    count: Option<usize>,
    target: Target,
    site: u32,
}

impl<'a> CommSession<'a> {
    /// Start a `comm_coll` directive.
    pub fn coll<'s>(&'s mut self, kind: CollKind) -> CollCall<'s, 'a> {
        CollCall {
            session: self,
            kind,
            root: None,
            groupwhen: None,
            count: None,
            target: Target::Mpi2Side,
            site: 9000,
        }
    }
}

impl<'s, 'a> CollCall<'s, 'a> {
    /// `root(expr)` — required for rooted kinds.
    pub fn root(mut self, e: impl Into<RankExpr>) -> Self {
        self.root = Some(e.into());
        self
    }

    /// `groupwhen(cond)` — which ranks participate (default: all).
    pub fn groupwhen(mut self, c: CondExpr) -> Self {
        self.groupwhen = Some(c);
        self
    }

    /// `count(n)` — elements per participant chunk.
    pub fn count(mut self, n: usize) -> Self {
        self.count = Some(n);
        self
    }

    /// `target(keyword)`.
    pub fn target(mut self, t: Target) -> Self {
        self.target = t;
        self
    }

    /// Distinguish lexical sites (staging/tag separation in loops).
    pub fn site(mut self, site: u32) -> Self {
        self.site = site;
        self
    }

    /// Resolve the participant group (communicator-local ranks, ascending)
    /// and this rank's position in it.
    fn resolve_group(&mut self) -> Result<(Vec<usize>, Option<usize>), DirectiveError> {
        let size = self.session.size();
        let mut group = Vec::new();
        for r in 0..size {
            let env = EvalEnv {
                rank: r as i64,
                nranks: size as i64,
                vars: Default::default(),
            };
            let participates = match &self.groupwhen {
                Some(c) => c.eval(&env)?,
                None => true,
            };
            if participates {
                group.push(r);
            }
        }
        let me = self.session.rank();
        let pos = group.iter().position(|&g| g == me);
        Ok((group, pos))
    }

    fn resolve_root(&mut self, group: &[usize]) -> Result<usize, DirectiveError> {
        let me_env = EvalEnv {
            rank: self.session.rank() as i64,
            nranks: self.session.size() as i64,
            vars: Default::default(),
        };
        let root = match &self.root {
            Some(e) => e.eval(&me_env)?,
            None => {
                return Err(DirectiveError::Invalid(vec![Diagnostic::error(format!(
                    "comm_coll {}: required clause `root` missing",
                    self.kind.keyword()
                ))]))
            }
        };
        if root < 0 || !group.contains(&(root as usize)) {
            return Err(DirectiveError::RankOutOfRange {
                clause: "root",
                value: root,
                size: group.len(),
            });
        }
        Ok(root as usize)
    }

    /// Execute a broadcast: on the root, `buf` is the source; elsewhere the
    /// destination. Non-participants leave `buf` untouched.
    pub fn bcast<T: PrimElem>(mut self, buf: &mut [T]) -> Result<(), DirectiveError> {
        assert_eq!(self.kind, CollKind::Bcast, "call matches the kind");
        let (group, pos) = self.resolve_group()?;
        let root = self.resolve_root(&group)?;
        if pos.is_none() {
            return Ok(());
        }
        let n = self.count.unwrap_or(buf.len()).min(buf.len());
        // Fan-out from the root through one p2p region: the directive
        // machinery supplies targets, staging and the consolidated sync.
        let src_copy: Vec<T> = buf[..n].to_vec();
        let me = self.session.rank();
        let params = CommParams::new()
            .sender(RankExpr::lit(root as i64))
            .receiver(RankExpr::var("coll_dest"))
            .sendwhen(RankExpr::rank().eq(RankExpr::lit(root as i64)))
            .receivewhen(RankExpr::rank().eq(RankExpr::var("coll_dest")))
            .count(n)
            .max_comm_iter(group.len().max(2) as i64 - 1)
            .target(self.target);
        let site = self.site;
        self.session.region(&params, |reg| {
            let empty: [T; 0] = [];
            for &dest in group.iter().filter(|&&d| d != root) {
                reg.set_var("coll_dest", dest as i64);
                let sb: &[T] = if me == root { &src_copy } else { &empty };
                reg.p2p()
                    .site(site)
                    .sbuf(Prim::new("coll_bcast_src", sb))
                    .rbuf(PrimMut::new("coll_bcast_dst", &mut buf[..n]))
                    .run()?;
            }
            Ok::<(), DirectiveError>(())
        })??;
        Ok(())
    }

    /// Execute a gather: every participant contributes `send`; on the root,
    /// `recv` receives `group.len() * count` elements in participant order.
    pub fn gather<T: PrimElem>(mut self, send: &[T], recv: &mut [T]) -> Result<(), DirectiveError> {
        assert_eq!(self.kind, CollKind::Gather, "call matches the kind");
        let (group, pos) = self.resolve_group()?;
        let root = self.resolve_root(&group)?;
        let Some(_my_pos) = pos else {
            return Ok(());
        };
        let n = self.count.unwrap_or(send.len()).min(send.len());
        let me = self.session.rank();
        if me == root {
            assert!(
                recv.len() >= group.len() * n,
                "gather root buffer too small: {} < {}",
                recv.len(),
                group.len() * n
            );
        }
        let params = CommParams::new()
            .sender(RankExpr::var("coll_src"))
            .receiver(RankExpr::lit(root as i64))
            .sendwhen(RankExpr::rank().eq(RankExpr::var("coll_src")))
            .receivewhen(RankExpr::rank().eq(RankExpr::lit(root as i64)))
            .count(n)
            .max_comm_iter(group.len().max(2) as i64 - 1)
            .target(self.target);
        let site = self.site;
        self.session.region(&params, |reg| {
            let empty: [T; 0] = [];
            for (i, &src) in group.iter().enumerate() {
                if src == root {
                    continue;
                }
                reg.set_var("coll_src", src as i64);
                let sb: &[T] = if me == src { &send[..n] } else { &empty };
                let rb: &mut [T] = if me == root {
                    &mut recv[i * n..(i + 1) * n]
                } else {
                    &mut []
                };
                reg.p2p()
                    .site(site + 1)
                    .sbuf(Prim::new("coll_gather_src", sb))
                    .rbuf(PrimMut::new("coll_gather_dst", rb))
                    .run()?;
            }
            Ok::<(), DirectiveError>(())
        })??;
        if me == root {
            let my_pos = group
                .iter()
                .position(|&g| g == root)
                .expect("root in group");
            recv[my_pos * n..(my_pos + 1) * n].copy_from_slice(&send[..n]);
        }
        Ok(())
    }

    /// Execute a scatter: on the root, `send` holds `group.len() * count`
    /// elements; participant `i` receives chunk `i` into `recv`.
    pub fn scatter<T: PrimElem>(
        mut self,
        send: &[T],
        recv: &mut [T],
    ) -> Result<(), DirectiveError> {
        assert_eq!(self.kind, CollKind::Scatter, "call matches the kind");
        let (group, pos) = self.resolve_group()?;
        let root = self.resolve_root(&group)?;
        let Some(my_pos) = pos else {
            return Ok(());
        };
        let n = self.count.unwrap_or(recv.len()).min(recv.len().max(1));
        let me = self.session.rank();
        if me == root {
            assert!(
                send.len() >= group.len() * n,
                "scatter root buffer too small: {} < {}",
                send.len(),
                group.len() * n
            );
        }
        let params = CommParams::new()
            .sender(RankExpr::lit(root as i64))
            .receiver(RankExpr::var("coll_dest"))
            .sendwhen(RankExpr::rank().eq(RankExpr::lit(root as i64)))
            .receivewhen(RankExpr::rank().eq(RankExpr::var("coll_dest")))
            .count(n)
            .max_comm_iter(group.len().max(2) as i64 - 1)
            .target(self.target);
        let site = self.site;
        self.session.region(&params, |reg| {
            let empty: [T; 0] = [];
            for (i, &dest) in group.iter().enumerate() {
                if dest == root {
                    continue;
                }
                reg.set_var("coll_dest", dest as i64);
                let sb: &[T] = if me == root {
                    &send[i * n..(i + 1) * n]
                } else {
                    &empty
                };
                let rb: &mut [T] = if me == dest { &mut recv[..n] } else { &mut [] };
                reg.p2p()
                    .site(site + 2)
                    .sbuf(Prim::new("coll_scatter_src", sb))
                    .rbuf(PrimMut::new("coll_scatter_dst", rb))
                    .run()?;
            }
            Ok::<(), DirectiveError>(())
        })??;
        if me == root {
            recv[..n].copy_from_slice(&send[my_pos * n..my_pos * n + n]);
        }
        Ok(())
    }

    /// Execute an all-to-all personalized exchange: `send` holds one
    /// `count`-element chunk per participant (in group order); `recv`
    /// receives one chunk from each participant.
    pub fn alltoall<T: PrimElem>(
        mut self,
        send: &[T],
        recv: &mut [T],
    ) -> Result<(), DirectiveError> {
        assert_eq!(self.kind, CollKind::AllToAll, "call matches the kind");
        let (group, pos) = self.resolve_group()?;
        let Some(my_pos) = pos else {
            return Ok(());
        };
        let g = group.len();
        let n = self.count.unwrap_or(recv.len() / g.max(1));
        assert!(
            send.len() >= g * n && recv.len() >= g * n,
            "alltoall buffers too small"
        );
        let me = self.session.rank();
        let params = CommParams::new()
            .sender(RankExpr::var("coll_src"))
            .receiver(RankExpr::var("coll_dest"))
            .sendwhen(RankExpr::rank().eq(RankExpr::var("coll_src")))
            .receivewhen(RankExpr::rank().eq(RankExpr::var("coll_dest")))
            .count(n)
            .max_comm_iter((g * g).max(2) as i64)
            .target(self.target);
        let site = self.site;
        self.session.region(&params, |reg| {
            let empty: [T; 0] = [];
            for (i, &src) in group.iter().enumerate() {
                for (j, &dest) in group.iter().enumerate() {
                    if src == dest {
                        continue;
                    }
                    reg.set_var("coll_src", src as i64);
                    reg.set_var("coll_dest", dest as i64);
                    let sb: &[T] = if me == src {
                        &send[j * n..(j + 1) * n]
                    } else {
                        &empty
                    };
                    let rb: &mut [T] = if me == dest {
                        &mut recv[i * n..(i + 1) * n]
                    } else {
                        &mut []
                    };
                    reg.p2p()
                        .site(site + 3)
                        .sbuf(Prim::new("coll_a2a_src", sb))
                        .rbuf(PrimMut::new("coll_a2a_dst", rb))
                        .run()?;
                }
            }
            Ok::<(), DirectiveError>(())
        })??;
        // Self chunk.
        recv[my_pos * n..(my_pos + 1) * n].copy_from_slice(&send[my_pos * n..(my_pos + 1) * n]);
        Ok(())
    }

    /// Execute a reduction of `f64` values to the root with the configured
    /// operator. Every participant contributes `buf`; the root's `buf`
    /// holds the result afterwards. (Combination work is charged as
    /// computation on the root.)
    pub fn reduce(mut self, buf: &mut [f64]) -> Result<(), DirectiveError> {
        let CollKind::Reduce(op) = self.kind else {
            panic!("call matches the kind");
        };
        let (group, pos) = self.resolve_group()?;
        let root = self.resolve_root(&group)?;
        let Some(_my_pos) = pos else {
            return Ok(());
        };
        let n = self.count.unwrap_or(buf.len()).min(buf.len());
        let me = self.session.rank();
        let mut contributions = vec![0.0f64; group.len() * n];
        let target = self.target;
        let site = self.site;
        let groupwhen = self.groupwhen.clone();
        // Gather contributions to the root...
        {
            let mut call = self
                .session
                .coll(CollKind::Gather)
                .root(root as i64)
                .count(n)
                .target(target)
                .site(site + 4);
            if let Some(c) = groupwhen {
                call = call.groupwhen(c);
            }
            call.gather(&buf[..n], &mut contributions)?;
        }
        // ...and combine (charged as root-side computation).
        if me == root {
            let m = self.session.ctx().machine().mpi;
            let flop_cost = m.byte_cost(0.25, group.len() * n * 8);
            self.session.ctx().compute(flop_cost);
            for i in 0..n {
                let mut acc = contributions[i];
                for k in 1..group.len() {
                    acc = op.combine_f64(acc, contributions[k * n + i]);
                }
                buf[i] = acc;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::Comm;
    use netsim::{run, SimConfig};

    fn with_session<R: Send>(n: usize, f: impl Fn(&mut CommSession<'_>) -> R + Sync) -> Vec<R> {
        run(SimConfig::new(n), |ctx| {
            let comm = Comm::world(ctx);
            let mut s = CommSession::new(ctx, comm).without_ir();
            let out = f(&mut s);
            s.flush();
            out
        })
        .per_rank
    }

    #[test]
    fn bcast_all_targets() {
        for target in Target::ALL {
            let got = with_session(5, move |s| {
                let mut buf = if s.rank() == 2 { [7i64, 8, 9] } else { [0; 3] };
                s.coll(CollKind::Bcast)
                    .root(2)
                    .target(target)
                    .bcast(&mut buf)
                    .unwrap();
                buf
            });
            for v in got {
                assert_eq!(v, [7, 8, 9], "target {target}");
            }
        }
    }

    #[test]
    fn bcast_respects_group() {
        // Only even ranks participate; odd ranks keep their buffers.
        let got = with_session(6, |s| {
            let mut buf = if s.rank() == 0 { [42i32] } else { [-1] };
            s.coll(CollKind::Bcast)
                .root(0)
                .groupwhen((RankExpr::rank() % RankExpr::lit(2)).eq(RankExpr::lit(0)))
                .bcast(&mut buf)
                .unwrap();
            buf[0]
        });
        assert_eq!(got, vec![42, -1, 42, -1, 42, -1]);
    }

    #[test]
    fn gather_collects_in_group_order() {
        let got = with_session(4, |s| {
            let me = s.rank() as i64;
            let send = [me * 10, me * 10 + 1];
            let mut recv = if s.rank() == 1 {
                vec![0i64; 8]
            } else {
                Vec::new()
            };
            s.coll(CollKind::Gather)
                .root(1)
                .count(2)
                .gather(&send, &mut recv)
                .unwrap();
            recv
        });
        assert_eq!(got[1], vec![0, 1, 10, 11, 20, 21, 30, 31]);
    }

    #[test]
    fn scatter_distributes_chunks() {
        for target in [Target::Mpi2Side, Target::Shmem] {
            let got = with_session(4, move |s| {
                let send: Vec<f64> = if s.rank() == 0 {
                    (0..8).map(|i| i as f64).collect()
                } else {
                    Vec::new()
                };
                let mut recv = [0f64; 2];
                s.coll(CollKind::Scatter)
                    .root(0)
                    .count(2)
                    .target(target)
                    .scatter(&send, &mut recv)
                    .unwrap();
                recv
            });
            for (r, v) in got.iter().enumerate() {
                assert_eq!(
                    *v,
                    [r as f64 * 2.0, r as f64 * 2.0 + 1.0],
                    "target {target}"
                );
            }
        }
    }

    #[test]
    fn alltoall_personalized_exchange() {
        let n = 4;
        let got = with_session(n, move |s| {
            let me = s.rank() as i64;
            // Chunk for destination j: [me, j].
            let send: Vec<i64> = (0..n as i64).flat_map(|j| [me, j]).collect();
            let mut recv = vec![-1i64; 2 * n];
            s.coll(CollKind::AllToAll)
                .count(2)
                .alltoall(&send, &mut recv)
                .unwrap();
            recv
        });
        for (r, v) in got.iter().enumerate() {
            for src in 0..n {
                assert_eq!(v[2 * src], src as i64, "rank {r} chunk from {src}");
                assert_eq!(v[2 * src + 1], r as i64);
            }
        }
    }

    #[test]
    fn reduce_sum_and_max() {
        let got = with_session(5, |s| {
            let me = s.rank() as f64;
            let mut sum = [me, 1.0];
            s.coll(CollKind::Reduce(ReduceOp::Sum))
                .root(0)
                .site(9100)
                .reduce(&mut sum)
                .unwrap();
            let mut max = [me];
            s.coll(CollKind::Reduce(ReduceOp::Max))
                .root(0)
                .site(9200)
                .reduce(&mut max)
                .unwrap();
            (sum, max[0])
        });
        assert_eq!(got[0].0, [10.0, 5.0]);
        assert_eq!(got[0].1, 4.0);
    }

    #[test]
    fn missing_root_rejected() {
        let got = with_session(2, |s| {
            let mut buf = [0i64];
            matches!(
                s.coll(CollKind::Bcast).bcast(&mut buf),
                Err(DirectiveError::Invalid(_))
            )
        });
        assert!(got.iter().all(|&ok| ok));
    }

    #[test]
    fn root_outside_group_rejected() {
        let got = with_session(4, |s| {
            let mut buf = [0i64];
            let r = s
                .coll(CollKind::Bcast)
                .root(1) // odd rank...
                .groupwhen((RankExpr::rank() % RankExpr::lit(2)).eq(RankExpr::lit(0)))
                .bcast(&mut buf);
            matches!(
                r,
                Err(DirectiveError::RankOutOfRange { clause: "root", .. })
            )
        });
        assert!(got.iter().all(|&ok| ok));
    }

    #[test]
    fn collective_sync_is_consolidated() {
        let got = with_session(6, |s| {
            let mut buf = if s.rank() == 0 { [1i64; 4] } else { [0; 4] };
            s.coll(CollKind::Bcast).root(0).bcast(&mut buf).unwrap();
            s.ctx().stats.waitalls
        });
        // Root covers 5 sends with one waitall; receivers one each.
        assert!(got.iter().all(|&w| w == 1), "{got:?}");
    }
}
