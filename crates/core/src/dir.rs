//! The directive IR: a buffer-independent description of a
//! `comm_parameters` region and its `comm_p2p` instances.
//!
//! Both front-ends produce this IR — the typed builder API (recording specs
//! as it executes) and the pragma text parser (`pragma-front`). The static
//! analyses ([`crate::analysis`]) and the code generator consume it.

use crate::buffer::BufMeta;
use crate::clause::{ClauseSet, Diagnostic, DirectiveKind, PlaceSync, Target};
use crate::coll::CollKind;
use crate::expr::{CondExpr, RankExpr};

/// Validate one `comm_p2p` call site from borrowed parts — the execution
/// engine runs this on every directive instance (millions of times in a
/// region loop), so it must not clone clauses or build a [`P2pSpec`]; it
/// allocates only when it has diagnostics to report.
pub(crate) fn validate_p2p_call(
    clauses: &ClauseSet,
    outer: Option<&ClauseSet>,
    sbuf: &[BufMeta],
    rbuf: &[BufMeta],
) -> Vec<Diagnostic> {
    let mut diags = clauses.validate(DirectiveKind::CommP2p, outer);
    if sbuf.is_empty() {
        diags.push(Diagnostic::error(
            "comm_p2p: required clause `sbuf` missing",
        ));
    }
    if rbuf.is_empty() {
        diags.push(Diagnostic::error(
            "comm_p2p: required clause `rbuf` missing",
        ));
    }
    if !sbuf.is_empty() && !rbuf.is_empty() {
        if sbuf.len() != rbuf.len() {
            diags.push(Diagnostic::error(format!(
                "comm_p2p: sbuf lists {} buffers but rbuf lists {}",
                sbuf.len(),
                rbuf.len()
            )));
        } else {
            for (s, r) in sbuf.iter().zip(rbuf) {
                if !s.elem.compatible(&r.elem) {
                    diags.push(Diagnostic::error(format!(
                        "comm_p2p: sbuf `{}` and rbuf `{}` have incompatible element types",
                        s.name, r.name
                    )));
                }
            }
        }
    }
    let has_count = clauses.count.is_some() || outer.map(|o| o.count.is_some()).unwrap_or(false);
    if !has_count {
        // Count may be omitted "if a buffer in either sbuf or rbuf is an
        // array" — in this API every buffer has a length, so inference
        // always succeeds; emit the informational note the compiler
        // would log.
        diags.push(Diagnostic::note(
            "comm_p2p: `count` omitted; inferred as the size of the smallest buffer",
        ));
    }
    diags
}

/// IR of one `comm_p2p` directive.
#[derive(Clone, Debug, Default)]
pub struct P2pSpec {
    /// The clauses asserted on this instance (not merged with the region's).
    pub clauses: ClauseSet,
    /// Send-buffer metadata, in clause order.
    pub sbuf: Vec<BufMeta>,
    /// Receive-buffer metadata, in clause order.
    pub rbuf: Vec<BufMeta>,
    /// Whether the directive has a computation body to overlap.
    pub has_overlap_body: bool,
    /// Stable site id (distinguishes lexical instances inside loops).
    pub site: u32,
    /// Source locations of the directive and its clauses (populated by
    /// `pragma-front`; builder-API specs carry none).
    pub spans: crate::diag::DirSpans,
}

impl P2pSpec {
    /// Validate this instance in the context of an optional enclosing
    /// region's clauses, adding buffer-rule diagnostics to the clause rules.
    /// Diagnostics are located at the clause they name when the spec carries
    /// spans.
    pub fn validate(&self, outer: Option<&ClauseSet>) -> Vec<Diagnostic> {
        validate_p2p_call(&self.clauses, outer, &self.sbuf, &self.rbuf)
            .into_iter()
            .map(|d| {
                let span = self.spans.for_message(&d.message);
                d.or_at(span)
            })
            .collect()
    }

    /// The inferred element count when `count` is omitted: the size of the
    /// smallest buffer in either list (paper §III-B).
    pub fn inferred_count(&self) -> Option<usize> {
        self.sbuf.iter().chain(&self.rbuf).map(|b| b.len).min()
    }

    /// Total payload bytes per execution given an element count.
    pub fn payload_bytes(&self, count: usize) -> usize {
        self.sbuf
            .iter()
            .map(|b| count.min(b.len) * b.elem.packed_size())
            .sum()
    }
}

/// IR of one `comm_parameters` region and its body.
#[derive(Clone, Debug, Default)]
pub struct ParamsSpec {
    /// The region's clauses.
    pub clauses: ClauseSet,
    /// The `comm_p2p` instances in the body, in first-execution order.
    pub body: Vec<P2pSpec>,
    /// Source locations of the region directive and its clauses.
    pub spans: crate::diag::DirSpans,
}

impl ParamsSpec {
    /// Validate the region and its body.
    pub fn validate(&self) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        // A region alone does not need sender/receiver if every p2p
        // supplies them; validate each p2p against the merged view and only
        // report region-level problems for clauses the region itself sets.
        let sw = self.clauses.sendwhen.is_some();
        let rw = self.clauses.receivewhen.is_some();
        if sw != rw
            && !self
                .body
                .iter()
                .any(|p| p.clauses.sendwhen.is_some() || p.clauses.receivewhen.is_some())
        {
            diags.push(
                Diagnostic::error(
                    "comm_parameters: `sendwhen` and `receivewhen` must both be present or both be omitted",
                )
                .or_at(self.spans.when()),
            );
        }
        for (i, p2p) in self.body.iter().enumerate() {
            for d in p2p.validate(Some(&self.clauses)) {
                diags.push(Diagnostic {
                    severity: d.severity,
                    message: format!("p2p #{i}: {}", d.message),
                    span: d.span,
                });
            }
        }
        diags
    }

    /// Effective sync placement (default `END_PARAM_REGION`).
    pub fn place_sync(&self) -> PlaceSync {
        self.clauses.place_sync.unwrap_or_default()
    }

    /// Effective region-level target (default MPI two-sided).
    pub fn target(&self) -> Target {
        self.clauses.target.unwrap_or_default()
    }
}

/// IR of one `comm_coll` directive (the collective extension; paper §V
/// future work).
#[derive(Clone, Debug)]
pub struct CollSpec {
    /// The collective kind.
    pub kind: CollKind,
    /// `root(expr)` (rooted kinds).
    pub root: Option<RankExpr>,
    /// `groupwhen(cond)` — participating ranks (default all).
    pub groupwhen: Option<CondExpr>,
    /// `count(expr)` — elements per participant chunk.
    pub count: Option<RankExpr>,
    /// `target(keyword)`.
    pub target: Option<Target>,
    /// Contribution buffers.
    pub sbuf: Vec<BufMeta>,
    /// Result buffers.
    pub rbuf: Vec<BufMeta>,
}

impl CollSpec {
    /// Validate the collective's clause set.
    pub fn validate(&self) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        if self.kind.rooted() && self.root.is_none() {
            diags.push(Diagnostic::error(format!(
                "comm_coll {}: required clause `root` missing",
                self.kind.keyword()
            )));
        }
        if !self.kind.rooted() && self.root.is_some() {
            diags.push(Diagnostic::warning(format!(
                "comm_coll {}: `root` is ignored for all-to-all",
                self.kind.keyword()
            )));
        }
        if self.sbuf.is_empty() && self.rbuf.is_empty() {
            diags.push(Diagnostic::error(
                "comm_coll: at least one of `sbuf`/`rbuf` is required",
            ));
        }
        diags
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::ElemKind;
    use mpisim::dtype::BasicType;

    fn meta(name: &str, ty: BasicType, len: usize) -> BufMeta {
        BufMeta {
            name: name.to_string(),
            elem: ElemKind::Prim(ty),
            len,
            addr: (0, len * ty.size()),
        }
    }

    fn ring_p2p() -> P2pSpec {
        P2pSpec {
            clauses: ClauseSet {
                sender: Some(RankExpr::var("prev")),
                receiver: Some(RankExpr::var("next")),
                ..ClauseSet::default()
            },
            sbuf: vec![meta("buf1", BasicType::F64, 10)],
            rbuf: vec![meta("buf2", BasicType::F64, 10)],
            ..P2pSpec::default()
        }
    }

    #[test]
    fn standalone_p2p_validates() {
        let p = ring_p2p();
        let diags = p.validate(None);
        assert!(!ClauseSet::has_errors(&diags));
        // The count-inference note is a warning.
        assert!(diags.iter().any(|d| d.message.contains("inferred")));
    }

    #[test]
    fn missing_buffers_detected() {
        let mut p = ring_p2p();
        p.sbuf.clear();
        let diags = p.validate(None);
        assert!(diags.iter().any(|d| d.message.contains("`sbuf` missing")));
    }

    #[test]
    fn mismatched_buffer_lists_detected() {
        let mut p = ring_p2p();
        p.sbuf.push(meta("extra", BasicType::F64, 4));
        let diags = p.validate(None);
        assert!(diags
            .iter()
            .any(|d| d.message.contains("sbuf lists 2 buffers but rbuf lists 1")));
    }

    #[test]
    fn incompatible_elements_detected() {
        let mut p = ring_p2p();
        p.rbuf = vec![meta("buf2", BasicType::I32, 10)];
        let diags = p.validate(None);
        assert!(diags
            .iter()
            .any(|d| d.message.contains("incompatible element types")));
    }

    #[test]
    fn count_inference_smallest_array() {
        let mut p = ring_p2p();
        p.sbuf = vec![meta("a", BasicType::F64, 8), meta("b", BasicType::F64, 12)];
        p.rbuf = vec![meta("c", BasicType::F64, 6), meta("d", BasicType::F64, 20)];
        assert_eq!(p.inferred_count(), Some(6));
        assert_eq!(p.payload_bytes(6), (6 + 6) * 8);
    }

    #[test]
    fn region_merges_and_validates_body() {
        let region = ParamsSpec {
            clauses: ClauseSet {
                sender: Some(RankExpr::var("from_rank")),
                receiver: Some(RankExpr::var("to_rank")),
                sendwhen: Some(RankExpr::rank().eq(RankExpr::var("from_rank"))),
                receivewhen: Some(RankExpr::rank().eq(RankExpr::var("to_rank"))),
                ..ClauseSet::default()
            },
            body: vec![P2pSpec {
                clauses: ClauseSet {
                    count: Some(RankExpr::lit(1)),
                    ..ClauseSet::default()
                },
                sbuf: vec![meta("scalaratomdata", BasicType::U8, 160)],
                rbuf: vec![meta("scalaratomdata", BasicType::U8, 160)],
                ..P2pSpec::default()
            }],
            spans: Default::default(),
        };
        let diags = region.validate();
        assert!(
            !ClauseSet::has_errors(&diags),
            "unexpected errors: {diags:?}"
        );
    }

    #[test]
    fn region_pairing_rule() {
        let region = ParamsSpec {
            clauses: ClauseSet {
                sender: Some(RankExpr::lit(0)),
                receiver: Some(RankExpr::lit(1)),
                sendwhen: Some(crate::expr::CondExpr::True),
                ..ClauseSet::default()
            },
            body: vec![],
            spans: Default::default(),
        };
        let diags = region.validate();
        assert!(ClauseSet::has_errors(&diags));
    }
}
