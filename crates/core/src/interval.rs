//! The shared byte-interval engine behind every overlap lint.
//!
//! Three analyses reason about buffers as half-open byte intervals over the
//! linker-assigned address space recorded in [`crate::buffer::BufMeta`]:
//! intra-directive `sbuf`/`rbuf` aliasing (CI003), cross-directive
//! consolidation safety (CI006), and the one-sided race lints
//! (CI009–CI012, [`crate::race`]). They used to carry three private copies
//! of the same overlap arithmetic; this module is the single tested code
//! path they all call.
//!
//! The conflict rule is the classical data-race condition restricted to
//! static intervals: two accesses conflict iff their byte spans intersect
//! and at least one of them writes.

use crate::buffer::BufMeta;

/// A half-open byte interval `[lo, hi)`. Empty when `lo >= hi`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ByteSpan {
    /// First byte covered.
    pub lo: usize,
    /// One past the last byte covered.
    pub hi: usize,
}

impl ByteSpan {
    /// The span `[lo, hi)`.
    pub fn new(lo: usize, hi: usize) -> ByteSpan {
        ByteSpan { lo, hi }
    }

    /// The span starting at `lo` covering `len` bytes.
    pub fn sized(lo: usize, len: usize) -> ByteSpan {
        ByteSpan { lo, hi: lo + len }
    }

    /// A buffer's declared extent.
    pub fn of_buf(b: &BufMeta) -> ByteSpan {
        ByteSpan {
            lo: b.addr.0,
            hi: b.addr.1,
        }
    }

    /// A transfer of `count` elements from the start of buffer `b`,
    /// clamped to the buffer's declared extent (an overflowing count is
    /// CI004's problem, not an excuse to report phantom overlaps).
    pub fn of_transfer(b: &BufMeta, count: usize) -> ByteSpan {
        let bytes = count.saturating_mul(b.elem.packed_size());
        ByteSpan {
            lo: b.addr.0,
            hi: b.addr.0.saturating_add(bytes).min(b.addr.1),
        }
    }

    /// Whether the interval covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.lo >= self.hi
    }

    /// Number of bytes covered.
    pub fn len(&self) -> usize {
        self.hi.saturating_sub(self.lo)
    }

    /// Whether two intervals share at least one byte.
    pub fn overlaps(&self, other: &ByteSpan) -> bool {
        !self.is_empty() && !other.is_empty() && self.lo < other.hi && other.lo < self.hi
    }

    /// The shared bytes, if any.
    pub fn intersect(&self, other: &ByteSpan) -> Option<ByteSpan> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo < hi).then_some(ByteSpan { lo, hi })
    }
}

impl std::fmt::Display for ByteSpan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {})", self.lo, self.hi)
    }
}

/// How an interval is touched.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// The bytes are only read (a send/put source, a get source).
    Read,
    /// The bytes are written (a receive/put destination).
    Write,
}

/// One static access: a byte span plus its direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Access {
    /// Bytes touched.
    pub span: ByteSpan,
    /// Read or write.
    pub kind: AccessKind,
}

impl Access {
    /// A read of `span`.
    pub fn read(span: ByteSpan) -> Access {
        Access {
            span,
            kind: AccessKind::Read,
        }
    }

    /// A write of `span`.
    pub fn write(span: ByteSpan) -> Access {
        Access {
            span,
            kind: AccessKind::Write,
        }
    }

    /// The race condition on static intervals: spans intersect and at
    /// least one side writes.
    pub fn conflicts(&self, other: &Access) -> bool {
        (self.kind == AccessKind::Write || other.kind == AccessKind::Write)
            && self.span.overlaps(&other.span)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::ElemKind;
    use mpisim::dtype::BasicType;

    fn meta(lo: usize, bytes: usize) -> BufMeta {
        BufMeta {
            name: "b".into(),
            elem: ElemKind::Prim(BasicType::U8),
            len: bytes,
            addr: (lo, lo + bytes),
        }
    }

    #[test]
    fn overlap_is_strict_on_half_open_bounds() {
        let a = ByteSpan::new(0, 8);
        assert!(a.overlaps(&ByteSpan::new(7, 9)));
        assert!(!a.overlaps(&ByteSpan::new(8, 16)), "touching is disjoint");
        assert!(!a.overlaps(&ByteSpan::new(3, 3)), "empty never overlaps");
        assert_eq!(
            a.intersect(&ByteSpan::new(4, 12)),
            Some(ByteSpan::new(4, 8))
        );
        assert_eq!(a.intersect(&ByteSpan::new(8, 12)), None);
    }

    #[test]
    fn transfer_span_clamps_to_declared_extent() {
        let b = meta(100, 16);
        assert_eq!(ByteSpan::of_transfer(&b, 4), ByteSpan::new(100, 104));
        // An overflowing count is reported by CI004; the interval engine
        // must not extend past the declaration.
        assert_eq!(ByteSpan::of_transfer(&b, 1000), ByteSpan::new(100, 116));
        assert_eq!(ByteSpan::of_buf(&b), ByteSpan::new(100, 116));
    }

    #[test]
    fn conflict_requires_a_writer() {
        let span = ByteSpan::new(0, 8);
        let shifted = ByteSpan::new(4, 12);
        assert!(!Access::read(span).conflicts(&Access::read(shifted)));
        assert!(Access::read(span).conflicts(&Access::write(shifted)));
        assert!(Access::write(span).conflicts(&Access::read(shifted)));
        assert!(Access::write(span).conflicts(&Access::write(shifted)));
        assert!(!Access::write(span).conflicts(&Access::write(ByteSpan::new(8, 12))));
    }
}
