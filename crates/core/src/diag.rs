//! Span-aware communication-intent diagnostics: the lint catalog behind
//! `commlint`.
//!
//! The paper's payoff is that directives make communication *analyzable* —
//! "all source and destination information can be incorporated into an
//! analysis framework for automated analysis and optimization". This module
//! turns the one-off reports of [`crate::analysis`] into coded, clippy-style
//! diagnostics with source spans and rank-count witnesses, so a build can
//! *fail* on a communication bug before any rank executes.
//!
//! Each lint has a stable `CIxxx` code (see [`LintCode`]); [`lint_region_at`]
//! evaluates one region at one concrete rank count, and the `commlint` crate
//! sweeps a rank range and merges the per-count findings into deduplicated
//! diagnostics with a failing-rank-count witness.

use std::collections::HashMap;
use std::fmt;

use crate::analysis::{buffer_independence, deadlock_report, find_cycle, resolve_graph, Edge};
use crate::clause::{PlaceSync, Severity, Target};
use crate::dir::ParamsSpec;
use crate::expr::EvalEnv;
use crate::interval::{Access, ByteSpan};

/// A source position (byte offset plus 1-based line/column). `pragma-front`
/// converts its lexer spans into this; builder-API specs carry none.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct SrcSpan {
    /// Byte offset in the source text.
    pub offset: usize,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl fmt::Display for SrcSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Source locations of one directive instance: the directive keyword itself
/// plus each clause that was written, in the order the buffer lists were
/// written. Every field is optional because the builder API records no
/// source text.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DirSpans {
    /// The `#pragma` / directive keyword.
    pub directive: Option<SrcSpan>,
    /// `sender(...)` clause keyword.
    pub sender: Option<SrcSpan>,
    /// `receiver(...)` clause keyword.
    pub receiver: Option<SrcSpan>,
    /// `sendwhen(...)` clause keyword.
    pub sendwhen: Option<SrcSpan>,
    /// `receivewhen(...)` clause keyword.
    pub receivewhen: Option<SrcSpan>,
    /// `count(...)` clause keyword.
    pub count: Option<SrcSpan>,
    /// `target(...)` clause keyword.
    pub target: Option<SrcSpan>,
    /// `place_sync(...)` clause keyword.
    pub place_sync: Option<SrcSpan>,
    /// `max_comm_iter(...)` clause keyword.
    pub max_comm_iter: Option<SrcSpan>,
    /// One span per `sbuf` list entry.
    pub sbuf: Vec<SrcSpan>,
    /// One span per `rbuf` list entry.
    pub rbuf: Vec<SrcSpan>,
}

impl DirSpans {
    /// Best span for routing problems: `sender`/`receiver`, falling back to
    /// the directive keyword.
    pub fn routing(&self) -> Option<SrcSpan> {
        self.sender.or(self.receiver).or(self.directive)
    }

    /// Best span for predicate problems: `sendwhen`/`receivewhen`, falling
    /// back to the directive keyword.
    pub fn when(&self) -> Option<SrcSpan> {
        self.sendwhen.or(self.receivewhen).or(self.directive)
    }

    /// Best span for buffer problems: the first `sbuf` entry, the first
    /// `rbuf` entry, or the directive keyword.
    pub fn buffers(&self) -> Option<SrcSpan> {
        self.sbuf
            .first()
            .or(self.rbuf.first())
            .copied()
            .or(self.directive)
    }

    /// Heuristic span for a validation message produced without span
    /// context: route by the clause keyword the message names. All messages
    /// matched here are produced by this crate, so the patterns are stable.
    pub fn for_message(&self, message: &str) -> Option<SrcSpan> {
        let by_kw = [
            ("`place_sync`", self.place_sync),
            ("`max_comm_iter`", self.max_comm_iter),
            ("`sendwhen`", self.sendwhen.or(self.receivewhen)),
            ("`receivewhen`", self.receivewhen.or(self.sendwhen)),
            ("`sender`", self.sender),
            ("`receiver`", self.receiver),
            ("`sbuf`", self.sbuf.first().copied()),
            ("`rbuf`", self.rbuf.first().copied()),
            ("`count`", self.count),
        ];
        for (kw, span) in by_kw {
            if message.contains(kw) {
                if let Some(sp) = span {
                    return Some(sp);
                }
            }
        }
        self.directive
    }
}

/// The lint catalog. Codes are stable; `commlint --format json` emits them
/// verbatim and CI gates on them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LintCode {
    /// `CI000` — a directive admissibility rule was violated (clause
    /// requiredness, admissibility per directive kind, buffer list shape).
    DirectiveRule,
    /// `CI001` — a declared send has no matching declared receive, or vice
    /// versa: the matching-completeness guarantee hand-written MPI cannot
    /// give.
    UnmatchedSend,
    /// `CI002` — the matched graph has a wait-for cycle: a blocking-send
    /// translation (or a consolidated region of them) would deadlock.
    BlockingDeadlockCycle,
    /// `CI003` — a rank that both sends and receives uses overlapping
    /// `sbuf`/`rbuf` memory: undefined behaviour under an MPI one-sided
    /// translation (`MPI_Put` into memory concurrently read as the origin).
    SbufRbufAliasing,
    /// `CI004` — sender and receiver disagree on the transfer size of a
    /// paired `sbuf`/`rbuf`, or the transfer overflows the receive buffer.
    SizeMismatch,
    /// `CI005` — `sendwhen` without `receivewhen` (or vice versa), or the
    /// two predicates select inconsistent participant sets.
    SendwhenPairing,
    /// `CI006` — buffers of adjacent `comm_p2p` instances overlap, so the
    /// synchronization consolidation the region promises is unsafe.
    ConsolidationUnsafeOverlap,
    /// `CI007` — a clause combination the requested target cannot lower
    /// (e.g. deferred sync on a one-sided target without a
    /// `max_comm_iter` bound to size the symmetric staging window).
    TargetInfeasible,
    /// `CI008` — a clause expression could not be resolved statically
    /// (unknown variables, out-of-range rank values).
    UnresolvedClause,
    /// `CI009` — two or more origins put into the same target window in
    /// one epoch under a one-sided target: the overlapping writes have no
    /// ordering edge between them.
    OverlappingPuts,
    /// `CI010` — a put delivery and a get (or get-lowered source read) of
    /// overlapping memory race within one epoch.
    GetPutConflict,
    /// `CI011` — a put's local source buffer is rewritten before the quiet
    /// that completes the put (write-before-quiet), possible when
    /// `place_sync` defers the quiet past an iterating region.
    SourceReuseBeforeQuiet,
    /// `CI012` — a rank reads a signalled region before reaching the
    /// corresponding signal wait; a faster origin's delivery lands
    /// mid-read.
    ReadBeforeSignalWait,
}

impl LintCode {
    /// The stable `CIxxx` code string.
    pub fn code(self) -> &'static str {
        match self {
            LintCode::DirectiveRule => "CI000",
            LintCode::UnmatchedSend => "CI001",
            LintCode::BlockingDeadlockCycle => "CI002",
            LintCode::SbufRbufAliasing => "CI003",
            LintCode::SizeMismatch => "CI004",
            LintCode::SendwhenPairing => "CI005",
            LintCode::ConsolidationUnsafeOverlap => "CI006",
            LintCode::TargetInfeasible => "CI007",
            LintCode::UnresolvedClause => "CI008",
            LintCode::OverlappingPuts => "CI009",
            LintCode::GetPutConflict => "CI010",
            LintCode::SourceReuseBeforeQuiet => "CI011",
            LintCode::ReadBeforeSignalWait => "CI012",
        }
    }

    /// The short kebab-case lint name.
    pub fn name(self) -> &'static str {
        match self {
            LintCode::DirectiveRule => "directive-rule",
            LintCode::UnmatchedSend => "unmatched-send",
            LintCode::BlockingDeadlockCycle => "blocking-deadlock-cycle",
            LintCode::SbufRbufAliasing => "sbuf-rbuf-aliasing",
            LintCode::SizeMismatch => "size-mismatch",
            LintCode::SendwhenPairing => "sendwhen-pairing",
            LintCode::ConsolidationUnsafeOverlap => "consolidation-unsafe-overlap",
            LintCode::TargetInfeasible => "target-infeasible",
            LintCode::UnresolvedClause => "unresolved-clause",
            LintCode::OverlappingPuts => "overlapping-puts",
            LintCode::GetPutConflict => "get-put-conflict",
            LintCode::SourceReuseBeforeQuiet => "source-reuse-before-quiet",
            LintCode::ReadBeforeSignalWait => "read-before-signal-wait",
        }
    }

    /// One-line catalog summary (`commlint --list-codes`).
    pub fn summary(self) -> &'static str {
        match self {
            LintCode::DirectiveRule => {
                "a directive admissibility rule is violated (clause requiredness, buffer shape)"
            }
            LintCode::UnmatchedSend => {
                "a declared send has no matching declared receive, or vice versa"
            }
            LintCode::BlockingDeadlockCycle => {
                "the matched graph has a wait-for cycle; a blocking translation deadlocks"
            }
            LintCode::SbufRbufAliasing => {
                "a rank that both sends and receives uses overlapping sbuf/rbuf memory"
            }
            LintCode::SizeMismatch => {
                "sender and receiver disagree on transfer size, or the transfer's layout \
                 byte extent overflows rbuf memory"
            }
            LintCode::SendwhenPairing => {
                "sendwhen/receivewhen are unpaired or select inconsistent participants"
            }
            LintCode::ConsolidationUnsafeOverlap => {
                "buffers of adjacent comm_p2p instances overlap; consolidation is unsafe"
            }
            LintCode::TargetInfeasible => {
                "a clause combination the requested lowering target cannot implement"
            }
            LintCode::UnresolvedClause => "a clause expression could not be resolved statically",
            LintCode::OverlappingPuts => {
                "overlapping concurrent puts into the same target window in one epoch"
            }
            LintCode::GetPutConflict => {
                "a get and a put touch overlapping remote memory in the same epoch"
            }
            LintCode::SourceReuseBeforeQuiet => {
                "a put's local source buffer is rewritten before the completing quiet"
            }
            LintCode::ReadBeforeSignalWait => {
                "a signalled region is read before the corresponding signal wait"
            }
        }
    }

    /// Whether `commprove` can upgrade findings (or their absence) for this
    /// code to a ∀N verdict with a machine-checkable certificate. The
    /// remaining codes are swept over finite rank ranges only.
    pub fn provable(self) -> bool {
        !matches!(
            self,
            LintCode::DirectiveRule
                | LintCode::SbufRbufAliasing
                | LintCode::TargetInfeasible
                | LintCode::UnresolvedClause
        )
    }

    /// Every catalogued code, in code order.
    pub const ALL: [LintCode; 13] = [
        LintCode::DirectiveRule,
        LintCode::UnmatchedSend,
        LintCode::BlockingDeadlockCycle,
        LintCode::SbufRbufAliasing,
        LintCode::SizeMismatch,
        LintCode::SendwhenPairing,
        LintCode::ConsolidationUnsafeOverlap,
        LintCode::TargetInfeasible,
        LintCode::UnresolvedClause,
        LintCode::OverlappingPuts,
        LintCode::GetPutConflict,
        LintCode::SourceReuseBeforeQuiet,
        LintCode::ReadBeforeSignalWait,
    ];
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// A concrete rank-count witness: the smallest analyzed `nranks` at which
/// the finding holds, plus the ranks involved (cycle members, unmatched
/// senders, aliasing self-transfer ranks, ...).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RankWitness {
    /// Communicator size at which the finding was established.
    pub nranks: usize,
    /// Ranks that exhibit it (may be empty for rank-independent findings).
    pub ranks: Vec<usize>,
}

/// How broadly a finding was established across communicator sizes.
///
/// `commlint` stamps every finding [`Verification::Swept`] — it checked a
/// finite rank range and knows nothing beyond it. `commprove` upgrades
/// findings in the affine-congruence class to the quantified forms, backed
/// by a certificate (see the `commprove` crate).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verification {
    /// Holds for every communicator size `N >= from`.
    Proved {
        /// Smallest size the claim covers.
        from: usize,
    },
    /// Holds for every `N >= from` whose residue `N mod modulus` is in
    /// `residues` (and for no other `N >= from`).
    ProvedCongruent {
        /// Smallest size the claim covers.
        from: usize,
        /// Case-split modulus.
        modulus: usize,
        /// Residues of `N` at which the finding fires.
        residues: Vec<usize>,
    },
    /// Only the finite sweep `min..=max` was checked.
    Swept {
        /// First swept size.
        min: usize,
        /// Last swept size.
        max: usize,
    },
}

impl fmt::Display for Verification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verification::Proved { from } => write!(f, "proved ∀N≥{from}"),
            Verification::ProvedCongruent {
                from,
                modulus,
                residues,
            } => {
                let rs = residues
                    .iter()
                    .map(|r| r.to_string())
                    .collect::<Vec<_>>()
                    .join(",");
                write!(f, "proved ∀N≥{from}, N≡{rs} (mod {modulus})")
            }
            Verification::Swept { min, max } => write!(f, "swept {min}..={max}"),
        }
    }
}

/// One coded diagnostic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diag {
    /// Catalogue code.
    pub code: LintCode,
    /// Severity (the CI gate fails on [`Severity::Warning`] and above).
    pub severity: Severity,
    /// Human-readable description. Concrete numbers come from the witness
    /// rank count.
    pub message: String,
    /// Source location, when the spec came from pragma text.
    pub span: Option<SrcSpan>,
    /// Region index within the linted source (0-based).
    pub region: usize,
    /// `comm_p2p` site id, if the finding is instance-specific.
    pub site: Option<u32>,
    /// Stable identity across rank counts: the sweep driver merges diags
    /// with equal `(code, region, site, key)` and keeps the first witness.
    pub key: String,
    /// Failing rank-count witness.
    pub witness: Option<RankWitness>,
    /// How broadly the finding was established. `lint_region_at` leaves it
    /// `None` (one concrete count proves nothing about a range); the sweep
    /// and prover drivers stamp it.
    pub verification: Option<Verification>,
}

impl Diag {
    /// Merge identity across rank counts.
    pub fn identity(&self) -> (LintCode, usize, Option<u32>, &str) {
        (self.code, self.region, self.site, self.key.as_str())
    }
}

impl fmt::Display for Diag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{} {}]",
            self.severity.keyword(),
            self.code.code(),
            self.code.name()
        )?;
        if let Some(sp) = self.span {
            write!(f, " at {sp}")?;
        }
        write!(f, ": {}", self.message)?;
        if let Some(w) = &self.witness {
            write!(f, " (fails at nranks={}", w.nranks)?;
            if !w.ranks.is_empty() {
                write!(f, "; ranks {}", join_ranks(&w.ranks))?;
            }
            write!(f, ")")?;
        }
        if let Some(v) = &self.verification {
            write!(f, " [{v}]")?;
        }
        Ok(())
    }
}

fn join_ranks(ranks: &[usize]) -> String {
    const SHOWN: usize = 8;
    let mut out = ranks
        .iter()
        .take(SHOWN)
        .map(|r| r.to_string())
        .collect::<Vec<_>>()
        .join(",");
    if ranks.len() > SHOWN {
        out.push_str(&format!(",… ({} total)", ranks.len()));
    }
    out
}

fn witness(nranks: usize, ranks: Vec<usize>) -> Option<RankWitness> {
    Some(RankWitness { nranks, ranks })
}

/// Lint one `comm_parameters` region (or standalone `comm_p2p` wrapped in a
/// default region) at one concrete rank count, with `vars` bound. Returns
/// every finding that holds at this count; the caller sweeps rank counts
/// and merges (see `commlint`).
pub fn lint_region_at(
    region: usize,
    spec: &ParamsSpec,
    nranks: usize,
    vars: &HashMap<String, i64>,
) -> Vec<Diag> {
    let mut out = Vec::new();
    let mut union_edges: Vec<Edge> = Vec::new();
    let mut any_single_cycle = false;
    let mut all_matched = true;

    for (idx, p2p) in spec.body.iter().enumerate() {
        let merged = p2p.clauses.merged_with(&spec.clauses);
        let g = resolve_graph(p2p, Some(&spec.clauses), nranks, vars);
        let site = Some(p2p.site);

        // -- CI008: opaque host code in clauses -----------------------------
        // Rank-count independent by construction, so the witness is
        // deliberately absent: the sweep's identity merge collapses the
        // per-count firings into exactly one finding per site.
        let mut opaque: Vec<&'static str> = Vec::new();
        for e in [
            &merged.sender,
            &merged.receiver,
            &merged.count,
            &merged.max_comm_iter,
        ]
        .into_iter()
        .flatten()
        {
            e.opaque_labels(&mut opaque);
        }
        for c in [&merged.sendwhen, &merged.receivewhen]
            .into_iter()
            .flatten()
        {
            c.opaque_labels(&mut opaque);
        }
        if !opaque.is_empty() {
            let labels = opaque
                .iter()
                .map(|l| format!("<{l}>"))
                .collect::<Vec<_>>()
                .join(", ");
            out.push(Diag {
                code: LintCode::UnresolvedClause,
                severity: Severity::Warning,
                message: format!(
                    "clause expression(s) contain opaque host code ({labels}) that static \
                     analysis cannot reason about: verdicts degrade to concrete \
                     per-rank-count evaluation"
                ),
                span: p2p.spans.routing().or(spec.spans.routing()),
                region,
                site,
                key: format!("p{idx}:opaque"),
                witness: None,
                verification: None,
            });
        }

        // -- CI008: unresolved clause expressions ---------------------------
        if !g.unresolved.is_empty() {
            out.push(Diag {
                code: LintCode::UnresolvedClause,
                severity: Severity::Warning,
                message: "clause expressions could not be resolved statically (unknown \
                          variables or out-of-range rank values)"
                    .into(),
                span: p2p.spans.routing().or(spec.spans.routing()),
                region,
                site,
                key: format!("p{idx}"),
                witness: witness(nranks, g.unresolved.clone()),
                verification: None,
            });
        }

        // -- CI001: matching completeness ----------------------------------
        let unmatched_sends = g.unmatched_sends();
        if !unmatched_sends.is_empty() {
            let first = unmatched_sends[0];
            out.push(Diag {
                code: LintCode::UnmatchedSend,
                severity: Severity::Error,
                message: format!(
                    "declared send(s) have no matching declared receive (first: rank {} -> \
                     rank {}); a blocking receiver would hang",
                    first.src, first.dst
                ),
                span: p2p.spans.routing().or(spec.spans.routing()),
                region,
                site,
                key: format!("p{idx}:sends"),
                witness: witness(nranks, unmatched_sends.iter().map(|e| e.src).collect()),
                verification: None,
            });
        }
        let unmatched_recvs = g.unmatched_recvs();
        if !unmatched_recvs.is_empty() {
            let first = unmatched_recvs[0];
            out.push(Diag {
                code: LintCode::UnmatchedSend,
                severity: Severity::Error,
                message: format!(
                    "declared receive(s) have no matching declared send (first: rank {} <- \
                     rank {}); the receive would block forever",
                    first.dst, first.src
                ),
                span: p2p.spans.routing().or(spec.spans.routing()),
                region,
                site,
                key: format!("p{idx}:recvs"),
                witness: witness(nranks, unmatched_recvs.iter().map(|e| e.dst).collect()),
                verification: None,
            });
        }

        // -- CI002 (per instance): blocking wait-for cycle -----------------
        let dl = deadlock_report(&g);
        if dl.blocking_would_deadlock {
            any_single_cycle = true;
            let severity = if dl.nonblocking_safe {
                Severity::Note
            } else {
                Severity::Warning
            };
            out.push(Diag {
                code: LintCode::BlockingDeadlockCycle,
                severity,
                message: if dl.nonblocking_safe {
                    "a blocking-send translation of this pattern would deadlock (wait-for \
                     cycle among the witness ranks); the directive's non-blocking \
                     translation is safe"
                        .into()
                } else {
                    "wait-for cycle among the witness ranks, and matching is incomplete: \
                     even the non-blocking translation is not known to be safe"
                        .into()
                },
                span: p2p.spans.routing().or(spec.spans.routing()),
                region,
                site,
                key: format!("p{idx}"),
                witness: witness(nranks, dl.cycle.clone()),
                verification: None,
            });
        }
        if !g.fully_matched() {
            all_matched = false;
        }
        union_edges.extend(g.matched());

        // -- CI003: intra-directive sbuf/rbuf aliasing ----------------------
        let senders: Vec<usize> = g.sends.iter().map(|e| e.src).collect();
        let both: Vec<usize> = g
            .recvs
            .iter()
            .map(|e| e.dst)
            .filter(|d| senders.contains(d))
            .collect();
        if !both.is_empty() {
            for (si, sb) in p2p.sbuf.iter().enumerate() {
                for (ri, rb) in p2p.rbuf.iter().enumerate() {
                    let send = Access::read(ByteSpan::of_buf(sb));
                    let recv = Access::write(ByteSpan::of_buf(rb));
                    if send.conflicts(&recv) {
                        out.push(Diag {
                            code: LintCode::SbufRbufAliasing,
                            severity: Severity::Error,
                            message: format!(
                                "sbuf `{}` overlaps rbuf `{}` in memory on rank(s) that both \
                                 send and receive: the receive writes bytes the send is \
                                 reading (undefined behaviour under an MPI one-sided \
                                 translation)",
                                sb.name, rb.name
                            ),
                            span: p2p
                                .spans
                                .sbuf
                                .get(si)
                                .copied()
                                .or_else(|| p2p.spans.buffers()),
                            region,
                            site,
                            key: format!("p{idx}:s{si}:r{ri}"),
                            witness: witness(nranks, both.clone()),
                            verification: None,
                        });
                    }
                }
            }
        }

        // -- CI004: send/receive byte-size mismatch -------------------------
        // One reusable environment: only the rank varies per query.
        let mut count_env = EvalEnv {
            rank: 0,
            nranks: nranks as i64,
            vars: vars.into(),
        };
        let mut count_at = |rank: usize| -> Option<i64> {
            count_env.rank = rank as i64;
            match &merged.count {
                Some(c) => c.eval(&count_env).ok(),
                None => p2p.inferred_count().map(|c| c as i64),
            }
        };
        if p2p.sbuf.len() != p2p.rbuf.len() && !p2p.sbuf.is_empty() && !p2p.rbuf.is_empty() {
            out.push(Diag {
                code: LintCode::SizeMismatch,
                severity: Severity::Error,
                message: format!(
                    "`sbuf` lists {} buffer(s) but `rbuf` lists {}: buffers pair \
                     positionally, so the lists must have equal length",
                    p2p.sbuf.len(),
                    p2p.rbuf.len()
                ),
                span: p2p.spans.buffers(),
                region,
                site,
                key: format!("p{idx}:lists"),
                witness: witness(nranks, vec![]),
                verification: None,
            });
        }
        'pairs: for (k, (sb, rb)) in p2p.sbuf.iter().zip(&p2p.rbuf).enumerate() {
            for e in g.matched() {
                let (Some(cs), Some(cr)) = (count_at(e.src), count_at(e.dst)) else {
                    continue;
                };
                let (cs, cr) = (cs.max(0) as usize, cr.max(0) as usize);
                let send_bytes = cs * sb.elem.packed_size();
                let recv_bytes = cr * rb.elem.packed_size();
                if send_bytes != recv_bytes {
                    out.push(Diag {
                        code: LintCode::SizeMismatch,
                        severity: Severity::Error,
                        message: format!(
                            "paired sbuf `{}` / rbuf `{}` disagree on transfer size for \
                             edge rank {} -> rank {}: {} byte(s) sent vs {} byte(s) \
                             expected",
                            sb.name, rb.name, e.src, e.dst, send_bytes, recv_bytes
                        ),
                        span: p2p
                            .spans
                            .count
                            .or(spec.spans.count)
                            .or_else(|| p2p.spans.buffers()),
                        region,
                        site,
                        key: format!("p{idx}:pair{k}:size"),
                        witness: witness(nranks, vec![e.src, e.dst]),
                        verification: None,
                    });
                    continue 'pairs;
                }
                if rb.len > 0 && cr > rb.len {
                    out.push(Diag {
                        code: LintCode::SizeMismatch,
                        severity: Severity::Error,
                        message: format!(
                            "transfer of {} element(s) overflows rbuf `{}` (capacity {} \
                             element(s))",
                            cr, rb.name, rb.len
                        ),
                        span: p2p
                            .spans
                            .rbuf
                            .get(k)
                            .copied()
                            .or_else(|| p2p.spans.buffers()),
                        region,
                        site,
                        key: format!("p{idx}:pair{k}:overflow"),
                        witness: witness(nranks, vec![e.dst]),
                        verification: None,
                    });
                    continue 'pairs;
                }
                // Layout-aware extent check: a strided layout touches
                // memory beyond its packed size, so the byte extent must
                // be computed through the descriptor, not from the element
                // count (which the check above already covered). Skipped
                // for struct-of-arrays, whose summary address range is a
                // hull over unrelated member arrays.
                let have = rb.addr.1.saturating_sub(rb.addr.0);
                if have > 0
                    && !matches!(rb.elem, crate::buffer::ElemKind::Soa(_))
                    && rb.elem.span_bytes(cr) > have
                {
                    out.push(Diag {
                        code: LintCode::SizeMismatch,
                        severity: Severity::Error,
                        message: format!(
                            "transfer of {} element(s) spans {} byte(s) through the \
                             layout of rbuf `{}`, overflowing its {} byte(s) of memory",
                            cr,
                            rb.elem.span_bytes(cr),
                            rb.name,
                            have
                        ),
                        span: p2p
                            .spans
                            .rbuf
                            .get(k)
                            .copied()
                            .or_else(|| p2p.spans.buffers()),
                        region,
                        site,
                        key: format!("p{idx}:pair{k}:extent"),
                        witness: witness(nranks, vec![e.dst]),
                        verification: None,
                    });
                    continue 'pairs;
                }
            }
        }

        // -- CI005: sendwhen/receivewhen pairing and consistency ------------
        match (&merged.sendwhen, &merged.receivewhen) {
            (Some(_), None) | (None, Some(_)) => {
                let present = if merged.sendwhen.is_some() {
                    "`sendwhen`"
                } else {
                    "`receivewhen`"
                };
                out.push(Diag {
                    code: LintCode::SendwhenPairing,
                    severity: Severity::Error,
                    message: format!(
                        "{present} without its partner: `sendwhen` and `receivewhen` must \
                         both be present or both be omitted"
                    ),
                    span: p2p.spans.when().or(spec.spans.when()),
                    region,
                    site,
                    key: format!("p{idx}:pairing"),
                    witness: witness(nranks, vec![]),
                    verification: None,
                });
            }
            (Some(_), Some(_)) => {
                // The graph resolution already evaluated both predicates
                // at every rank; consume its record instead of re-scanning.
                let senders = &g.senders;
                let receivers = &g.receivers;
                if !g.when_unknown && senders.is_empty() != receivers.is_empty() {
                    let (what, who) = if receivers.is_empty() {
                        (
                            "`sendwhen` selects sender(s) but `receivewhen` selects no receiver",
                            senders.clone(),
                        )
                    } else {
                        (
                            "`receivewhen` selects receiver(s) but `sendwhen` selects no sender",
                            receivers.clone(),
                        )
                    };
                    out.push(Diag {
                        code: LintCode::SendwhenPairing,
                        severity: Severity::Warning,
                        message: format!(
                            "{what}: the predicates are inconsistent and every \
                                          selected participant would wait forever"
                        ),
                        span: p2p.spans.when().or(spec.spans.when()),
                        region,
                        site,
                        key: format!("p{idx}:consistency"),
                        witness: witness(nranks, who),
                        verification: None,
                    });
                }
            }
            (None, None) => {}
        }

        // -- CI007: target-infeasible clause combination --------------------
        let target = merged.target.unwrap_or_default();
        let place = merged.place_sync.unwrap_or_default();
        if target != Target::Mpi2Side
            && place != PlaceSync::EndParamRegion
            && merged.max_comm_iter.is_none()
        {
            out.push(Diag {
                code: LintCode::TargetInfeasible,
                severity: Severity::Warning,
                message: format!(
                    "{} defers synchronization ({}) but `max_comm_iter` is absent: the \
                     symmetric staging window cannot be sized statically and repeated \
                     executions overflow it",
                    target.keyword(),
                    place.keyword()
                ),
                span: p2p
                    .spans
                    .place_sync
                    .or(spec.spans.place_sync)
                    .or(p2p.spans.target)
                    .or(spec.spans.target)
                    .or_else(|| p2p.spans.routing().or(spec.spans.routing())),
                region,
                site,
                key: format!("p{idx}"),
                witness: witness(nranks, vec![]),
                verification: None,
            });
        }
    }

    // -- CI006: cross-directive buffer overlap (consolidation safety) -------
    for (i, j, a, b) in buffer_independence(spec).conflicts {
        out.push(Diag {
            code: LintCode::ConsolidationUnsafeOverlap,
            severity: Severity::Warning,
            message: format!(
                "buffer `{a}` of comm_p2p #{i} overlaps buffer `{b}` of comm_p2p #{j}: \
                 consolidating their synchronization would reorder conflicting accesses, \
                 so the region falls back to per-instance synchronization"
            ),
            span: spec
                .body
                .get(j)
                .and_then(|p| p.spans.buffers())
                .or_else(|| spec.spans.buffers()),
            region,
            site: spec.body.get(j).map(|p| p.site),
            key: format!("c{i}:{j}:{a}:{b}"),
            witness: witness(nranks, vec![]),
            verification: None,
        });
    }

    // -- CI009–CI012: one-sided races between synchronization points -------
    out.extend(crate::race::lint_races(region, spec, nranks, vars));

    // -- CI002 (cross-directive): cycle spanning the consolidated region ----
    if spec.body.len() > 1 && !any_single_cycle {
        if let Some(cycle) = find_cycle(&union_edges) {
            let severity = if all_matched {
                Severity::Note
            } else {
                Severity::Warning
            };
            out.push(Diag {
                code: LintCode::BlockingDeadlockCycle,
                severity,
                message: "blocking wait-for cycle spans the consolidated region (no single \
                          comm_p2p is cyclic on its own): a blocking translation of the \
                          region would deadlock across directive boundaries"
                    .into(),
                span: spec.spans.routing(),
                region,
                site: None,
                key: "region".into(),
                witness: witness(nranks, cycle),
                verification: None,
            });
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::{BufMeta, ElemKind};
    use crate::clause::ClauseSet;
    use crate::dir::P2pSpec;
    use crate::expr::{CondExpr, RankExpr};
    use mpisim::dtype::BasicType;

    fn meta(name: &str, lo: usize, bytes: usize) -> BufMeta {
        BufMeta {
            name: name.to_string(),
            elem: ElemKind::Prim(BasicType::U8),
            len: bytes,
            addr: (lo, lo + bytes),
        }
    }

    fn ring_clauses() -> ClauseSet {
        ClauseSet {
            sender: Some(
                (RankExpr::rank() - RankExpr::lit(1) + RankExpr::nranks()) % RankExpr::nranks(),
            ),
            receiver: Some((RankExpr::rank() + RankExpr::lit(1)) % RankExpr::nranks()),
            ..ClauseSet::default()
        }
    }

    fn p2p(clauses: ClauseSet, sbuf: Vec<BufMeta>, rbuf: Vec<BufMeta>) -> P2pSpec {
        P2pSpec {
            clauses,
            sbuf,
            rbuf,
            has_overlap_body: false,
            site: 1,
            spans: DirSpans::default(),
        }
    }

    fn codes(diags: &[Diag]) -> Vec<&'static str> {
        let mut v: Vec<&'static str> = diags.iter().map(|d| d.code.code()).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    #[test]
    fn clean_ring_only_notes() {
        let spec = ParamsSpec {
            clauses: ring_clauses(),
            body: vec![p2p(
                ClauseSet::default(),
                vec![meta("s", 0, 8)],
                vec![meta("r", 100, 8)],
            )],
            spans: DirSpans::default(),
        };
        let diags = lint_region_at(0, &spec, 5, &HashMap::new());
        // The ring triggers only the advisory blocking-deadlock note.
        assert_eq!(codes(&diags), vec!["CI002"]);
        assert!(diags.iter().all(|d| d.severity == Severity::Note));
        assert_eq!(diags[0].witness.as_ref().unwrap().nranks, 5);
        assert_eq!(diags[0].witness.as_ref().unwrap().ranks.len(), 5);
    }

    #[test]
    fn aliasing_detected_only_for_self_transfer_ranks() {
        // Ring: every rank both sends and receives; same buffer on both
        // sides -> CI003.
        let spec = ParamsSpec {
            clauses: ring_clauses(),
            body: vec![p2p(
                ClauseSet::default(),
                vec![meta("buf", 0, 8)],
                vec![meta("buf", 0, 8)],
            )],
            spans: DirSpans::default(),
        };
        let diags = lint_region_at(0, &spec, 4, &HashMap::new());
        assert!(diags.iter().any(|d| d.code == LintCode::SbufRbufAliasing));

        // Disjoint sender/receiver sets: the same aliasing is fine
        // (different processes own the two sides).
        let clauses = ClauseSet {
            sender: Some(RankExpr::lit(0)),
            receiver: Some(RankExpr::lit(1)),
            sendwhen: Some(RankExpr::rank().eq(RankExpr::lit(0))),
            receivewhen: Some(RankExpr::rank().eq(RankExpr::lit(1))),
            ..ClauseSet::default()
        };
        let spec = ParamsSpec {
            clauses,
            body: vec![p2p(
                ClauseSet::default(),
                vec![meta("buf", 0, 8)],
                vec![meta("buf", 0, 8)],
            )],
            spans: DirSpans::default(),
        };
        let diags = lint_region_at(0, &spec, 4, &HashMap::new());
        assert!(!diags.iter().any(|d| d.code == LintCode::SbufRbufAliasing));
    }

    #[test]
    fn size_mismatch_with_rank_dependent_count() {
        // count(rank+1): sender and receiver of each ring edge disagree.
        let mut clauses = ring_clauses();
        clauses.count = Some(RankExpr::rank() + RankExpr::lit(1));
        let spec = ParamsSpec {
            clauses,
            body: vec![p2p(
                ClauseSet::default(),
                vec![meta("s", 0, 64)],
                vec![meta("r", 100, 64)],
            )],
            spans: DirSpans::default(),
        };
        let diags = lint_region_at(0, &spec, 4, &HashMap::new());
        let d = diags
            .iter()
            .find(|d| d.code == LintCode::SizeMismatch)
            .expect("CI004");
        assert_eq!(d.severity, Severity::Error);
        assert!(d.witness.is_some());
    }

    #[test]
    fn predicate_inconsistency_flagged() {
        let clauses = ClauseSet {
            sender: Some(RankExpr::lit(0)),
            receiver: Some(RankExpr::lit(1)),
            sendwhen: Some(RankExpr::rank().eq(RankExpr::lit(0))),
            // Nobody ever receives.
            receivewhen: Some(RankExpr::rank().lt(RankExpr::lit(0))),
            ..ClauseSet::default()
        };
        let spec = ParamsSpec {
            clauses,
            body: vec![p2p(
                ClauseSet::default(),
                vec![meta("s", 0, 8)],
                vec![meta("r", 100, 8)],
            )],
            spans: DirSpans::default(),
        };
        let diags = lint_region_at(0, &spec, 4, &HashMap::new());
        assert!(diags
            .iter()
            .any(|d| d.code == LintCode::SendwhenPairing && d.key.ends_with("consistency")));
    }

    #[test]
    fn one_sided_deferred_sync_without_bound_flagged() {
        let mut clauses = ring_clauses();
        clauses.target = Some(Target::Shmem);
        clauses.place_sync = Some(PlaceSync::EndAdjParamRegions);
        let spec = ParamsSpec {
            clauses: clauses.clone(),
            body: vec![p2p(
                ClauseSet::default(),
                vec![meta("s", 0, 8)],
                vec![meta("r", 100, 8)],
            )],
            spans: DirSpans::default(),
        };
        let diags = lint_region_at(0, &spec, 4, &HashMap::new());
        assert!(diags.iter().any(|d| d.code == LintCode::TargetInfeasible));

        // With the bound the combination is lowerable.
        let mut bounded = clauses;
        bounded.max_comm_iter = Some(RankExpr::lit(16));
        let spec = ParamsSpec {
            clauses: bounded,
            body: vec![p2p(
                ClauseSet::default(),
                vec![meta("s", 0, 8)],
                vec![meta("r", 100, 8)],
            )],
            spans: DirSpans::default(),
        };
        let diags = lint_region_at(0, &spec, 4, &HashMap::new());
        assert!(!diags.iter().any(|d| d.code == LintCode::TargetInfeasible));
    }

    #[test]
    fn cross_directive_cycle_detected() {
        // p2p#0: 0 -> 1, p2p#1: 1 -> 0. Neither is cyclic alone; the
        // consolidated region is.
        let one_way = |src: i64, dst: i64| ClauseSet {
            sender: Some(RankExpr::lit(src)),
            receiver: Some(RankExpr::lit(dst)),
            sendwhen: Some(RankExpr::rank().eq(RankExpr::lit(src))),
            receivewhen: Some(RankExpr::rank().eq(RankExpr::lit(dst))),
            ..ClauseSet::default()
        };
        let spec = ParamsSpec {
            clauses: ClauseSet::default(),
            body: vec![
                p2p(
                    one_way(0, 1),
                    vec![meta("a", 0, 8)],
                    vec![meta("b", 100, 8)],
                ),
                p2p(
                    one_way(1, 0),
                    vec![meta("c", 200, 8)],
                    vec![meta("d", 300, 8)],
                ),
            ],
            spans: DirSpans::default(),
        };
        let diags = lint_region_at(0, &spec, 2, &HashMap::new());
        let d = diags
            .iter()
            .find(|d| d.code == LintCode::BlockingDeadlockCycle && d.site.is_none())
            .expect("region-level CI002");
        let w = d.witness.as_ref().unwrap();
        assert_eq!(w.nranks, 2);
        let mut ranks = w.ranks.clone();
        ranks.sort_unstable();
        assert_eq!(ranks, vec![0, 1]);
    }

    #[test]
    fn opaque_clause_fires_one_witness_free_ci008_per_site() {
        // An opaque guard nested under Not/And must still be reported, and
        // the diagnostic must be identical at every rank count (no witness)
        // so the sweep merges it into a single finding.
        let clauses = ClauseSet {
            sender: Some(RankExpr::opaque("route", |e| e.rank)),
            receiver: Some(RankExpr::rank()),
            sendwhen: Some(CondExpr::opaque("gate", |_| true).not().and(CondExpr::True)),
            receivewhen: Some(CondExpr::True),
            ..ClauseSet::default()
        };
        let spec = ParamsSpec {
            clauses,
            body: vec![p2p(
                ClauseSet::default(),
                vec![meta("s", 0, 8)],
                vec![meta("r", 100, 8)],
            )],
            spans: DirSpans::default(),
        };
        let per_count: Vec<Vec<Diag>> = (2..=6)
            .map(|n| {
                lint_region_at(0, &spec, n, &HashMap::new())
                    .into_iter()
                    .filter(|d| d.key.ends_with(":opaque"))
                    .collect()
            })
            .collect();
        for diags in &per_count {
            assert_eq!(diags.len(), 1, "exactly one opaque CI008 per site");
            let d = &diags[0];
            assert_eq!(d.code, LintCode::UnresolvedClause);
            assert!(d.witness.is_none());
            assert!(d.message.contains("<route>") && d.message.contains("<gate>"));
            // Identical across counts -> the sweep dedups to one finding.
            assert_eq!(d, &per_count[0][0]);
        }
    }

    #[test]
    fn display_includes_code_span_and_witness() {
        let d = Diag {
            code: LintCode::UnmatchedSend,
            severity: Severity::Error,
            message: "boom".into(),
            span: Some(SrcSpan {
                offset: 10,
                line: 3,
                col: 7,
            }),
            region: 0,
            site: Some(1),
            key: "k".into(),
            witness: Some(RankWitness {
                nranks: 3,
                ranks: vec![0, 2],
            }),
            verification: Some(Verification::Swept { min: 2, max: 16 }),
        };
        let s = d.to_string();
        assert!(s.contains("CI001"), "{s}");
        assert!(s.contains("3:7"), "{s}");
        assert!(s.contains("fails at nranks=3"), "{s}");
        assert!(s.contains("ranks 0,2"), "{s}");
        assert!(s.contains("[swept 2..=16]"), "{s}");
    }
}
