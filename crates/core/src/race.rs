//! Parametric one-sided race detection (the static half of commrace).
//!
//! The one-sided and SHMEM lowerings buy their speed by removing the
//! receiver from the critical path: data lands in the target's window
//! asynchronously and ordering comes only from the explicit
//! synchronization points — per-site signal waits, the placed region sync
//! (quiet/fence), and barriers. That re-introduces a bug class the
//! two-sided lints (CI001–CI008) never see: conflicting remote accesses
//! racing *between* synchronization points.
//!
//! This module adds the directive-level happens-before analysis behind
//! lint codes CI009–CI012 ([`lint_races`], called from
//! [`crate::diag::lint_region_at`]) and the op-level race semantics
//! ([`RaceOp`], [`analyze_ops`]) that the runtime shadow-state sanitizer
//! in `netsim` mirrors — the differential harness asserts the two halves
//! agree on generated programs.
//!
//! ## The epoch model
//!
//! A consolidated region under a one-sided target is one *epoch*: puts
//! issued anywhere in the region complete only at the placed sync
//! (`place_sync`), and the only intra-epoch ordering edges are
//!
//! * program order within one rank,
//! * a signal wait, which orders the waited deliveries before everything
//!   after the wait on the waiting rank, and
//! * the staging flow-control window, which orders a delivery after the
//!   consumption of the delivery one window earlier.
//!
//! Remote access intervals are half-open byte spans
//! `[base, base + count·elem)` built on the shared interval engine
//! ([`crate::interval`]); a rank-dependent `count` clause contributes its
//! affine normal form scaled by the element size
//! ([`crate::nf::NormExpr::scaled`]), which keeps the findings inside the
//! affine-congruence class `commprove` quantifies over.

use std::collections::BTreeMap;
use std::collections::HashMap;

use crate::analysis::resolve_graph;
use crate::buffer::BufMeta;
use crate::clause::{ClauseSet, PlaceSync, Severity, Target};
use crate::diag::{Diag, LintCode, RankWitness, SrcSpan};
use crate::dir::{P2pSpec, ParamsSpec};
use crate::expr::{EvalEnv, RankExpr, VarTable};
use crate::interval::ByteSpan;
use crate::nf::normalize_expr;

/// Whether a merged target lowers to one-sided transfers.
fn one_sided(target: Target) -> bool {
    matches!(target, Target::Mpi1Side | Target::Shmem)
}

/// Transfer element count for `rank` under the site's merged clauses.
fn count_at(
    merged: &ClauseSet,
    p2p: &P2pSpec,
    rank: usize,
    nranks: usize,
    vars: &HashMap<String, i64>,
) -> Option<usize> {
    let env = EvalEnv {
        rank: rank as i64,
        nranks: nranks as i64,
        vars: vars.into(),
    };
    let c = match &merged.count {
        Some(c) => c.eval(&env).ok()?,
        None => p2p.inferred_count().map(|c| c as i64)?,
    };
    (c > 0).then_some(c as usize)
}

/// Render the remote-access interval of `buf` symbolically when the count
/// clause normalizes to an affine form, concretely otherwise: the witness
/// text `commprove` quantifies carries `[base, base+extent)` with the
/// extent in `rank`/`nprocs` terms.
fn interval_text(
    merged: &ClauseSet,
    buf: &BufMeta,
    concrete: ByteSpan,
    vars: &HashMap<String, i64>,
) -> String {
    let elem = buf.elem.packed_size() as i64;
    let symbolic = merged.count.as_ref().and_then(|c: &RankExpr| {
        let mut table = VarTable::default();
        for (k, v) in vars {
            table.set(k, *v);
        }
        let nf = normalize_expr(c, &table).ok()?;
        match nf.scaled(elem)? {
            // Only a genuinely parametric extent earns the symbolic form;
            // a constant one reads better as concrete bytes.
            crate::nf::NormExpr::Lin(l) if l.a != 0 || l.n != 0 => {
                Some(format!("[{}, {}+{})", buf.addr.0, buf.addr.0, l))
            }
            _ => None,
        }
    });
    symbolic.unwrap_or_else(|| concrete.to_string())
}

/// Per-site facts the race lints consume.
struct SiteView {
    idx: usize,
    one_sided: bool,
    place: PlaceSync,
    iterated: bool,
    /// Put edges, as declared by the send side (one-sided transfers fire
    /// without receiver participation).
    sends: Vec<(usize, usize)>,
}

fn site_views(spec: &ParamsSpec, nranks: usize, vars: &HashMap<String, i64>) -> Vec<SiteView> {
    spec.body
        .iter()
        .enumerate()
        .map(|(idx, p2p)| {
            let merged = p2p.clauses.merged_with(&spec.clauses);
            let g = resolve_graph(p2p, Some(&spec.clauses), nranks, vars);
            let env = EvalEnv {
                rank: 0,
                nranks: nranks as i64,
                vars: vars.into(),
            };
            let iterated = match &merged.max_comm_iter {
                Some(e) => e.eval(&env).map(|n| n >= 2).unwrap_or(true),
                None => true,
            };
            SiteView {
                idx,
                one_sided: one_sided(merged.target.unwrap_or_default()),
                place: merged.place_sync.unwrap_or_default(),
                iterated,
                sends: g.sends.iter().map(|e| (e.src, e.dst)).collect(),
            }
        })
        .collect()
}

/// Lint one region at one concrete rank count for the one-sided race
/// catalog (CI009–CI012). Like every `lint_region_at` check, this is
/// evaluated per rank count; `commlint` merges the sweep into
/// smallest-failing-N witnesses and `commprove` replays it across a
/// verified window to quantify ∀N.
pub fn lint_races(
    region: usize,
    spec: &ParamsSpec,
    nranks: usize,
    vars: &HashMap<String, i64>,
) -> Vec<Diag> {
    let mut out = Vec::new();
    // Every race code needs at least one one-sided site to anchor on
    // (two-sided views only ever appear as the read side of a one-sided
    // conflict), so a region whose merged targets are all two-sided can
    // skip the per-rank graph resolution entirely. The target clause is
    // a plain enum — this costs two Option reads per site.
    if !spec.body.iter().any(|p2p| {
        one_sided(
            p2p.clauses
                .target
                .or(spec.clauses.target)
                .unwrap_or_default(),
        )
    }) {
        return out;
    }
    let views = site_views(spec, nranks, vars);

    // -- CI009: overlapping concurrent puts to the same target window -------
    // A one-sided lowering turns every declared send edge into a put into
    // the destination's `rbuf` window. Two origins mapped to one
    // destination write the same interval with no ordering edge between
    // them inside the epoch.
    for view in views.iter().filter(|v| v.one_sided) {
        let p2p = &spec.body[view.idx];
        let merged = p2p.clauses.merged_with(&spec.clauses);
        let mut by_dst: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for &(src, dst) in &view.sends {
            by_dst.entry(dst).or_default().push(src);
        }
        for (k, rb) in p2p.rbuf.iter().enumerate() {
            let mut witness_ranks: Vec<usize> = Vec::new();
            let mut sample: Option<(usize, ByteSpan)> = None;
            for (&dst, srcs) in &by_dst {
                if srcs.len() < 2 {
                    continue;
                }
                // All origins put from the window base; the writes overlap
                // as soon as two of them transfer at least one element.
                let writers: Vec<usize> = srcs
                    .iter()
                    .copied()
                    .filter(|&s| count_at(&merged, p2p, s, nranks, vars).is_some())
                    .collect();
                if writers.len() < 2 {
                    continue;
                }
                let c = count_at(&merged, p2p, writers[0], nranks, vars).unwrap_or(1);
                sample.get_or_insert((dst, ByteSpan::of_transfer(rb, c)));
                witness_ranks.extend(&writers);
            }
            if let Some((dst, span)) = sample {
                witness_ranks.sort_unstable();
                witness_ranks.dedup();
                let interval = interval_text(&merged, rb, span, vars);
                out.push(Diag {
                    code: LintCode::OverlappingPuts,
                    severity: Severity::Error,
                    message: format!(
                        "{} origins put into the same target window `{}` {} of rank {} \
                         within one epoch: concurrent one-sided writes overlap with no \
                         ordering edge between them, so the destination bytes are \
                         undefined",
                        witness_ranks.len(),
                        rb.name,
                        interval,
                        dst
                    ),
                    span: p2p
                        .spans
                        .rbuf
                        .get(k)
                        .copied()
                        .or_else(|| p2p.spans.buffers())
                        .or_else(|| spec.spans.buffers()),
                    region,
                    site: Some(p2p.site),
                    key: format!("p{}:pair{k}:fanin", view.idx),
                    witness: Some(RankWitness {
                        nranks,
                        ranks: witness_ranks,
                    }),
                    verification: None,
                });
            }
        }
    }

    // -- CI010 / CI012: a put delivery vs. a source read across sites -------
    // Rank r receives a put into `rbuf` at site w and reads an overlapping
    // `sbuf` as the source of site rd. Program order decides the severity:
    //
    // * w < rd — the put lowering is safe (r's signal wait at site w
    //   precedes the read at site rd), but the intent equally admits a get
    //   lowering where site rd's transfer pulls r's `sbuf` remotely,
    //   unordered with site w's delivery: a portability hazard (warning).
    // * w > rd — r reads the source at site rd *before* reaching site w's
    //   signal wait, while a faster origin may already have passed its own
    //   site w and fired the put: the delivery races the read under every
    //   one-sided lowering (error).
    for w in &views {
        if !w.one_sided {
            continue;
        }
        let wp = &spec.body[w.idx];
        let wmerged = wp.clauses.merged_with(&spec.clauses);
        for rd in &views {
            if rd.idx == w.idx {
                continue;
            }
            let rp = &spec.body[rd.idx];
            let rmerged = rp.clauses.merged_with(&spec.clauses);
            let mut shared: Vec<usize> = w
                .sends
                .iter()
                .map(|&(_, dst)| dst)
                .filter(|&r| rd.sends.iter().any(|&(src, _)| src == r))
                .collect();
            shared.sort_unstable();
            shared.dedup();
            if shared.is_empty() {
                continue;
            }
            for (kw, rb) in wp.rbuf.iter().enumerate() {
                for (kr, sb) in rp.sbuf.iter().enumerate() {
                    let racy: Vec<usize> = shared
                        .iter()
                        .copied()
                        .filter(|&r| {
                            let cw = count_at(&wmerged, wp, r, nranks, vars);
                            let cr = count_at(&rmerged, rp, r, nranks, vars);
                            match (cw, cr) {
                                (Some(cw), Some(cr)) => ByteSpan::of_transfer(rb, cw)
                                    .overlaps(&ByteSpan::of_transfer(sb, cr)),
                                _ => false,
                            }
                        })
                        .collect();
                    if racy.is_empty() {
                        continue;
                    }
                    let r0 = racy[0];
                    let cw = count_at(&wmerged, wp, r0, nranks, vars).unwrap_or(1);
                    let interval = interval_text(&wmerged, rb, ByteSpan::of_transfer(rb, cw), vars);
                    let (code, severity, message, span): (_, _, String, Option<SrcSpan>) =
                        if w.idx < rd.idx {
                            (
                                LintCode::GetPutConflict,
                                Severity::Warning,
                                format!(
                                    "rank {r0} receives a put into `{}` {} at comm_p2p #{} and \
                                     sources `{}` from overlapping memory at comm_p2p #{}: safe \
                                     under the put lowering (the signal wait orders the sites), \
                                     but a get lowering of #{} reads the source remotely, \
                                     unordered with #{}'s delivery — a get/put conflict in the \
                                     same epoch",
                                    rb.name, interval, w.idx, sb.name, rd.idx, rd.idx, w.idx
                                ),
                                rp.spans
                                    .sbuf
                                    .get(kr)
                                    .copied()
                                    .or_else(|| rp.spans.buffers())
                                    .or_else(|| spec.spans.buffers()),
                            )
                        } else {
                            (
                                LintCode::ReadBeforeSignalWait,
                                Severity::Error,
                                format!(
                                    "rank {r0} reads `{}` as the source of comm_p2p #{} before \
                                     reaching the signal wait of comm_p2p #{}, whose put \
                                     delivery into `{}` {} overlaps it: a faster origin's \
                                     delivery lands mid-read (read of a signalled region \
                                     before the signal wait)",
                                    sb.name, rd.idx, w.idx, rb.name, interval
                                ),
                                wp.spans
                                    .rbuf
                                    .get(kw)
                                    .copied()
                                    .or_else(|| wp.spans.buffers())
                                    .or_else(|| spec.spans.buffers()),
                            )
                        };
                    out.push(Diag {
                        code,
                        severity,
                        message,
                        span,
                        region,
                        site: Some(rp.site),
                        key: format!("w{}:r{}:{kw}:{kr}", w.idx, rd.idx),
                        witness: Some(RankWitness {
                            nranks,
                            ranks: racy,
                        }),
                        verification: None,
                    });
                }
            }
        }
    }

    // -- CI011: source-buffer reuse before put completion --------------------
    // With the quiet deferred past the region end (`place_sync` other than
    // END_PARAM_REGION) and the region executing again, iteration k+1's
    // delivery into `rbuf` rewrites memory that iteration k's put is still
    // entitled to read as its source: write-before-quiet.
    for j in views.iter().filter(|v| v.one_sided) {
        if j.place == PlaceSync::EndParamRegion || !j.iterated {
            continue;
        }
        let jp = &spec.body[j.idx];
        let jmerged = jp.clauses.merged_with(&spec.clauses);
        for i in &views {
            if i.idx == j.idx {
                continue;
            }
            let ip = &spec.body[i.idx];
            let imerged = ip.clauses.merged_with(&spec.clauses);
            let mut reusers: Vec<usize> = j
                .sends
                .iter()
                .map(|&(src, _)| src)
                .filter(|&r| i.sends.iter().any(|&(_, dst)| dst == r))
                .collect();
            reusers.sort_unstable();
            reusers.dedup();
            if reusers.is_empty() {
                continue;
            }
            for (kj, sb) in jp.sbuf.iter().enumerate() {
                for (ki, rb) in ip.rbuf.iter().enumerate() {
                    let racy: Vec<usize> = reusers
                        .iter()
                        .copied()
                        .filter(|&r| {
                            let cj = count_at(&jmerged, jp, r, nranks, vars);
                            let ci = count_at(&imerged, ip, r, nranks, vars);
                            match (cj, ci) {
                                (Some(cj), Some(ci)) => ByteSpan::of_transfer(sb, cj)
                                    .overlaps(&ByteSpan::of_transfer(rb, ci)),
                                _ => false,
                            }
                        })
                        .collect();
                    if racy.is_empty() {
                        continue;
                    }
                    let r0 = racy[0];
                    let cj = count_at(&jmerged, jp, r0, nranks, vars).unwrap_or(1);
                    let interval = interval_text(&jmerged, sb, ByteSpan::of_transfer(sb, cj), vars);
                    out.push(Diag {
                        code: LintCode::SourceReuseBeforeQuiet,
                        severity: Severity::Error,
                        message: format!(
                            "`{}` {} is the put source of comm_p2p #{} but the quiet is \
                             deferred past the region ({}); on the next execution the \
                             delivery of comm_p2p #{} into `{}` rewrites it while the \
                             previous put may still read it (source reuse before quiet)",
                            sb.name,
                            interval,
                            j.idx,
                            j.place.keyword(),
                            i.idx,
                            rb.name
                        ),
                        span: jp
                            .spans
                            .place_sync
                            .or(spec.spans.place_sync)
                            .or_else(|| jp.spans.sbuf.get(kj).copied())
                            .or_else(|| jp.spans.buffers())
                            .or_else(|| spec.spans.buffers()),
                        region,
                        site: Some(jp.site),
                        key: format!("q{}:{}:{kj}:{ki}", j.idx, i.idx),
                        witness: Some(RankWitness {
                            nranks,
                            ranks: racy,
                        }),
                        verification: None,
                    });
                }
            }
        }
    }

    out
}

// ---------------------------------------------------------------------------
// Op-level race semantics: the contract the runtime sanitizer mirrors.
// ---------------------------------------------------------------------------

/// One operation of a rank's program over a single symmetric segment.
/// This is the common language of the static analyzer ([`analyze_ops`])
/// and the `netsim` shadow-state sanitizer: the differential harness
/// executes the same [`RaceProgram`] through both and asserts the verdicts
/// agree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RaceOp {
    /// One-sided put into `target`'s copy at `[offset, offset+len)`.
    /// `src_offset` names the source interval in the origin's own copy
    /// (`None` for a private source the race model cannot see).
    Put {
        /// Destination rank.
        target: usize,
        /// Destination byte offset.
        offset: usize,
        /// Bytes transferred.
        len: usize,
        /// Source byte offset in the origin's copy, if symmetric.
        src_offset: Option<usize>,
        /// Whether the delivery is signalled.
        signal: bool,
    },
    /// One-sided get from `target`'s copy at `[offset, offset+len)`.
    Get {
        /// Source rank.
        target: usize,
        /// Source byte offset.
        offset: usize,
        /// Bytes read.
        len: usize,
    },
    /// Local load from this rank's own copy.
    LocalRead {
        /// Byte offset.
        offset: usize,
        /// Bytes read.
        len: usize,
    },
    /// Local store into this rank's own copy.
    LocalWrite {
        /// Byte offset.
        offset: usize,
        /// Bytes written.
        len: usize,
    },
    /// Wait until `count` signalled deliveries (cumulative) have landed in
    /// this rank's copy.
    WaitSignals {
        /// Cumulative signal count to wait for.
        count: usize,
    },
    /// Complete all of this rank's outstanding puts.
    Quiet,
    /// Full barrier over all ranks (epoch boundary).
    Barrier,
}

/// A per-rank op program over one symmetric segment.
#[derive(Clone, Debug, Default)]
pub struct RaceProgram {
    /// `per_rank[r]` is rank `r`'s op sequence. Barriers must align: every
    /// rank executes the same number of `Barrier` ops.
    pub per_rank: Vec<Vec<RaceOp>>,
    /// Flow-control window of the segment (`None` = unbounded).
    pub window: Option<u64>,
}

/// One conflicting access pair found by [`analyze_ops`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RaceFinding {
    /// The lint code the conflict instantiates (`CI009`–`CI012`).
    pub code: LintCode,
    /// Rank whose segment copy holds the conflicting bytes.
    pub owner: usize,
    /// The overlapping bytes.
    pub span: ByteSpan,
    /// The two accessing ranks.
    pub ranks: (usize, usize),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Cause {
    /// Remote delivery into the owner's copy; `ordinal` numbers signalled
    /// deliveries per owner (1-based), `None` when unsignalled.
    PutData { ordinal: Option<u64> },
    /// The origin-side source read of a put, live until the origin quiets.
    PutSrc { quiet_seq: usize },
    /// Remote read of the owner's copy.
    Get,
    /// Owner-local load.
    LocalRead,
    /// Owner-local store.
    LocalWrite,
}

impl Cause {
    fn writes(self) -> bool {
        matches!(self, Cause::PutData { .. } | Cause::LocalWrite)
    }
}

#[derive(Clone, Copy, Debug)]
struct OpAccess {
    owner: usize,
    span: ByteSpan,
    rank: usize,
    epoch: usize,
    /// Index in the rank's program (program order).
    seq: usize,
    /// The accessor's cumulative signal wait at this point. The op model
    /// folds delivery consumption into the wait (the runtime harness
    /// marks waited deliveries consumed), so this also drives the
    /// flow-control edge.
    waited: u64,
    /// The accessor's quiet count at this point (retires its `PutSrc`s).
    quiets: usize,
    cause: Cause,
}

/// Classify an unordered conflicting pair. `a` precedes `b` in the
/// canonical order; the mapping mirrors the sanitizer's.
fn classify(a: &OpAccess, b: &OpAccess) -> LintCode {
    use Cause::*;
    let pair = (a.cause, b.cause);
    match pair {
        (PutData { .. }, PutData { .. })
        | (PutData { .. }, LocalWrite)
        | (LocalWrite, PutData { .. }) => LintCode::OverlappingPuts,
        (PutData { .. }, Get) | (Get, PutData { .. }) | (Get, LocalWrite) | (LocalWrite, Get) => {
            LintCode::GetPutConflict
        }
        (PutSrc { .. }, LocalWrite) | (LocalWrite, PutSrc { .. }) => {
            LintCode::SourceReuseBeforeQuiet
        }
        _ => LintCode::ReadBeforeSignalWait,
    }
}

/// The intra-rank `PutSrc`/`LocalWrite` pair, if this is one.
fn putsrc_write_pair<'x>(a: &'x OpAccess, b: &'x OpAccess) -> Option<(&'x OpAccess, &'x OpAccess)> {
    match (a.cause, b.cause) {
        (Cause::PutSrc { .. }, Cause::LocalWrite) => Some((a, b)),
        (Cause::LocalWrite, Cause::PutSrc { .. }) => Some((b, a)),
        _ => None,
    }
}

/// Whether happens-before orders the pair (no race). Mirrors the runtime
/// sanitizer's rules exactly; see the module docs for the edge list.
fn ordered(a: &OpAccess, b: &OpAccess, window: Option<u64>) -> bool {
    use Cause::*;
    if a.rank == b.rank {
        // CI011 is the one intra-rank hazard: the NIC's source read
        // outlives program order until a quiet retires it. A write before
        // the put issue is simply read by the put (ordered); a write after
        // it races unless a quiet intervened.
        if let Some((src, wr)) = putsrc_write_pair(a, b) {
            let PutSrc { quiet_seq } = src.cause else {
                unreachable!("putsrc_write_pair")
            };
            return wr.seq < src.seq || wr.quiets > quiet_seq;
        }
        // Program order covers everything else on one rank.
        return true;
    }
    // A full barrier separates epochs: every rank's epoch-e accesses
    // precede every rank's epoch-(e+1) accesses.
    if a.epoch != b.epoch {
        return true;
    }
    // Signal-wait edge: a signalled delivery with ordinal o precedes an
    // owner-local access that has waited >= o signals; the flow-control
    // window conversely admits delivery o only after delivery o-w was
    // consumed, ordering the delivery *after* accesses that consumed less.
    let sig = |del: &OpAccess, loc: &OpAccess| -> bool {
        if del.owner != loc.rank {
            return false;
        }
        match del.cause {
            PutData { ordinal: Some(o) } => {
                loc.waited >= o || window.is_some_and(|w| o > loc.waited.saturating_add(w))
            }
            _ => false,
        }
    };
    if matches!(a.cause, PutData { .. })
        && !matches!(b.cause, PutData { .. })
        && b.rank == a.owner
        && sig(a, b)
    {
        return true;
    }
    if matches!(b.cause, PutData { .. })
        && !matches!(a.cause, PutData { .. })
        && a.rank == b.owner
        && sig(b, a)
    {
        return true;
    }
    // Flow-control edge between two signalled deliveries: the window
    // admits a delivery only after the one `window` earlier was consumed,
    // and consumption happens-after the earlier delivery's wait.
    if let (PutData { ordinal: Some(x) }, PutData { ordinal: Some(y) }) = (a.cause, b.cause) {
        if let Some(w) = window {
            return x.abs_diff(y) >= w;
        }
    }
    false
}

/// Statically analyze a [`RaceProgram`]: enumerate all access pairs under
/// the epoch/signal/quiet happens-before relation and report every
/// unordered conflicting pair, classified to the CI009–CI012 catalog.
///
/// Signal ordinals are assigned in canonical order (epoch-major, then
/// origin rank, then program order), which matches any physical delivery
/// order whenever the program's waits are all-or-nothing per epoch — the
/// fragment the differential generator stays inside.
pub fn analyze_ops(prog: &RaceProgram) -> Vec<RaceFinding> {
    let nranks = prog.per_rank.len();
    let mut accesses: Vec<OpAccess> = Vec::new();
    // Per-owner signalled-delivery ordinal counter; bumped only in the
    // active epoch of the epoch-major sweep, so ordinals are canonical.
    let mut ordinals: Vec<u64> = vec![0; nranks];
    let total_epochs = prog
        .per_rank
        .iter()
        .map(|ops| ops.iter().filter(|o| matches!(o, RaceOp::Barrier)).count())
        .max()
        .unwrap_or(0)
        + 1;

    // Walk epoch-major so ordinal assignment is canonical across ranks:
    // epoch, then origin rank, then program order.
    for epoch in 0..total_epochs {
        for (rank, ops) in prog.per_rank.iter().enumerate() {
            let mut cur_epoch = 0usize;
            let mut waited = 0u64;
            let mut quiets = 0usize;
            for (seq, op) in ops.iter().enumerate() {
                if cur_epoch > epoch {
                    break;
                }
                let active = cur_epoch == epoch;
                match *op {
                    RaceOp::Put {
                        target,
                        offset,
                        len,
                        src_offset,
                        signal,
                    } => {
                        if !active {
                            continue;
                        }
                        let ordinal = signal.then(|| {
                            ordinals[target] += 1;
                            ordinals[target]
                        });
                        accesses.push(OpAccess {
                            owner: target,
                            span: ByteSpan::sized(offset, len),
                            rank,
                            epoch,
                            seq,
                            waited,
                            quiets,
                            cause: Cause::PutData { ordinal },
                        });
                        if let Some(src) = src_offset {
                            accesses.push(OpAccess {
                                owner: rank,
                                span: ByteSpan::sized(src, len),
                                rank,
                                epoch,
                                seq,
                                waited,
                                quiets,
                                cause: Cause::PutSrc { quiet_seq: quiets },
                            });
                        }
                    }
                    RaceOp::Get {
                        target,
                        offset,
                        len,
                    } => {
                        if active {
                            accesses.push(OpAccess {
                                owner: target,
                                span: ByteSpan::sized(offset, len),
                                rank,
                                epoch,
                                seq,
                                waited,
                                quiets,
                                cause: Cause::Get,
                            });
                        }
                    }
                    RaceOp::LocalRead { offset, len } => {
                        if active {
                            accesses.push(OpAccess {
                                owner: rank,
                                span: ByteSpan::sized(offset, len),
                                rank,
                                epoch,
                                seq,
                                waited,
                                quiets,
                                cause: Cause::LocalRead,
                            });
                        }
                    }
                    RaceOp::LocalWrite { offset, len } => {
                        if active {
                            accesses.push(OpAccess {
                                owner: rank,
                                span: ByteSpan::sized(offset, len),
                                rank,
                                epoch,
                                seq,
                                waited,
                                quiets,
                                cause: Cause::LocalWrite,
                            });
                        }
                    }
                    RaceOp::WaitSignals { count } => waited = waited.max(count as u64),
                    RaceOp::Quiet => quiets += 1,
                    RaceOp::Barrier => cur_epoch += 1,
                }
            }
        }
    }

    let mut findings = Vec::new();
    for i in 0..accesses.len() {
        for j in (i + 1)..accesses.len() {
            let (a, b) = (&accesses[i], &accesses[j]);
            if a.owner != b.owner
                || !(a.cause.writes() || b.cause.writes())
                || !a.span.overlaps(&b.span)
            {
                continue;
            }
            if ordered(a, b, prog.window) {
                continue;
            }
            let span = a.span.intersect(&b.span).expect("overlap checked");
            findings.push(RaceFinding {
                code: classify(a, b),
                owner: a.owner,
                span,
                ranks: (a.rank.min(b.rank), a.rank.max(b.rank)),
            });
        }
    }
    findings.sort_by_key(|f| (f.code, f.owner, f.span, f.ranks));
    findings.dedup();
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::ElemKind;
    use crate::diag::DirSpans;
    use crate::dir::P2pSpec;
    use mpisim::dtype::BasicType;

    fn meta(name: &str, lo: usize, bytes: usize) -> BufMeta {
        BufMeta {
            name: name.to_string(),
            elem: ElemKind::Prim(BasicType::U8),
            len: bytes,
            addr: (lo, lo + bytes),
        }
    }

    fn p2p(clauses: ClauseSet, sbuf: Vec<BufMeta>, rbuf: Vec<BufMeta>, site: u32) -> P2pSpec {
        P2pSpec {
            clauses,
            sbuf,
            rbuf,
            has_overlap_body: false,
            site,
            spans: DirSpans::default(),
        }
    }

    fn shmem_region(body: Vec<P2pSpec>, clauses: ClauseSet) -> ParamsSpec {
        let mut clauses = clauses;
        clauses.target = Some(Target::Shmem);
        ParamsSpec {
            clauses,
            body,
            spans: DirSpans::default(),
        }
    }

    fn codes(diags: &[Diag]) -> Vec<&'static str> {
        let mut v: Vec<&'static str> = diags.iter().map(|d| d.code.code()).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    #[test]
    fn fan_in_puts_fire_ci009_from_three_ranks() {
        // Everybody puts into rank 0's window: in-degree >= 2 from N = 3.
        let clauses = ClauseSet {
            receiver: Some(RankExpr::lit(0)),
            sendwhen: Some(RankExpr::rank().gt(RankExpr::lit(0))),
            ..ClauseSet::default()
        };
        let spec = shmem_region(
            vec![p2p(
                ClauseSet::default(),
                vec![meta("src", 0, 8)],
                vec![meta("win", 100, 8)],
                1,
            )],
            clauses,
        );
        let two = lint_races(0, &spec, 2, &HashMap::new());
        assert!(
            !two.iter().any(|d| d.code == LintCode::OverlappingPuts),
            "one origin is not a race: {two:?}"
        );
        let three = lint_races(0, &spec, 3, &HashMap::new());
        let d = three
            .iter()
            .find(|d| d.code == LintCode::OverlappingPuts)
            .expect("CI009 at N=3");
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.witness.as_ref().unwrap().ranks, vec![1, 2]);
    }

    #[test]
    fn two_sided_target_is_exempt() {
        let clauses = ClauseSet {
            receiver: Some(RankExpr::lit(0)),
            sendwhen: Some(RankExpr::rank().gt(RankExpr::lit(0))),
            target: Some(Target::Mpi2Side),
            ..ClauseSet::default()
        };
        let spec = ParamsSpec {
            clauses,
            body: vec![p2p(
                ClauseSet::default(),
                vec![meta("src", 0, 8)],
                vec![meta("win", 100, 8)],
                1,
            )],
            spans: DirSpans::default(),
        };
        assert!(lint_races(0, &spec, 8, &HashMap::new()).is_empty());
    }

    #[test]
    fn later_site_reading_earlier_delivery_warns_get_put() {
        // Site 0 delivers into `staged` on rank 1; site 1 sources `staged`
        // from rank 1. Put lowering is ordered; get lowering races: CI010.
        let edge = |src: i64, dst: i64| ClauseSet {
            sender: Some(RankExpr::lit(src)),
            receiver: Some(RankExpr::lit(dst)),
            sendwhen: Some(RankExpr::rank().eq(RankExpr::lit(src))),
            receivewhen: Some(RankExpr::rank().eq(RankExpr::lit(dst))),
            ..ClauseSet::default()
        };
        let spec = shmem_region(
            vec![
                p2p(
                    edge(0, 1),
                    vec![meta("ev", 0, 8)],
                    vec![meta("staged", 100, 8)],
                    1,
                ),
                p2p(
                    edge(1, 2),
                    vec![meta("staged", 100, 8)],
                    vec![meta("evec", 200, 8)],
                    2,
                ),
            ],
            ClauseSet::default(),
        );
        let diags = lint_races(0, &spec, 3, &HashMap::new());
        assert_eq!(codes(&diags), vec!["CI010"]);
        let d = &diags[0];
        assert_eq!(d.severity, Severity::Warning);
        assert_eq!(d.witness.as_ref().unwrap().ranks, vec![1]);

        // Swap the site order: the source read now precedes the wait —
        // CI012, an error under every one-sided lowering.
        let spec = shmem_region(
            vec![
                p2p(
                    edge(1, 2),
                    vec![meta("staged", 100, 8)],
                    vec![meta("evec", 200, 8)],
                    1,
                ),
                p2p(
                    edge(0, 1),
                    vec![meta("ev", 0, 8)],
                    vec![meta("staged", 100, 8)],
                    2,
                ),
            ],
            ClauseSet::default(),
        );
        let diags = lint_races(0, &spec, 3, &HashMap::new());
        assert_eq!(codes(&diags), vec!["CI012"]);
        assert_eq!(diags[0].severity, Severity::Error);
    }

    #[test]
    fn deferred_quiet_with_iteration_fires_ci011() {
        let edge = |src: i64, dst: i64| ClauseSet {
            sender: Some(RankExpr::lit(src)),
            receiver: Some(RankExpr::lit(dst)),
            sendwhen: Some(RankExpr::rank().eq(RankExpr::lit(src))),
            receivewhen: Some(RankExpr::rank().eq(RankExpr::lit(dst))),
            ..ClauseSet::default()
        };
        let clauses = ClauseSet {
            place_sync: Some(PlaceSync::EndAdjParamRegions),
            max_comm_iter: Some(RankExpr::lit(16)),
            ..ClauseSet::default()
        };
        // Site 0 delivers into `staged` on rank 1; site 1 puts *from*
        // `staged` on rank 1. The deferred quiet leaves site 1's source
        // live past the region; the next iteration's site-0 delivery
        // rewrites it.
        let spec = shmem_region(
            vec![
                p2p(
                    edge(0, 1),
                    vec![meta("ev", 0, 8)],
                    vec![meta("staged", 100, 8)],
                    1,
                ),
                p2p(
                    edge(1, 2),
                    vec![meta("staged", 100, 8)],
                    vec![meta("evec", 200, 8)],
                    2,
                ),
            ],
            clauses.clone(),
        );
        let diags = lint_races(0, &spec, 3, &HashMap::new());
        assert!(
            diags.iter().any(
                |d| d.code == LintCode::SourceReuseBeforeQuiet && d.severity == Severity::Error
            ),
            "{diags:?}"
        );

        // Synchronizing at the region end removes exactly the CI011.
        let mut synced = clauses;
        synced.place_sync = Some(PlaceSync::EndParamRegion);
        let spec = shmem_region(
            vec![
                p2p(
                    edge(0, 1),
                    vec![meta("ev", 0, 8)],
                    vec![meta("staged", 100, 8)],
                    1,
                ),
                p2p(
                    edge(1, 2),
                    vec![meta("staged", 100, 8)],
                    vec![meta("evec", 200, 8)],
                    2,
                ),
            ],
            synced,
        );
        let diags = lint_races(0, &spec, 3, &HashMap::new());
        assert!(!diags
            .iter()
            .any(|d| d.code == LintCode::SourceReuseBeforeQuiet));
    }

    // -- op-level semantics -------------------------------------------------

    fn codes_of(findings: &[RaceFinding]) -> Vec<&'static str> {
        let mut v: Vec<&'static str> = findings.iter().map(|f| f.code.code()).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    #[test]
    fn op_overlapping_puts_race_and_barrier_separates() {
        let put = |target, offset| RaceOp::Put {
            target,
            offset,
            len: 8,
            src_offset: None,
            signal: true,
        };
        let racy = RaceProgram {
            per_rank: vec![vec![put(2, 0)], vec![put(2, 4)], vec![]],
            window: None,
        };
        assert_eq!(codes_of(&analyze_ops(&racy)), vec!["CI009"]);

        let clean = RaceProgram {
            per_rank: vec![
                vec![put(2, 0), RaceOp::Quiet, RaceOp::Barrier],
                vec![RaceOp::Barrier, put(2, 4)],
                vec![
                    RaceOp::WaitSignals { count: 1 },
                    RaceOp::Barrier,
                    RaceOp::WaitSignals { count: 2 },
                ],
            ],
            window: None,
        };
        assert!(analyze_ops(&clean).is_empty());
    }

    #[test]
    fn op_unwaited_read_is_ci012_and_wait_orders_it() {
        let put = RaceOp::Put {
            target: 1,
            offset: 0,
            len: 8,
            src_offset: None,
            signal: true,
        };
        let racy = RaceProgram {
            per_rank: vec![vec![put], vec![RaceOp::LocalRead { offset: 4, len: 8 }]],
            window: None,
        };
        assert_eq!(codes_of(&analyze_ops(&racy)), vec!["CI012"]);

        let clean = RaceProgram {
            per_rank: vec![
                vec![put],
                vec![
                    RaceOp::WaitSignals { count: 1 },
                    RaceOp::LocalRead { offset: 4, len: 8 },
                ],
            ],
            window: None,
        };
        assert!(analyze_ops(&clean).is_empty());
    }

    #[test]
    fn op_get_against_put_is_ci010() {
        let prog = RaceProgram {
            per_rank: vec![
                vec![RaceOp::Put {
                    target: 2,
                    offset: 0,
                    len: 16,
                    src_offset: None,
                    signal: true,
                }],
                vec![RaceOp::Get {
                    target: 2,
                    offset: 8,
                    len: 16,
                }],
                vec![],
            ],
            window: None,
        };
        assert_eq!(codes_of(&analyze_ops(&prog)), vec!["CI010"]);
    }

    #[test]
    fn op_source_rewrite_before_quiet_is_ci011() {
        let racy = RaceProgram {
            per_rank: vec![
                vec![
                    RaceOp::Put {
                        target: 1,
                        offset: 0,
                        len: 8,
                        src_offset: Some(32),
                        signal: true,
                    },
                    RaceOp::LocalWrite { offset: 32, len: 8 },
                ],
                vec![RaceOp::WaitSignals { count: 1 }],
            ],
            window: None,
        };
        assert_eq!(codes_of(&analyze_ops(&racy)), vec!["CI011"]);

        let clean = RaceProgram {
            per_rank: vec![
                vec![
                    RaceOp::Put {
                        target: 1,
                        offset: 0,
                        len: 8,
                        src_offset: Some(32),
                        signal: true,
                    },
                    RaceOp::Quiet,
                    RaceOp::LocalWrite { offset: 32, len: 8 },
                ],
                vec![RaceOp::WaitSignals { count: 1 }],
            ],
            window: None,
        };
        assert!(analyze_ops(&clean).is_empty());
    }

    #[test]
    fn op_flow_control_window_orders_slot_reuse() {
        // Two deliveries one full window apart are ordered by the consume
        // edge; inside the window they race.
        let put = |signal| RaceOp::Put {
            target: 1,
            offset: 0,
            len: 8,
            src_offset: None,
            signal,
        };
        let base = |window| RaceProgram {
            per_rank: vec![vec![put(true)], vec![], vec![put(true)]],
            window,
        };
        assert_eq!(codes_of(&analyze_ops(&base(None))), vec!["CI009"]);
        assert!(analyze_ops(&base(Some(1))).is_empty());
        assert_eq!(codes_of(&analyze_ops(&base(Some(2)))), vec!["CI009"]);
    }
}
