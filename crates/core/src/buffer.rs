//! Buffer descriptors for the `sbuf`/`rbuf` clauses.
//!
//! A directive buffer is a slice of primitive elements or of *described
//! composite* values (the paper's composite types: scalar structs like the
//! WL-LSMS single-atom data). The buffer carries everything the translator
//! needs: element kind (→ automatic data-type handling), length (→ count
//! inference from "the size of the smallest array"), and the address range
//! (→ buffer-independence analysis for synchronization consolidation).
//!
//! Composite element access is field-wise through the declared layout, so
//! padding bytes are never read — the same discipline the generated
//! MPI-struct code follows. Pointers inside composites are unrepresentable
//! (the [`FieldSpec`] trait has no pointer impl), turning the paper's
//! runtime prohibition into a compile-time guarantee; nested composites are
//! likewise rejected because only primitive field specs exist.

use mpisim::dtype::{BasicType, Datatype, StructField};
use mpisim::pod::{as_bytes, as_bytes_mut, Pod};

/// A primitive element type admissible in buffers.
pub trait PrimElem: Pod {
    /// The corresponding MPI basic type.
    const BASIC: BasicType;
}

impl PrimElem for u8 {
    const BASIC: BasicType = BasicType::U8;
}
impl PrimElem for i32 {
    const BASIC: BasicType = BasicType::I32;
}
impl PrimElem for i64 {
    const BASIC: BasicType = BasicType::I64;
}
impl PrimElem for f32 {
    const BASIC: BasicType = BasicType::F32;
}
impl PrimElem for f64 {
    const BASIC: BasicType = BasicType::F64;
}

/// Field shape inside a composite: `(basic type, block length)`.
/// Implemented for primitives and fixed-size arrays of primitives only —
/// pointers and nested composites cannot occur, by construction.
pub trait FieldSpec {
    /// The element type of the block.
    const TY: BasicType;
    /// Number of consecutive elements.
    const BLOCKLEN: usize;
}

impl<P: PrimElem> FieldSpec for P {
    const TY: BasicType = P::BASIC;
    const BLOCKLEN: usize = 1;
}

impl<P: PrimElem, const N: usize> FieldSpec for [P; N] {
    const TY: BasicType = P::BASIC;
    const BLOCKLEN: usize = N;
}

/// One field of a composite layout.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FieldDef {
    /// Field name (diagnostics, codegen).
    pub name: String,
    /// Byte offset within the composite.
    pub offset: usize,
    /// Element type of the block.
    pub ty: BasicType,
    /// Number of consecutive elements.
    pub blocklen: usize,
}

/// The declared layout of a composite element type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompositeLayout {
    /// Type name (diagnostics, codegen).
    pub name: String,
    /// Memory extent of one element (`size_of::<T>()`).
    pub extent: usize,
    /// Field blocks, in declaration order.
    pub fields: Vec<FieldDef>,
}

/// One member of a one-level-nested composite declaration: either a plain
/// primitive block or an embedded composite whose (already flat) layout is
/// spliced in at a byte offset. Because [`CompositeLayout`] itself holds
/// only primitive [`FieldDef`]s, nesting deeper than one level is
/// unrepresentable — the paper's recursive-nesting prohibition, relaxed by
/// exactly one level.
#[derive(Clone, Debug)]
pub enum NestedField {
    /// A primitive field block.
    Prim(FieldDef),
    /// An embedded composite: `layout` placed at byte `offset`, its fields
    /// flattened into the parent as `name.field`.
    Nested {
        /// Member name in the outer struct.
        name: String,
        /// Byte offset of the embedded value within the outer struct.
        offset: usize,
        /// The inner composite's layout.
        layout: CompositeLayout,
    },
}

impl CompositeLayout {
    /// Build and validate a layout for `T`. Panics on layout violations
    /// (overlaps, blocks past the extent) — these are programming errors in
    /// the type description, equivalent to compiler bugs in the paper's
    /// setting.
    pub fn new<T>(name: &str, fields: Vec<FieldDef>) -> CompositeLayout {
        let extent = std::mem::size_of::<T>();
        let layout = CompositeLayout {
            name: name.to_string(),
            extent,
            fields,
        };
        layout
            .to_datatype_checked()
            .unwrap_or_else(|e| panic!("invalid composite layout for {name}: {e}"));
        layout
    }

    /// Build a layout for `T` from members that may embed one level of
    /// composite: each [`NestedField::Nested`] member is flattened into the
    /// parent (inner offsets shifted by the member offset, names qualified
    /// as `member.field`), then validated like [`CompositeLayout::new`].
    /// The result is an ordinary flat layout — every analysis, datatype
    /// conversion and wire format downstream is unchanged.
    pub fn nested<T>(name: &str, members: Vec<NestedField>) -> CompositeLayout {
        let mut fields = Vec::new();
        for m in members {
            match m {
                NestedField::Prim(f) => fields.push(f),
                NestedField::Nested {
                    name: member,
                    offset,
                    layout,
                } => {
                    for f in &layout.fields {
                        fields.push(FieldDef {
                            name: format!("{member}.{}", f.name),
                            offset: offset + f.offset,
                            ty: f.ty,
                            blocklen: f.blocklen,
                        });
                    }
                }
            }
        }
        CompositeLayout::new::<T>(name, fields)
    }

    /// Bytes of payload one element contributes (sum of field blocks).
    pub fn packed_size(&self) -> usize {
        self.fields.iter().map(|f| f.blocklen * f.ty.size()).sum()
    }

    /// The equivalent MPI struct datatype.
    pub fn to_datatype(&self) -> Datatype {
        Datatype::Struct {
            fields: self
                .fields
                .iter()
                .map(|f| StructField {
                    offset: f.offset,
                    blocklen: f.blocklen,
                    ty: f.ty,
                })
                .collect(),
            extent: self.extent,
        }
    }

    fn to_datatype_checked(&self) -> Result<Datatype, mpisim::dtype::DtypeError> {
        let descr: Vec<(&str, usize, usize, mpisim::dtype::FieldKind)> = self
            .fields
            .iter()
            .map(|f| {
                (
                    f.name.as_str(),
                    f.offset,
                    f.blocklen,
                    mpisim::dtype::FieldKind::Basic(f.ty),
                )
            })
            .collect();
        Datatype::try_struct(&descr, self.extent)
    }
}

/// A composite type whose layout is declared for communication.
///
/// # Safety
///
/// The layout must describe only initialized, padding-free field ranges of
/// `Self`, with correct offsets and block lengths. Use the
/// [`comm_datatype!`](crate::comm_datatype) macro, which derives offsets
/// with `std::mem::offset_of!` and is always correct.
pub unsafe trait Described: Copy + Send + Sync + 'static {
    /// The communication layout of this type.
    fn layout() -> CompositeLayout;
}

/// Gather the described fields of `items` into packed bytes (appending to
/// `out`). Field-wise copies: padding is never read.
pub fn gather_described<T: Described>(items: &[T], count: usize, out: &mut Vec<u8>) {
    let layout = T::layout();
    assert!(count <= items.len(), "gather count exceeds buffer length");
    out.reserve(count * layout.packed_size());
    for item in &items[..count] {
        let base = (item as *const T).cast::<u8>();
        for f in &layout.fields {
            let len = f.blocklen * f.ty.size();
            let start = out.len();
            out.resize(start + len, 0);
            // SAFETY: the layout contract guarantees [offset, offset+len)
            // is an initialized field range of T.
            unsafe {
                std::ptr::copy_nonoverlapping(base.add(f.offset), out[start..].as_mut_ptr(), len);
            }
        }
    }
}

/// Scatter packed bytes into the described fields of `items`.
pub fn scatter_described<T: Described>(items: &mut [T], count: usize, packed: &[u8]) {
    let layout = T::layout();
    assert!(count <= items.len(), "scatter count exceeds buffer length");
    assert!(
        packed.len() >= count * layout.packed_size(),
        "scatter source too small: {} < {}",
        packed.len(),
        count * layout.packed_size()
    );
    let mut pos = 0usize;
    for item in &mut items[..count] {
        let base = (item as *mut T).cast::<u8>();
        for f in &layout.fields {
            let len = f.blocklen * f.ty.size();
            // SAFETY: layout contract as in `gather_described`; writing
            // field ranges of a Copy type is always sound.
            unsafe {
                std::ptr::copy_nonoverlapping(packed[pos..].as_ptr(), base.add(f.offset), len);
            }
            pos += len;
        }
    }
}

/// One parallel array of a struct-of-arrays group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SoaField {
    /// Array name (diagnostics, codegen).
    pub name: String,
    /// Element type of the array.
    pub ty: BasicType,
    /// Values each record contributes to this array.
    pub blocklen: usize,
}

/// Struct-of-arrays layout: one logical record is `blocklen` values in
/// each of several *parallel arrays* (the wl-lsms core-state shape: `ec`,
/// `nc`, `lc`, `kc` indexed by the same core-state number). The wire
/// format is field-major — all records of the first array, then all of the
/// second — so a per-array transfer is a plain split of the packed stream
/// and each array ships as one contiguous block, copy-free.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SoaLayout {
    /// Group name (diagnostics, codegen).
    pub name: String,
    /// Parallel arrays, in declaration order.
    pub fields: Vec<SoaField>,
}

impl SoaLayout {
    /// Bytes of payload one record contributes (sum over arrays).
    pub fn packed_size(&self) -> usize {
        self.fields.iter().map(|f| f.blocklen * f.ty.size()).sum()
    }

    /// The packed-equivalent MPI struct datatype (sequential offsets): the
    /// layout key for commit caching, and what an absolute-addressed
    /// `MPI_Type_create_struct` over the arrays commits to.
    pub fn to_datatype(&self) -> Datatype {
        let mut off = 0usize;
        let fields = self
            .fields
            .iter()
            .map(|f| {
                let sf = StructField {
                    offset: off,
                    blocklen: f.blocklen,
                    ty: f.ty,
                };
                off += f.blocklen * f.ty.size();
                sf
            })
            .collect();
        Datatype::Struct {
            fields,
            extent: self.packed_size(),
        }
    }
}

/// Element kind of a buffer, as the analyses and lowering see it.
#[derive(Clone, Debug, PartialEq)]
pub enum ElemKind {
    /// A primitive element.
    Prim(BasicType),
    /// A described composite element.
    Composite(CompositeLayout),
    /// A strided block of primitives: one "element" is `blocklen`
    /// consecutive values, placed `stride` values apart in memory — the
    /// `MPI_Type_vector` case (e.g. a matrix row in column-major storage).
    Strided {
        /// Underlying primitive type.
        ty: BasicType,
        /// Values per block.
        blocklen: usize,
        /// Values between block starts (≥ blocklen).
        stride: usize,
    },
    /// A struct-of-arrays record spread over parallel arrays.
    Soa(SoaLayout),
}

impl ElemKind {
    /// Payload bytes per element.
    pub fn packed_size(&self) -> usize {
        match self {
            ElemKind::Prim(t) => t.size(),
            ElemKind::Composite(l) => l.packed_size(),
            ElemKind::Strided { ty, blocklen, .. } => blocklen * ty.size(),
            ElemKind::Soa(l) => l.packed_size(),
        }
    }

    /// Memory extent per element. For struct-of-arrays the records live in
    /// disjoint arrays with no shared stride, so the payload size stands in;
    /// exact per-array address ranges come from the buffer's
    /// [`SendBuf::sub_ranges`]/[`RecvBuf::sub_ranges`].
    pub fn extent(&self) -> usize {
        match self {
            ElemKind::Prim(t) => t.size(),
            ElemKind::Composite(l) => l.extent,
            ElemKind::Strided { ty, stride, .. } => stride * ty.size(),
            ElemKind::Soa(l) => l.packed_size(),
        }
    }

    /// Bytes a transfer of `count` elements spans in *memory* (not on the
    /// wire): the footprint the receiving allocation must cover. For a
    /// strided view the final block does not extend to a full stride.
    pub fn span_bytes(&self, count: usize) -> usize {
        match self {
            ElemKind::Strided {
                ty,
                blocklen,
                stride,
            } => {
                if count == 0 {
                    0
                } else {
                    ((count - 1) * stride + blocklen) * ty.size()
                }
            }
            _ => count * self.extent(),
        }
    }

    /// Number of independently-contiguous blocks one transfer decomposes
    /// into per element: the message/put fan-out of a non-packing lowering
    /// (1 for primitives and strided views — an `iput` ships all blocks in
    /// one call — the field count for composites and struct-of-arrays).
    pub fn field_count(&self) -> usize {
        match self {
            ElemKind::Prim(_) | ElemKind::Strided { .. } => 1,
            ElemKind::Composite(l) => l.fields.len().max(1),
            ElemKind::Soa(l) => l.fields.len().max(1),
        }
    }

    /// The MPI datatype equivalent (basic, struct or vector; the vector
    /// type is per-element: one block).
    pub fn to_datatype(&self) -> Datatype {
        match self {
            ElemKind::Prim(t) => Datatype::Basic(*t),
            ElemKind::Composite(l) => l.to_datatype(),
            ElemKind::Strided {
                ty,
                blocklen,
                stride,
            } => Datatype::Vector {
                count: 1,
                blocklen: *blocklen,
                stride: *stride,
                elem: *ty,
            },
            ElemKind::Soa(l) => l.to_datatype(),
        }
    }

    /// Whether two buffers can be paired in one transfer (identical wire
    /// representation). Strided and contiguous layouts are interchangeable
    /// when the block payloads agree — the wire format is packed either
    /// way (this is how a column scatters into a contiguous halo buffer).
    pub fn compatible(&self, other: &ElemKind) -> bool {
        match (self, other) {
            (ElemKind::Prim(a), ElemKind::Prim(b)) => a == b,
            (ElemKind::Composite(a), ElemKind::Composite(b)) => {
                a.packed_size() == b.packed_size()
                    && a.fields.len() == b.fields.len()
                    && a.fields
                        .iter()
                        .zip(&b.fields)
                        .all(|(x, y)| x.ty == y.ty && x.blocklen == y.blocklen)
            }
            (
                ElemKind::Strided {
                    ty: a,
                    blocklen: la,
                    ..
                },
                ElemKind::Strided {
                    ty: b,
                    blocklen: lb,
                    ..
                },
            ) => a == b && la == lb,
            (
                ElemKind::Strided {
                    ty: a, blocklen, ..
                },
                ElemKind::Prim(b),
            )
            | (
                ElemKind::Prim(b),
                ElemKind::Strided {
                    ty: a, blocklen, ..
                },
            ) => a == b && *blocklen == 1,
            // Struct-of-arrays pairs only with the same field sequence: the
            // field-major wire format is positional per array.
            (ElemKind::Soa(a), ElemKind::Soa(b)) => {
                a.fields.len() == b.fields.len()
                    && a.fields
                        .iter()
                        .zip(&b.fields)
                        .all(|(x, y)| x.ty == y.ty && x.blocklen == y.blocklen)
            }
            _ => false,
        }
    }
}

/// Metadata about a buffer, detached from its borrow — what the static
/// analyses operate on.
#[derive(Clone, Debug, PartialEq)]
pub struct BufMeta {
    /// Display name.
    pub name: String,
    /// Element kind.
    pub elem: ElemKind,
    /// Element count.
    pub len: usize,
    /// Address range `[lo, hi)` in bytes, for independence analysis.
    pub addr: (usize, usize),
}

impl BufMeta {
    /// Whether two buffers' memory ranges overlap.
    pub fn overlaps(&self, other: &BufMeta) -> bool {
        self.addr.0 < other.addr.1 && other.addr.0 < self.addr.1
    }
}

/// Name-free buffer descriptor for the directive execution hot path:
/// everything `comm_p2p` needs per instance. The display name stays out so
/// the common case allocates nothing (the engine evaluates every directive
/// on every rank of every loop iteration); diagnostics and IR recording
/// fetch the full [`BufMeta`] on their cold paths.
#[derive(Clone, Debug, PartialEq)]
pub struct BufDesc {
    /// Element kind.
    pub elem: ElemKind,
    /// Element count.
    pub len: usize,
    /// Address range `[lo, hi)` in bytes.
    pub addr: (usize, usize),
}

impl From<BufMeta> for BufDesc {
    fn from(m: BufMeta) -> Self {
        BufDesc {
            elem: m.elem,
            len: m.len,
            addr: m.addr,
        }
    }
}

/// A send-side buffer: read access plus metadata.
pub trait SendBuf {
    /// Buffer metadata.
    fn meta(&self) -> BufMeta;
    /// Hot-path descriptor; implementations override to skip the name.
    fn desc(&self) -> BufDesc {
        BufDesc::from(self.meta())
    }
    /// Exact per-array address ranges for views spanning multiple disjoint
    /// allocations (struct-of-arrays). `None` means the single `addr` range
    /// in the descriptor is exact. Dependence analyses must prefer these:
    /// the convex hull of unrelated heap arrays can cover other buffers,
    /// and whether it does depends on the allocator, not the program.
    fn sub_ranges(&self) -> Option<&[(usize, usize)]> {
        None
    }
    /// Append `count` elements' packed bytes to `out`.
    fn gather(&self, count: usize, out: &mut Vec<u8>);
}

/// A receive-side buffer: write access plus metadata.
pub trait RecvBuf {
    /// Buffer metadata.
    fn meta(&self) -> BufMeta;
    /// Hot-path descriptor; implementations override to skip the name.
    fn desc(&self) -> BufDesc {
        BufDesc::from(self.meta())
    }
    /// Exact per-array address ranges (see [`SendBuf::sub_ranges`]).
    fn sub_ranges(&self) -> Option<&[(usize, usize)]> {
        None
    }
    /// Fill `count` elements from packed bytes.
    fn scatter(&mut self, count: usize, packed: &[u8]);
}

fn prim_meta<T: PrimElem>(name: &str, slice: &[T]) -> BufMeta {
    let lo = slice.as_ptr() as usize;
    BufMeta {
        name: name.to_string(),
        elem: ElemKind::Prim(T::BASIC),
        len: slice.len(),
        addr: (lo, lo + std::mem::size_of_val(slice)),
    }
}

fn prim_desc<T: PrimElem>(slice: &[T]) -> BufDesc {
    let lo = slice.as_ptr() as usize;
    BufDesc {
        elem: ElemKind::Prim(T::BASIC),
        len: slice.len(),
        addr: (lo, lo + std::mem::size_of_val(slice)),
    }
}

/// A named primitive send buffer.
pub struct Prim<'a, T: PrimElem> {
    name: &'a str,
    data: &'a [T],
}

impl<'a, T: PrimElem> Prim<'a, T> {
    /// Wrap a primitive slice with a display name.
    pub fn new(name: &'a str, data: &'a [T]) -> Self {
        Prim { name, data }
    }
}

impl<T: PrimElem> SendBuf for Prim<'_, T> {
    fn meta(&self) -> BufMeta {
        prim_meta(self.name, self.data)
    }

    fn desc(&self) -> BufDesc {
        prim_desc(self.data)
    }

    fn gather(&self, count: usize, out: &mut Vec<u8>) {
        assert!(
            count <= self.data.len(),
            "gather count exceeds buffer length"
        );
        out.extend_from_slice(as_bytes(&self.data[..count]));
    }
}

/// A named primitive receive buffer.
pub struct PrimMut<'a, T: PrimElem> {
    name: &'a str,
    data: &'a mut [T],
}

impl<'a, T: PrimElem> PrimMut<'a, T> {
    /// Wrap a mutable primitive slice with a display name.
    pub fn new(name: &'a str, data: &'a mut [T]) -> Self {
        PrimMut { name, data }
    }
}

impl<T: PrimElem> RecvBuf for PrimMut<'_, T> {
    fn meta(&self) -> BufMeta {
        prim_meta(self.name, self.data)
    }

    fn desc(&self) -> BufDesc {
        prim_desc(self.data)
    }

    fn scatter(&mut self, count: usize, packed: &[u8]) {
        assert!(
            count <= self.data.len(),
            "scatter count exceeds buffer length"
        );
        copy_exact(&mut self.data[..count], packed);
    }
}

fn copy_exact<T: PrimElem>(dst: &mut [T], packed: &[u8]) {
    let bytes = as_bytes_mut(dst);
    bytes.copy_from_slice(&packed[..bytes.len()]);
}

/// A named composite send buffer.
pub struct Struc<'a, T: Described> {
    name: &'a str,
    data: &'a [T],
}

impl<'a, T: Described> Struc<'a, T> {
    /// Wrap a described-composite slice with a display name.
    pub fn new(name: &'a str, data: &'a [T]) -> Self {
        Struc { name, data }
    }
}

impl<T: Described> SendBuf for Struc<'_, T> {
    fn meta(&self) -> BufMeta {
        let lo = self.data.as_ptr() as usize;
        BufMeta {
            name: self.name.to_string(),
            elem: ElemKind::Composite(T::layout()),
            len: self.data.len(),
            addr: (lo, lo + std::mem::size_of_val(self.data)),
        }
    }

    fn gather(&self, count: usize, out: &mut Vec<u8>) {
        gather_described(self.data, count, out);
    }
}

/// A named composite receive buffer.
pub struct StrucMut<'a, T: Described> {
    name: &'a str,
    data: &'a mut [T],
}

impl<'a, T: Described> StrucMut<'a, T> {
    /// Wrap a mutable described-composite slice with a display name.
    pub fn new(name: &'a str, data: &'a mut [T]) -> Self {
        StrucMut { name, data }
    }
}

impl<T: Described> RecvBuf for StrucMut<'_, T> {
    fn meta(&self) -> BufMeta {
        let lo = self.data.as_ptr() as usize;
        BufMeta {
            name: self.name.to_string(),
            elem: ElemKind::Composite(T::layout()),
            len: self.data.len(),
            addr: (lo, lo + std::mem::size_of_val(self.data)),
        }
    }

    fn scatter(&mut self, count: usize, packed: &[u8]) {
        scatter_described(self.data, count, packed);
    }
}

/// A strided send view: `count` blocks of `blocklen` values, block starts
/// `stride` values apart — ships a matrix row/column without copying it
/// contiguous first (the directive's automatic `MPI_Type_vector` handling).
pub struct PrimStrided<'a, T: PrimElem> {
    name: &'a str,
    data: &'a [T],
    blocklen: usize,
    stride: usize,
}

impl<'a, T: PrimElem> PrimStrided<'a, T> {
    /// Wrap a strided view. `data` must cover every addressed block;
    /// `stride >= blocklen >= 1`.
    pub fn new(name: &'a str, data: &'a [T], blocklen: usize, stride: usize) -> Self {
        assert!(blocklen >= 1 && stride >= blocklen, "invalid stride layout");
        PrimStrided {
            name,
            data,
            blocklen,
            stride,
        }
    }

    fn n_blocks(&self) -> usize {
        if self.data.len() < self.blocklen {
            0
        } else {
            (self.data.len() - self.blocklen) / self.stride + 1
        }
    }

    fn meta_impl(&self) -> BufMeta {
        let lo = self.data.as_ptr() as usize;
        BufMeta {
            name: self.name.to_string(),
            elem: ElemKind::Strided {
                ty: T::BASIC,
                blocklen: self.blocklen,
                stride: self.stride,
            },
            len: self.n_blocks(),
            addr: (lo, lo + std::mem::size_of_val(self.data)),
        }
    }
}

impl<T: PrimElem> SendBuf for PrimStrided<'_, T> {
    fn meta(&self) -> BufMeta {
        self.meta_impl()
    }

    fn desc(&self) -> BufDesc {
        BufDesc {
            elem: ElemKind::Strided {
                ty: T::BASIC,
                blocklen: self.blocklen,
                stride: self.stride,
            },
            len: self.n_blocks(),
            addr: {
                let lo = self.data.as_ptr() as usize;
                (lo, lo + std::mem::size_of_val(self.data))
            },
        }
    }

    fn gather(&self, count: usize, out: &mut Vec<u8>) {
        assert!(count <= self.n_blocks(), "gather count exceeds block count");
        for b in 0..count {
            let start = b * self.stride;
            out.extend_from_slice(as_bytes(&self.data[start..start + self.blocklen]));
        }
    }
}

/// A strided receive view (see [`PrimStrided`]).
pub struct PrimStridedMut<'a, T: PrimElem> {
    name: &'a str,
    data: &'a mut [T],
    blocklen: usize,
    stride: usize,
}

impl<'a, T: PrimElem> PrimStridedMut<'a, T> {
    /// Wrap a mutable strided view.
    pub fn new(name: &'a str, data: &'a mut [T], blocklen: usize, stride: usize) -> Self {
        assert!(blocklen >= 1 && stride >= blocklen, "invalid stride layout");
        PrimStridedMut {
            name,
            data,
            blocklen,
            stride,
        }
    }

    fn n_blocks(&self) -> usize {
        if self.data.len() < self.blocklen {
            0
        } else {
            (self.data.len() - self.blocklen) / self.stride + 1
        }
    }
}

impl<T: PrimElem> RecvBuf for PrimStridedMut<'_, T> {
    fn meta(&self) -> BufMeta {
        let lo = self.data.as_ptr() as usize;
        BufMeta {
            name: self.name.to_string(),
            elem: ElemKind::Strided {
                ty: T::BASIC,
                blocklen: self.blocklen,
                stride: self.stride,
            },
            len: self.n_blocks(),
            addr: (lo, lo + std::mem::size_of_val(self.data)),
        }
    }

    fn desc(&self) -> BufDesc {
        BufDesc {
            elem: ElemKind::Strided {
                ty: T::BASIC,
                blocklen: self.blocklen,
                stride: self.stride,
            },
            len: self.n_blocks(),
            addr: {
                let lo = self.data.as_ptr() as usize;
                (lo, lo + std::mem::size_of_val(self.data))
            },
        }
    }

    fn scatter(&mut self, count: usize, packed: &[u8]) {
        assert!(
            count <= self.n_blocks(),
            "scatter count exceeds block count"
        );
        let block_bytes = self.blocklen * std::mem::size_of::<T>();
        for b in 0..count {
            let start = b * self.stride;
            copy_exact(
                &mut self.data[start..start + self.blocklen],
                &packed[b * block_bytes..(b + 1) * block_bytes],
            );
        }
    }
}

fn soa_hull(ranges: &[(usize, usize)]) -> (usize, usize) {
    let lo = ranges.iter().map(|r| r.0).min().unwrap_or(0);
    let hi = ranges.iter().map(|r| r.1).max().unwrap_or(0);
    (lo, hi.max(lo))
}

/// A struct-of-arrays send view over parallel arrays: one logical record is
/// `blocklen` values in each declared array (the wl-lsms core-state shape).
/// Build with the chainable [`Soa::field`]/[`Soa::field_blocks`]; the
/// record count is the smallest per-array record count, so a set of empty
/// slices is a valid zero-length placeholder on non-participating ranks.
pub struct Soa<'a> {
    name: &'a str,
    fields: Vec<SoaField>,
    bytes: Vec<&'a [u8]>,
    ranges: Vec<(usize, usize)>,
}

impl<'a> Soa<'a> {
    /// Start an empty group with a display name.
    pub fn new(name: &'a str) -> Self {
        Soa {
            name,
            fields: Vec::new(),
            bytes: Vec::new(),
            ranges: Vec::new(),
        }
    }

    /// Add a parallel array contributing one value per record.
    pub fn field<T: PrimElem>(self, name: &str, data: &'a [T]) -> Self {
        self.field_blocks(name, data, 1)
    }

    /// Add a parallel array contributing `blocklen` values per record.
    pub fn field_blocks<T: PrimElem>(mut self, name: &str, data: &'a [T], blocklen: usize) -> Self {
        assert!(blocklen >= 1, "soa blocklen must be at least 1");
        let raw = as_bytes(data);
        let lo = raw.as_ptr() as usize;
        self.fields.push(SoaField {
            name: name.to_string(),
            ty: T::BASIC,
            blocklen,
        });
        self.ranges.push((lo, lo + raw.len()));
        self.bytes.push(raw);
        self
    }

    fn records(&self) -> usize {
        self.fields
            .iter()
            .zip(&self.bytes)
            .map(|(f, b)| b.len() / (f.blocklen * f.ty.size()))
            .min()
            .unwrap_or(0)
    }

    fn layout(&self) -> SoaLayout {
        SoaLayout {
            name: self.name.to_string(),
            fields: self.fields.clone(),
        }
    }
}

impl SendBuf for Soa<'_> {
    fn meta(&self) -> BufMeta {
        let (lo, hi) = soa_hull(&self.ranges);
        BufMeta {
            name: self.name.to_string(),
            elem: ElemKind::Soa(self.layout()),
            len: self.records(),
            addr: (lo, hi),
        }
    }

    fn sub_ranges(&self) -> Option<&[(usize, usize)]> {
        Some(&self.ranges)
    }

    // Field-major wire format: all records of the first array, then all of
    // the second — each array contributes one contiguous copy-free block.
    fn gather(&self, count: usize, out: &mut Vec<u8>) {
        assert!(count <= self.records(), "gather count exceeds record count");
        for (f, b) in self.fields.iter().zip(&self.bytes) {
            out.extend_from_slice(&b[..count * f.blocklen * f.ty.size()]);
        }
    }
}

/// A struct-of-arrays receive view (see [`Soa`]).
pub struct SoaMut<'a> {
    name: &'a str,
    fields: Vec<SoaField>,
    bytes: Vec<&'a mut [u8]>,
    ranges: Vec<(usize, usize)>,
}

impl<'a> SoaMut<'a> {
    /// Start an empty group with a display name.
    pub fn new(name: &'a str) -> Self {
        SoaMut {
            name,
            fields: Vec::new(),
            bytes: Vec::new(),
            ranges: Vec::new(),
        }
    }

    /// Add a parallel array receiving one value per record.
    pub fn field<T: PrimElem>(self, name: &str, data: &'a mut [T]) -> Self {
        self.field_blocks(name, data, 1)
    }

    /// Add a parallel array receiving `blocklen` values per record.
    pub fn field_blocks<T: PrimElem>(
        mut self,
        name: &str,
        data: &'a mut [T],
        blocklen: usize,
    ) -> Self {
        assert!(blocklen >= 1, "soa blocklen must be at least 1");
        let raw = as_bytes_mut(data);
        let lo = raw.as_ptr() as usize;
        self.fields.push(SoaField {
            name: name.to_string(),
            ty: T::BASIC,
            blocklen,
        });
        self.ranges.push((lo, lo + raw.len()));
        self.bytes.push(raw);
        self
    }

    fn records(&self) -> usize {
        self.fields
            .iter()
            .zip(&self.bytes)
            .map(|(f, b)| b.len() / (f.blocklen * f.ty.size()))
            .min()
            .unwrap_or(0)
    }

    fn layout(&self) -> SoaLayout {
        SoaLayout {
            name: self.name.to_string(),
            fields: self.fields.clone(),
        }
    }
}

impl RecvBuf for SoaMut<'_> {
    fn meta(&self) -> BufMeta {
        let (lo, hi) = soa_hull(&self.ranges);
        BufMeta {
            name: self.name.to_string(),
            elem: ElemKind::Soa(self.layout()),
            len: self.records(),
            addr: (lo, hi),
        }
    }

    fn sub_ranges(&self) -> Option<&[(usize, usize)]> {
        Some(&self.ranges)
    }

    fn scatter(&mut self, count: usize, packed: &[u8]) {
        assert!(
            count <= self.records(),
            "scatter count exceeds record count"
        );
        let mut pos = 0usize;
        for (f, b) in self.fields.iter().zip(&mut self.bytes) {
            let len = count * f.blocklen * f.ty.size();
            b[..len].copy_from_slice(&packed[pos..pos + len]);
            pos += len;
        }
    }
}

/// Declare a communication-ready composite struct: emits a `#[repr(C)]`
/// struct plus its [`Described`] layout derived with `offset_of!`.
///
/// Pointer fields and nested composites do not compile — the paper's
/// prohibitions are enforced by the type system ([`FieldSpec`] has impls
/// only for primitives and fixed arrays of primitives).
///
/// ```
/// commint::comm_datatype! {
///     /// Example particle.
///     pub struct Particle {
///         id: i32,
///         position: [f64; 3],
///         charge: f64,
///     }
/// }
/// let layout = <Particle as commint::buffer::Described>::layout();
/// assert_eq!(layout.fields.len(), 3);
/// ```
#[macro_export]
macro_rules! comm_datatype {
    (
        $(#[$meta:meta])*
        $vis:vis struct $name:ident {
            $( $(#[$fmeta:meta])* $fvis:vis $field:ident : $ty:ty ),* $(,)?
        }
    ) => {
        $(#[$meta])*
        #[repr(C)]
        #[derive(Clone, Copy, Debug, PartialEq)]
        $vis struct $name {
            $( $(#[$fmeta])* $fvis $field : $ty, )*
        }

        unsafe impl $crate::buffer::Described for $name {
            fn layout() -> $crate::buffer::CompositeLayout {
                $crate::buffer::CompositeLayout::new::<$name>(
                    stringify!($name),
                    vec![
                        $( $crate::buffer::FieldDef {
                            name: stringify!($field).to_string(),
                            offset: std::mem::offset_of!($name, $field),
                            ty: <$ty as $crate::buffer::FieldSpec>::TY,
                            blocklen: <$ty as $crate::buffer::FieldSpec>::BLOCKLEN,
                        }, )*
                    ],
                )
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    crate::comm_datatype! {
        struct Mixed {
            a: i32,
            b: f64,
            tag3: [u8; 3],
            v: [f64; 2],
        }
    }

    #[test]
    fn macro_layout_offsets_correct() {
        let layout = Mixed::layout();
        assert_eq!(layout.name, "Mixed");
        assert_eq!(layout.extent, std::mem::size_of::<Mixed>());
        assert_eq!(layout.fields.len(), 4);
        assert_eq!(layout.fields[0].offset, std::mem::offset_of!(Mixed, a));
        assert_eq!(layout.fields[1].offset, std::mem::offset_of!(Mixed, b));
        assert_eq!(layout.fields[2].blocklen, 3);
        assert_eq!(layout.fields[3].ty, BasicType::F64);
        assert_eq!(layout.packed_size(), 4 + 8 + 3 + 16);
    }

    #[test]
    fn described_gather_scatter_roundtrip() {
        let items = [
            Mixed {
                a: 1,
                b: 2.5,
                tag3: [7, 8, 9],
                v: [0.1, 0.2],
            },
            Mixed {
                a: -4,
                b: -1.5,
                tag3: [0, 1, 2],
                v: [9.9, 8.8],
            },
        ];
        let mut packed = Vec::new();
        gather_described(&items, 2, &mut packed);
        assert_eq!(packed.len(), 2 * Mixed::layout().packed_size());

        let mut back = [Mixed {
            a: 0,
            b: 0.0,
            tag3: [0; 3],
            v: [0.0; 2],
        }; 2];
        scatter_described(&mut back, 2, &packed);
        assert_eq!(back, items);
    }

    #[test]
    fn partial_count_gathers_prefix() {
        let items = [
            Mixed {
                a: 1,
                b: 1.0,
                tag3: [1; 3],
                v: [1.0; 2],
            },
            Mixed {
                a: 2,
                b: 2.0,
                tag3: [2; 3],
                v: [2.0; 2],
            },
        ];
        let mut packed = Vec::new();
        gather_described(&items, 1, &mut packed);
        assert_eq!(packed.len(), Mixed::layout().packed_size());
        let mut back = [Mixed {
            a: 0,
            b: 0.0,
            tag3: [0; 3],
            v: [0.0; 2],
        }; 2];
        scatter_described(&mut back, 1, &packed);
        assert_eq!(back[0], items[0]);
        assert_eq!(back[1].a, 0);
    }

    #[test]
    fn prim_buffers_roundtrip() {
        let src = [1.5f64, 2.5, 3.5, 4.5];
        let sb = Prim::new("src", &src);
        let meta = sb.meta();
        assert_eq!(meta.len, 4);
        assert_eq!(meta.elem, ElemKind::Prim(BasicType::F64));
        assert_eq!(meta.addr.1 - meta.addr.0, 32);

        let mut packed = Vec::new();
        sb.gather(3, &mut packed);
        assert_eq!(packed.len(), 24);

        let mut dst = [0f64; 3];
        let mut rb = PrimMut::new("dst", &mut dst);
        rb.scatter(3, &packed);
        assert_eq!(dst, [1.5, 2.5, 3.5]);
    }

    #[test]
    fn strided_gather_scatter_roundtrip() {
        // A 4x3 column-major matrix; ship row 1 (blocklen 1, stride 4).
        let m: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let row = PrimStrided::new("row1", &m[1..], 1, 4);
        let meta = row.meta();
        assert_eq!(meta.len, 3, "three row elements");
        assert_eq!(meta.elem.packed_size(), 8);
        assert_eq!(meta.elem.extent(), 32);

        let mut packed = Vec::new();
        row.gather(3, &mut packed);
        let vals: Vec<f64> = mpisim::pod::vec_from_bytes(&packed);
        assert_eq!(vals, vec![1.0, 5.0, 9.0]);

        // Scatter into another matrix's row 0.
        let mut dst = vec![0.0f64; 12];
        let mut drow = PrimStridedMut::new("row0", &mut dst, 1, 4);
        drow.scatter(3, &packed);
        assert_eq!(dst[0], 1.0);
        assert_eq!(dst[4], 5.0);
        assert_eq!(dst[8], 9.0);
        assert_eq!(dst[1], 0.0);
    }

    #[test]
    fn strided_blocks_with_blocklen() {
        // blocks of 2 every 5.
        let data: Vec<i32> = (0..12).collect();
        let s = PrimStrided::new("blocks", &data, 2, 5);
        assert_eq!(s.meta().len, 3); // starts at 0, 5, 10
        let mut packed = Vec::new();
        s.gather(3, &mut packed);
        let vals: Vec<i32> = mpisim::pod::vec_from_bytes(&packed);
        assert_eq!(vals, vec![0, 1, 5, 6, 10, 11]);
    }

    #[test]
    fn strided_compatibility_rules() {
        let col = ElemKind::Strided {
            ty: BasicType::F64,
            blocklen: 1,
            stride: 8,
        };
        let other_stride = ElemKind::Strided {
            ty: BasicType::F64,
            blocklen: 1,
            stride: 3,
        };
        let contig = ElemKind::Prim(BasicType::F64);
        // Same block payload, different strides: compatible (wire format
        // is packed either way).
        assert!(col.compatible(&other_stride));
        // blocklen-1 strided <-> contiguous: compatible.
        assert!(col.compatible(&contig));
        assert!(contig.compatible(&col));
        // Wider blocks are not interchangeable with single values.
        let wide = ElemKind::Strided {
            ty: BasicType::F64,
            blocklen: 2,
            stride: 8,
        };
        assert!(!wide.compatible(&contig));
        assert!(!wide.compatible(&col));
    }

    #[test]
    #[should_panic(expected = "invalid stride layout")]
    fn stride_smaller_than_blocklen_rejected() {
        let data = [0f32; 8];
        let _ = PrimStrided::new("bad", &data, 3, 2);
    }

    #[test]
    fn overlap_detection() {
        let buf = [0u8; 16];
        let a = Prim::new("a", &buf[0..8]).meta();
        let b = Prim::new("b", &buf[8..16]).meta();
        let c = Prim::new("c", &buf[4..12]).meta();
        assert!(!a.overlaps(&b));
        assert!(a.overlaps(&c));
        assert!(c.overlaps(&b));
        assert!(a.overlaps(&a));
    }

    #[test]
    fn elem_compatibility() {
        let f = ElemKind::Prim(BasicType::F64);
        let i = ElemKind::Prim(BasicType::I32);
        assert!(f.compatible(&f));
        assert!(!f.compatible(&i));
        let comp = ElemKind::Composite(Mixed::layout());
        assert!(comp.compatible(&ElemKind::Composite(Mixed::layout())));
        assert!(!comp.compatible(&f));
    }

    #[test]
    fn soa_gather_scatter_roundtrip_field_major() {
        let ec = [1.5f64, 2.5, 3.5];
        let nc = [10i32, 20, 30];
        let sb = Soa::new("core").field("ec", &ec).field("nc", &nc);
        let meta = sb.meta();
        assert_eq!(meta.len, 3);
        assert_eq!(meta.elem.packed_size(), 12);
        assert_eq!(meta.elem.field_count(), 2);

        let mut packed = Vec::new();
        sb.gather(2, &mut packed);
        assert_eq!(packed.len(), 24);
        // Field-major: both ec records precede both nc records.
        let ec_back: Vec<f64> = mpisim::pod::vec_from_bytes(&packed[..16]);
        let nc_back: Vec<i32> = mpisim::pod::vec_from_bytes(&packed[16..]);
        assert_eq!(ec_back, vec![1.5, 2.5]);
        assert_eq!(nc_back, vec![10, 20]);

        let mut ec2 = [0f64; 3];
        let mut nc2 = [0i32; 3];
        let mut rb = SoaMut::new("core")
            .field("ec", &mut ec2)
            .field("nc", &mut nc2);
        rb.scatter(2, &packed);
        assert_eq!(ec2, [1.5, 2.5, 0.0]);
        assert_eq!(nc2, [10, 20, 0]);
    }

    #[test]
    fn soa_sub_ranges_exact_and_hull_summary() {
        let a = [0f64; 4];
        let b = [0i32; 4];
        let sb = Soa::new("g").field("a", &a).field("b", &b);
        let subs = SendBuf::sub_ranges(&sb).unwrap();
        assert_eq!(subs.len(), 2);
        assert_eq!(subs[0], (a.as_ptr() as usize, a.as_ptr() as usize + 32));
        assert_eq!(subs[1], (b.as_ptr() as usize, b.as_ptr() as usize + 16));
        let meta = sb.meta();
        assert!(meta.addr.0 <= subs[0].0 && meta.addr.1 >= subs[1].1);
    }

    #[test]
    fn soa_blocklen_and_empty_placeholder() {
        let vr = [1.0f64, 2.0, 3.0, 4.0];
        let sb = Soa::new("pot").field_blocks("vr", &vr, 4);
        assert_eq!(sb.meta().len, 1, "one record of four values");
        assert_eq!(sb.meta().elem.packed_size(), 32);

        let empty: [f64; 0] = [];
        let ph = Soa::new("pot").field_blocks("vr", &empty, 4);
        assert_eq!(ph.meta().len, 0, "placeholder has zero records");
        assert!(ph.meta().elem.compatible(&sb.meta().elem));
    }

    #[test]
    fn soa_compatibility_is_positional() {
        let a = [0f64; 2];
        let b = [0i32; 2];
        let x = Soa::new("x").field("a", &a).field("b", &b).meta().elem;
        let y = Soa::new("y").field("p", &a).field("q", &b).meta().elem;
        let flipped = Soa::new("z").field("b", &b).field("a", &a).meta().elem;
        assert!(x.compatible(&y), "names are irrelevant, layout is not");
        assert!(!x.compatible(&flipped));
        assert!(!x.compatible(&ElemKind::Prim(BasicType::F64)));
    }

    #[test]
    fn nested_layout_flattens_one_level() {
        #[repr(C)]
        #[derive(Clone, Copy)]
        struct Inner {
            x: f64,
            n: [i32; 2],
        }
        #[repr(C)]
        #[derive(Clone, Copy)]
        struct Outer {
            tag: i32,
            inner: Inner,
            w: f64,
        }
        let inner_layout = CompositeLayout::new::<Inner>(
            "Inner",
            vec![
                FieldDef {
                    name: "x".into(),
                    offset: std::mem::offset_of!(Inner, x),
                    ty: BasicType::F64,
                    blocklen: 1,
                },
                FieldDef {
                    name: "n".into(),
                    offset: std::mem::offset_of!(Inner, n),
                    ty: BasicType::I32,
                    blocklen: 2,
                },
            ],
        );
        let outer = CompositeLayout::nested::<Outer>(
            "Outer",
            vec![
                NestedField::Prim(FieldDef {
                    name: "tag".into(),
                    offset: std::mem::offset_of!(Outer, tag),
                    ty: BasicType::I32,
                    blocklen: 1,
                }),
                NestedField::Nested {
                    name: "inner".into(),
                    offset: std::mem::offset_of!(Outer, inner),
                    layout: inner_layout,
                },
                NestedField::Prim(FieldDef {
                    name: "w".into(),
                    offset: std::mem::offset_of!(Outer, w),
                    ty: BasicType::F64,
                    blocklen: 1,
                }),
            ],
        );
        assert_eq!(outer.fields.len(), 4, "inner fields spliced into parent");
        assert_eq!(outer.fields[1].name, "inner.x");
        assert_eq!(
            outer.fields[1].offset,
            std::mem::offset_of!(Outer, inner) + std::mem::offset_of!(Inner, x)
        );
        assert_eq!(outer.fields[2].name, "inner.n");
        assert_eq!(outer.packed_size(), 4 + 8 + 8 + 8);
        // The flattened result is an ordinary valid struct datatype.
        match outer.to_datatype() {
            Datatype::Struct { fields, extent } => {
                assert_eq!(fields.len(), 4);
                assert_eq!(extent, std::mem::size_of::<Outer>());
            }
            other => panic!("expected struct datatype, got {other:?}"),
        }
    }

    #[test]
    fn strided_span_bytes_excludes_tail_padding() {
        let col = ElemKind::Strided {
            ty: BasicType::F64,
            blocklen: 2,
            stride: 4,
        };
        // 3 blocks: (3-1)*4 + 2 = 10 doubles of footprint, 6 of payload.
        assert_eq!(col.span_bytes(3), 80);
        assert_eq!(col.packed_size() * 3, 48);
        assert_eq!(col.span_bytes(0), 0);
        assert_eq!(ElemKind::Prim(BasicType::I32).span_bytes(5), 20);
    }

    #[test]
    fn elem_datatype_mapping() {
        assert_eq!(
            ElemKind::Prim(BasicType::I32).to_datatype(),
            Datatype::Basic(BasicType::I32)
        );
        match ElemKind::Composite(Mixed::layout()).to_datatype() {
            Datatype::Struct { fields, extent } => {
                assert_eq!(fields.len(), 4);
                assert_eq!(extent, std::mem::size_of::<Mixed>());
            }
            other => panic!("expected struct datatype, got {other:?}"),
        }
    }
}
