//! Content-addressed artifact store: the shared substrate of the
//! incremental analysis service (`commintd`).
//!
//! Every derived analysis artifact — a lint stripe at one rank count, a
//! merged per-region sweep, an affine normal form, a `commprove`
//! certificate — is stored under a [`Key`] combining the *kind* of artifact
//! with a 64-bit content hash of everything the artifact is a pure function
//! of (canonical token stream, annotations, analysis variables, rank
//! range). Two properties follow:
//!
//! * **Content addressing.** The key never names a file or a revision; the
//!   same spec text under any path, at any time, maps to the same entries.
//!   Formatting-only edits (whitespace, comments) hash identically and hit.
//! * **Single-flight.** [`Store::get_or_build`] guarantees each artifact is
//!   computed at most once even under concurrent requests: the first caller
//!   builds while later callers for the same key block on a condvar and
//!   receive the finished value. N clients editing the same spec cost one
//!   computation per artifact, not N.
//!
//! Entries carry explicit dependency edges (stripe → sweep, stripe →
//! certificate, …). [`Store::invalidate`] removes an entry and walks the
//! reverse edges so everything downstream of a dirty input is dropped in
//! one call — the invalidation engine in `commintd` maps a file delta to
//! dirty region keys and lets the edges do the rest.

use std::collections::HashMap;
use std::sync::{Condvar, Mutex};

/// Artifact namespace of a cache key. Kinds partition the hash space so a
/// lint stripe and a certificate derived from identical inputs never
/// collide, and make [`Stats`] reports legible.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ArtifactKind {
    /// Per-region anchor entry: every artifact derived from one region
    /// version depends on its anchor, so invalidating the anchor evicts
    /// the whole cohort in one call.
    Region,
    /// Parsed + normalized region forms (`commint::nf` output).
    Forms,
    /// One region linted at one rank count (a "stripe").
    Stripe,
    /// One region's merged sweep over a full rank range.
    Sweep,
    /// One region's `commprove` certificate + proof diagnostics.
    Cert,
    /// One region's race-analysis summary.
    Race,
}

impl ArtifactKind {
    /// Stable short label (used in `stats` responses and logs).
    pub fn label(self) -> &'static str {
        match self {
            ArtifactKind::Region => "region",
            ArtifactKind::Forms => "forms",
            ArtifactKind::Stripe => "stripe",
            ArtifactKind::Sweep => "sweep",
            ArtifactKind::Cert => "cert",
            ArtifactKind::Race => "race",
        }
    }
}

/// Content-addressed cache key: artifact kind + 64-bit structural hash of
/// every input the artifact depends on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Key {
    pub kind: ArtifactKind,
    pub hash: u64,
}

impl Key {
    pub fn new(kind: ArtifactKind, hash: u64) -> Key {
        Key { kind, hash }
    }
}

impl std::fmt::Display for Key {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{:016x}", self.kind.label(), self.hash)
    }
}

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hash a byte string with FNV-1a (64-bit). Dependency-free and stable
/// across platforms and versions — cache keys must never drift with a
/// stdlib hasher change.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Incremental FNV-1a 64-bit hasher for composing multi-part keys without
/// materializing the concatenation.
#[derive(Clone, Copy, Debug)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(FNV_OFFSET)
    }
}

impl Fnv64 {
    pub fn new() -> Fnv64 {
        Fnv64::default()
    }

    /// Fold raw bytes into the hash.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Fold a length-prefixed string: `write_str("ab").write_str("c")`
    /// never collides with `write_str("a").write_str("bc")`.
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_u64(s.len() as u64).write(s.as_bytes())
    }

    /// Fold a little-endian u64.
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write(&v.to_le_bytes())
    }

    /// Fold an i64 (two's complement, little-endian).
    pub fn write_i64(&mut self, v: i64) -> &mut Self {
        self.write(&v.to_le_bytes())
    }

    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Counters describing a store's lifetime behaviour. All monotonic except
/// `entries` (the current resident population).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Entries currently resident.
    pub entries: usize,
    /// `get`/`get_or_build` calls answered from a resident entry.
    pub hits: u64,
    /// Calls that had to build (no resident entry, no in-flight build).
    pub misses: u64,
    /// Calls that blocked on another thread's in-flight build of the same
    /// key and received its result (the single-flight save).
    pub waits: u64,
    /// Entries removed by `invalidate` (including downstream dependents).
    pub invalidations: u64,
}

impl Stats {
    /// Fraction of lookups served without building, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let served = self.hits + self.waits;
        let total = served + self.misses;
        if total == 0 {
            0.0
        } else {
            served as f64 / total as f64
        }
    }
}

enum Slot<V> {
    /// Finished artifact.
    Ready(V),
    /// A thread is computing this entry; waiters block on the condvar.
    Building,
}

struct Inner<V> {
    slots: HashMap<Key, Slot<V>>,
    /// Reverse dependency edges: `dependents[k]` lists the keys whose
    /// artifacts were built *from* `k`'s artifact and must die with it.
    dependents: HashMap<Key, Vec<Key>>,
    stats: Stats,
}

/// Remove a `Building` slot if the builder unwinds, so waiters retry
/// instead of deadlocking on an entry nobody is computing.
struct BuildGuard<'a, V> {
    store: &'a Store<V>,
    key: Key,
    armed: bool,
}

impl<V> Drop for BuildGuard<'_, V> {
    fn drop(&mut self) {
        if self.armed {
            let mut inner = self.store.inner.lock().unwrap();
            inner.slots.remove(&self.key);
            drop(inner);
            self.store.cv.notify_all();
        }
    }
}

/// Thread-safe content-addressed store with single-flight builds and
/// dependency-edge invalidation. `V` is the artifact payload (in
/// `commintd`, an enum over relocatable diagnostics, certificates and
/// forms).
pub struct Store<V> {
    inner: Mutex<Inner<V>>,
    cv: Condvar,
}

impl<V: Clone> Default for Store<V> {
    fn default() -> Self {
        Store::new()
    }
}

impl<V: Clone> Store<V> {
    pub fn new() -> Store<V> {
        Store {
            inner: Mutex::new(Inner {
                slots: HashMap::new(),
                dependents: HashMap::new(),
                stats: Stats::default(),
            }),
            cv: Condvar::new(),
        }
    }

    /// Look up a finished artifact, counting a hit or miss. Does not block
    /// on in-flight builds (an entry mid-build reads as absent).
    pub fn get(&self, key: Key) -> Option<V> {
        let mut inner = self.inner.lock().unwrap();
        match inner.slots.get(&key) {
            Some(Slot::Ready(v)) => {
                let v = v.clone();
                inner.stats.hits += 1;
                Some(v)
            }
            _ => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Insert a finished artifact directly (used when an artifact is
    /// produced as a by-product of building another, or restored from the
    /// disk certificate store after validation). Records `deps` edges.
    pub fn insert(&self, key: Key, deps: &[Key], value: V) {
        let mut inner = self.inner.lock().unwrap();
        inner.slots.insert(key, Slot::Ready(value));
        for &d in deps {
            let row = inner.dependents.entry(d).or_default();
            if !row.contains(&key) {
                row.push(key);
            }
        }
        inner.stats.entries = inner.slots.len();
        drop(inner);
        // A direct insert may land on a key someone is waiting for.
        self.cv.notify_all();
    }

    /// Fetch the artifact for `key`, building it with `build` if absent.
    /// Exactly one caller runs `build` per resident lifetime of the key;
    /// concurrent callers block and share the result. `deps` names the
    /// keys this artifact is derived from — invalidating any of them
    /// removes this entry too.
    pub fn get_or_build<F: FnOnce() -> V>(&self, key: Key, deps: &[Key], build: F) -> V {
        {
            let mut inner = self.inner.lock().unwrap();
            let mut waited = false;
            loop {
                match inner.slots.get(&key) {
                    Some(Slot::Ready(v)) => {
                        let v = v.clone();
                        // Each call counts exactly once: as a wait if it
                        // blocked on another thread's build, else a hit.
                        if waited {
                            inner.stats.waits += 1;
                        } else {
                            inner.stats.hits += 1;
                        }
                        return v;
                    }
                    Some(Slot::Building) => {
                        waited = true;
                        inner = self.cv.wait(inner).unwrap();
                    }
                    None => {
                        inner.slots.insert(key, Slot::Building);
                        inner.stats.misses += 1;
                        break;
                    }
                }
            }
        }
        let mut guard = BuildGuard {
            store: self,
            key,
            armed: true,
        };
        let value = build();
        guard.armed = false;
        drop(guard);
        let mut inner = self.inner.lock().unwrap();
        inner.slots.insert(key, Slot::Ready(value.clone()));
        for &d in deps {
            let row = inner.dependents.entry(d).or_default();
            if !row.contains(&key) {
                row.push(key);
            }
        }
        inner.stats.entries = inner.slots.len();
        drop(inner);
        self.cv.notify_all();
        value
    }

    /// Remove `key` and, transitively, every entry downstream of it along
    /// the dependency edges. Returns the number of entries removed.
    /// In-flight builds of removed keys finish and land (their inputs were
    /// read before the invalidation; the entry is simply stale-keyed and
    /// unreachable once the caller re-derives keys from the new content).
    pub fn invalidate(&self, key: Key) -> usize {
        let mut inner = self.inner.lock().unwrap();
        let mut frontier = vec![key];
        let mut removed = 0usize;
        let mut visited = std::collections::HashSet::new();
        while let Some(k) = frontier.pop() {
            if !visited.insert(k) {
                continue;
            }
            if matches!(inner.slots.remove(&k), Some(Slot::Ready(_))) {
                removed += 1;
            }
            if let Some(down) = inner.dependents.remove(&k) {
                frontier.extend(down);
            }
        }
        inner.stats.invalidations += removed as u64;
        inner.stats.entries = inner.slots.len();
        removed
    }

    /// Drop every entry and edge; counters survive (they describe the
    /// store's lifetime, not its population).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap();
        let n = inner
            .slots
            .values()
            .filter(|s| matches!(s, Slot::Ready(_)))
            .count();
        inner.slots.clear();
        inner.dependents.clear();
        inner.stats.invalidations += n as u64;
        inner.stats.entries = 0;
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> Stats {
        self.inner.lock().unwrap().stats
    }

    /// Resident entry count per kind (for `stats` responses).
    pub fn population(&self) -> Vec<(ArtifactKind, usize)> {
        let inner = self.inner.lock().unwrap();
        let mut by_kind: HashMap<ArtifactKind, usize> = HashMap::new();
        for (k, slot) in &inner.slots {
            if matches!(slot, Slot::Ready(_)) {
                *by_kind.entry(k.kind).or_default() += 1;
            }
        }
        let mut rows: Vec<_> = by_kind.into_iter().collect();
        rows.sort();
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn k(kind: ArtifactKind, hash: u64) -> Key {
        Key::new(kind, hash)
    }

    #[test]
    fn fnv_is_stable() {
        // Reference vectors for FNV-1a 64-bit.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv64::new();
        h.write(b"a");
        assert_eq!(h.finish(), fnv1a64(b"a"));
        // Length prefixing separates field boundaries.
        let ab_c = Fnv64::new().write_str("ab").write_str("c").finish();
        let a_bc = Fnv64::new().write_str("a").write_str("bc").finish();
        assert_ne!(ab_c, a_bc);
    }

    #[test]
    fn build_once_then_hit() {
        let store: Store<u32> = Store::new();
        let key = k(ArtifactKind::Stripe, 7);
        let mut built = 0;
        let v = store.get_or_build(key, &[], || {
            built += 1;
            42
        });
        assert_eq!((v, built), (42, 1));
        let v = store.get_or_build(key, &[], || {
            built += 1;
            99
        });
        assert_eq!((v, built), (42, 1), "second lookup must hit");
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn invalidate_cascades_along_edges() {
        let store: Store<&'static str> = Store::new();
        let stripe = k(ArtifactKind::Stripe, 1);
        let sweep = k(ArtifactKind::Sweep, 2);
        let cert = k(ArtifactKind::Cert, 3);
        let other = k(ArtifactKind::Sweep, 4);
        store.insert(stripe, &[], "stripe");
        store.insert(sweep, &[stripe], "sweep");
        store.insert(cert, &[sweep], "cert");
        store.insert(other, &[], "other");
        // Killing the stripe kills the sweep and the cert, not `other`.
        assert_eq!(store.invalidate(stripe), 3);
        assert!(store.get(sweep).is_none());
        assert!(store.get(cert).is_none());
        assert_eq!(store.get(other), Some("other"));
        assert_eq!(store.stats().invalidations, 3);
        // Idempotent.
        assert_eq!(store.invalidate(stripe), 0);
    }

    #[test]
    fn single_flight_under_contention() {
        let store: Arc<Store<u64>> = Arc::new(Store::new());
        let builds = Arc::new(AtomicUsize::new(0));
        let key = k(ArtifactKind::Cert, 11);
        let mut handles = Vec::new();
        for _ in 0..8 {
            let store = Arc::clone(&store);
            let builds = Arc::clone(&builds);
            handles.push(std::thread::spawn(move || {
                store.get_or_build(key, &[], || {
                    builds.fetch_add(1, Ordering::SeqCst);
                    // Widen the race window so waiters actually queue.
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    1234
                })
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 1234);
        }
        assert_eq!(builds.load(Ordering::SeqCst), 1, "exactly one build");
        let s = store.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits + s.waits, 7);
    }

    #[test]
    fn builder_panic_releases_waiters() {
        let store: Arc<Store<u32>> = Arc::new(Store::new());
        let key = k(ArtifactKind::Forms, 5);
        let s2 = Arc::clone(&store);
        let h = std::thread::spawn(move || {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                s2.get_or_build(key, &[], || panic!("builder died"))
            }));
        });
        h.join().unwrap();
        // The slot must be free again: a fresh build succeeds.
        let v = store.get_or_build(key, &[], || 7);
        assert_eq!(v, 7);
    }

    #[test]
    fn population_counts_by_kind() {
        let store: Store<u8> = Store::new();
        store.insert(k(ArtifactKind::Stripe, 1), &[], 0);
        store.insert(k(ArtifactKind::Stripe, 2), &[], 0);
        store.insert(k(ArtifactKind::Cert, 3), &[], 0);
        let pop = store.population();
        assert_eq!(
            pop,
            vec![(ArtifactKind::Stripe, 2), (ArtifactKind::Cert, 1)]
        );
    }
}
