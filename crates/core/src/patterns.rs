//! Reusable structured communication patterns built on the directives.
//!
//! The paper motivates the clause vocabulary with "a variety of
//! point-to-point communication patterns that are recurring in scientific
//! applications" (Vetter & Mueller; Kim & Lilja; Riesen). These helpers
//! package the common ones so applications get a one-liner and the analyses
//! still see ordinary directive IR — "the directives also enable
//! opportunities for reusing structured communication patterns on different
//! code regions".

use crate::buffer::{Prim, PrimElem, PrimMut, PrimStridedMut};
use crate::clause::Target;
use crate::expr::RankExpr;
use crate::scope::{CommParams, CommSession, DirectiveError};

/// Cyclic ring: every rank sends `send` to `(rank+1) % n` and receives
/// into `recv` from `(rank-1+n) % n` (paper Listing 1).
pub fn ring<T: PrimElem>(
    session: &mut CommSession<'_>,
    target: Target,
    send: &[T],
    recv: &mut [T],
) -> Result<(), DirectiveError> {
    cyclic_shift(session, target, 1, send, recv)
}

/// Cyclic shift by `k`: send to `(rank+k) % n`, receive from
/// `(rank-k+n) % n`.
pub fn cyclic_shift<T: PrimElem>(
    session: &mut CommSession<'_>,
    target: Target,
    k: i64,
    send: &[T],
    recv: &mut [T],
) -> Result<(), DirectiveError> {
    let n = RankExpr::nranks;
    let params = CommParams::new()
        .sender(((RankExpr::rank() - RankExpr::lit(k)) % n() + n()) % n())
        .receiver((RankExpr::rank() + RankExpr::lit(k)) % n())
        .target(target);
    session.region(&params, |reg| {
        reg.p2p()
            .sbuf(Prim::new("shift_send", send))
            .rbuf(PrimMut::new("shift_recv", recv))
            .run()
    })?
}

/// Linear (non-cyclic) right shift by one: ranks `0..n-1` send to `rank+1`;
/// ranks `1..n` receive from `rank-1`. Boundary ranks are excluded by the
/// `sendwhen`/`receivewhen` pair.
pub fn linear_shift<T: PrimElem>(
    session: &mut CommSession<'_>,
    target: Target,
    send: &[T],
    recv: &mut [T],
) -> Result<(), DirectiveError> {
    let params = CommParams::new()
        .sender(RankExpr::rank() - RankExpr::lit(1))
        .receiver(RankExpr::rank() + RankExpr::lit(1))
        .sendwhen(RankExpr::rank().lt(RankExpr::nranks() - RankExpr::lit(1)))
        .receivewhen(RankExpr::rank().gt(RankExpr::lit(0)))
        .target(target);
    session.region(&params, |reg| {
        reg.p2p()
            .sbuf(Prim::new("lshift_send", send))
            .rbuf(PrimMut::new("lshift_recv", recv))
            .run()
    })?
}

/// Even→odd nearest-neighbour pairs (paper Listing 2): even ranks send to
/// `rank+1`, odd ranks receive from `rank-1`.
pub fn even_odd_pairs<T: PrimElem>(
    session: &mut CommSession<'_>,
    target: Target,
    send: &[T],
    recv: &mut [T],
) -> Result<(), DirectiveError> {
    let two = || RankExpr::lit(2);
    let params = CommParams::new()
        .sender(RankExpr::rank() - RankExpr::lit(1))
        .receiver(RankExpr::rank() + RankExpr::lit(1))
        .sendwhen(
            (RankExpr::rank() % two())
                .eq(RankExpr::lit(0))
                .and(RankExpr::rank().lt(RankExpr::nranks() - RankExpr::lit(1))),
        )
        .receivewhen((RankExpr::rank() % two()).eq(RankExpr::lit(1)))
        .target(target);
    session.region(&params, |reg| {
        reg.p2p()
            .sbuf(Prim::new("pair_send", send))
            .rbuf(PrimMut::new("pair_recv", recv))
            .run()
    })?
}

/// Fan-out from `root`: the root sends `chunks[d]` to each rank `d != root`;
/// every other rank receives its chunk into `recv`. One region, one
/// consolidated sync (the setEvec shape).
pub fn fan_out<T: PrimElem>(
    session: &mut CommSession<'_>,
    target: Target,
    root: usize,
    chunks: &[Vec<T>],
    recv: &mut [T],
) -> Result<(), DirectiveError> {
    let n = session.size();
    assert!(root < n, "root out of range");
    let iters = (n - 1) as i64;
    let params = CommParams::new()
        .sender(RankExpr::lit(root as i64))
        .receiver(RankExpr::var("fan_dest"))
        .sendwhen(RankExpr::rank().eq(RankExpr::lit(root as i64)))
        .receivewhen(RankExpr::rank().eq(RankExpr::var("fan_dest")))
        .max_comm_iter(iters.max(1))
        .target(target);
    let me = session.rank();
    if me == root {
        assert_eq!(chunks.len(), n, "fan_out needs one chunk per rank");
    }
    let count = recv.len();
    session.region(&params, |reg| {
        let empty: [T; 0] = [];
        for d in (0..n).filter(|&d| d != root) {
            reg.set_var("fan_dest", d as i64);
            // Non-root senders never fire; an empty well-typed dummy
            // satisfies the sbuf clause (the explicit count rules).
            let src: &[T] = if me == root { &chunks[d] } else { &empty };
            reg.p2p()
                .site(7001)
                .count(count)
                .sbuf(Prim::new("fan_chunk", src))
                .rbuf(PrimMut::new("fan_recv", &mut *recv))
                .run()?;
        }
        Ok(())
    })?
}

/// Fan-in to `root`: every rank `d != root` sends `send`; the root
/// receives each rank's contribution into `out[d]`.
pub fn fan_in<T: PrimElem>(
    session: &mut CommSession<'_>,
    target: Target,
    root: usize,
    send: &[T],
    out: &mut [Vec<T>],
) -> Result<(), DirectiveError> {
    let n = session.size();
    assert!(root < n, "root out of range");
    let params = CommParams::new()
        .sender(RankExpr::var("fan_src"))
        .receiver(RankExpr::lit(root as i64))
        .sendwhen(RankExpr::rank().eq(RankExpr::var("fan_src")))
        .receivewhen(RankExpr::rank().eq(RankExpr::lit(root as i64)))
        .max_comm_iter((n as i64 - 1).max(1))
        .target(target);
    let me = session.rank();
    session.region(&params, |reg| {
        for s in (0..n).filter(|&s| s != root) {
            reg.set_var("fan_src", s as i64);
            if me == root {
                assert_eq!(out.len(), n, "fan_in needs one slot per rank");
            }
            let dst: &mut [T] = if me == root {
                &mut out[s]
            } else {
                // Non-root receivers never fire; any same-typed target works.
                &mut []
            };
            // Count must be SPMD-uniform: use the sender's length.
            let r = reg
                .p2p()
                .site(7002)
                .count(send.len())
                .sbuf(Prim::new("fanin_send", send))
                .rbuf(PrimMut::new("fanin_out", dst))
                .run();
            r?;
        }
        Ok(())
    })?
}

/// 1-D halo exchange: each rank sends its left edge to `rank-1` and its
/// right edge to `rank+1`, receiving ghosts from both, within one region
/// (two `comm_p2p` sites, one consolidated sync).
#[allow(clippy::too_many_arguments)]
pub fn halo_1d<T: PrimElem>(
    session: &mut CommSession<'_>,
    target: Target,
    left_edge: &[T],
    right_edge: &[T],
    left_ghost: &mut [T],
    right_ghost: &mut [T],
) -> Result<(), DirectiveError> {
    let params = CommParams::new().target(target);
    session.region(&params, |reg| {
        // Rightward: send right edge to rank+1, receive left ghost from rank-1.
        reg.p2p()
            .site(7101)
            .sender(RankExpr::rank() - RankExpr::lit(1))
            .receiver(RankExpr::rank() + RankExpr::lit(1))
            .sendwhen(RankExpr::rank().lt(RankExpr::nranks() - RankExpr::lit(1)))
            .receivewhen(RankExpr::rank().gt(RankExpr::lit(0)))
            .sbuf(Prim::new("right_edge", right_edge))
            .rbuf(PrimMut::new("left_ghost", left_ghost))
            .run()?;
        // Leftward: send left edge to rank-1, receive right ghost from rank+1.
        reg.p2p()
            .site(7102)
            .sender(RankExpr::rank() + RankExpr::lit(1))
            .receiver(RankExpr::rank() - RankExpr::lit(1))
            .sendwhen(RankExpr::rank().gt(RankExpr::lit(0)))
            .receivewhen(RankExpr::rank().lt(RankExpr::nranks() - RankExpr::lit(1)))
            .sbuf(Prim::new("left_edge", left_edge))
            .rbuf(PrimMut::new("right_ghost", right_ghost))
            .run()?;
        Ok(())
    })?
}

/// 2-D halo exchange on a `rows x cols` column-major local grid arranged on
/// a `px x py` process grid: column halos move contiguously, row halos move
/// through **strided buffers** (the directive's automatic vector-datatype
/// handling — no manual packing).
///
/// `grid` has `(rows+2) x (cols+2)` storage including the ghost frame.
/// Ghosts are filled from the four neighbours where they exist.
#[allow(clippy::too_many_arguments)]
pub fn halo_2d<T: PrimElem>(
    session: &mut CommSession<'_>,
    target: Target,
    px: i64,
    py: i64,
    rows: usize,
    cols: usize,
    grid: &mut [T],
) -> Result<(), DirectiveError> {
    let ld = rows + 2; // leading dimension (column-major with ghost frame)
    assert_eq!(
        grid.len(),
        ld * (cols + 2),
        "grid must include the ghost frame"
    );
    let pxr = || RankExpr::lit(px);

    // Left/right neighbours exchange interior edge columns (contiguous).
    let my_col = RankExpr::rank() % pxr();
    let left_cond = my_col.clone().gt(RankExpr::lit(0));
    let right_cond = (RankExpr::rank() % pxr()).lt(RankExpr::lit(px - 1));
    let _ = py;

    // Columns are contiguous slices; rows are strided views.
    // Extract the four edges (copies for sends; ghosts written in place).
    let first_col: Vec<T> = grid[ld + 1..ld + 1 + rows].to_vec();
    let last_col: Vec<T> = grid[cols * ld + 1..cols * ld + 1 + rows].to_vec();

    let params = CommParams::new().target(target);
    session.region(&params, |reg| {
        // Rightward column: send last interior column to rank+1, receive
        // left ghost column from rank-1.
        let (ghost_left, rest) = grid.split_at_mut(ld);
        reg.p2p()
            .site(7201)
            .sender(RankExpr::rank() - RankExpr::lit(1))
            .receiver(RankExpr::rank() + RankExpr::lit(1))
            .sendwhen(right_cond.clone())
            .receivewhen(left_cond.clone())
            .count(rows)
            .sbuf(Prim::new("last_col", &last_col))
            .rbuf(PrimMut::new("ghost_left", &mut ghost_left[1..1 + rows]))
            .run()?;
        // Leftward column.
        let ghost_right_start = cols * ld; // within `rest` (offset by ld)
        reg.p2p()
            .site(7202)
            .sender(RankExpr::rank() + RankExpr::lit(1))
            .receiver(RankExpr::rank() - RankExpr::lit(1))
            .sendwhen(left_cond.clone())
            .receivewhen(right_cond.clone())
            .count(rows)
            .sbuf(Prim::new("first_col", &first_col))
            .rbuf(PrimMut::new(
                "ghost_right",
                &mut rest[ghost_right_start + 1..ghost_right_start + 1 + rows],
            ))
            .run()?;
        Ok::<(), DirectiveError>(())
    })??;

    // Up/down neighbours exchange interior edge rows via strided buffers.
    let up_cond = (RankExpr::rank() / pxr()).gt(RankExpr::lit(0));
    let down_cond = (RankExpr::rank() / pxr()).lt(RankExpr::lit(py - 1));
    let first_row: Vec<T> = (0..cols).map(|c| grid[(c + 1) * ld + 1]).collect();
    let last_row: Vec<T> = (0..cols).map(|c| grid[(c + 1) * ld + rows]).collect();

    let params = CommParams::new().target(target);
    session.region(&params, |reg| {
        // Downward row: send last interior row to rank+px; ghost row 0
        // (top) comes from rank-px — written through a strided view, the
        // MPI_Type_vector case.
        reg.p2p()
            .site(7203)
            .sender(RankExpr::rank() - pxr())
            .receiver(RankExpr::rank() + pxr())
            .sendwhen(down_cond.clone())
            .receivewhen(up_cond.clone())
            .count(cols)
            .sbuf(Prim::new("last_row", &last_row))
            .rbuf(PrimStridedMut::new("ghost_top_row", &mut grid[ld..], 1, ld))
            .run()?;
        Ok::<(), DirectiveError>(())
    })??;

    let params = CommParams::new().target(target);
    session.region(&params, |reg| {
        // Upward row into the bottom ghost row (index rows+1 of each col).
        reg.p2p()
            .site(7204)
            .sender(RankExpr::rank() + pxr())
            .receiver(RankExpr::rank() - pxr())
            .sendwhen(up_cond)
            .receivewhen(down_cond)
            .count(cols)
            .sbuf(Prim::new("first_row", &first_row))
            .rbuf(PrimStridedMut::new(
                "ghost_bottom_row",
                &mut grid[ld + rows + 1..],
                1,
                ld,
            ))
            .run()?;
        Ok::<(), DirectiveError>(())
    })??;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::Comm;
    use netsim::{run, SimConfig};

    fn with_session<R: Send>(n: usize, f: impl Fn(&mut CommSession<'_>) -> R + Sync) -> Vec<R> {
        run(SimConfig::new(n), |ctx| {
            let comm = Comm::world(ctx);
            let mut session = CommSession::new(ctx, comm);
            let out = f(&mut session);
            session.flush();
            out
        })
        .per_rank
    }

    #[test]
    fn ring_rotates_all_targets() {
        for target in Target::ALL {
            let n = 5;
            let got = with_session(n, move |s| {
                let me = s.rank() as i64;
                let send = [me, me * 10];
                let mut recv = [0i64; 2];
                ring(s, target, &send, &mut recv).unwrap();
                recv
            });
            for (r, v) in got.iter().enumerate() {
                let prev = ((r + n - 1) % n) as i64;
                assert_eq!(*v, [prev, prev * 10], "target {target}");
            }
        }
    }

    #[test]
    fn cyclic_shift_by_k() {
        let n = 7;
        for k in [2i64, 3, 6] {
            let got = with_session(n, move |s| {
                let me = s.rank() as i64;
                let send = [me];
                let mut recv = [-1i64];
                cyclic_shift(s, Target::Mpi2Side, k, &send, &mut recv).unwrap();
                recv[0]
            });
            for (r, &v) in got.iter().enumerate() {
                assert_eq!(v as usize, (r + n - k as usize) % n, "k={k}");
            }
        }
    }

    #[test]
    fn linear_shift_excludes_boundaries() {
        let n = 6;
        let got = with_session(n, move |s| {
            let me = s.rank() as i64;
            let send = [me + 100];
            let mut recv = [-1i64];
            linear_shift(s, Target::Mpi2Side, &send, &mut recv).unwrap();
            recv[0]
        });
        assert_eq!(got[0], -1, "rank 0 receives nothing");
        for (r, &v) in got.iter().enumerate().skip(1) {
            assert_eq!(v, r as i64 - 1 + 100);
        }
    }

    #[test]
    fn even_odd_delivery() {
        let n = 8;
        let got = with_session(n, move |s| {
            let me = s.rank() as i64;
            let send = [me * 2];
            let mut recv = [-1i64];
            even_odd_pairs(s, Target::Mpi2Side, &send, &mut recv).unwrap();
            recv[0]
        });
        for (r, &v) in got.iter().enumerate() {
            if r % 2 == 1 {
                assert_eq!(v, (r as i64 - 1) * 2);
            } else {
                assert_eq!(v, -1);
            }
        }
    }

    #[test]
    fn fan_out_distributes_chunks() {
        let n = 5;
        let root = 2usize;
        let got = with_session(n, move |s| {
            let me = s.rank();
            let chunks: Vec<Vec<i64>> = (0..n).map(|d| vec![d as i64 * 11, 7]).collect();
            let mut recv = [0i64; 2];
            fan_out(s, Target::Mpi2Side, root, &chunks, &mut recv).unwrap();
            (me, recv)
        });
        for (r, (me, recv)) in got.iter().enumerate() {
            assert_eq!(r, *me);
            if r != root {
                assert_eq!(*recv, [r as i64 * 11, 7]);
            }
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // rank-indexed assertions
    fn fan_in_collects_contributions() {
        let n = 4;
        let root = 0usize;
        let got = with_session(n, move |s| {
            let me = s.rank() as i64;
            let send = [me + 50];
            let mut out: Vec<Vec<i64>> = if s.rank() == root {
                (0..n).map(|_| vec![0i64]).collect()
            } else {
                Vec::new()
            };
            // Root needs slots even though it doesn't send.
            if s.rank() == root {
                fan_in(s, Target::Mpi2Side, root, &send, &mut out).unwrap();
                Some(out)
            } else {
                let mut dummy: Vec<Vec<i64>> = Vec::new();
                fan_in(s, Target::Mpi2Side, root, &send, &mut dummy).unwrap();
                None
            }
        });
        let collected = got[0].as_ref().expect("root output");
        for s in 1..n {
            assert_eq!(collected[s], vec![s as i64 + 50]);
        }
    }

    #[test]
    fn halo_exchange_both_directions() {
        let n = 5;
        let got = with_session(n, move |s| {
            let me = s.rank() as i64;
            let left_edge = [me * 10];
            let right_edge = [me * 10 + 1];
            let mut left_ghost = [-1i64];
            let mut right_ghost = [-1i64];
            halo_1d(
                s,
                Target::Mpi2Side,
                &left_edge,
                &right_edge,
                &mut left_ghost,
                &mut right_ghost,
            )
            .unwrap();
            (left_ghost[0], right_ghost[0])
        });
        for (r, &(lg, rg)) in got.iter().enumerate() {
            if r > 0 {
                assert_eq!(lg, (r as i64 - 1) * 10 + 1, "left ghost of {r}");
            } else {
                assert_eq!(lg, -1);
            }
            if r < n - 1 {
                assert_eq!(rg, (r as i64 + 1) * 10, "right ghost of {r}");
            } else {
                assert_eq!(rg, -1);
            }
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // row-indexed assertions
    fn halo_2d_fills_ghosts_via_strided_rows() {
        // 2x2 process grid, 3x2 interior per rank, column-major + ghosts.
        let (px, py) = (2usize, 2usize);
        let (rows, cols) = (3usize, 2usize);
        let ld = rows + 2;
        let got = with_session(px * py, move |s| {
            let me = s.rank() as i64;
            let mut grid = vec![-1.0f64; ld * (cols + 2)];
            for c in 1..=cols {
                for r in 1..=rows {
                    grid[c * ld + r] = me as f64 * 100.0 + (c * 10 + r) as f64;
                }
            }
            halo_2d(
                s,
                Target::Mpi2Side,
                px as i64,
                py as i64,
                rows,
                cols,
                &mut grid,
            )
            .unwrap();
            grid
        });
        // Rank 1 (process col 1, row 0): left ghost = rank 0's last column.
        let g1 = &got[1];
        for r in 1..=rows {
            assert_eq!(
                g1[r],
                0.0 * 100.0 + (cols * 10 + r) as f64,
                "left ghost r={r}"
            );
        }
        // Rank 0: right ghost = rank 1's first column.
        let g0 = &got[0];
        for r in 1..=rows {
            assert_eq!(
                g0[(cols + 1) * ld + r],
                100.0 + (10 + r) as f64,
                "right ghost r={r}"
            );
        }
        // Rank 2 (process row 1): top ghost row = rank 0's last row.
        let g2 = &got[2];
        for c in 1..=cols {
            assert_eq!(g2[c * ld], (c * 10 + rows) as f64, "top ghost c={c}");
        }
        // Rank 0: bottom ghost row = rank 2's first row.
        for c in 1..=cols {
            assert_eq!(
                g0[c * ld + rows + 1],
                200.0 + (c * 10 + 1) as f64,
                "bottom ghost c={c}"
            );
        }
        // Untouched frame corners stay at the sentinel.
        assert_eq!(g0[0], -1.0);
    }

    #[test]
    fn patterns_record_analyzable_ir() {
        use crate::analysis::{classify, resolve_graph, Pattern};
        let n = 6;
        let reports = with_session(n, move |s| {
            let me = s.rank() as i64;
            let send = [me];
            let mut recv = [0i64];
            ring(s, Target::Mpi2Side, &send, &mut recv).unwrap();
            let program = s.program().to_vec();
            let g = resolve_graph(
                &program[0].body[0],
                Some(&program[0].clauses),
                n,
                &std::collections::HashMap::new(),
            );
            classify(&g, n)
        });
        assert!(reports.iter().all(|p| *p == Pattern::CyclicShift { k: 1 }));
    }
}
