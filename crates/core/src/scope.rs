//! The runtime directive engine: `comm_parameters` regions and `comm_p2p`
//! instances executing against a chosen target library, with the paper's
//! automatic behaviours — data-type handling, count inference,
//! synchronization consolidation and placement, communication/computation
//! overlap, and symmetric staging-buffer reuse.
//!
//! ## Timing semantics
//!
//! Data movement is physical (the receive buffer really is filled), but the
//! *cost* of waiting is deferred: a `comm_p2p` records virtual completion
//! times, and the region's synchronization point folds them into the rank's
//! clock as one consolidated charge ("for every set of adjacent comm_p2p
//! directives with independent buffers, synchronization is consolidated and
//! reduced in most cases to one call at the end"). Computation overlapped
//! via [`P2pCall::overlap`] therefore advances the clock concurrently with
//! the in-flight transfer, exactly like the generated overlap code.

use std::collections::HashMap;

use mpisim::dtype::DtypeCache;
use mpisim::Comm;
use netsim::{RankCtx, SegId, SendRequest, Time};

use crate::buffer::{BufMeta, ElemKind, RecvBuf, SendBuf};
use crate::clause::{ClauseSet, Diagnostic, DirectiveKind, PlaceSync, Target};
use crate::dir::{P2pSpec, ParamsSpec};
use crate::expr::{CondExpr, EvalEnv, ExprError, RankExpr};
use crate::lower::{Lowering, LoweringPolicy};
use crate::overlay::{Decision, Overlay};

/// Base user tag reserved for directive-generated messages.
const DIR_TAG_BASE: i32 = 1 << 18;

/// User-tag base for coalesced (batched) directive messages — disjoint
/// from [`DIR_TAG_BASE`] so packed and per-instance traffic for the same
/// site can never cross-match. Still inside mpisim's user-tag space.
const COAL_TAG_BASE: i32 = DIR_TAG_BASE + (1 << 17);

/// Errors from directive execution.
#[derive(Debug)]
pub enum DirectiveError {
    /// Clause/buffer validation failed.
    Invalid(Vec<Diagnostic>),
    /// A clause expression failed to evaluate.
    Expr(ExprError),
    /// An evaluated rank was outside the communicator.
    RankOutOfRange {
        clause: &'static str,
        value: i64,
        size: usize,
    },
    /// A site executed more times than `max_comm_iter` allows.
    MaxIterExceeded { site: u32, bound: i64 },
    /// A later execution's payload exceeded the staging capacity fixed at
    /// first execution (increase `max_comm_iter` or keep counts uniform).
    StagingOverflow { site: u32, need: usize, have: usize },
}

impl std::fmt::Display for DirectiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DirectiveError::Invalid(diags) => {
                writeln!(f, "directive validation failed:")?;
                for d in diags {
                    writeln!(f, "  {d}")?;
                }
                Ok(())
            }
            DirectiveError::Expr(e) => write!(f, "clause expression error: {e}"),
            DirectiveError::RankOutOfRange {
                clause,
                value,
                size,
            } => write!(
                f,
                "`{clause}` evaluated to {value}, outside communicator of size {size}"
            ),
            DirectiveError::MaxIterExceeded { site, bound } => write!(
                f,
                "comm_p2p site {site} executed more than max_comm_iter={bound} times"
            ),
            DirectiveError::StagingOverflow { site, need, have } => write!(
                f,
                "comm_p2p site {site}: payload {need}B exceeds staging capacity {have}B"
            ),
        }
    }
}

impl std::error::Error for DirectiveError {}

impl From<ExprError> for DirectiveError {
    fn from(e: ExprError) -> Self {
        DirectiveError::Expr(e)
    }
}

/// Builder for the `comm_parameters` directive's clause list.
#[derive(Clone, Debug, Default)]
pub struct CommParams {
    /// The clause payload.
    pub clauses: ClauseSet,
}

impl CommParams {
    /// Empty clause list.
    pub fn new() -> Self {
        Self::default()
    }

    /// `sender(expr)`.
    pub fn sender(mut self, e: impl Into<RankExpr>) -> Self {
        self.clauses.sender = Some(e.into());
        self
    }

    /// `receiver(expr)`.
    pub fn receiver(mut self, e: impl Into<RankExpr>) -> Self {
        self.clauses.receiver = Some(e.into());
        self
    }

    /// `sendwhen(cond)`.
    pub fn sendwhen(mut self, c: CondExpr) -> Self {
        self.clauses.sendwhen = Some(c);
        self
    }

    /// `receivewhen(cond)`.
    pub fn receivewhen(mut self, c: CondExpr) -> Self {
        self.clauses.receivewhen = Some(c);
        self
    }

    /// `count(expr)`.
    pub fn count(mut self, e: impl Into<RankExpr>) -> Self {
        self.clauses.count = Some(e.into());
        self
    }

    /// `target(keyword)`.
    pub fn target(mut self, t: Target) -> Self {
        self.clauses.target = Some(t);
        self
    }

    /// `place_sync(keyword)`.
    pub fn place_sync(mut self, p: PlaceSync) -> Self {
        self.clauses.place_sync = Some(p);
        self
    }

    /// `max_comm_iter(expr)`.
    pub fn max_comm_iter(mut self, e: impl Into<RankExpr>) -> Self {
        self.clauses.max_comm_iter = Some(e.into());
        self
    }
}

/// Deferred synchronization state accumulated by directive executions.
#[derive(Default)]
struct PendingSync {
    /// Outstanding non-blocking sends (MPI two-sided).
    send_reqs: Vec<SendRequest>,
    /// Completion times of already-delivered receives (MPI two-sided).
    recv_completions: Vec<Time>,
    /// Put arrival times by library, sender side.
    put_arrivals_mpi: Vec<Time>,
    put_arrivals_shmem: Vec<Time>,
    /// Incoming put arrival times, receiver side.
    recv_arrivals_mpi: Vec<Time>,
    recv_arrivals_shmem: Vec<Time>,
    /// Whether any directive in scope used each one-sided target (uniform
    /// across ranks, so the collective fence/barrier is safe).
    used_mpi1: bool,
    used_shmem: bool,
}

impl PendingSync {
    fn is_empty(&self) -> bool {
        self.send_reqs.is_empty()
            && self.recv_completions.is_empty()
            && !self.used_mpi1
            && !self.used_shmem
    }

    fn absorb(&mut self, mut other: PendingSync) {
        self.send_reqs.append(&mut other.send_reqs);
        self.recv_completions.append(&mut other.recv_completions);
        self.put_arrivals_mpi.append(&mut other.put_arrivals_mpi);
        self.put_arrivals_shmem
            .append(&mut other.put_arrivals_shmem);
        self.recv_arrivals_mpi.append(&mut other.recv_arrivals_mpi);
        self.recv_arrivals_shmem
            .append(&mut other.recv_arrivals_shmem);
        self.used_mpi1 |= other.used_mpi1;
        self.used_shmem |= other.used_shmem;
    }
}

/// A per-site symmetric staging allocation for one-sided targets.
struct StagingSite {
    seg: SegId,
    /// Byte offset of each buffer within one slot.
    buf_offsets: Vec<usize>,
    /// Bytes per slot (one directive execution).
    slot_bytes: usize,
    /// Number of slots (`max_comm_iter` at first execution, else 1).
    slots: usize,
    /// Per-destination send counts (slot selection on the sender).
    send_counts: HashMap<usize, u64>,
    /// Receive count (slot selection + signal indexing on the receiver).
    recv_count: u64,
}

/// Sender-side accumulator for one (site, destination) coalescing stream.
struct CoalesceOut {
    site: u32,
    dest: usize,
    target: Target,
    batch: usize,
    /// Directive instances accumulated since the last flush.
    instances: usize,
    /// Length-framed pieces awaiting one packed send.
    buf: Vec<u8>,
    /// Latest data-dependency horizon among the accumulated pieces: the
    /// packed send departs no earlier than its newest piece's data.
    horizon: Time,
}

/// Receiver-side buffer of one packed message being peeled piece by piece.
struct CoalesceIn {
    site: u32,
    src: usize,
    payload: bytes::Bytes,
    pos: usize,
    /// Virtual completion time of the packed message that carried `payload`.
    completion: Time,
}

/// Per-site symmetric staging for SHMEM-coalesced flushes: one slot holds
/// one packed flush (`[u32 total][framed pieces...]`).
struct CoalStaging {
    seg: SegId,
    slot_bytes: usize,
    slots: usize,
    /// Per-destination flush counts (slot selection on the sender).
    send_flushes: HashMap<usize, u64>,
    /// Flushes consumed (slot selection + signal indexing on the receiver).
    recv_flushes: u64,
}

/// Runtime state of an installed tuning overlay: the decisions plus the
/// coalescing accumulators they drive.
struct OverlayState {
    overlay: Overlay,
    out: Vec<CoalesceOut>,
    inbox: Vec<CoalesceIn>,
    shmem_staging: Vec<(u32, CoalStaging)>,
}

/// A directive session: binds a rank context to a communicator and holds
/// the cross-region state — the per-scope datatype cache, carried
/// synchronizations (`place_sync` deferral), symmetric staging sites, and
/// the recorded IR of every region executed (for analysis).
pub struct CommSession<'a> {
    ctx: &'a mut RankCtx,
    comm: Comm,
    /// Cached evaluation environment (rank/size are session constants; the
    /// variable bindings are updated in place by `set_var`). Kept ready so
    /// the directive hot path never clones a variable map per instance.
    env: EvalEnv,
    dtype_cache: DtypeCache,
    carried_next: PendingSync,
    carried_adj: PendingSync,
    /// Per-site staging allocations, linear-scanned by site id: a session
    /// has a handful of one-sided sites but the lookup runs on every
    /// directive instance, where a short scan beats hashing.
    staging: Vec<(u32, StagingSite)>,
    /// Arrival horizons of physically-received-but-unsynced buffers, keyed
    /// by address range. A later send reading such a buffer is forced to
    /// depart no earlier than the data's virtual arrival (causality under
    /// deferred synchronization — the "relaxed" sync stays legal).
    recv_horizons: Vec<((usize, usize), Time)>,
    /// Recorded region IR (first instance per call order), for analysis.
    program: Vec<ParamsSpec>,
    record_ir: bool,
    /// Installed tuning overlay plus its coalescing state. `None` (the
    /// untuned hot path) costs a single branch per directive instance.
    overlay: Option<Box<OverlayState>>,
    /// Marshalling strategy policy: `Auto` runs the layout engine's
    /// per-site chooser; the fixed policies exist for A/B benchmarking.
    lowering: LoweringPolicy,
}

impl<'a> CommSession<'a> {
    /// Create a session over `comm`.
    pub fn new(ctx: &'a mut RankCtx, comm: Comm) -> Self {
        let env = EvalEnv::new(comm.rank(ctx), comm.size());
        CommSession {
            ctx,
            comm,
            env,
            dtype_cache: DtypeCache::new(),
            carried_next: PendingSync::default(),
            carried_adj: PendingSync::default(),
            staging: Vec::new(),
            recv_horizons: Vec::new(),
            program: Vec::new(),
            record_ir: true,
            overlay: None,
            lowering: LoweringPolicy::default(),
        }
    }

    /// Override the marshalling-strategy policy (default `Auto`). The
    /// fixed policies (`AlwaysPack`, `AlwaysDatatype`) exist to benchmark
    /// the layout engine's chooser against what it replaces.
    pub fn with_lowering(mut self, policy: LoweringPolicy) -> Self {
        self.lowering = policy;
        self
    }

    /// Install a tuning overlay (profile-guided decisions from `commtune`).
    /// Decisions apply to every directive executed afterwards; `Keep`
    /// decisions are behaviorally inert by construction, so an all-keep
    /// overlay reproduces the untuned run bit for bit.
    pub fn with_overlay(mut self, overlay: Overlay) -> Self {
        self.overlay = Some(Box::new(OverlayState {
            overlay,
            out: Vec::new(),
            inbox: Vec::new(),
            shmem_staging: Vec::new(),
        }));
        self
    }

    /// The installed tuning overlay, if any.
    pub fn overlay(&self) -> Option<&Overlay> {
        self.overlay.as_deref().map(|s| &s.overlay)
    }

    /// The latest arrival horizon of received data overlapping `range`
    /// (data-dependency fence for sends under deferred sync).
    fn data_horizon(&self, range: (usize, usize)) -> Option<Time> {
        self.recv_horizons
            .iter()
            .filter(|((lo, hi), _)| *lo < range.1 && range.0 < *hi)
            .map(|&(_, t)| t)
            .max()
    }

    /// `data_horizon` over a buffer's exact constituent ranges when it
    /// exposes them (struct-of-arrays), else its summary range. The summary
    /// hull of unrelated heap arrays is allocator-dependent, so dependence
    /// decisions must never consult it where exact ranges exist — engines
    /// could otherwise diverge on identical programs.
    fn buf_data_horizon(
        &self,
        ranges: Option<&[(usize, usize)]>,
        addr: (usize, usize),
    ) -> Option<Time> {
        match ranges {
            Some(rs) => rs.iter().filter_map(|&r| self.data_horizon(r)).max(),
            None => self.data_horizon(addr),
        }
    }

    /// Record an arrival horizon per exact constituent range (see
    /// `buf_data_horizon`), else on the summary range.
    fn push_recv_horizon(
        &mut self,
        ranges: Option<&[(usize, usize)]>,
        addr: (usize, usize),
        t: Time,
    ) {
        match ranges {
            Some(rs) => {
                for &r in rs {
                    self.recv_horizons.push((r, t));
                }
            }
            None => self.recv_horizons.push((addr, t)),
        }
    }

    /// Disable IR recording (hot loops in benches).
    pub fn without_ir(mut self) -> Self {
        self.record_ir = false;
        self
    }

    /// Bind a clause variable.
    pub fn set_var(&mut self, name: &str, value: i64) {
        self.env.set(name, value);
    }

    /// The underlying rank context.
    pub fn ctx(&mut self) -> &mut RankCtx {
        self.ctx
    }

    /// The session's communicator.
    pub fn comm(&self) -> &Comm {
        &self.comm
    }

    /// This rank's communicator-local id.
    pub fn rank(&self) -> usize {
        self.comm.rank(self.ctx)
    }

    /// Communicator size.
    pub fn size(&self) -> usize {
        self.comm.size()
    }

    /// Recorded directive IR so far.
    pub fn program(&self) -> &[ParamsSpec] {
        &self.program
    }

    fn env(&self) -> &EvalEnv {
        &self.env
    }

    fn staging_mut(&mut self, site: u32) -> Option<&mut StagingSite> {
        self.staging
            .iter_mut()
            .find(|(s, _)| *s == site)
            .map(|(_, st)| st)
    }

    /// Execute a `comm_parameters` region: validates the clause list,
    /// applies any synchronization deferred to the region's beginning, runs
    /// `body`, then places this region's synchronization per `place_sync`.
    pub fn region<R>(
        &mut self,
        params: &CommParams,
        body: impl FnOnce(&mut Region<'_, 'a>) -> R,
    ) -> Result<R, DirectiveError> {
        let diags = params.clauses.validate(DirectiveKind::CommParameters, None);
        let errors: Vec<Diagnostic> = diags
            .iter()
            .filter(|d| d.severity == crate::clause::Severity::Error)
            .cloned()
            .collect();
        // A region's sender/receiver may be supplied by its p2ps; only the
        // pairing rule and params-only placement apply here.
        let hard: Vec<Diagnostic> = errors
            .into_iter()
            .filter(|d| d.message.contains("both"))
            .collect();
        if !hard.is_empty() {
            return Err(DirectiveError::Invalid(hard));
        }

        // BEGIN_NEXT_PARAM_REGION syncs land here.
        let carried = std::mem::take(&mut self.carried_next);
        self.apply_sync(carried);

        let max_iter = match &params.clauses.max_comm_iter {
            Some(e) => Some(e.eval(self.env())?),
            None => None,
        };

        let mut region = Region {
            session: self,
            clauses: params.clauses.clone(),
            pending: PendingSync::default(),
            spec: ParamsSpec {
                clauses: params.clauses.clone(),
                body: Vec::new(),
                spans: Default::default(),
            },
            iter_counts: Vec::new(),
            max_iter,
            error: None,
            used_bufs: Vec::new(),
            split_syncs: 0,
        };
        let out = body(&mut region);
        let Region {
            mut pending,
            spec,
            error,
            ..
        } = region;
        if let Some(e) = error {
            // Abandon half-built coalescing batches; the receiver side of
            // this region is aborting too, so nothing will wait for them.
            if let Some(ov) = self.overlay.as_deref_mut() {
                ov.out.clear();
            }
            return Err(e);
        }

        // Region-end flush: coalesced batches never outlive their region,
        // keeping the flush rule a pure function of the instance schedule.
        flush_coalesced(self, &mut pending, None);

        // Overlay `place_sync` decisions override the written placement for
        // any region executing that site.
        let mut placement = spec.place_sync();
        if let Some(ov) = self.overlay.as_deref() {
            for p in &spec.body {
                if let Some(p2) = ov.overlay.place_sync_for(p.site) {
                    placement = p2;
                }
            }
        }
        match placement {
            PlaceSync::EndParamRegion => {
                let adj = std::mem::take(&mut self.carried_adj);
                self.apply_sync(adj);
                self.apply_sync(pending);
            }
            PlaceSync::BeginNextParamRegion => {
                self.carried_next.absorb(pending);
            }
            PlaceSync::EndAdjParamRegions => {
                self.carried_adj.absorb(pending);
            }
        }
        if self.record_ir {
            self.program.push(spec);
        }
        Ok(out)
    }

    /// Execute a standalone `comm_p2p` (outside any region): synchronizes
    /// immediately after the instance (plus any overlap body).
    pub fn p2p<'r, 'data>(&'r mut self) -> P2pCall<'r, 'r, 'a, 'data> {
        P2pCall {
            region: RegionRef::Standalone {
                session: self,
                pending: PendingSync::default(),
            },
            clauses: None,
            site: 0,
            sbufs: BufList::new(),
            rbufs: BufList::new(),
        }
    }

    /// Force application of all deferred synchronizations (the end of a run
    /// of adjacent regions, or program end).
    pub fn flush(&mut self) {
        // Coalesced leftovers exist only if a region was abandoned without
        // its end-of-region flush; drain them so no packed send is lost.
        let mut extra = PendingSync::default();
        flush_coalesced(self, &mut extra, None);
        self.apply_sync(extra);
        let next = std::mem::take(&mut self.carried_next);
        self.apply_sync(next);
        let adj = std::mem::take(&mut self.carried_adj);
        self.apply_sync(adj);
    }

    /// Flush and return the recorded IR.
    pub fn finish(mut self) -> Vec<ParamsSpec> {
        self.flush();
        std::mem::take(&mut self.program)
    }

    fn apply_sync(&mut self, pending: PendingSync) {
        if pending.is_empty() {
            return;
        }
        let mpi = self.ctx.machine().mpi;
        let shmem = self.ctx.machine().shmem;

        // MPI two-sided: one consolidated Waitall over sends + receives.
        let n2 = pending.send_reqs.len() + pending.recv_completions.len();
        if n2 > 0 {
            let mut completions = pending.recv_completions;
            for req in &pending.send_reqs {
                completions.push(req.wait_raw());
            }
            self.ctx.charge_consolidated(&completions, n2, &mpi);
        }

        // MPI one-sided: fence = quiet + barrier over the communicator.
        if pending.used_mpi1 {
            let horizon = pending
                .put_arrivals_mpi
                .iter()
                .chain(&pending.recv_arrivals_mpi)
                .copied()
                .fold(Time::ZERO, Time::max);
            let t0 = self.ctx.now();
            let outstanding = self.ctx.take_outstanding_puts().len();
            self.ctx.advance_to(horizon);
            self.ctx.charge(Time::from_nanos(mpi.o_quiet));
            self.ctx.emit_event(
                t0,
                self.ctx.now(),
                netsim::EventKind::Quiet {
                    outstanding,
                    horizon,
                },
            );
            self.ctx.note_sync_span(t0, self.ctx.now());
            let group = self.comm.sorted_globals();
            self.ctx.barrier_group(&group, &mpi);
        }

        // SHMEM: quiet (sender-side put completion) plus point-wise
        // completion of incoming signalled deliveries (`shmem_wait`-style).
        // No collective barrier: SHMEM's one-sided model needs none, which
        // is precisely why it scales on small frequent transfers (paper
        // §IV-B and refs [13][14]).
        if pending.used_shmem {
            let horizon = pending
                .put_arrivals_shmem
                .iter()
                .chain(&pending.recv_arrivals_shmem)
                .copied()
                .fold(Time::ZERO, Time::max);
            let t0 = self.ctx.now();
            let outstanding = self.ctx.take_outstanding_puts().len();
            self.ctx.advance_to(horizon);
            self.ctx.charge(Time::from_nanos(shmem.o_quiet));
            self.ctx.stats.quiets += 1;
            self.ctx.emit_event(
                t0,
                self.ctx.now(),
                netsim::EventKind::Quiet {
                    outstanding,
                    horizon,
                },
            );
            self.ctx.note_sync_span(t0, self.ctx.now());
        }

        // Horizons covered by the charges above are no longer needed.
        let now = self.ctx.now();
        self.recv_horizons.retain(|&(_, t)| t > now);
    }
}

/// An open `comm_parameters` region.
pub struct Region<'s, 'a> {
    session: &'s mut CommSession<'a>,
    clauses: ClauseSet,
    pending: PendingSync,
    spec: ParamsSpec,
    /// Executions seen per `comm_p2p` site, linear-scanned by site id (a
    /// region has a few lexical sites; this is read on every instance).
    iter_counts: Vec<(u32, u64)>,
    max_iter: Option<i64>,
    error: Option<DirectiveError>,
    /// Address ranges touched by pending (unsynced) directives in this
    /// region: `(lo, hi, written)`. A new directive whose buffers conflict
    /// (write-write or read-write overlap) forces an intermediate sync —
    /// the paper consolidates only "adjacent comm_p2p directives with
    /// independent buffers".
    used_bufs: Vec<(usize, usize, bool)>,
    /// Number of intermediate syncs forced by buffer dependences.
    pub split_syncs: usize,
}

impl<'s, 'a> Region<'s, 'a> {
    /// Start a `comm_p2p` instance in this region.
    pub fn p2p<'r, 'data>(&'r mut self) -> P2pCall<'r, 's, 'a, 'data> {
        P2pCall {
            region: RegionRef::InRegion(self),
            clauses: None,
            site: 0,
            sbufs: BufList::new(),
            rbufs: BufList::new(),
        }
    }

    /// The rank context (for computation between directives).
    pub fn ctx(&mut self) -> &mut RankCtx {
        self.session.ctx
    }

    /// Bind a clause variable mid-region.
    pub fn set_var(&mut self, name: &str, value: i64) {
        self.session.set_var(name, value);
    }

    /// The first error raised by a p2p in this region, if any (errors also
    /// abort the enclosing [`CommSession::region`] call).
    pub fn error(&self) -> Option<&DirectiveError> {
        self.error.as_ref()
    }
}

enum RegionRef<'r, 's, 'a> {
    InRegion(&'r mut Region<'s, 'a>),
    Standalone {
        session: &'r mut CommSession<'a>,
        pending: PendingSync,
    },
}

/// A buffer list with two inline slots, heap beyond that. A `comm_p2p`
/// overwhelmingly carries one send and one receive buffer, and the builder
/// is constructed on every directive instance of every rank — keeping the
/// common case off the allocator is worth the slightly larger move.
pub(crate) struct BufList<T> {
    inline: [Option<T>; 2],
    rest: Vec<T>,
}

impl<T> BufList<T> {
    fn new() -> Self {
        BufList {
            inline: [None, None],
            rest: Vec::new(),
        }
    }

    fn push(&mut self, v: T) {
        for slot in &mut self.inline {
            if slot.is_none() {
                *slot = Some(v);
                return;
            }
        }
        self.rest.push(v);
    }

    pub(crate) fn len(&self) -> usize {
        self.inline.iter().filter(|s| s.is_some()).count() + self.rest.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.inline[0].is_none() && self.rest.is_empty()
    }

    pub(crate) fn iter(&self) -> impl Iterator<Item = &T> {
        self.inline.iter().flatten().chain(self.rest.iter())
    }

    pub(crate) fn iter_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.inline.iter_mut().flatten().chain(self.rest.iter_mut())
    }
}

/// A `comm_p2p` call under construction. Finish with [`P2pCall::run`] or
/// [`P2pCall::overlap`].
pub struct P2pCall<'r, 's, 'a, 'data> {
    region: RegionRef<'r, 's, 'a>,
    /// Per-call clause overrides; boxed lazily because the hot path (clauses
    /// inherited wholesale from the region) never overrides any.
    clauses: Option<Box<ClauseSet>>,
    site: u32,
    sbufs: BufList<Box<dyn SendBuf + 'data>>,
    rbufs: BufList<Box<dyn RecvBuf + 'data>>,
}

impl<'r, 's, 'a, 'data> P2pCall<'r, 's, 'a, 'data> {
    fn clauses_mut(&mut self) -> &mut ClauseSet {
        self.clauses.get_or_insert_with(Default::default)
    }

    /// Distinguish lexical `comm_p2p` sites sharing a region (the macro
    /// passes `line!()`; manual callers pass any stable id).
    pub fn site(mut self, site: u32) -> Self {
        self.site = site;
        self
    }

    /// `sender(expr)` override.
    pub fn sender(mut self, e: impl Into<RankExpr>) -> Self {
        self.clauses_mut().sender = Some(e.into());
        self
    }

    /// `receiver(expr)` override.
    pub fn receiver(mut self, e: impl Into<RankExpr>) -> Self {
        self.clauses_mut().receiver = Some(e.into());
        self
    }

    /// `sendwhen(cond)` override.
    pub fn sendwhen(mut self, c: CondExpr) -> Self {
        self.clauses_mut().sendwhen = Some(c);
        self
    }

    /// `receivewhen(cond)` override.
    pub fn receivewhen(mut self, c: CondExpr) -> Self {
        self.clauses_mut().receivewhen = Some(c);
        self
    }

    /// `count(expr)` override.
    pub fn count(mut self, e: impl Into<RankExpr>) -> Self {
        self.clauses_mut().count = Some(e.into());
        self
    }

    /// `target(keyword)` override.
    pub fn target(mut self, t: Target) -> Self {
        self.clauses_mut().target = Some(t);
        self
    }

    /// Add a send buffer (`sbuf` list element).
    pub fn sbuf(mut self, b: impl SendBuf + 'data) -> Self {
        self.sbufs.push(Box::new(b));
        self
    }

    /// Add a receive buffer (`rbuf` list element).
    pub fn rbuf(mut self, b: impl RecvBuf + 'data) -> Self {
        self.rbufs.push(Box::new(b));
        self
    }

    /// Execute with an empty body.
    pub fn run(self) -> Result<(), DirectiveError> {
        self.execute(|_| {})
    }

    /// Execute with a computation body overlapped with the communication.
    pub fn overlap(self, f: impl FnOnce(&mut RankCtx)) -> Result<(), DirectiveError> {
        self.execute(f)
    }

    fn execute(mut self, body: impl FnOnce(&mut RankCtx)) -> Result<(), DirectiveError> {
        let mut standalone_spec = ParamsSpec::default();
        let no_overrides = ClauseSet::default();
        let own_clauses: &ClauseSet = self.clauses.as_deref().unwrap_or(&no_overrides);
        let result = match &mut self.region {
            RegionRef::InRegion(r) => {
                // Borrow the region's fields individually so the enclosing
                // clauses can be passed by reference (this runs once per
                // directive instance — no clones on the hot path).
                let Region {
                    session,
                    clauses,
                    pending,
                    spec,
                    iter_counts,
                    max_iter,
                    error: _,
                    used_bufs,
                    split_syncs,
                } = &mut **r;
                execute_p2p(
                    session,
                    pending,
                    Some(&*clauses),
                    *max_iter,
                    Some(iter_counts),
                    Some(spec),
                    Some((used_bufs, split_syncs)),
                    own_clauses,
                    self.site,
                    &self.sbufs,
                    &mut self.rbufs,
                    body,
                )
            }
            RegionRef::Standalone { session, pending } => execute_p2p(
                session,
                pending,
                None,
                None,
                None,
                Some(&mut standalone_spec),
                None,
                own_clauses,
                self.site,
                &self.sbufs,
                &mut self.rbufs,
                body,
            ),
        };
        match result {
            Ok(()) => {
                // Standalone p2p: synchronize immediately and record IR.
                if let RegionRef::Standalone { session, pending } = self.region {
                    let p = pending;
                    session.apply_sync(p);
                    if session.record_ir {
                        session.program.push(standalone_spec);
                    }
                }
                Ok(())
            }
            Err(e) => {
                if let RegionRef::InRegion(r) = &mut self.region {
                    if r.error.is_none() {
                        r.error = Some(DirectiveError::Invalid(vec![Diagnostic::error(format!(
                            "{e}"
                        ))]));
                    }
                }
                Err(e)
            }
        }
    }
}

/// Buffer-dependence tracking borrowed from the enclosing region: the
/// `(lo, hi, written)` address ranges touched by pending directives plus
/// the split-sync counter.
type UsedBufs<'a> = (&'a mut Vec<(usize, usize, bool)>, &'a mut usize);

#[allow(clippy::too_many_arguments)]
fn execute_p2p(
    session: &mut CommSession<'_>,
    pending: &mut PendingSync,
    outer: Option<&ClauseSet>,
    max_iter: Option<i64>,
    iter_counts: Option<&mut Vec<(u32, u64)>>,
    spec: Option<&mut ParamsSpec>,
    used_bufs: Option<UsedBufs<'_>>,
    clauses: &ClauseSet,
    site: u32,
    sbufs: &BufList<Box<dyn SendBuf + '_>>,
    rbufs: &mut BufList<Box<dyn RecvBuf + '_>>,
    body: impl FnOnce(&mut RankCtx),
) -> Result<(), DirectiveError> {
    // Count this execution of the site (and enforce `max_comm_iter`).
    let in_region = iter_counts.is_some();
    let mut first_execution_of_site = true;
    if let Some(counts) = iter_counts {
        let c = match counts.iter_mut().find(|(s, _)| *s == site) {
            Some((_, c)) => {
                first_execution_of_site = false;
                c
            }
            None => {
                counts.push((site, 0));
                &mut counts.last_mut().expect("just pushed").1
            }
        };
        *c += 1;
        if let Some(bound) = max_iter {
            if *c as i64 > bound {
                return Err(DirectiveError::MaxIterExceeded { site, bound });
            }
        }
    }

    // -- validation ----------------------------------------------------------
    // Checked over name-free descriptors built on the fly; full diagnostics
    // (with buffer names) are materialized only when something is wrong.
    // The clause set and the buffer list shape at a site are call-site
    // constants (the builder chain is the same code every iteration), so
    // validation runs on the first execution only; later iterations of the
    // directive loop would merely re-confirm the first result.
    if first_execution_of_site {
        let clause_diags = clauses.validate(DirectiveKind::CommP2p, outer);
        let bufs_ok = !sbufs.is_empty()
            && !rbufs.is_empty()
            && sbufs.len() == rbufs.len()
            && sbufs
                .iter()
                .zip(rbufs.iter())
                .all(|(s, r)| s.desc().elem.compatible(&r.desc().elem));
        if ClauseSet::has_errors(&clause_diags) || !bufs_ok {
            let sb_meta: Vec<BufMeta> = sbufs.iter().map(|b| b.meta()).collect();
            let rb_meta: Vec<BufMeta> = rbufs.iter().map(|b| b.meta()).collect();
            return Err(DirectiveError::Invalid(
                crate::dir::validate_p2p_call(clauses, outer, &sb_meta, &rb_meta)
                    .into_iter()
                    .filter(|d| d.severity == crate::clause::Severity::Error)
                    .collect(),
            ));
        }
        // Record the region IR from this first instance.
        if let Some(spec) = spec {
            spec.body.push(P2pSpec {
                clauses: clauses.clone(),
                sbuf: sbufs.iter().map(|b| b.meta()).collect(),
                rbuf: rbufs.iter().map(|b| b.meta()).collect(),
                has_overlap_body: true, // unknown statically; body may be empty
                site,
                spans: Default::default(),
            });
        }
    }

    // -- clause resolution -----------------------------------------------------
    // The p2p's own assertions win; missing ones are inherited from the
    // enclosing region. Resolved by reference — this path runs for every
    // rank on every loop iteration, participant or not.
    let env = session.env();
    let is_sender = match clauses
        .sendwhen
        .as_ref()
        .or_else(|| outer.and_then(|o| o.sendwhen.as_ref()))
    {
        Some(c) => c.eval(env)?,
        None => true,
    };
    let is_receiver = match clauses
        .receivewhen
        .as_ref()
        .or_else(|| outer.and_then(|o| o.receivewhen.as_ref()))
    {
        Some(c) => c.eval(env)?,
        None => true,
    };
    let count = match clauses
        .count
        .as_ref()
        .or_else(|| outer.and_then(|o| o.count.as_ref()))
    {
        Some(e) => {
            let v = e.eval(env)?;
            if v < 0 {
                return Err(DirectiveError::RankOutOfRange {
                    clause: "count",
                    value: v,
                    size: usize::MAX,
                });
            }
            v as usize
        }
        None => p2p_specless_inferred_count(sbufs, rbufs),
    };
    let mut target = clauses
        .target
        .or_else(|| outer.and_then(|o| o.target))
        .unwrap_or_default();

    // -- overlay application -----------------------------------------------------
    // Profile-guided decisions resolve here, after the written clauses: the
    // source states intent, the overlay refines mechanism. A single branch
    // when no overlay is installed (the untuned hot path). Coalescing only
    // applies inside regions — a standalone p2p synchronizes immediately,
    // so batching it could never elide anything.
    let mut coalesce = None;
    if let Some(ov) = session.overlay.as_deref() {
        if let Some(d) = ov.overlay.decision_for(site) {
            match d.decision {
                Decision::Retarget(t) => target = t,
                Decision::Coalesce { batch } if batch >= 2 && in_region => {
                    coalesce = Some(batch);
                }
                _ => {}
            }
        }
    }
    let size = session.comm.size();

    let dest = if is_sender {
        let e = clauses
            .receiver
            .as_ref()
            .or_else(|| outer.and_then(|o| o.receiver.as_ref()))
            .expect("validated");
        let v = e.eval(env)?;
        if v < 0 || v >= size as i64 {
            return Err(DirectiveError::RankOutOfRange {
                clause: "receiver",
                value: v,
                size,
            });
        }
        Some(v as usize)
    } else {
        None
    };
    let src = if is_receiver {
        let e = clauses
            .sender
            .as_ref()
            .or_else(|| outer.and_then(|o| o.sender.as_ref()))
            .expect("validated");
        let v = e.eval(env)?;
        if v < 0 || v >= size as i64 {
            return Err(DirectiveError::RankOutOfRange {
                clause: "sender",
                value: v,
                size,
            });
        }
        Some(v as usize)
    } else {
        None
    };

    // -- buffer-independence guard -----------------------------------------------
    // Consolidation is legal only across independent buffers (paper
    // §III-A). A directive that writes memory an unsynced directive touched
    // (or reads memory one wrote) forces the generated code to synchronize
    // first; the engine models exactly that split.
    if let Some((used, splits)) = used_bufs {
        let mut current: Vec<(usize, usize, bool)> = Vec::new();
        // Exact constituent ranges where the buffer has them (struct-of-
        // arrays): the summary hull spans whatever the allocator placed
        // between the member arrays, and a guard decision based on it
        // would be allocator-dependent.
        if is_sender {
            for b in sbufs.iter() {
                match b.sub_ranges() {
                    Some(rs) => current.extend(rs.iter().map(|&(lo, hi)| (lo, hi, false))),
                    None => {
                        let a = b.desc().addr;
                        current.push((a.0, a.1, false));
                    }
                }
            }
        }
        if is_receiver {
            for b in rbufs.iter() {
                match b.sub_ranges() {
                    Some(rs) => current.extend(rs.iter().map(|&(lo, hi)| (lo, hi, true))),
                    None => {
                        let a = b.desc().addr;
                        current.push((a.0, a.1, true));
                    }
                }
            }
        }
        let conflict = current.iter().any(|&(lo, hi, w)| {
            lo < hi
                && used
                    .iter()
                    .any(|&(ulo, uhi, uw)| ulo < hi && lo < uhi && (w || uw))
        });
        if conflict {
            let mut p = std::mem::take(pending);
            // A forced split is a flush point: in-flight coalesced batches
            // belong to the synchronization that the dependence demands.
            flush_coalesced(session, &mut p, None);
            session.apply_sync(p);
            used.clear();
            *splits += 1;
        }
        used.extend(current.into_iter().filter(|&(lo, hi, _)| lo < hi));
    }

    // -- dispatch ---------------------------------------------------------------
    // Attribute every runtime operation issued below (including by the
    // overlap body) to this directive's call site, so fabric-level trace
    // events and metrics join back to the `comm_p2p` clause that caused
    // them. The previous attribution is restored even on error.
    let prev_site = session.ctx.set_site(Some(site));
    let dispatched = match (target, coalesce) {
        (Target::Mpi2Side, Some(batch)) => exec_mpi2_coalesced(
            session, pending, site, sbufs, rbufs, count, dest, src, batch,
        ),
        (Target::Shmem, Some(batch)) => exec_shmem_coalesced(
            session, pending, site, sbufs, rbufs, count, dest, src, batch, max_iter,
        ),
        (Target::Mpi2Side, None) => {
            exec_mpi2(session, pending, site, sbufs, rbufs, count, dest, src)
        }
        // MPI one-sided flushes through a collective fence; batching puts
        // under it would change nothing, so Coalesce degrades to Keep.
        (Target::Mpi1Side | Target::Shmem, _) => exec_onesided(
            session, pending, site, sbufs, rbufs, count, dest, src, target, max_iter,
        ),
    };

    // -- overlapped computation --------------------------------------------------
    if dispatched.is_ok() {
        body(session.ctx);
    }
    session.ctx.set_site(prev_site);
    dispatched
}

fn p2p_specless_inferred_count(
    sb: &BufList<Box<dyn SendBuf + '_>>,
    rb: &BufList<Box<dyn RecvBuf + '_>>,
) -> usize {
    sb.iter()
        .map(|b| b.desc().len)
        .chain(rb.iter().map(|b| b.desc().len))
        .min()
        .unwrap_or(0)
}

/// MPI two-sided lowering: non-blocking Isend/Irecv through automatic
/// datatypes; completion deferred to the region sync.
#[allow(clippy::too_many_arguments)]
fn exec_mpi2(
    session: &mut CommSession<'_>,
    pending: &mut PendingSync,
    site: u32,
    sbufs: &BufList<Box<dyn SendBuf + '_>>,
    rbufs: &mut BufList<Box<dyn RecvBuf + '_>>,
    count: usize,
    dest: Option<usize>,
    src: Option<usize>,
) -> Result<(), DirectiveError> {
    let tag = DIR_TAG_BASE + site as i32;
    if let Some(dest) = dest {
        let mpi = session.ctx.machine().mpi;
        for sb in sbufs.iter() {
            let meta = sb.meta();
            let n = count.min(meta.len);
            // Causality under deferred sync: reading a buffer that was
            // filled by an unsynced receive fences the departure to the
            // data's arrival (no software overhead charged — this is the
            // data dependency, not a wait call).
            if let Some(h) = session.buf_data_horizon(sb.sub_ranges(), meta.addr) {
                session.ctx.advance_to(h);
            }
            let mut payload = Vec::with_capacity(n * meta.elem.packed_size());
            sb.gather(n, &mut payload);
            // The layout engine's per-site decision (chooser under `Auto`,
            // fixed strategy otherwise; SPMD-uniform inputs, so both ends
            // agree without negotiation).
            match session
                .lowering
                .resolve(&meta.elem, count, Target::Mpi2Side, &mpi)
            {
                // Contiguous memory (or a constituent split): the transfer
                // engine reads the user buffer in place, no marshalling
                // charge. A split of n constituents pays the (n-1) extra
                // per-message send overheads its generated code issues.
                Lowering::Direct => {}
                Lowering::Split { n: parts } => {
                    session.ctx.charge(Time::from_nanos(
                        parts.saturating_sub(1) as u64 * mpi.o_send,
                    ));
                }
                // Derived-datatype path (struct or vector): one-time commit
                // per layout, cheap per-byte gather (instead of an explicit
                // MPI_Pack copy).
                Lowering::Datatype => {
                    let dt = meta.elem.to_datatype();
                    session.dtype_cache.ensure_committed(session.ctx, &dt, &mpi);
                    session
                        .ctx
                        .charge(mpi.byte_cost(mpi.datatype_per_byte, payload.len()));
                }
                // Listing-4 shape: an explicit pack copy of every byte.
                Lowering::Pack => session.ctx.charge_pack(payload.len(), &mpi),
            }
            let req = session
                .comm
                .isend_bytes(session.ctx, dest, tag, bytes::Bytes::from(payload));
            pending.send_reqs.push(req);
        }
    }
    if let Some(src) = src {
        let mpi = session.ctx.machine().mpi;
        for rb in rbufs.iter_mut() {
            let meta = rb.meta();
            let n = count.min(meta.len);
            let req = session.comm.irecv(session.ctx, Some(src), Some(tag));
            // Physically complete now (data lands in the user buffer); the
            // virtual wait cost is deferred to the region sync point.
            let done = req.wait_raw();
            match session
                .lowering
                .resolve(&meta.elem, count, Target::Mpi2Side, &mpi)
            {
                Lowering::Direct => {}
                // The split's extra messages cost receive-side software
                // overhead too (one post + one completion poll each).
                Lowering::Split { n: parts } => {
                    session.ctx.charge(Time::from_nanos(
                        parts.saturating_sub(1) as u64 * (mpi.o_recv + mpi.o_req_poll),
                    ));
                }
                Lowering::Datatype => {
                    let dt = meta.elem.to_datatype();
                    session.dtype_cache.ensure_committed(session.ctx, &dt, &mpi);
                    session
                        .ctx
                        .charge(mpi.byte_cost(mpi.datatype_per_byte, done.payload.len()));
                }
                // The receiver of a packed message pays the unpack copy.
                Lowering::Pack => session.ctx.charge_pack(done.payload.len(), &mpi),
            }
            rb.scatter(n, &done.payload);
            // The physical wait happened above; record the completion so the
            // trace still carries a site-attributed RecvDone (the virtual
            // charge lands later, in the consolidated region sync).
            session.ctx.note_recv_completion(&req, &done);
            session.push_recv_horizon(rb.sub_ranges(), meta.addr, done.completion);
            pending.recv_completions.push(done.completion);
        }
    }
    Ok(())
}

/// Find or create the (site, dest) coalescing accumulator.
fn coalesce_out(
    out: &mut Vec<CoalesceOut>,
    site: u32,
    dest: usize,
    target: Target,
    batch: usize,
) -> &mut CoalesceOut {
    if let Some(i) = out.iter().position(|a| a.site == site && a.dest == dest) {
        return &mut out[i];
    }
    out.push(CoalesceOut {
        site,
        dest,
        target,
        batch,
        instances: 0,
        buf: Vec::new(),
        horizon: Time::ZERO,
    });
    out.last_mut().expect("just pushed")
}

/// Peel the next piece for (site, src) out of the receive-side buffer.
/// `None` means the buffered packed message (if any) is exhausted and a new
/// one must be received.
fn coalesce_next_piece(ov: &mut OverlayState, site: u32, src: usize) -> Option<(Vec<u8>, Time)> {
    let entry = ov
        .inbox
        .iter_mut()
        .find(|e| e.site == site && e.src == src)?;
    let mut pos = entry.pos;
    let piece = mpisim::pack::peel_piece(&entry.payload, &mut pos)?.to_vec();
    entry.pos = pos;
    Some((piece, entry.completion))
}

/// Replace (or create) the receive-side buffer for (site, src).
fn coalesce_store_inbox(
    ov: &mut OverlayState,
    site: u32,
    src: usize,
    payload: bytes::Bytes,
    completion: Time,
) {
    let fresh = CoalesceIn {
        site,
        src,
        payload,
        pos: 0,
        completion,
    };
    match ov.inbox.iter_mut().find(|e| e.site == site && e.src == src) {
        Some(e) => *e = fresh,
        None => ov.inbox.push(fresh),
    }
}

/// Flush coalesced accumulators into `pending` as packed sends. `which` of
/// `None` flushes everything — the region-end rule, a dependence-forced
/// sync, or a receiver about to physically block (so a rank can never wait
/// on a peer whose pieces it is itself still holding); `Some((site, dest))`
/// flushes one full batch. Every flush point is a pure function of the
/// per-rank instance schedule, never of engine interleaving, which is what
/// keeps coalesced runs bit-identical across execution engines.
fn flush_coalesced(
    session: &mut CommSession<'_>,
    pending: &mut PendingSync,
    which: Option<(u32, usize)>,
) {
    let Some(ov) = session.overlay.as_deref_mut() else {
        return;
    };
    let mut work: Vec<(u32, usize, Target, Vec<u8>, Time)> = Vec::new();
    for acc in ov.out.iter_mut() {
        if acc.buf.is_empty() {
            continue;
        }
        if let Some((s, d)) = which {
            if acc.site != s || acc.dest != d {
                continue;
            }
        }
        acc.instances = 0;
        work.push((
            acc.site,
            acc.dest,
            acc.target,
            std::mem::take(&mut acc.buf),
            std::mem::replace(&mut acc.horizon, Time::ZERO),
        ));
    }
    for (site, dest, target, payload, horizon) in work {
        // The packed message departs no earlier than its newest piece's
        // data (the same causality fence the per-instance path applies).
        session.ctx.advance_to(horizon);
        match target {
            Target::Mpi2Side => {
                let tag = COAL_TAG_BASE + site as i32;
                let req =
                    session
                        .comm
                        .isend_packed(session.ctx, dest, tag, bytes::Bytes::from(payload));
                pending.send_reqs.push(req);
            }
            Target::Shmem => {
                let model = session.ctx.machine().shmem;
                let (seg, slot_base) = {
                    let ov = session.overlay.as_deref_mut().expect("checked above");
                    let st = ov
                        .shmem_staging
                        .iter_mut()
                        .find(|(s, _)| *s == site)
                        .map(|(_, st)| st)
                        .expect("staging created at first coalesced execution");
                    let k = st.send_flushes.entry(dest).or_insert(0);
                    let slot = (*k % st.slots as u64) as usize;
                    *k += 1;
                    (st.seg, slot * st.slot_bytes)
                };
                let mut wire = Vec::with_capacity(4 + payload.len());
                wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                wire.extend_from_slice(&payload);
                let global_dest = session.comm.global(dest);
                // Pack charge + one signalled putmem of the whole batch
                // (shmemsim's `put_packed`, inlined over the raw context
                // because the engine talks to `netsim` directly).
                session.ctx.charge_pack(wire.len(), &model);
                let arrival = session
                    .ctx
                    .put(seg, global_dest, slot_base, &wire, &model, true);
                pending.put_arrivals_shmem.push(arrival);
                pending.used_shmem = true;
                session.ctx.take_outstanding_puts();
            }
            Target::Mpi1Side => unreachable!("coalescing never targets MPI one-sided"),
        }
    }
}

/// Coalesced two-sided lowering: each instance's payload is gathered and
/// length-framed into a per-(site, destination) batch; one packed Isend
/// per flush replaces `batch` per-piece sends, and the receiver peels
/// pieces back out of one packed Irecv — fewer software overheads on both
/// sides and a smaller consolidated Waitall.
#[allow(clippy::too_many_arguments)]
fn exec_mpi2_coalesced(
    session: &mut CommSession<'_>,
    pending: &mut PendingSync,
    site: u32,
    sbufs: &BufList<Box<dyn SendBuf + '_>>,
    rbufs: &mut BufList<Box<dyn RecvBuf + '_>>,
    count: usize,
    dest: Option<usize>,
    src: Option<usize>,
    batch: usize,
) -> Result<(), DirectiveError> {
    if let Some(dest) = dest {
        let mpi = session.ctx.machine().mpi;
        let mut framed = Vec::new();
        let mut horizon = Time::ZERO;
        for sb in sbufs.iter() {
            let meta = sb.meta();
            let n = count.min(meta.len);
            if let Some(h) = session.buf_data_horizon(sb.sub_ranges(), meta.addr) {
                horizon = horizon.max(h);
            }
            let mut piece = Vec::with_capacity(n * meta.elem.packed_size());
            sb.gather(n, &mut piece);
            if !matches!(meta.elem, ElemKind::Prim(_)) {
                let dt = meta.elem.to_datatype();
                session.dtype_cache.ensure_committed(session.ctx, &dt, &mpi);
                session
                    .ctx
                    .charge(mpi.byte_cost(mpi.datatype_per_byte, piece.len()));
            }
            mpisim::pack::frame_piece(&mut framed, &piece);
        }
        let full = {
            let ov = session
                .overlay
                .as_deref_mut()
                .expect("coalescing implies an installed overlay");
            let acc = coalesce_out(&mut ov.out, site, dest, Target::Mpi2Side, batch);
            acc.buf.append(&mut framed);
            acc.horizon = acc.horizon.max(horizon);
            acc.instances += 1;
            acc.instances >= acc.batch
        };
        if full {
            flush_coalesced(session, pending, Some((site, dest)));
        }
    }
    if let Some(src) = src {
        let mpi = session.ctx.machine().mpi;
        for rb in rbufs.iter_mut() {
            let meta = rb.meta();
            let n = count.min(meta.len);
            let ov = session.overlay.as_deref_mut().expect("overlay installed");
            let piece = match coalesce_next_piece(ov, site, src) {
                Some(p) => p,
                None => {
                    // About to physically block for the next packed
                    // message: flush our own batches first, so a rank
                    // never waits on a peer while holding pieces that
                    // peer (or a cycle through it) needs.
                    flush_coalesced(session, pending, None);
                    let tag = COAL_TAG_BASE + site as i32;
                    let req = session.comm.irecv(session.ctx, Some(src), Some(tag));
                    let done = req.wait_raw();
                    session.ctx.note_recv_completion(&req, &done);
                    // One deferred completion per packed message — the
                    // receiver's share of the Waitall shrinks with the
                    // batch factor.
                    pending.recv_completions.push(done.completion);
                    let ov = session.overlay.as_deref_mut().expect("overlay installed");
                    coalesce_store_inbox(ov, site, src, done.payload, done.completion);
                    coalesce_next_piece(ov, site, src)
                        .expect("freshly received packed message has a piece")
                }
            };
            let (piece, completion) = piece;
            if !matches!(meta.elem, ElemKind::Prim(_)) {
                let dt = meta.elem.to_datatype();
                session.dtype_cache.ensure_committed(session.ctx, &dt, &mpi);
                session
                    .ctx
                    .charge(mpi.byte_cost(mpi.datatype_per_byte, piece.len()));
            }
            // MPI_Unpack out of the packed wire buffer into the user buffer.
            session.ctx.charge_pack(piece.len(), &mpi);
            rb.scatter(n, &piece);
            session.push_recv_horizon(rb.sub_ranges(), meta.addr, completion);
        }
    }
    Ok(())
}

/// Coalesced SHMEM lowering: framed batches land in a dedicated symmetric
/// staging slot via one signalled `shmem_putmem` per flush; the receiver
/// waits one signal per flush and peels pieces locally.
#[allow(clippy::too_many_arguments)]
fn exec_shmem_coalesced(
    session: &mut CommSession<'_>,
    pending: &mut PendingSync,
    site: u32,
    sbufs: &BufList<Box<dyn SendBuf + '_>>,
    rbufs: &mut BufList<Box<dyn RecvBuf + '_>>,
    count: usize,
    dest: Option<usize>,
    src: Option<usize>,
    batch: usize,
    max_iter: Option<i64>,
) -> Result<(), DirectiveError> {
    let model = session.ctx.machine().shmem;
    pending.used_shmem = true;

    // Lazily create the per-site coalesce staging (collective: every rank
    // of the communicator executes the directive, participant or not). One
    // slot holds one packed flush; `max_comm_iter` bounds flushes per
    // region, so slots never wrap within a region.
    let have_staging = session
        .overlay
        .as_deref()
        .map(|ov| ov.shmem_staging.iter().any(|(s, _)| *s == site))
        .unwrap_or(false);
    if !have_staging {
        let per_instance: usize = sbufs
            .iter()
            .map(|b| 4 + count * b.meta().elem.packed_size())
            .sum();
        let slot_bytes = (4 + batch * per_instance).max(8);
        let slots = max_iter.map(|m| m.max(1) as usize).unwrap_or(1);
        let group = session.comm.sorted_globals();
        let seg = session
            .ctx
            .sym_alloc_windowed(&group, slot_bytes * slots, slots as u64, &model);
        session
            .overlay
            .as_deref_mut()
            .expect("coalescing implies an installed overlay")
            .shmem_staging
            .push((
                site,
                CoalStaging {
                    seg,
                    slot_bytes,
                    slots,
                    send_flushes: HashMap::new(),
                    recv_flushes: 0,
                },
            ));
    }

    if let Some(dest) = dest {
        let mut framed = Vec::new();
        let mut horizon = Time::ZERO;
        for sb in sbufs.iter() {
            let meta = sb.meta();
            let n = count.min(meta.len);
            if let Some(h) = session.buf_data_horizon(sb.sub_ranges(), meta.addr) {
                horizon = horizon.max(h);
            }
            let mut piece = Vec::with_capacity(n * meta.elem.packed_size());
            sb.gather(n, &mut piece);
            if !matches!(meta.elem, ElemKind::Prim(_)) {
                // SHMEM has no datatype engine: composites are packed by
                // generated code (the frame copy below is charged at pack
                // rate already, so only note nothing extra here).
                session
                    .ctx
                    .charge(model.byte_cost(model.pack_per_byte, piece.len()));
            }
            mpisim::pack::frame_piece(&mut framed, &piece);
        }
        let (full, overflow) = {
            let ov = session
                .overlay
                .as_deref_mut()
                .expect("coalescing implies an installed overlay");
            let slot_bytes = ov
                .shmem_staging
                .iter()
                .find(|(s, _)| *s == site)
                .map(|(_, st)| st.slot_bytes)
                .expect("staging created above");
            let acc = coalesce_out(&mut ov.out, site, dest, Target::Shmem, batch);
            let need = 4 + acc.buf.len() + framed.len();
            if need > slot_bytes {
                (false, Some((need, slot_bytes)))
            } else {
                acc.buf.append(&mut framed);
                acc.horizon = acc.horizon.max(horizon);
                acc.instances += 1;
                (acc.instances >= acc.batch, None)
            }
        };
        if let Some((need, have)) = overflow {
            return Err(DirectiveError::StagingOverflow { site, need, have });
        }
        if full {
            flush_coalesced(session, pending, Some((site, dest)));
        }
    }

    if let Some(src) = src {
        for rb in rbufs.iter_mut() {
            let meta = rb.meta();
            let n = count.min(meta.len);
            let ov = session.overlay.as_deref_mut().expect("overlay installed");
            let piece = match coalesce_next_piece(ov, site, src) {
                Some(p) => p,
                None => {
                    // Flush-before-wait (see the two-sided path).
                    flush_coalesced(session, pending, None);
                    let (seg, slot_base, expect) = {
                        let ov = session.overlay.as_deref_mut().expect("overlay installed");
                        let st = ov
                            .shmem_staging
                            .iter_mut()
                            .find(|(s, _)| *s == site)
                            .map(|(_, st)| st)
                            .expect("staging created above");
                        let slot = (st.recv_flushes % st.slots as u64) as usize;
                        st.recv_flushes += 1;
                        (st.seg, slot * st.slot_bytes, st.recv_flushes)
                    };
                    let arrival = session.ctx.wait_signals_raw(seg, expect as usize);
                    let mut hdr = [0u8; 4];
                    session.ctx.read_local(seg, slot_base, &mut hdr);
                    let total = u32::from_le_bytes(hdr) as usize;
                    let mut payload = vec![0u8; total];
                    session.ctx.read_local(seg, slot_base + 4, &mut payload);
                    // Bounce the whole flush out of the symmetric slot at
                    // memcpy rate and free it for flow-controlled senders.
                    session.ctx.charge_memcpy(total, &model);
                    session.ctx.mark_consumed(seg, 1);
                    pending.recv_arrivals_shmem.push(arrival);
                    let ov = session.overlay.as_deref_mut().expect("overlay installed");
                    coalesce_store_inbox(ov, site, src, bytes::Bytes::from(payload), arrival);
                    coalesce_next_piece(ov, site, src)
                        .expect("freshly received packed flush has a piece")
                }
            };
            let (piece, completion) = piece;
            rb.scatter(n, &piece);
            session.push_recv_horizon(rb.sub_ranges(), meta.addr, completion);
        }
    }
    Ok(())
}

/// One-sided lowering (MPI_Put or shmem_put): symmetric staging slots sized
/// by `max_comm_iter`, signalled deliveries, sync deferred to the region
/// fence/barrier.
#[allow(clippy::too_many_arguments)]
fn exec_onesided(
    session: &mut CommSession<'_>,
    pending: &mut PendingSync,
    site: u32,
    sbufs: &BufList<Box<dyn SendBuf + '_>>,
    rbufs: &mut BufList<Box<dyn RecvBuf + '_>>,
    count: usize,
    dest: Option<usize>,
    src: Option<usize>,
    target: Target,
    max_iter: Option<i64>,
) -> Result<(), DirectiveError> {
    let model = match target {
        Target::Mpi1Side => session.ctx.machine().mpi,
        _ => session.ctx.machine().shmem,
    };
    match target {
        Target::Mpi1Side => pending.used_mpi1 = true,
        Target::Shmem => pending.used_shmem = true,
        Target::Mpi2Side => unreachable!(),
    }

    // Lazily create the per-site staging segment (collective: every rank of
    // the communicator executes the directive, participant or not).
    if session.staging_mut(site).is_none() {
        let metas: Vec<BufMeta> = sbufs.iter().map(|b| b.meta()).collect();
        let mut buf_offsets = Vec::with_capacity(metas.len());
        let mut off = 0usize;
        for m in &metas {
            buf_offsets.push(off);
            // Sized by the SPMD-uniform count, NOT the local buffer length:
            // non-participating ranks may pass empty placeholder buffers,
            // but the collective symmetric allocation must agree everywhere.
            off += count * m.elem.packed_size();
        }
        let slot_bytes = off.max(1);
        let slots = max_iter.map(|m| m.max(1) as usize).unwrap_or(1);
        let group = session.comm.sorted_globals();
        // Windowed staging: a sender physically blocks (no virtual charge)
        // rather than overwrite a slot the receiver has not drained —
        // `max_comm_iter` sizes the in-flight window, as the paper intends
        // ("facilitate code generation for synchronizations").
        let window = (slots * sbufs.len().max(1)) as u64;
        let seg = session
            .ctx
            .sym_alloc_windowed(&group, slot_bytes * slots, window, &model);
        session.staging.push((
            site,
            StagingSite {
                seg,
                buf_offsets,
                slot_bytes,
                slots,
                send_counts: HashMap::new(),
                recv_count: 0,
            },
        ));
    }

    // Sender: put each buffer's packed payload into the destination's slot.
    if let Some(dest) = dest {
        let global_dest = session.comm.global(dest);
        let (seg, slot_base, offsets, slot_bytes) = {
            let st = session.staging_mut(site).expect("staging created");
            let k = st.send_counts.entry(dest).or_insert(0);
            let slot = (*k % st.slots as u64) as usize;
            *k += 1;
            (
                st.seg,
                slot * st.slot_bytes,
                st.buf_offsets.clone(),
                st.slot_bytes,
            )
        };
        let mut payload = Vec::new();
        let mut used = 0usize;
        for (i, sb) in sbufs.iter().enumerate() {
            let meta = sb.meta();
            let n = count.min(meta.len);
            // Data-dependency fence (see the two-sided path).
            if let Some(h) = session.buf_data_horizon(sb.sub_ranges(), meta.addr) {
                session.ctx.advance_to(h);
            }
            payload.clear();
            sb.gather(n, &mut payload);
            used += payload.len();
            if used > slot_bytes {
                return Err(DirectiveError::StagingOverflow {
                    site,
                    need: used,
                    have: slot_bytes,
                });
            }
            match session.lowering.resolve(&meta.elem, count, target, &model) {
                // Zero-copy put straight out of the user buffer. A split
                // of n constituents (per-array or strided typed puts in
                // the generated code) pays its (n-1) extra put overheads;
                // the payload bytes move copy-free either way.
                Lowering::Direct => {}
                Lowering::Split { n: parts } => {
                    session.ctx.charge(Time::from_nanos(
                        parts.saturating_sub(1) as u64 * model.o_put,
                    ));
                }
                // MPI_Put through a derived datatype: the library's gather
                // engine walks the layout (never reached on SHMEM, which
                // has no datatype engine — the policy degrades to Pack).
                Lowering::Datatype => session
                    .ctx
                    .charge(model.byte_cost(model.datatype_per_byte, payload.len())),
                // Generated code packs into a contiguous bounce buffer
                // before the put; the receiver's staging drain below is the
                // unpack under every strategy, so only the sender side
                // pays here.
                Lowering::Pack => session.ctx.charge_pack(payload.len(), &model),
            }
            let arrival = session.ctx.put(
                seg,
                global_dest,
                slot_base + offsets[i],
                &payload,
                &model,
                true,
            );
            match target {
                Target::Mpi1Side => pending.put_arrivals_mpi.push(arrival),
                _ => pending.put_arrivals_shmem.push(arrival),
            }
        }
        // The engine tracks arrivals itself; drain the ctx list so a later
        // unrelated `quiet` doesn't double-count.
        session.ctx.take_outstanding_puts();
    }

    // Receiver: wait (physically) for this execution's deliveries, copy the
    // staged bytes into the user buffers, record the arrival horizon.
    if src.is_some() {
        let (seg, slot_base, offsets, expect_base) = {
            let st = session.staging_mut(site).expect("staging created");
            let slot = (st.recv_count % st.slots as u64) as usize;
            let expect_base = st.recv_count * sbufs.len() as u64;
            st.recv_count += 1;
            (
                st.seg,
                slot * st.slot_bytes,
                st.buf_offsets.clone(),
                expect_base,
            )
        };
        let nbufs = rbufs.len();
        for (i, rb) in rbufs.iter_mut().enumerate() {
            let meta = rb.meta();
            let n = count.min(meta.len);
            let bytes = n * meta.elem.packed_size();
            let arrival = session
                .ctx
                .wait_signals_raw(seg, (expect_base + i as u64 + 1) as usize);
            let mut staged = vec![0u8; bytes];
            session.ctx.read_local(
                seg,
                slot_base + offsets.get(i).copied().unwrap_or(0),
                &mut staged,
            );
            rb.scatter(n, &staged);
            // Bounce copy out of the symmetric staging buffer; the slot is
            // now reusable by flow-controlled senders.
            session.ctx.charge_memcpy(bytes, &model);
            session.ctx.mark_consumed(seg, 1);
            session.push_recv_horizon(rb.sub_ranges(), meta.addr, arrival);
            match target {
                Target::Mpi1Side => pending.recv_arrivals_mpi.push(arrival),
                _ => pending.recv_arrivals_shmem.push(arrival),
            }
            let _ = nbufs;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::{Prim, PrimMut};
    use crate::overlay::SiteDecision;
    use netsim::{run, SimConfig};

    fn ring_params(n: usize) -> CommParams {
        let _ = n;
        CommParams::new()
            .sender((RankExpr::rank() - RankExpr::lit(1) + RankExpr::nranks()) % RankExpr::nranks())
            .receiver((RankExpr::rank() + RankExpr::lit(1)) % RankExpr::nranks())
    }

    fn run_ring(target: Target, n: usize) -> Vec<i64> {
        let res = run(SimConfig::new(n), move |ctx| {
            let comm = Comm::world(ctx);
            let mut session = CommSession::new(ctx, comm);
            let me = session.rank() as i64;
            let src = [me; 4];
            let mut dst = [0i64; 4];
            let params = ring_params(n).target(target);
            session
                .region(&params, |reg| {
                    reg.p2p()
                        .sbuf(Prim::new("src", &src))
                        .rbuf(PrimMut::new("dst", &mut dst))
                        .run()
                        .unwrap();
                })
                .unwrap();
            session.flush();
            dst[0]
        });
        res.per_rank
    }

    #[test]
    fn ring_all_targets_deliver() {
        for target in Target::ALL {
            let n = 6;
            let got = run_ring(target, n);
            for (r, &v) in got.iter().enumerate() {
                assert_eq!(
                    v as usize,
                    (r + n - 1) % n,
                    "target {target}: rank {r} got {v}"
                );
            }
        }
    }

    #[test]
    fn count_inference_uses_smallest_buffer() {
        run(SimConfig::new(2), |ctx| {
            let comm = Comm::world(ctx);
            let mut session = CommSession::new(ctx, comm);
            let src = [7.0f64; 10];
            let mut dst = [0.0f64; 3]; // smallest => count 3
            let params = CommParams::new()
                .sender(RankExpr::lit(0))
                .receiver(RankExpr::lit(1))
                .sendwhen(RankExpr::rank().eq(RankExpr::lit(0)))
                .receivewhen(RankExpr::rank().eq(RankExpr::lit(1)));
            session
                .region(&params, |reg| {
                    reg.p2p()
                        .sbuf(Prim::new("src", &src))
                        .rbuf(PrimMut::new("dst", &mut dst))
                        .run()
                        .unwrap();
                })
                .unwrap();
            if session.rank() == 1 {
                assert_eq!(dst, [7.0; 3]);
            }
        });
    }

    #[test]
    fn even_odd_grouping() {
        // Listing 2: even ranks send to rank+1; odd ranks receive.
        let n = 8;
        let res = run(SimConfig::new(n), move |ctx| {
            let comm = Comm::world(ctx);
            let mut session = CommSession::new(ctx, comm);
            let me = session.rank() as i64;
            let src = [me * 100];
            let mut dst = [-1i64];
            let params = CommParams::new()
                .sender(RankExpr::rank() - RankExpr::lit(1))
                .receiver(RankExpr::rank() + RankExpr::lit(1))
                .sendwhen((RankExpr::rank() % RankExpr::lit(2)).eq(RankExpr::lit(0)))
                .receivewhen((RankExpr::rank() % RankExpr::lit(2)).eq(RankExpr::lit(1)));
            session
                .region(&params, |reg| {
                    reg.p2p()
                        .sbuf(Prim::new("src", &src))
                        .rbuf(PrimMut::new("dst", &mut dst))
                        .run()
                        .unwrap();
                })
                .unwrap();
            dst[0]
        });
        for (r, &v) in res.per_rank.iter().enumerate() {
            if r % 2 == 1 {
                assert_eq!(v, (r as i64 - 1) * 100);
            } else {
                assert_eq!(v, -1);
            }
        }
    }

    #[test]
    fn consolidated_sync_beats_per_message_wait() {
        // Three adjacent p2ps with independent buffers must produce exactly
        // one consolidated waitall charge on each participating rank.
        let res = run(SimConfig::new(2), |ctx| {
            let comm = Comm::world(ctx);
            let mut session = CommSession::new(ctx, comm);
            let a = [1.0f64; 8];
            let b = [2.0f64; 8];
            let c = [3.0f64; 8];
            let (mut ra, mut rb, mut rc) = ([0.0f64; 8], [0.0f64; 8], [0.0f64; 8]);
            let params = CommParams::new()
                .sender(RankExpr::lit(0))
                .receiver(RankExpr::lit(1))
                .sendwhen(RankExpr::rank().eq(RankExpr::lit(0)))
                .receivewhen(RankExpr::rank().eq(RankExpr::lit(1)));
            session
                .region(&params, |reg| {
                    reg.p2p()
                        .site(1)
                        .sbuf(Prim::new("a", &a))
                        .rbuf(PrimMut::new("ra", &mut ra))
                        .run()
                        .unwrap();
                    reg.p2p()
                        .site(2)
                        .sbuf(Prim::new("b", &b))
                        .rbuf(PrimMut::new("rb", &mut rb))
                        .run()
                        .unwrap();
                    reg.p2p()
                        .site(3)
                        .sbuf(Prim::new("c", &c))
                        .rbuf(PrimMut::new("rc", &mut rc))
                        .run()
                        .unwrap();
                })
                .unwrap();
            if session.rank() == 1 {
                assert_eq!(ra, [1.0; 8]);
                assert_eq!(rb, [2.0; 8]);
                assert_eq!(rc, [3.0; 8]);
            }
            ctx.stats.waitalls
        });
        assert_eq!(res.per_rank, vec![1, 1], "one consolidated sync per rank");
    }

    #[test]
    fn max_comm_iter_enforced() {
        run(SimConfig::new(2), |ctx| {
            let comm = Comm::world(ctx);
            let mut session = CommSession::new(ctx, comm);
            let src = [1i32];
            let mut dst = [0i32];
            let params = CommParams::new()
                .sender(RankExpr::lit(0))
                .receiver(RankExpr::lit(1))
                .sendwhen(RankExpr::rank().eq(RankExpr::lit(0)))
                .receivewhen(RankExpr::rank().eq(RankExpr::lit(1)))
                .max_comm_iter(2);
            let err = session.region(&params, |reg| {
                for i in 0..3 {
                    let r = reg
                        .p2p()
                        .site(9)
                        .sbuf(Prim::new("src", &src))
                        .rbuf(PrimMut::new("dst", &mut dst))
                        .run();
                    if i < 2 {
                        assert!(r.is_ok(), "iteration {i} should pass");
                    } else {
                        assert!(matches!(
                            r,
                            Err(DirectiveError::MaxIterExceeded { bound: 2, .. })
                        ));
                    }
                }
            });
            assert!(err.is_err(), "region must surface the iteration overflow");
        });
    }

    #[test]
    fn deferred_sync_to_next_region() {
        let res = run(SimConfig::new(2), |ctx| {
            let comm = Comm::world(ctx);
            let mut session = CommSession::new(ctx, comm);
            let src = [5i64; 4];
            let mut dst = [0i64; 4];
            let params1 = CommParams::new()
                .sender(RankExpr::lit(0))
                .receiver(RankExpr::lit(1))
                .sendwhen(RankExpr::rank().eq(RankExpr::lit(0)))
                .receivewhen(RankExpr::rank().eq(RankExpr::lit(1)))
                .place_sync(PlaceSync::BeginNextParamRegion);
            session
                .region(&params1, |reg| {
                    reg.p2p()
                        .sbuf(Prim::new("src", &src))
                        .rbuf(PrimMut::new("dst", &mut dst))
                        .run()
                        .unwrap();
                })
                .unwrap();
            let w1 = session.ctx().stats.waitalls;
            // Second region: carried sync applies at its beginning.
            let params2 = CommParams::new()
                .sender(RankExpr::lit(1))
                .receiver(RankExpr::lit(0));
            let src2 = [1i64];
            let mut dst2 = [0i64];
            session
                .region(&params2, |reg| {
                    reg.p2p()
                        .site(2)
                        .sendwhen(RankExpr::rank().eq(RankExpr::lit(1)))
                        .receivewhen(RankExpr::rank().eq(RankExpr::lit(0)))
                        .sbuf(Prim::new("src2", &src2))
                        .rbuf(PrimMut::new("dst2", &mut dst2))
                        .run()
                        .unwrap();
                })
                .unwrap();
            session.flush();
            (w1, ctx.stats.waitalls)
        });
        // No sync inside/after region 1; both syncs complete by the end.
        for (w1, w2) in res.per_rank {
            assert_eq!(w1, 0, "region 1 sync was deferred");
            assert!(w2 >= 1);
        }
    }

    #[test]
    fn standalone_p2p_syncs_immediately() {
        let res = run(SimConfig::new(2), |ctx| {
            let comm = Comm::world(ctx);
            let mut session = CommSession::new(ctx, comm);
            let me = session.rank() as i64;
            let src = [me + 10];
            let mut dst = [0i64];
            session
                .p2p()
                .sender(
                    (RankExpr::rank() - RankExpr::lit(1) + RankExpr::nranks()) % RankExpr::nranks(),
                )
                .receiver((RankExpr::rank() + RankExpr::lit(1)) % RankExpr::nranks())
                .sbuf(Prim::new("src", &src))
                .rbuf(PrimMut::new("dst", &mut dst))
                .run()
                .unwrap();
            (dst[0], ctx.stats.waitalls)
        });
        assert_eq!(res.per_rank[0].0, 11); // rank 0 got rank 1's value
        assert_eq!(res.per_rank[1].0, 10);
        assert!(res.per_rank.iter().all(|&(_, w)| w == 1));
    }

    #[test]
    fn invalid_clauses_rejected_at_execution() {
        run(SimConfig::new(2), |ctx| {
            let comm = Comm::world(ctx);
            let mut session = CommSession::new(ctx, comm);
            let src = [0u8; 4];
            let mut dst = [0u8; 4];
            // Missing receiver clause.
            let r = session
                .p2p()
                .sender(RankExpr::lit(0))
                .sbuf(Prim::new("s", &src))
                .rbuf(PrimMut::new("r", &mut dst))
                .run();
            assert!(matches!(r, Err(DirectiveError::Invalid(_))));
        });
    }

    #[test]
    fn rank_out_of_range_detected() {
        run(SimConfig::new(2), |ctx| {
            let comm = Comm::world(ctx);
            let mut session = CommSession::new(ctx, comm);
            let src = [0u8; 4];
            let mut dst = [0u8; 4];
            let r = session
                .p2p()
                .sender(RankExpr::lit(0))
                .receiver(RankExpr::lit(7)) // no rank 7 of 2
                .sbuf(Prim::new("s", &src))
                .rbuf(PrimMut::new("r", &mut dst))
                .run();
            assert!(matches!(
                r,
                Err(DirectiveError::RankOutOfRange {
                    clause: "receiver",
                    value: 7,
                    ..
                })
            ));
        });
    }

    #[test]
    fn overlap_advances_clock_concurrently() {
        // The overlapped computation must not delay the recorded message
        // completion: total time ≈ max(comm, compute) + sync, not sum.
        let compute = Time::from_micros(300);
        let run_one = |with_overlap: bool| {
            let res = run(SimConfig::new(2), move |ctx| {
                let comm = Comm::world(ctx);
                let mut session = CommSession::new(ctx, comm);
                let src = [1.0f64; 512];
                let mut dst = [0.0f64; 512];
                let params = CommParams::new()
                    .sender(RankExpr::lit(0))
                    .receiver(RankExpr::lit(1))
                    .sendwhen(RankExpr::rank().eq(RankExpr::lit(0)))
                    .receivewhen(RankExpr::rank().eq(RankExpr::lit(1)));
                session
                    .region(&params, |reg| {
                        let call = reg
                            .p2p()
                            .sbuf(Prim::new("src", &src))
                            .rbuf(PrimMut::new("dst", &mut dst));
                        if with_overlap {
                            call.overlap(|ctx| ctx.compute(compute)).unwrap();
                        } else {
                            call.run().unwrap();
                        }
                    })
                    .unwrap();
                if !with_overlap {
                    // Sequential version: compute after the region sync.
                    ctx.compute(compute);
                }
                ctx.now()
            });
            res.final_times[1]
        };
        let overlapped = run_one(true);
        let sequential = run_one(false);
        assert!(
            overlapped < sequential,
            "overlap ({overlapped}) must beat sequential ({sequential})"
        );
    }

    #[test]
    fn shmem_loop_reuses_staging_with_max_iter_slots() {
        // A loop of puts within one region: distinct slots prevent
        // overwrite before the receiver drains them.
        let iters = 4usize;
        let res = run(SimConfig::new(2), move |ctx| {
            let comm = Comm::world(ctx);
            let mut session = CommSession::new(ctx, comm);
            let mut got = Vec::new();
            let params = CommParams::new()
                .sender(RankExpr::lit(0))
                .receiver(RankExpr::lit(1))
                .sendwhen(RankExpr::rank().eq(RankExpr::lit(0)))
                .receivewhen(RankExpr::rank().eq(RankExpr::lit(1)))
                .target(Target::Shmem)
                .max_comm_iter(iters as i64);
            session
                .region(&params, |reg| {
                    for i in 0..iters {
                        let src = [i as i64; 2];
                        let mut dst = [0i64; 2];
                        reg.p2p()
                            .site(5)
                            .sbuf(Prim::new("src", &src))
                            .rbuf(PrimMut::new("dst", &mut dst))
                            .run()
                            .unwrap();
                        got.push(dst[0]);
                    }
                })
                .unwrap();
            session.flush();
            got
        });
        assert_eq!(res.per_rank[1], vec![0, 1, 2, 3]);
        assert!(res.per_rank[0].iter().all(|&v| v == 0));
    }

    /// Run an `iters`-deep pairwise loop (rank 0 → rank 1, `count` i64s per
    /// instance) under an optional overlay; returns (received values,
    /// sends, recvs, packed_bytes, final time of rank 1).
    fn run_pair_loop(
        target: Target,
        iters: usize,
        overlay: Option<Overlay>,
    ) -> (Vec<i64>, usize, usize, usize, Time) {
        let res = run(SimConfig::new(2), move |ctx| {
            let comm = Comm::world(ctx);
            let mut session = CommSession::new(ctx, comm);
            if let Some(ov) = overlay.clone() {
                session = session.with_overlay(ov);
            }
            let mut got = Vec::new();
            let params = CommParams::new()
                .sender(RankExpr::lit(0))
                .receiver(RankExpr::lit(1))
                .sendwhen(RankExpr::rank().eq(RankExpr::lit(0)))
                .receivewhen(RankExpr::rank().eq(RankExpr::lit(1)))
                .target(target)
                .max_comm_iter(iters as i64);
            session
                .region(&params, |reg| {
                    for i in 0..iters {
                        let src = [i as i64 * 3, i as i64 * 3 + 1];
                        let mut dst = [0i64; 2];
                        reg.p2p()
                            .site(9)
                            .sbuf(Prim::new("src", &src))
                            .rbuf(PrimMut::new("dst", &mut dst))
                            .run()
                            .unwrap();
                        got.extend_from_slice(&dst);
                    }
                })
                .unwrap();
            session.flush();
            (
                got,
                ctx.stats.sends,
                ctx.stats.recvs,
                ctx.stats.packed_bytes,
                ctx.now(),
            )
        });
        res.per_rank.into_iter().nth(1).unwrap()
    }

    fn coalesce_overlay(batch: usize) -> Overlay {
        let mut ov = Overlay::default();
        ov.set(SiteDecision::new(9, Decision::Coalesce { batch }));
        ov
    }

    #[test]
    fn coalesced_mpi2_delivers_and_batches() {
        let iters = 8;
        let (base_vals, _, base_recvs, base_packed, base_t) =
            run_pair_loop(Target::Mpi2Side, iters, None);
        let (vals, _, recvs, packed, t) =
            run_pair_loop(Target::Mpi2Side, iters, Some(coalesce_overlay(4)));
        assert_eq!(vals, base_vals, "coalescing must not change payloads");
        assert_eq!(base_recvs, iters);
        assert_eq!(recvs, iters / 4, "one packed receive per full batch");
        assert_eq!(base_packed, 0, "uncoalesced small sends never pack");
        assert!(packed > 0, "coalesced path must count packed bytes");
        assert!(
            t < base_t,
            "batching 4x must beat per-instance sends ({t} vs {base_t})"
        );
    }

    #[test]
    fn coalesced_partial_batch_flushes_at_region_end() {
        // 5 instances at batch 4: one full flush mid-region, the 5th
        // piece rides the deterministic region-end flush.
        let (base_vals, ..) = run_pair_loop(Target::Mpi2Side, 5, None);
        let (vals, _, recvs, _, _) = run_pair_loop(Target::Mpi2Side, 5, Some(coalesce_overlay(4)));
        assert_eq!(vals, base_vals);
        assert_eq!(recvs, 2, "full batch + region-end remainder");
    }

    #[test]
    fn coalesced_shmem_delivers_and_batches() {
        let iters = 8;
        let (base_vals, ..) = run_pair_loop(Target::Shmem, iters, None);
        let (vals, ..) = run_pair_loop(Target::Shmem, iters, Some(coalesce_overlay(4)));
        assert_eq!(vals, base_vals, "shmem coalescing must not change payloads");
        let res = run(SimConfig::new(2), move |ctx| {
            let comm = Comm::world(ctx);
            let mut session = CommSession::new(ctx, comm).with_overlay(coalesce_overlay(4));
            let params = CommParams::new()
                .sender(RankExpr::lit(0))
                .receiver(RankExpr::lit(1))
                .sendwhen(RankExpr::rank().eq(RankExpr::lit(0)))
                .receivewhen(RankExpr::rank().eq(RankExpr::lit(1)))
                .target(Target::Shmem)
                .max_comm_iter(iters as i64);
            session
                .region(&params, |reg| {
                    for i in 0..iters {
                        let src = [i as i64, i as i64];
                        let mut dst = [0i64; 2];
                        reg.p2p()
                            .site(9)
                            .sbuf(Prim::new("src", &src))
                            .rbuf(PrimMut::new("dst", &mut dst))
                            .run()
                            .unwrap();
                    }
                })
                .unwrap();
            session.flush();
            ctx.stats.puts
        });
        assert_eq!(res.per_rank[0], 2, "one signalled put per full batch");
    }

    #[test]
    fn keep_overlay_is_behaviorally_inert() {
        let base = run_pair_loop(Target::Mpi2Side, 6, None);
        let mut ov = Overlay::default();
        ov.set(SiteDecision::new(9, Decision::Keep));
        ov.set(SiteDecision::new(12, Decision::Coalesce { batch: 1 }));
        let kept = run_pair_loop(Target::Mpi2Side, 6, Some(ov));
        assert_eq!(base, kept, "all-keep overlay must be bit-identical");
    }

    #[test]
    fn overlay_retarget_switches_mechanism() {
        let mut ov = Overlay::default();
        ov.set(SiteDecision::new(9, Decision::Retarget(Target::Shmem)));
        let res = run(SimConfig::new(2), move |ctx| {
            let comm = Comm::world(ctx);
            let mut session = CommSession::new(ctx, comm).with_overlay(ov.clone());
            let src = [41i64, 42];
            let mut dst = [0i64; 2];
            let params = CommParams::new()
                .sender(RankExpr::lit(0))
                .receiver(RankExpr::lit(1))
                .sendwhen(RankExpr::rank().eq(RankExpr::lit(0)))
                .receivewhen(RankExpr::rank().eq(RankExpr::lit(1)))
                .max_comm_iter(1);
            session
                .region(&params, |reg| {
                    reg.p2p()
                        .site(9)
                        .sbuf(Prim::new("src", &src))
                        .rbuf(PrimMut::new("dst", &mut dst))
                        .run()
                        .unwrap();
                })
                .unwrap();
            session.flush();
            (dst, ctx.stats.sends, ctx.stats.puts)
        });
        let (dst1, sends1, _) = res.per_rank[1];
        let (_, _, puts0) = res.per_rank[0];
        assert_eq!(dst1, [41, 42]);
        assert_eq!(sends1, 0, "retargeted site must not use two-sided sends");
        assert_eq!(puts0, 1, "retargeted site delivers via a put");
    }

    #[test]
    fn overlay_place_sync_defers_region_sync() {
        let mut ov = Overlay::default();
        ov.set(SiteDecision::new(
            9,
            Decision::PlaceSync(PlaceSync::BeginNextParamRegion),
        ));
        let res = run(SimConfig::new(2), move |ctx| {
            let comm = Comm::world(ctx);
            let mut session = CommSession::new(ctx, comm).with_overlay(ov.clone());
            let src = [1i64; 2];
            let mut dst = [0i64; 2];
            let params = CommParams::new()
                .sender(RankExpr::lit(0))
                .receiver(RankExpr::lit(1))
                .sendwhen(RankExpr::rank().eq(RankExpr::lit(0)))
                .receivewhen(RankExpr::rank().eq(RankExpr::lit(1)));
            session
                .region(&params, |reg| {
                    reg.p2p()
                        .site(9)
                        .sbuf(Prim::new("src", &src))
                        .rbuf(PrimMut::new("dst", &mut dst))
                        .run()
                        .unwrap();
                })
                .unwrap();
            let deferred = session.ctx().stats.waitalls;
            session.flush();
            (deferred, ctx.stats.waitalls)
        });
        for (w1, w2) in res.per_rank {
            assert_eq!(w1, 0, "overlay deferred the region-end sync");
            assert!(w2 >= 1, "flush applies the carried sync");
        }
    }

    #[test]
    fn coalesced_bidirectional_exchange_does_not_deadlock() {
        // Both ranks send AND receive at the coalesced site: the
        // flush-before-wait rule must prevent each rank blocking on the
        // other's unflushed batch.
        let iters = 4usize;
        let res = run(SimConfig::new(2), move |ctx| {
            let comm = Comm::world(ctx);
            let mut session = CommSession::new(ctx, comm).with_overlay(coalesce_overlay(8));
            let me = session.rank() as i64;
            let mut got = Vec::new();
            let params = CommParams::new()
                .sender(RankExpr::lit(1) - RankExpr::rank())
                .receiver(RankExpr::lit(1) - RankExpr::rank())
                .target(Target::Mpi2Side)
                .max_comm_iter(iters as i64);
            session
                .region(&params, |reg| {
                    for i in 0..iters {
                        let src = [me * 100 + i as i64];
                        let mut dst = [0i64];
                        reg.p2p()
                            .site(9)
                            .sbuf(Prim::new("src", &src))
                            .rbuf(PrimMut::new("dst", &mut dst))
                            .run()
                            .unwrap();
                        got.push(dst[0]);
                    }
                })
                .unwrap();
            session.flush();
            got
        });
        // Batch 8 > iters, so nothing flushes until a receiver is about to
        // block — which forces its own accumulator out first.
        assert_eq!(res.per_rank[0], vec![100, 101, 102, 103]);
        assert_eq!(res.per_rank[1], vec![0, 1, 2, 3]);
    }

    #[test]
    fn ir_recorded_for_analysis() {
        run(SimConfig::new(2), |ctx| {
            let comm = Comm::world(ctx);
            let mut session = CommSession::new(ctx, comm);
            let src = [1i32; 3];
            let mut dst = [0i32; 3];
            let params = CommParams::new()
                .sender(RankExpr::lit(0))
                .receiver(RankExpr::lit(1))
                .sendwhen(RankExpr::rank().eq(RankExpr::lit(0)))
                .receivewhen(RankExpr::rank().eq(RankExpr::lit(1)));
            session
                .region(&params, |reg| {
                    for _ in 0..3 {
                        let s = [0i32; 3];
                        let mut d = [0i32; 3];
                        let _ = (&src, &dst);
                        reg.p2p()
                            .site(1)
                            .sbuf(Prim::new("s", &s))
                            .rbuf(PrimMut::new("d", &mut d))
                            .run()
                            .unwrap();
                    }
                })
                .unwrap();
            let _ = (&mut dst, &src);
            let program = session.finish();
            assert_eq!(program.len(), 1);
            // Loop iterations collapse to one recorded site.
            assert_eq!(program[0].body.len(), 1);
            assert_eq!(program[0].body[0].site, 1);
        });
    }

    /// Ring of a 3-array struct-of-arrays payload, delivered intact on
    /// every target and both lowering extremes.
    fn run_soa_ring(target: Target, policy: crate::lower::LoweringPolicy, n: usize) -> Vec<i64> {
        use crate::buffer::{Soa, SoaMut};
        let res = run(SimConfig::new(n), move |ctx| {
            let comm = Comm::world(ctx);
            let mut session = CommSession::new(ctx, comm).with_lowering(policy);
            let me = session.rank() as i64;
            let a = vec![me; 64];
            let b = vec![me as f64 + 0.5; 64];
            let c = vec![me as i32; 128];
            let mut ra = vec![0i64; 64];
            let mut rb = vec![0f64; 64];
            let mut rc = vec![0i32; 128];
            let params = ring_params(n).target(target);
            session
                .region(&params, |reg| {
                    reg.p2p()
                        .count(RankExpr::lit(64))
                        .sbuf(
                            Soa::new("s")
                                .field("a", &a)
                                .field("b", &b)
                                .field_blocks("c", &c, 2),
                        )
                        .rbuf(
                            SoaMut::new("r")
                                .field("a", &mut ra)
                                .field("b", &mut rb)
                                .field_blocks("c", &mut rc, 2),
                        )
                        .run()
                        .unwrap();
                })
                .unwrap();
            session.flush();
            assert!(rb.iter().all(|&v| v == ra[0] as f64 + 0.5));
            assert!(rc.iter().all(|&v| v as i64 == ra[0]));
            ra[0]
        });
        res.per_rank
    }

    #[test]
    fn soa_ring_all_targets_and_policies_deliver() {
        use crate::lower::LoweringPolicy;
        for target in Target::ALL {
            for policy in [
                LoweringPolicy::Auto,
                LoweringPolicy::AlwaysPack,
                LoweringPolicy::AlwaysDatatype,
            ] {
                let n = 4;
                let got = run_soa_ring(target, policy, n);
                for (r, &v) in got.iter().enumerate() {
                    assert_eq!(
                        v as usize,
                        (r + n - 1) % n,
                        "target {target}, policy {policy:?}: rank {r} got {v}"
                    );
                }
            }
        }
    }

    /// The chooser's zero-copy split beats the Listing-4 always-pack
    /// baseline on a large struct-of-arrays transfer, and the pack
    /// baseline actually records packed bytes (observability).
    #[test]
    fn auto_lowering_beats_always_pack_on_large_soa() {
        use crate::buffer::{Soa, SoaMut};
        use crate::lower::LoweringPolicy;
        let time_with = |policy: LoweringPolicy| {
            let res = run(SimConfig::new(2), move |ctx| {
                let comm = Comm::world(ctx);
                let mut session = CommSession::new(ctx, comm).with_lowering(policy);
                let a = vec![1i64; 4096];
                let b = vec![2i64; 4096];
                let c = vec![3i64; 4096];
                let mut ra = vec![0i64; 4096];
                let mut rb = vec![0i64; 4096];
                let mut rc = vec![0i64; 4096];
                let params = CommParams::new()
                    .sender(RankExpr::lit(0))
                    .receiver(RankExpr::lit(1))
                    .sendwhen(RankExpr::rank().eq(RankExpr::lit(0)))
                    .receivewhen(RankExpr::rank().eq(RankExpr::lit(1)))
                    .target(Target::Mpi2Side);
                session
                    .region(&params, |reg| {
                        reg.p2p()
                            .count(RankExpr::lit(4096))
                            .sbuf(Soa::new("s").field("a", &a).field("b", &b).field("c", &c))
                            .rbuf(
                                SoaMut::new("r")
                                    .field("a", &mut ra)
                                    .field("b", &mut rb)
                                    .field("c", &mut rc),
                            )
                            .run()
                            .unwrap();
                    })
                    .unwrap();
                session.flush();
                assert_eq!(ra[4095], if session.rank() == 1 { 1 } else { 0 });
            });
            (
                res.final_times.iter().max().copied().unwrap(),
                res.total_stats().packed_bytes,
            )
        };
        let (auto_t, auto_packed) = time_with(LoweringPolicy::Auto);
        let (pack_t, pack_packed) = time_with(LoweringPolicy::AlwaysPack);
        assert!(
            auto_t < pack_t,
            "auto {auto_t:?} should beat always-pack {pack_t:?}"
        );
        // 3 arrays x 4096 x 8B, packed on the send side and unpacked on
        // the receive side under the baseline; never copied under auto.
        assert_eq!(auto_packed, 0);
        assert_eq!(pack_packed, 2 * 3 * 4096 * 8);
    }
}
