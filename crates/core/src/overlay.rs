//! Tuning overlays: per-site mechanism decisions the directive engine
//! applies on the *next* run.
//!
//! The paper's thesis is that the application states communication intent
//! and the system picks the mechanism. The overlay is how a measurement
//! tool (commtune, feeding on commscope profiles) talks back to the
//! engine: a versioned set of per-[`SiteId`] decisions — retarget the
//! site, move its consolidated sync, or coalesce its small messages —
//! each carrying the rationale and predicted benefit that justified it.
//! The engine applies decisions at clause-resolution time, so the
//! programmer's source is untouched and a decision can be revoked by
//! simply not installing the overlay.
//!
//! This module is the pure data model (no JSON): serialization lives in
//! `commtune`, which owns the overlay file format and its schema gate.

use crate::clause::{PlaceSync, Target};

/// Version of the overlay decision model. Bumped when decision semantics
/// change; `commtune` refuses to load overlay files whose recorded schema
/// disagrees (a stale overlay must never silently drive a newer engine).
pub const OVERLAY_SCHEMA: i64 = 1;

/// One per-site mechanism decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Leave the site exactly as written (also used to pin a site).
    Keep,
    /// Override the site's translation target.
    Retarget(Target),
    /// Override the consolidated-sync placement of the region executing
    /// this site.
    PlaceSync(PlaceSync),
    /// Coalesce the site's small sends: batch up to `batch` directive
    /// instances per (source, destination) pair into one packed message.
    /// Flushes are a pure function of the instance schedule (batch full,
    /// region end, forced sync, or sender about to block), so coalesced
    /// runs stay bit-identical across engines. Applies when the site
    /// resolves to the two-sided target; other targets keep their
    /// mechanism (one-sided puts have no per-message send/recv overhead
    /// worth eliding).
    Coalesce {
        /// Instances per flush; values below 2 mean "keep".
        batch: usize,
    },
}

/// A [`Decision`] plus the provenance commtune recorded for it.
#[derive(Clone, Debug, PartialEq)]
pub struct SiteDecision {
    /// The directive site (same `netsim::SiteId` namespace as traces,
    /// metrics, and commscope profiles).
    pub site: u32,
    /// What to do.
    pub decision: Decision,
    /// Why: cites the wait-state blame taxonomy entry that motivated it.
    pub rationale: String,
    /// Predicted benefit in virtual nanoseconds over the profiled run.
    pub predicted_saving_ns: i64,
    /// Pinned by a source `// @pin` annotation: the tuner must emit
    /// `Keep` and later passes must not change it.
    pub pinned: bool,
}

impl SiteDecision {
    /// A bare decision with empty provenance (tests, hand-built overlays).
    pub fn new(site: u32, decision: Decision) -> Self {
        SiteDecision {
            site,
            decision,
            rationale: String::new(),
            predicted_saving_ns: 0,
            pinned: false,
        }
    }
}

/// A full tuning overlay: the unit commtune emits and the engine installs.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Overlay {
    /// Job-wide eager-vs-rendezvous threshold override (bytes), applied
    /// through `SimConfig::eager_threshold` by the experiment driver.
    pub eager_threshold: Option<usize>,
    /// Per-site decisions. At most one per site; first match wins.
    pub decisions: Vec<SiteDecision>,
}

impl Overlay {
    /// Look up the decision for a site.
    pub fn decision_for(&self, site: u32) -> Option<&SiteDecision> {
        self.decisions.iter().find(|d| d.site == site)
    }

    /// Target override for a site, if any.
    pub fn retarget_for(&self, site: u32) -> Option<Target> {
        match self.decision_for(site)?.decision {
            Decision::Retarget(t) => Some(t),
            _ => None,
        }
    }

    /// Sync-placement override for a site, if any.
    pub fn place_sync_for(&self, site: u32) -> Option<PlaceSync> {
        match self.decision_for(site)?.decision {
            Decision::PlaceSync(p) => Some(p),
            _ => None,
        }
    }

    /// Coalescing batch for a site (≥ 2), if any.
    pub fn coalesce_batch_for(&self, site: u32) -> Option<usize> {
        match self.decision_for(site)?.decision {
            Decision::Coalesce { batch } if batch >= 2 => Some(batch),
            _ => None,
        }
    }

    /// Add a decision, replacing any existing decision for the same site.
    pub fn set(&mut self, d: SiteDecision) {
        self.decisions.retain(|x| x.site != d.site);
        self.decisions.push(d);
    }

    /// Whether the overlay changes anything at all (all-`Keep` overlays
    /// are behaviorally identical to no overlay).
    pub fn is_noop(&self) -> bool {
        self.eager_threshold.is_none()
            && self.decisions.iter().all(|d| {
                matches!(
                    d.decision,
                    Decision::Keep | Decision::Coalesce { batch: 0..=1 }
                )
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_and_replace() {
        let mut ov = Overlay::default();
        assert!(ov.is_noop());
        ov.set(SiteDecision::new(11, Decision::Coalesce { batch: 16 }));
        ov.set(SiteDecision::new(12, Decision::Keep));
        assert_eq!(ov.coalesce_batch_for(11), Some(16));
        assert_eq!(ov.coalesce_batch_for(12), None);
        assert!(!ov.is_noop());
        ov.set(SiteDecision::new(11, Decision::Retarget(Target::Shmem)));
        assert_eq!(ov.decisions.len(), 2);
        assert_eq!(ov.retarget_for(11), Some(Target::Shmem));
        assert_eq!(ov.coalesce_batch_for(11), None);
        assert_eq!(
            Overlay {
                decisions: vec![SiteDecision::new(
                    3,
                    Decision::PlaceSync(PlaceSync::EndParamRegion)
                )],
                ..Overlay::default()
            }
            .place_sync_for(3),
            Some(PlaceSync::EndParamRegion)
        );
    }

    #[test]
    fn degenerate_batches_are_keep() {
        let mut ov = Overlay::default();
        ov.set(SiteDecision::new(7, Decision::Coalesce { batch: 1 }));
        assert_eq!(ov.coalesce_batch_for(7), None);
        assert!(ov.is_noop());
    }
}
