//! Clause vocabulary of the two directives, with the paper's admissibility
//! and pairing rules enforced as diagnostics.
//!
//! Ten clauses: `sender`, `receiver`, `sbuf`, `rbuf` (required);
//! `sendwhen`/`receivewhen` (optional but paired), `target`, `count`
//! (optional, both directives); `place_sync`, `max_comm_iter` (optional,
//! `comm_parameters` only).

use std::fmt;

use crate::expr::{CondExpr, RankExpr};

/// The `target` clause keywords: which library calls to generate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Target {
    /// `TARGET_COMM_MPI_1SIDE` → `MPI_Put` + window fence.
    Mpi1Side,
    /// `TARGET_COMM_MPI_2SIDE` → non-blocking `MPI_Isend`/`MPI_Irecv`.
    /// This is the default when the clause is absent.
    #[default]
    Mpi2Side,
    /// `TARGET_COMM_SHMEM` → size-matched `shmem_put` + deferred sync.
    Shmem,
}

impl Target {
    /// The paper's keyword for this target.
    pub fn keyword(self) -> &'static str {
        match self {
            Target::Mpi1Side => "TARGET_COMM_MPI_1SIDE",
            Target::Mpi2Side => "TARGET_COMM_MPI_2SIDE",
            Target::Shmem => "TARGET_COMM_SHMEM",
        }
    }

    /// Parse a paper keyword.
    pub fn from_keyword(kw: &str) -> Option<Target> {
        match kw {
            "TARGET_COMM_MPI_1SIDE" => Some(Target::Mpi1Side),
            "TARGET_COMM_MPI_2SIDE" => Some(Target::Mpi2Side),
            "TARGET_COMM_SHMEM" => Some(Target::Shmem),
            _ => None,
        }
    }

    /// All targets (for retargeting sweeps).
    pub const ALL: [Target; 3] = [Target::Mpi2Side, Target::Mpi1Side, Target::Shmem];
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// The `place_sync` clause keywords: where generated synchronization goes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum PlaceSync {
    /// `END_PARAM_REGION`: one consolidated sync at the end of this
    /// `comm_parameters` region (the default behaviour).
    #[default]
    EndParamRegion,
    /// `BEGIN_NEXT_PARAM_REGION`: defer the sync to the beginning of the
    /// next `comm_parameters` region.
    BeginNextParamRegion,
    /// `END_ADJ_PARAM_REGIONS`: defer all syncs to the last region in a run
    /// of adjacent `comm_parameters` regions.
    EndAdjParamRegions,
}

impl PlaceSync {
    /// The paper's keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            PlaceSync::EndParamRegion => "END_PARAM_REGION",
            PlaceSync::BeginNextParamRegion => "BEGIN_NEXT_PARAM_REGION",
            PlaceSync::EndAdjParamRegions => "END_ADJ_PARAM_REGIONS",
        }
    }

    /// Parse a paper keyword.
    pub fn from_keyword(kw: &str) -> Option<PlaceSync> {
        match kw {
            "END_PARAM_REGION" => Some(PlaceSync::EndParamRegion),
            "BEGIN_NEXT_PARAM_REGION" => Some(PlaceSync::BeginNextParamRegion),
            "END_ADJ_PARAM_REGIONS" => Some(PlaceSync::EndAdjParamRegions),
            _ => None,
        }
    }
}

impl fmt::Display for PlaceSync {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// Which directive a clause set belongs to (admissibility differs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DirectiveKind {
    /// `#pragma comm_parameters`
    CommParameters,
    /// `#pragma comm_p2p`
    CommP2p,
}

impl fmt::Display for DirectiveKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DirectiveKind::CommParameters => f.write_str("comm_parameters"),
            DirectiveKind::CommP2p => f.write_str("comm_p2p"),
        }
    }
}

/// The clause payload shared by both directives (plus the two
/// parameters-only clauses; admissibility is checked by
/// [`ClauseSet::validate`]).
#[derive(Clone, Debug, Default)]
pub struct ClauseSet {
    /// `sender(expr)`: rank that sends *to* the evaluating process.
    pub sender: Option<RankExpr>,
    /// `receiver(expr)`: rank that receives *from* the evaluating process.
    pub receiver: Option<RankExpr>,
    /// `sendwhen(bool)`: which processes send.
    pub sendwhen: Option<CondExpr>,
    /// `receivewhen(bool)`: which processes receive.
    pub receivewhen: Option<CondExpr>,
    /// `count(expr)`: elements transferred per buffer.
    pub count: Option<RankExpr>,
    /// `target(keyword)`.
    pub target: Option<Target>,
    /// `place_sync(keyword)` — `comm_parameters` only.
    pub place_sync: Option<PlaceSync>,
    /// `max_comm_iter(expr)` — `comm_parameters` only.
    pub max_comm_iter: Option<RankExpr>,
}

/// A diagnostic from clause validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Severity.
    pub severity: Severity,
    /// Human-readable message.
    pub message: String,
    /// Source location of the offending clause or directive, when the
    /// diagnostic originates from parsed pragma text (`pragma-front`
    /// threads lexer spans through; builder-API diagnostics carry none).
    pub span: Option<crate::diag::SrcSpan>,
}

/// Diagnostic severity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational; nothing is wrong with the directive translation
    /// itself (e.g. "a *blocking* translation of this pattern would
    /// deadlock").
    Note,
    /// Advisory; execution proceeds.
    Warning,
    /// Violation of the directive rules; execution refuses.
    Error,
}

impl Severity {
    /// Lower-case keyword (`note` / `warning` / `error`).
    pub fn keyword(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl Diagnostic {
    /// Construct an error diagnostic.
    pub fn error(message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Error,
            message: message.into(),
            span: None,
        }
    }

    /// Construct a warning diagnostic.
    pub fn warning(message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            message: message.into(),
            span: None,
        }
    }

    /// Construct an informational note.
    pub fn note(message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Note,
            message: message.into(),
            span: None,
        }
    }

    /// Attach a source span (builder style).
    pub fn at(mut self, span: crate::diag::SrcSpan) -> Diagnostic {
        self.span = Some(span);
        self
    }

    /// Attach a span only if the diagnostic does not already carry one.
    pub fn or_at(mut self, span: Option<crate::diag::SrcSpan>) -> Diagnostic {
        if self.span.is_none() {
            self.span = span;
        }
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.span {
            Some(sp) => write!(f, "{} at {sp}: {}", self.severity.keyword(), self.message),
            None => write!(f, "{}: {}", self.severity.keyword(), self.message),
        }
    }
}

impl ClauseSet {
    /// Validate this clause set against the rules of `kind`, in the context
    /// of whether the enclosing `comm_parameters` (if any) already supplies
    /// `sender`/`receiver`. Returns all diagnostics (warnings included).
    ///
    /// Rules from the paper:
    /// * `sender`, `receiver`, `sbuf`, `rbuf` are required (buffer presence
    ///   is checked by the caller, which owns the buffer lists) — but a
    ///   `comm_p2p` inside a `comm_parameters` region inherits clauses, so
    ///   the requirement applies to the *merged* set;
    /// * `sendwhen` and `receivewhen` "must both be present or both be
    ///   omitted";
    /// * `max_comm_iter` and `place_sync` "may only be used with
    ///   `comm_parameters`".
    pub fn validate(&self, kind: DirectiveKind, inherited: Option<&ClauseSet>) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let has =
            |f: fn(&ClauseSet) -> bool| -> bool { f(self) || inherited.map(f).unwrap_or(false) };
        if !has(|c| c.sender.is_some()) {
            out.push(Diagnostic::error(format!(
                "{kind}: required clause `sender` missing (and not inherited)"
            )));
        }
        if !has(|c| c.receiver.is_some()) {
            out.push(Diagnostic::error(format!(
                "{kind}: required clause `receiver` missing (and not inherited)"
            )));
        }
        let sw = has(|c| c.sendwhen.is_some());
        let rw = has(|c| c.receivewhen.is_some());
        if sw != rw {
            out.push(Diagnostic::error(format!(
                "{kind}: `sendwhen` and `receivewhen` must both be present or both be omitted"
            )));
        }
        if kind == DirectiveKind::CommP2p {
            if self.place_sync.is_some() {
                out.push(Diagnostic::error(
                    "comm_p2p: `place_sync` may only be used with comm_parameters",
                ));
            }
            if self.max_comm_iter.is_some() {
                out.push(Diagnostic::error(
                    "comm_p2p: `max_comm_iter` may only be used with comm_parameters",
                ));
            }
        }
        out
    }

    /// Merge an enclosing `comm_parameters` clause set with this `comm_p2p`
    /// set: the p2p's own assertions win; missing ones are inherited
    /// ("individual instances of comm_p2p in this scope do not need to
    /// re-express these communication clauses, but may provide additional
    /// assertions").
    pub fn merged_with(&self, outer: &ClauseSet) -> ClauseSet {
        ClauseSet {
            sender: self.sender.clone().or_else(|| outer.sender.clone()),
            receiver: self.receiver.clone().or_else(|| outer.receiver.clone()),
            sendwhen: self.sendwhen.clone().or_else(|| outer.sendwhen.clone()),
            receivewhen: self
                .receivewhen
                .clone()
                .or_else(|| outer.receivewhen.clone()),
            count: self.count.clone().or_else(|| outer.count.clone()),
            target: self.target.or(outer.target),
            place_sync: self.place_sync.or(outer.place_sync),
            max_comm_iter: self
                .max_comm_iter
                .clone()
                .or_else(|| outer.max_comm_iter.clone()),
        }
    }

    /// Whether any diagnostic in `diags` is an error.
    pub fn has_errors(diags: &[Diagnostic]) -> bool {
        diags.iter().any(|d| d.severity == Severity::Error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::RankExpr;

    fn full() -> ClauseSet {
        ClauseSet {
            sender: Some(RankExpr::rank() - RankExpr::lit(1)),
            receiver: Some(RankExpr::rank() + RankExpr::lit(1)),
            ..ClauseSet::default()
        }
    }

    #[test]
    fn required_clauses_enforced() {
        let empty = ClauseSet::default();
        let diags = empty.validate(DirectiveKind::CommP2p, None);
        assert_eq!(
            diags
                .iter()
                .filter(|d| d.severity == Severity::Error)
                .count(),
            2
        );
        assert!(ClauseSet::has_errors(&diags));
        assert!(full().validate(DirectiveKind::CommP2p, None).is_empty());
    }

    #[test]
    fn pairing_rule() {
        let mut c = full();
        c.sendwhen = Some((RankExpr::rank() % RankExpr::lit(2)).eq(RankExpr::lit(0)));
        let diags = c.validate(DirectiveKind::CommP2p, None);
        assert!(diags.iter().any(|d| d.message.contains("both")));
        c.receivewhen = Some((RankExpr::rank() % RankExpr::lit(2)).eq(RankExpr::lit(1)));
        assert!(c.validate(DirectiveKind::CommP2p, None).is_empty());
    }

    #[test]
    fn params_only_clauses() {
        let mut c = full();
        c.place_sync = Some(PlaceSync::EndParamRegion);
        c.max_comm_iter = Some(RankExpr::var("n"));
        assert!(c.validate(DirectiveKind::CommParameters, None).is_empty());
        let diags = c.validate(DirectiveKind::CommP2p, None);
        assert_eq!(
            diags
                .iter()
                .filter(|d| d.severity == Severity::Error)
                .count(),
            2
        );
    }

    #[test]
    fn inheritance_satisfies_requirements() {
        let outer = full();
        let inner = ClauseSet::default();
        assert!(inner
            .validate(DirectiveKind::CommP2p, Some(&outer))
            .is_empty());
    }

    #[test]
    fn pairing_across_inheritance() {
        // Outer provides sendwhen only; inner provides receivewhen only.
        // The merged view has both, so it is legal.
        let mut outer = full();
        outer.sendwhen = Some(CondExprTrue());
        let inner = ClauseSet {
            receivewhen: Some(CondExprTrue()),
            ..ClauseSet::default()
        };
        assert!(inner
            .validate(DirectiveKind::CommP2p, Some(&outer))
            .is_empty());
        // Outer alone is invalid as comm_parameters.
        assert!(ClauseSet::has_errors(
            &outer.validate(DirectiveKind::CommParameters, None)
        ));
    }

    #[allow(non_snake_case)]
    fn CondExprTrue() -> crate::expr::CondExpr {
        crate::expr::CondExpr::True
    }

    #[test]
    fn merge_prefers_inner() {
        let outer = ClauseSet {
            sender: Some(RankExpr::lit(0)),
            receiver: Some(RankExpr::lit(1)),
            count: Some(RankExpr::lit(10)),
            target: Some(Target::Shmem),
            ..ClauseSet::default()
        };
        let inner = ClauseSet {
            count: Some(RankExpr::lit(3)),
            ..ClauseSet::default()
        };
        let m = inner.merged_with(&outer);
        assert_eq!(m.count.unwrap().to_string(), "3");
        assert_eq!(m.sender.unwrap().to_string(), "0");
        assert_eq!(m.target, Some(Target::Shmem));
    }

    #[test]
    fn keywords_roundtrip() {
        for t in Target::ALL {
            assert_eq!(Target::from_keyword(t.keyword()), Some(t));
        }
        assert_eq!(Target::from_keyword("bogus"), None);
        for p in [
            PlaceSync::EndParamRegion,
            PlaceSync::BeginNextParamRegion,
            PlaceSync::EndAdjParamRegions,
        ] {
            assert_eq!(PlaceSync::from_keyword(p.keyword()), Some(p));
        }
        assert_eq!(Target::default(), Target::Mpi2Side);
    }
}
