//! Trace reconstruction and rendering: turn the runtime's event trace into
//! per-rank timelines, a communication matrix, and an ASCII Gantt chart.
//!
//! The paper's motivation is that directive-expressed communication becomes
//! *visible* to tools ("all source and destination information can be
//! incorporated into an analysis framework"). This module is that tool
//! support for the dynamic side: tests assert on structure ("one waitall,
//! three sends"), examples print timelines humans can read.

use std::collections::BTreeMap;

use netsim::{EventKind, Time, TraceEvent};

/// A per-rank summary of traced activity.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RankTimeline {
    /// (time, short label) in time order.
    pub events: Vec<(Time, String)>,
    /// Virtual time of the last event.
    pub end: Time,
    /// Total bytes this rank moved outward: two-sided sends and puts it
    /// initiated, plus bytes served from its memory to remote gets.
    pub bytes_out: usize,
    /// Number of consolidated syncs.
    pub waitalls: usize,
    /// Number of single-request waits.
    pub waits: usize,
    /// Virtual time spent in `Compute` events.
    pub compute: Time,
}

/// A reconstructed view over a whole trace.
#[derive(Clone, Debug, Default)]
pub struct TraceView {
    /// Per-rank timelines, keyed by rank.
    pub ranks: BTreeMap<usize, RankTimeline>,
    /// `matrix[(src, dst)] = bytes` flowing src → dst over every data-moving
    /// operation: two-sided sends, one-sided puts, *and* one-sided gets
    /// (attributed to the rank owning the data, not the caller).
    pub comm_matrix: BTreeMap<(usize, usize), usize>,
}

impl TraceView {
    /// Build from raw events.
    pub fn build(events: &[TraceEvent]) -> TraceView {
        let mut view = TraceView::default();
        for ev in events {
            // A get moves bytes from the data owner (`src`) to the calling
            // rank — the flow is charged after the caller's timeline borrow
            // ends, since it lands on a *different* rank's `bytes_out`.
            let mut get_flow: Option<(usize, usize)> = None;
            let rank = view.ranks.entry(ev.rank).or_default();
            rank.end = rank.end.max(ev.time);
            let label = match &ev.kind {
                EventKind::SendPost { dst, bytes, .. } => {
                    rank.bytes_out += bytes;
                    *view.comm_matrix.entry((ev.rank, *dst)).or_insert(0) += bytes;
                    format!("send->{dst} ({bytes}B)")
                }
                EventKind::Put { dst, bytes } => {
                    rank.bytes_out += bytes;
                    *view.comm_matrix.entry((ev.rank, *dst)).or_insert(0) += bytes;
                    format!("put->{dst} ({bytes}B)")
                }
                EventKind::RecvPost { src, .. } => match src {
                    Some(s) => format!("recv<-{s} posted"),
                    None => "recv<-any posted".to_string(),
                },
                EventKind::RecvDone {
                    src,
                    bytes,
                    unexpected,
                    ..
                } => format!(
                    "recv<-{src} done ({bytes}B{})",
                    if *unexpected { ", unexpected" } else { "" }
                ),
                EventKind::Wait { .. } => {
                    rank.waits += 1;
                    "wait".to_string()
                }
                EventKind::Waitall { n, .. } => {
                    rank.waitalls += 1;
                    format!("waitall({n})")
                }
                EventKind::Get { src, bytes } => {
                    get_flow = Some((*src, *bytes));
                    format!("get<-{src} ({bytes}B)")
                }
                EventKind::Quiet { outstanding, .. } => format!("quiet({outstanding})"),
                EventKind::Barrier { group_len } => format!("barrier({group_len})"),
                EventKind::Compute { ns } => {
                    rank.compute += Time::from_nanos(*ns);
                    format!("compute {}", Time::from_nanos(*ns))
                }
                EventKind::Pack { bytes } => format!("pack {bytes}B"),
                EventKind::DatatypeCommit => "dtype commit".to_string(),
                EventKind::Marker(m) => format!("# {m}"),
            };
            rank.events.push((ev.time, label));
            if let Some((src, bytes)) = get_flow {
                *view.comm_matrix.entry((src, ev.rank)).or_insert(0) += bytes;
                view.ranks.entry(src).or_default().bytes_out += bytes;
            }
        }
        for rank in view.ranks.values_mut() {
            rank.events.sort_by_key(|a| a.0);
        }
        debug_assert!(view.byte_invariant_holds());
        view
    }

    /// Byte-accounting invariant: every byte in the communication matrix is
    /// attributed to exactly one rank's `bytes_out` (sends and puts on the
    /// initiator, gets on the data owner), so the two totals must agree.
    pub fn byte_invariant_holds(&self) -> bool {
        let out: usize = self.ranks.values().map(|r| r.bytes_out).sum();
        let matrix: usize = self.comm_matrix.values().sum();
        out == matrix
    }

    /// Total traffic between a pair of ranks (either direction).
    pub fn traffic_between(&self, a: usize, b: usize) -> usize {
        self.comm_matrix.get(&(a, b)).copied().unwrap_or(0)
            + self.comm_matrix.get(&(b, a)).copied().unwrap_or(0)
    }

    /// Render an ASCII Gantt chart: one row per rank, `width` columns over
    /// the trace's makespan, `#` for compute, `*` for communication events.
    pub fn gantt(&self, width: usize) -> String {
        let makespan = self
            .ranks
            .values()
            .map(|r| r.end)
            .max()
            .unwrap_or(Time::ZERO);
        let mut out = String::new();
        out.push_str(&format!("virtual makespan: {makespan}\n"));
        if makespan == Time::ZERO {
            return out;
        }
        let col = |t: Time| -> usize {
            ((t.as_nanos() as u128 * (width as u128 - 1)) / makespan.as_nanos().max(1) as u128)
                as usize
        };
        for (rank, tl) in &self.ranks {
            let mut row = vec![b'.'; width];
            for (t, label) in &tl.events {
                let c = col(*t);
                row[c] = if label.starts_with("compute") {
                    b'#'
                } else if label.starts_with('#') {
                    b'|'
                } else {
                    b'*'
                };
            }
            out.push_str(&format!(
                "rank {rank:>3} |{}| out {:>8}B, {:>2} waitall, {:>2} wait\n",
                String::from_utf8_lossy(&row),
                tl.bytes_out,
                tl.waitalls,
                tl.waits,
            ));
        }
        out
    }

    /// Render the communication matrix (bytes), ranks in ascending order.
    pub fn matrix_table(&self) -> String {
        let mut ranks: Vec<usize> = self.ranks.keys().copied().collect();
        ranks.sort_unstable();
        let mut out = String::from("src\\dst");
        for d in &ranks {
            out.push_str(&format!("{d:>10}"));
        }
        out.push('\n');
        for &s in &ranks {
            out.push_str(&format!("{s:>7}"));
            for &d in &ranks {
                let v = self.comm_matrix.get(&(s, d)).copied().unwrap_or(0);
                out.push_str(&format!("{v:>10}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::Comm;
    use netsim::{run, SimConfig};

    fn traced_ring(n: usize) -> Vec<TraceEvent> {
        let res = run(SimConfig::new(n).with_trace(), move |ctx| {
            let comm = Comm::world(ctx);
            let mut s = crate::CommSession::new(ctx, comm);
            let me = s.rank() as i64;
            let send = [me; 4];
            let mut recv = [0i64; 4];
            crate::patterns::ring(&mut s, crate::Target::Mpi2Side, &send, &mut recv).unwrap();
            s.flush();
            ctx.compute(Time::from_micros(10));
        });
        res.trace.expect("trace enabled")
    }

    #[test]
    fn reconstructs_ring_structure() {
        let n = 4;
        let view = TraceView::build(&traced_ring(n));
        assert_eq!(view.ranks.len(), n);
        // Each rank sent exactly 32 bytes to its right neighbour.
        for r in 0..n {
            let tl = &view.ranks[&r];
            assert_eq!(tl.bytes_out, 32);
            assert_eq!(tl.waitalls, 1, "one consolidated sync");
            assert_eq!(tl.waits, 0, "never a per-request wait");
            assert_eq!(tl.compute, Time::from_micros(10));
            assert_eq!(view.comm_matrix[&(r, (r + 1) % n)], 32);
            assert_eq!(view.comm_matrix.get(&(r, (r + n - 1) % n)), None);
        }
        // Ring: only 0 -> 1 carries traffic between that pair.
        assert_eq!(view.traffic_between(0, 1), 32);
        assert_eq!(view.traffic_between(1, 0), 32);
    }

    #[test]
    fn gantt_renders_rows_and_marks() {
        let view = TraceView::build(&traced_ring(3));
        let chart = view.gantt(40);
        assert_eq!(chart.lines().count(), 4); // header + 3 ranks
        assert!(chart.contains("rank   0"));
        assert!(chart.contains('#'), "compute marks present");
        assert!(chart.contains('*'), "communication marks present");
    }

    #[test]
    fn matrix_table_shape() {
        let view = TraceView::build(&traced_ring(3));
        let table = view.matrix_table();
        assert_eq!(table.lines().count(), 4);
        assert!(table.starts_with("src\\dst"));
        assert!(table.contains("32"));
    }

    #[test]
    fn empty_trace_is_fine() {
        let view = TraceView::build(&[]);
        assert!(view.ranks.is_empty());
        assert!(view.gantt(20).contains("0ns"));
    }

    #[test]
    fn get_bytes_attributed_to_data_owner() {
        // A one-sided get on rank 1 pulling 64B from rank 0 must show up in
        // the matrix as a 0 -> 1 flow, with the bytes on rank 0's ledger —
        // previously gets were dropped from both, breaking the invariant.
        let ev = |rank, time, kind| TraceEvent {
            rank,
            time: Time(time),
            start: Time(time),
            site: None,
            kind,
        };
        let events = vec![
            ev(0, 100, EventKind::Put { dst: 1, bytes: 16 }),
            ev(1, 200, EventKind::Get { src: 0, bytes: 64 }),
        ];
        let view = TraceView::build(&events);
        assert_eq!(view.comm_matrix[&(0, 1)], 16 + 64);
        assert_eq!(view.ranks[&0].bytes_out, 16 + 64);
        assert_eq!(view.ranks[&1].bytes_out, 0);
        assert!(view.byte_invariant_holds());
    }

    #[test]
    fn ring_trace_byte_invariant() {
        assert!(TraceView::build(&traced_ring(4)).byte_invariant_holds());
    }
}
