//! Pragma-shaped macros: the closest Rust rendering of the paper's
//! directive syntax.
//!
//! ```
//! use commint::prelude::*;
//! use mpisim::Comm;
//! use netsim::{run, SimConfig};
//!
//! let res = run(SimConfig::new(4), |ctx| {
//!     let comm = Comm::world(ctx);
//!     let mut session = CommSession::new(ctx, comm);
//!     let me = session.rank() as i64;
//!     let buf1 = [me; 4];
//!     let mut buf2 = [0i64; 4];
//!     // #pragma comm_parameters sender(prev) receiver(next)
//!     // { #pragma comm_p2p sbuf(buf1) rbuf(buf2) }
//!     comm_parameters!(session, {
//!         sender((RankExpr::rank() - RankExpr::lit(1) + RankExpr::nranks()) % RankExpr::nranks())
//!         receiver((RankExpr::rank() + RankExpr::lit(1)) % RankExpr::nranks())
//!     }, |reg| {
//!         comm_p2p!(reg, {
//!             sbuf(Prim::new("buf1", &buf1))
//!             rbuf(PrimMut::new("buf2", &mut buf2))
//!         })
//!         .unwrap();
//!     })
//!     .unwrap();
//!     session.flush();
//!     buf2[0]
//! });
//! assert_eq!(res.per_rank, vec![3, 0, 1, 2]);
//! ```

/// Open a `comm_parameters` region on a session:
/// `comm_parameters!(session, { clause(args) ... }, |reg| { body })`.
///
/// Clauses: `sender`, `receiver`, `sendwhen`, `receivewhen`, `count`,
/// `target`, `place_sync`, `max_comm_iter` — exactly the paper's set
/// admissible on `comm_parameters`.
#[macro_export]
macro_rules! comm_parameters {
    ($session:expr, { $($clause:ident ( $($arg:tt)* ))* }, $body:expr) => {{
        #[allow(unused_mut)]
        let mut __params = $crate::scope::CommParams::new();
        $( __params = $crate::__params_clause!(__params, $clause, $($arg)*); )*
        $session.region(&__params, $body)
    }};
}

/// Issue a `comm_p2p` directive inside a region (or on a session for the
/// standalone form):
/// `comm_p2p!(reg, { clause(args) ... })` or
/// `comm_p2p!(reg, { ... }, |ctx| { overlapped computation })`.
///
/// `sbuf`/`rbuf` take comma-separated buffer wrappers, mirroring the
/// paper's buffer lists: `sbuf(Prim::new("vr", &vr), Prim::new("rhotot", &rhotot))`.
/// The lexical site id is derived from `line!()`, which is how distinct
/// directive instances inside loops keep distinct staging and tags.
#[macro_export]
macro_rules! comm_p2p {
    ($reg:expr, { $($clause:ident ( $($arg:tt)* ))* }) => {{
        let __call = $reg.p2p().site(line!());
        $( let __call = $crate::__p2p_clause!(__call, $clause, $($arg)*); )*
        __call.run()
    }};
    ($reg:expr, { $($clause:ident ( $($arg:tt)* ))* }, $body:expr) => {{
        let __call = $reg.p2p().site(line!());
        $( let __call = $crate::__p2p_clause!(__call, $clause, $($arg)*); )*
        __call.overlap($body)
    }};
}

/// Issue a collective directive on a session (the §V extension):
/// `comm_coll!(session, BCAST { root(0) count(8) } => bcast(&mut buf))`.
///
/// Kinds: `BCAST`, `GATHER`, `SCATTER`, `ALLTOALL`, `REDUCE(op)`. Clauses:
/// `root`, `groupwhen`, `count`, `target`, `site`. The `=> method(args)`
/// part selects the buffer signature matching the kind.
#[macro_export]
macro_rules! comm_coll {
    ($session:expr, REDUCE($op:expr) { $($clause:ident ( $($arg:tt)* ))* } => $method:ident ( $($bufs:tt)* )) => {{
        let __call = $session.coll($crate::coll::CollKind::Reduce($op));
        $( let __call = $crate::__coll_clause!(__call, $clause, $($arg)*); )*
        __call.$method($($bufs)*)
    }};
    ($session:expr, $kind:ident { $($clause:ident ( $($arg:tt)* ))* } => $method:ident ( $($bufs:tt)* )) => {{
        let __call = $session.coll($crate::__coll_kind!($kind));
        $( let __call = $crate::__coll_clause!(__call, $clause, $($arg)*); )*
        __call.$method($($bufs)*)
    }};
}

#[doc(hidden)]
#[macro_export]
macro_rules! __coll_kind {
    (BCAST) => {
        $crate::coll::CollKind::Bcast
    };
    (GATHER) => {
        $crate::coll::CollKind::Gather
    };
    (SCATTER) => {
        $crate::coll::CollKind::Scatter
    };
    (ALLTOALL) => {
        $crate::coll::CollKind::AllToAll
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __coll_clause {
    ($c:expr, root, $($e:tt)*) => { $c.root($($e)*) };
    ($c:expr, groupwhen, $($e:tt)*) => { $c.groupwhen($($e)*) };
    ($c:expr, count, $($e:tt)*) => { $c.count($($e)*) };
    ($c:expr, target, $($e:tt)*) => { $c.target($($e)*) };
    ($c:expr, site, $($e:tt)*) => { $c.site($($e)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __params_clause {
    ($p:expr, sender, $($e:tt)*) => { $p.sender($($e)*) };
    ($p:expr, receiver, $($e:tt)*) => { $p.receiver($($e)*) };
    ($p:expr, sendwhen, $($e:tt)*) => { $p.sendwhen($($e)*) };
    ($p:expr, receivewhen, $($e:tt)*) => { $p.receivewhen($($e)*) };
    ($p:expr, count, $($e:tt)*) => { $p.count($($e)*) };
    ($p:expr, target, $($e:tt)*) => { $p.target($($e)*) };
    ($p:expr, place_sync, $($e:tt)*) => { $p.place_sync($($e)*) };
    ($p:expr, max_comm_iter, $($e:tt)*) => { $p.max_comm_iter($($e)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __p2p_clause {
    ($c:expr, sbuf, $($b:expr),+ $(,)?) => {{ let mut __c = $c; $( __c = __c.sbuf($b); )+ __c }};
    ($c:expr, rbuf, $($b:expr),+ $(,)?) => {{ let mut __c = $c; $( __c = __c.rbuf($b); )+ __c }};
    ($c:expr, sender, $($e:tt)*) => { $c.sender($($e)*) };
    ($c:expr, receiver, $($e:tt)*) => { $c.receiver($($e)*) };
    ($c:expr, sendwhen, $($e:tt)*) => { $c.sendwhen($($e)*) };
    ($c:expr, receivewhen, $($e:tt)*) => { $c.receivewhen($($e)*) };
    ($c:expr, count, $($e:tt)*) => { $c.count($($e)*) };
    ($c:expr, target, $($e:tt)*) => { $c.target($($e)*) };
    ($c:expr, site, $($e:tt)*) => { $c.site($($e)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use mpisim::Comm;
    use netsim::{run, SimConfig};

    #[test]
    fn listing3_loop_with_optional_clauses() {
        // Listing 3: comm_parameters with sendwhen/receivewhen, count,
        // max_comm_iter, place_sync wrapping a loop of comm_p2p on &buf[p].
        let n = 6usize;
        let iters = 3usize;
        let res = run(SimConfig::new(n), move |ctx| {
            let comm = Comm::world(ctx);
            let mut session = CommSession::new(ctx, comm);
            let me = session.rank() as i64;
            let buf1: Vec<i64> = (0..iters as i64).map(|p| me * 100 + p).collect();
            let mut buf2 = vec![-1i64; iters];
            comm_parameters!(session, {
                sender(RankExpr::rank() - RankExpr::lit(1))
                receiver(RankExpr::rank() + RankExpr::lit(1))
                sendwhen((RankExpr::rank() % RankExpr::lit(2)).eq(RankExpr::lit(0)))
                receivewhen((RankExpr::rank() % RankExpr::lit(2)).eq(RankExpr::lit(1)))
                count(1)
                max_comm_iter(iters as i64)
                place_sync(PlaceSync::EndParamRegion)
            }, |reg| {
                for p in 0..iters {
                    comm_p2p!(reg, {
                        sbuf(Prim::new("buf1[p]", &buf1[p..p + 1]))
                        rbuf(PrimMut::new("buf2[p]", &mut buf2[p..p + 1]))
                    })
                    .unwrap();
                }
            })
            .unwrap();
            session.flush();
            (buf2, ctx.stats.waitalls)
        });
        for (r, (buf2, waitalls)) in res.per_rank.iter().enumerate() {
            if r % 2 == 1 {
                let prev = (r as i64 - 1) * 100;
                assert_eq!(*buf2, vec![prev, prev + 1, prev + 2]);
                assert_eq!(*waitalls, 1, "one consolidated sync for the loop");
            } else {
                assert!(buf2.iter().all(|&v| v == -1));
            }
        }
    }

    #[test]
    fn buffer_lists_expand() {
        // Listing 5 shape: sbuf(vr, rhotot) rbuf(vr, rhotot) count(size1).
        let res = run(SimConfig::new(2), |ctx| {
            let comm = Comm::world(ctx);
            let mut session = CommSession::new(ctx, comm);
            let vr = [1.0f64; 4];
            let rhotot = [2.0f64; 4];
            let mut vr_r = [0.0f64; 4];
            let mut rhotot_r = [0.0f64; 4];
            comm_parameters!(session, {
                sender(RankExpr::lit(0))
                receiver(RankExpr::lit(1))
                sendwhen(RankExpr::rank().eq(RankExpr::lit(0)))
                receivewhen(RankExpr::rank().eq(RankExpr::lit(1)))
            }, |reg| {
                comm_p2p!(reg, {
                    sbuf(Prim::new("vr", &vr), Prim::new("rhotot", &rhotot))
                    rbuf(PrimMut::new("vr", &mut vr_r), PrimMut::new("rhotot", &mut rhotot_r))
                    count(4)
                })
                .unwrap();
            })
            .unwrap();
            session.flush();
            (vr_r, rhotot_r)
        });
        assert_eq!(res.per_rank[1].0, [1.0; 4]);
        assert_eq!(res.per_rank[1].1, [2.0; 4]);
    }

    #[test]
    fn comm_coll_macro_forms() {
        let res = run(SimConfig::new(4), |ctx| {
            let comm = Comm::world(ctx);
            let mut session = CommSession::new(ctx, comm);
            // Broadcast via the macro.
            let mut params = if session.rank() == 0 {
                [3.5f64; 4]
            } else {
                [0.0; 4]
            };
            comm_coll!(session, BCAST { root(0) count(4) } => bcast(&mut params)).unwrap();
            // Reduce via the macro.
            let mut v = [session.rank() as f64];
            comm_coll!(
                session,
                REDUCE(crate::coll::ReduceOp::Sum) { root(0) site(9500) } => reduce(&mut v)
            )
            .unwrap();
            session.flush();
            (params, v[0])
        });
        for (params, _) in &res.per_rank {
            assert_eq!(*params, [3.5; 4]);
        }
        assert_eq!(res.per_rank[0].1, 6.0);
    }

    #[test]
    fn overlap_body_form() {
        let res = run(SimConfig::new(2), |ctx| {
            let comm = Comm::world(ctx);
            let mut session = CommSession::new(ctx, comm);
            let src = [9i32; 2];
            let mut dst = [0i32; 2];
            comm_parameters!(session, {
                sender(RankExpr::lit(0))
                receiver(RankExpr::lit(1))
                sendwhen(RankExpr::rank().eq(RankExpr::lit(0)))
                receivewhen(RankExpr::rank().eq(RankExpr::lit(1)))
            }, |reg| {
                comm_p2p!(reg, {
                    sbuf(Prim::new("src", &src))
                    rbuf(PrimMut::new("dst", &mut dst))
                }, |ctx| {
                    ctx.compute(netsim::Time::from_micros(50));
                })
                .unwrap();
            })
            .unwrap();
            session.flush();
            (dst, ctx.now())
        });
        assert_eq!(res.per_rank[1].0, [9; 2]);
        assert!(res.per_rank[0].1 >= netsim::Time::from_micros(50));
    }
}
