//! Event tracing: an optional, low-overhead record of every communication
//! operation with its virtual timestamp. Used by tests to assert on the
//! *structure* of generated communication (e.g. "the directive version
//! issues exactly one waitall"), by examples to print timelines, and by
//! `commscope` for wait-state analysis and Chrome-trace export.
//!
//! Every event carries a *span* (`start..time` in virtual ns) and, when the
//! operation was issued from inside a directive, the [`SiteId`] of the
//! `comm_p2p` instance that caused it — the link between fabric-level
//! events and the source-level communication intent.

use parking_lot::Mutex;

use crate::time::Time;

/// Stable identity of a directive call site (the `site(u32)` passed to the
/// directive builder / recorded in `P2pSpec::site`). The same numbering is
/// used by `commlint`'s report JSON, so static findings and dynamic
/// profiles join on it.
pub type SiteId = u32;

/// What happened.
#[derive(Clone, Debug, PartialEq)]
pub enum EventKind {
    /// Non-blocking send initiated.
    SendPost { dst: usize, tag: i32, bytes: usize },
    /// Non-blocking receive posted.
    RecvPost {
        src: Option<usize>,
        tag: Option<i32>,
    },
    /// A receive completed. `completion` is the virtual time the data was
    /// available (independent of when the waiting clock charge lands).
    RecvDone {
        src: usize,
        tag: i32,
        bytes: usize,
        unexpected: bool,
        completion: Time,
    },
    /// A single-request wait call (clock charged `o_wait`). `horizon` is
    /// the raw completion the wait resolved to (send departure or receive
    /// completion) — `horizon > start` means the rank was blocked.
    Wait { horizon: Time },
    /// A consolidated completion over `n` requests; `horizon` is the
    /// maximum completion folded into the clock.
    Waitall { n: usize, horizon: Time },
    /// One-sided put initiated.
    Put { dst: usize, bytes: usize },
    /// One-sided get performed.
    Get { src: usize, bytes: usize },
    /// Quiet/flush of outstanding puts; `horizon` is the latest arrival.
    Quiet { outstanding: usize, horizon: Time },
    /// Barrier crossed (clock reconciled). The span `start..time` is this
    /// rank's entry..exit; the last-entering rank had the shortest span.
    Barrier { group_len: usize },
    /// Local computation block.
    Compute { ns: u64 },
    /// Explicit pack/unpack copy of `bytes`.
    Pack { bytes: usize },
    /// Derived datatype committed.
    DatatypeCommit,
    /// Free-form marker emitted by upper layers.
    Marker(String),
}

/// One trace record.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Emitting rank.
    pub rank: usize,
    /// The rank's virtual clock *after* the operation.
    pub time: Time,
    /// The rank's virtual clock when the operation began (`start == time`
    /// for instantaneous records).
    pub start: Time,
    /// Directive call site that issued this operation, when known.
    pub site: Option<SiteId>,
    /// The operation.
    pub kind: EventKind,
}

/// A shared sink collecting events from all ranks.
#[derive(Default)]
pub struct TraceSink {
    events: Mutex<Vec<TraceEvent>>,
}

impl TraceSink {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one event.
    pub fn record(&self, ev: TraceEvent) {
        self.events.lock().push(ev);
    }

    /// Drain all events, sorted by (time, rank) for stable inspection.
    pub fn take(&self) -> Vec<TraceEvent> {
        let mut evs = std::mem::take(&mut *self.events.lock());
        evs.sort_by_key(|e| (e.time, e.rank));
        evs
    }

    /// Count events on `rank` matching a predicate, without draining.
    pub fn count_where(&self, mut pred: impl FnMut(&TraceEvent) -> bool) -> usize {
        self.events.lock().iter().filter(|e| pred(e)).count()
    }
}

/// Hot-path counters maintained inside one rank's mailbox, under the same
/// lock the matching engine already holds (increments are free of extra
/// synchronization). Folded into that rank's [`RankStats`] after the run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MailboxHotStats {
    /// High-water mark of the unexpected (parked) message queue.
    pub uq_high_water: usize,
    /// Envelopes/posted-receives examined by the matching engine.
    pub match_scan_steps: usize,
    /// Times the mailbox lock was taken (deliveries + posts).
    pub lock_acquisitions: usize,
}

/// Per-rank running statistics, kept unconditionally (cheap counters).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RankStats {
    /// Two-sided messages initiated.
    pub sends: usize,
    /// Receives posted.
    pub recvs: usize,
    /// Bytes moved by two-sided sends.
    pub bytes_sent: usize,
    /// Single-request wait calls.
    pub waits: usize,
    /// Consolidated waitall calls.
    pub waitalls: usize,
    /// One-sided puts initiated.
    pub puts: usize,
    /// Bytes moved by puts.
    pub bytes_put: usize,
    /// One-sided gets.
    pub gets: usize,
    /// Barriers crossed.
    pub barriers: usize,
    /// Quiet/flush calls.
    pub quiets: usize,
    /// Explicit pack/unpack bytes copied.
    pub packed_bytes: usize,
    /// Derived datatypes committed.
    pub datatype_commits: usize,
    /// Datatype-cache lookups that found an already-committed layout (the
    /// commit cost was elided on these region executions).
    pub dtype_cache_hits: usize,
    /// High-water mark of this rank's unexpected-message queue.
    pub uq_high_water: usize,
    /// Matching-engine scan steps in this rank's mailbox.
    pub match_scan_steps: usize,
    /// Mailbox lock acquisitions (deliveries into + posts on this rank).
    pub mailbox_locks: usize,
    /// Accesses checked by the race sanitizer on this rank (0 when off).
    pub race_checks: usize,
    /// Conflicting unordered access pairs the sanitizer attributed to this
    /// rank (the second access of each pair). Zero on a clean run.
    pub conflicts_found: usize,
}

impl RankStats {
    /// Merge another rank's counters into this one (for whole-job totals).
    pub fn merge(&mut self, other: &RankStats) {
        self.sends += other.sends;
        self.recvs += other.recvs;
        self.bytes_sent += other.bytes_sent;
        self.waits += other.waits;
        self.waitalls += other.waitalls;
        self.puts += other.puts;
        self.bytes_put += other.bytes_put;
        self.gets += other.gets;
        self.barriers += other.barriers;
        self.quiets += other.quiets;
        self.packed_bytes += other.packed_bytes;
        self.datatype_commits += other.datatype_commits;
        self.dtype_cache_hits += other.dtype_cache_hits;
        // A job-wide high-water mark is the worst single mailbox, not a sum.
        self.uq_high_water = self.uq_high_water.max(other.uq_high_water);
        self.match_scan_steps += other.match_scan_steps;
        self.mailbox_locks += other.mailbox_locks;
        self.race_checks += other.race_checks;
        self.conflicts_found += other.conflicts_found;
    }

    /// Fold one mailbox's hot-path counters into this rank's stats.
    pub fn absorb_mailbox(&mut self, hot: &MailboxHotStats) {
        self.uq_high_water = self.uq_high_water.max(hot.uq_high_water);
        self.match_scan_steps += hot.match_scan_steps;
        self.mailbox_locks += hot.lock_acquisitions;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_records_and_sorts() {
        let sink = TraceSink::new();
        sink.record(TraceEvent {
            rank: 1,
            time: Time(20),
            start: Time(5),
            site: None,
            kind: EventKind::Wait { horizon: Time(18) },
        });
        sink.record(TraceEvent {
            rank: 0,
            time: Time(10),
            start: Time(10),
            site: Some(3),
            kind: EventKind::Waitall {
                n: 4,
                horizon: Time(9),
            },
        });
        assert_eq!(
            sink.count_where(|e| matches!(e.kind, EventKind::Wait { .. })),
            1
        );
        let evs = sink.take();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].time, Time(10));
        assert_eq!(evs[1].rank, 1);
        assert!(sink.take().is_empty());
    }

    #[test]
    fn stats_merge() {
        let mut a = RankStats {
            sends: 1,
            bytes_sent: 100,
            waits: 2,
            ..RankStats::default()
        };
        let b = RankStats {
            sends: 3,
            bytes_sent: 50,
            waitalls: 1,
            barriers: 2,
            ..RankStats::default()
        };
        a.merge(&b);
        assert_eq!(a.sends, 4);
        assert_eq!(a.bytes_sent, 150);
        assert_eq!(a.waits, 2);
        assert_eq!(a.waitalls, 1);
        assert_eq!(a.barriers, 2);
    }
}
