//! The SPMD rank runtime: spawns one OS thread per simulated rank, each
//! owning a virtual clock and a handle to the shared [`Fabric`].
//!
//! Clock-charging policy lives here. Crucially, the *physical* completion of
//! an operation (data delivered) is decoupled from the *virtual* cost of
//! waiting for it: `wait_raw` on a request blocks the thread but does not
//! touch the clock, and the `charge_*` family implements the different
//! synchronization-cost policies (`MPI_Wait` loop vs. `MPI_Waitall` vs. the
//! directive layer's consolidated region sync) whose comparison is the
//! subject of the paper's Figure 4.

use std::sync::Arc;

use bytes::Bytes;

use crate::fabric::{Fabric, SegId};
use crate::metrics::{RankMetrics, SchedStats};
use crate::model::{CostModel, MachineModel};
use crate::msg::{RecvDone, RecvRequest, SendRequest, SrcSel, TagSel, WireCosts};
use crate::progress::{ProgressBoard, Snapshot, WatchCfg};
use crate::sanitize::{SanitizeReport, Sanitizer};
use crate::sched::Scheduler;
use crate::time::Time;
use crate::trace::{EventKind, RankStats, SiteId, TraceEvent, TraceSink};

/// Simulation configuration.
#[derive(Clone)]
pub struct SimConfig {
    /// Number of SPMD ranks.
    pub nranks: usize,
    /// The machine's per-library cost models.
    pub machine: MachineModel,
    /// Record a full event trace (tests/examples; off for benches).
    pub trace: bool,
    /// Collect per-rank/per-site metrics (deterministic, virtual-time
    /// based; see [`crate::metrics`]). Off by default: every hook is a
    /// single branch when disabled.
    pub metrics: bool,
    /// Stack size per rank thread in bytes.
    pub stack_size: usize,
    /// Execution engine: `None` runs thread-per-rank (every rank OS-runnable
    /// at once); `Some(n)` runs the bounded cooperative scheduler with `n`
    /// worker slots (`0` = auto: `min(nranks, available_parallelism)`).
    /// Results are bit-identical either way — virtual time, not execution
    /// order, defines the output (see [`crate::sched`]).
    pub workers: Option<usize>,
    /// Eager-vs-rendezvous protocol threshold override in bytes for the
    /// MPI cost model (`None` keeps the machine model's constant). A
    /// first-class tuning knob: messages at or below the threshold ship
    /// eagerly; larger ones pay the rendezvous handshake. SHMEM puts never
    /// rendezvous, so the SHMEM model is left untouched.
    pub eager_threshold: Option<usize>,
    /// Run the one-sided race sanitizer ([`crate::sanitize`]): shadow-tag
    /// every symmetric-segment access and report conflicting unordered
    /// pairs. Off by default: every hook is a single branch when disabled.
    pub sanitize: bool,
    /// Collect live progress telemetry ([`crate::progress`]) and attach the
    /// deterministic post-run snapshot to [`SimResult::progress`]. Off by
    /// default: every hook is a single branch when disabled.
    pub progress: bool,
    /// Run the `--watch` stall watchdog: a reader thread that periodically
    /// snapshots the progress board and prints progress / stall lines to
    /// stderr. Implies `progress`. Snapshots only read state, so all
    /// deterministic outputs are bit-identical with the watchdog on.
    pub watch: Option<WatchCfg>,
}

impl SimConfig {
    /// A Gemini-like machine with `nranks` ranks and tracing off.
    pub fn new(nranks: usize) -> Self {
        SimConfig {
            nranks,
            machine: MachineModel::default(),
            trace: false,
            metrics: false,
            stack_size: 1 << 20,
            workers: None,
            eager_threshold: None,
            sanitize: false,
            progress: false,
            watch: None,
        }
    }

    /// Enable event tracing.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Enable the per-rank/per-site metrics registry.
    pub fn with_metrics(mut self) -> Self {
        self.metrics = true;
        self
    }

    /// Use a specific machine model.
    pub fn with_machine(mut self, machine: MachineModel) -> Self {
        self.machine = machine;
        self
    }

    /// Use the bounded cooperative scheduler with `n` worker slots
    /// (`0` = auto: `min(nranks, available_parallelism)`).
    pub fn with_workers(mut self, n: usize) -> Self {
        self.workers = Some(n);
        self
    }

    /// Use a specific per-rank stack size in bytes.
    pub fn with_stack_size(mut self, bytes: usize) -> Self {
        self.stack_size = bytes;
        self
    }

    /// Override the MPI eager-vs-rendezvous threshold in bytes.
    pub fn with_eager_threshold(mut self, bytes: usize) -> Self {
        self.eager_threshold = Some(bytes);
        self
    }

    /// Enable the one-sided race sanitizer.
    pub fn with_sanitize(mut self) -> Self {
        self.sanitize = true;
        self
    }

    /// Collect progress telemetry (deterministic post-run snapshot, no
    /// watchdog thread).
    pub fn with_progress(mut self) -> Self {
        self.progress = true;
        self
    }

    /// Run the `--watch` stall watchdog (implies progress collection).
    pub fn with_watch(mut self, cfg: WatchCfg) -> Self {
        self.watch = Some(cfg);
        self
    }

    /// Apply an [`ExecPolicy`] (engine + stack size + protocol knobs) to
    /// this configuration.
    pub fn with_exec(mut self, exec: ExecPolicy) -> Self {
        self.workers = exec.workers;
        if let Some(bytes) = exec.stack_size {
            self.stack_size = bytes;
        }
        if exec.eager_threshold.is_some() {
            self.eager_threshold = exec.eager_threshold;
        }
        if exec.sanitize {
            self.sanitize = true;
        }
        if exec.watch.is_some() {
            self.watch = exec.watch;
        }
        self
    }
}

/// Engine selection a caller can thread through higher layers (experiment
/// drivers, bench binaries) without rebuilding a [`SimConfig`] by hand.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecPolicy {
    /// See [`SimConfig::workers`].
    pub workers: Option<usize>,
    /// Per-rank stack size override in bytes.
    pub stack_size: Option<usize>,
    /// See [`SimConfig::eager_threshold`].
    pub eager_threshold: Option<usize>,
    /// See [`SimConfig::sanitize`].
    pub sanitize: bool,
    /// See [`SimConfig::watch`].
    pub watch: Option<WatchCfg>,
}

impl ExecPolicy {
    /// The thread-per-rank engine (the default).
    pub fn threads() -> Self {
        ExecPolicy::default()
    }

    /// The bounded cooperative scheduler with `n` worker slots (`0` = auto).
    pub fn bounded(workers: usize) -> Self {
        ExecPolicy {
            workers: Some(workers),
            ..ExecPolicy::default()
        }
    }

    /// Override the per-rank stack size in bytes.
    pub fn with_stack_size(mut self, bytes: usize) -> Self {
        self.stack_size = Some(bytes);
        self
    }

    /// Override the MPI eager-vs-rendezvous threshold in bytes.
    pub fn with_eager_threshold(mut self, bytes: usize) -> Self {
        self.eager_threshold = Some(bytes);
        self
    }

    /// Enable the one-sided race sanitizer.
    pub fn with_sanitize(mut self) -> Self {
        self.sanitize = true;
        self
    }

    /// Run the `--watch` stall watchdog alongside the simulation.
    pub fn with_watch(mut self, cfg: WatchCfg) -> Self {
        self.watch = Some(cfg);
        self
    }
}

/// Result of a simulation: per-rank return values, final virtual clocks,
/// per-rank statistics, and (optionally) the event trace.
#[derive(Debug)]
pub struct SimResult<T> {
    /// Value returned by each rank's closure, indexed by rank.
    pub per_rank: Vec<T>,
    /// Final virtual clock of each rank.
    pub final_times: Vec<Time>,
    /// Per-rank operation counters.
    pub stats: Vec<RankStats>,
    /// Per-rank deterministic metrics, if enabled.
    pub metrics: Option<Vec<RankMetrics>>,
    /// Bounded-scheduler slot-occupancy counters (physical,
    /// interleaving-dependent); present only when the bounded engine ran.
    pub sched: Option<SchedStats>,
    /// The event trace, if enabled.
    pub trace: Option<Vec<TraceEvent>>,
    /// The race sanitizer's report, if enabled.
    pub sanitize: Option<SanitizeReport>,
    /// The deterministic post-run progress snapshot, if progress telemetry
    /// (or `--watch`) was enabled. `ranks` is engine-invariant; `sched` is
    /// physical.
    pub progress: Option<Snapshot>,
}

impl<T> SimResult<T> {
    /// The job's makespan: the maximum final clock over all ranks.
    pub fn makespan(&self) -> Time {
        self.final_times.iter().copied().max().unwrap_or(Time::ZERO)
    }

    /// Whole-job operation totals.
    pub fn total_stats(&self) -> RankStats {
        let mut total = RankStats::default();
        for s in &self.stats {
            total.merge(s);
        }
        total
    }
}

/// Run an SPMD program: `body` is executed once per rank, in parallel.
///
/// Panics in any rank are propagated (with the rank id) after all other
/// ranks have been joined or also panicked.
pub fn run<T, F>(cfg: SimConfig, body: F) -> SimResult<T>
where
    T: Send,
    F: Fn(&mut RankCtx) -> T + Sync,
{
    assert!(cfg.nranks > 0, "need at least one rank");
    let mut cfg = cfg;
    if let Some(bytes) = cfg.eager_threshold {
        cfg.machine.mpi.eager_threshold = bytes;
    }
    let cfg = cfg;
    let fabric = Fabric::new(cfg.nranks);
    let sink = if cfg.trace {
        Some(Arc::new(TraceSink::new()))
    } else {
        None
    };
    let sanitizer = cfg.sanitize.then(|| Arc::new(Sanitizer::new(cfg.nranks)));
    let sched = cfg.workers.map(|w| {
        let auto = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        let w = if w == 0 { auto } else { w };
        Scheduler::new(cfg.nranks, w.min(cfg.nranks))
    });
    let board =
        (cfg.progress || cfg.watch.is_some()).then(|| Arc::new(ProgressBoard::new(cfg.nranks)));
    let watch_stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let watcher = cfg.watch.map(|wcfg| {
        crate::progress::spawn_watcher(
            Arc::clone(board.as_ref().expect("watch implies board")),
            sched.clone(),
            wcfg,
            Arc::clone(&watch_stop),
        )
    });
    let body = &body;

    type RankOut<T> = (T, Time, RankStats, Option<Box<RankMetrics>>);
    let mut outputs: Vec<Option<RankOut<T>>> = (0..cfg.nranks).map(|_| None).collect();

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(cfg.nranks);
        for rank in 0..cfg.nranks {
            let fabric = Arc::clone(&fabric);
            let sink = sink.clone();
            let sched = sched.clone();
            let machine = cfg.machine;
            let nranks = cfg.nranks;
            let metrics_on = cfg.metrics;
            let san = sanitizer.clone();
            let board = board.clone();
            let builder = std::thread::Builder::new()
                .name(format!("rank-{rank}"))
                .stack_size(cfg.stack_size);
            let handle = builder
                .spawn_scoped(scope, move || {
                    // Under the bounded engine, acquire an execution slot
                    // before running the body and release it on drop (even
                    // on unwind, so a panicking rank can't strand the pool).
                    let _slot = sched.map(|s| crate::sched::RankSlot::enter(s, rank));
                    let mut ctx = RankCtx {
                        rank,
                        nranks,
                        clock: Time::ZERO,
                        fabric,
                        machine,
                        outstanding_puts: Vec::new(),
                        stats: RankStats::default(),
                        sink,
                        cur_site: None,
                        metrics: metrics_on.then(Box::default),
                        san,
                        progress: board,
                    };
                    let out = body(&mut ctx);
                    if let Some(p) = &ctx.progress {
                        p.on_finish(rank, ctx.clock.as_nanos());
                    }
                    (out, ctx.clock, ctx.stats, ctx.metrics)
                })
                .expect("failed to spawn rank thread");
            handles.push(handle);
        }
        for (rank, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                Ok(triple) => outputs[rank] = Some(triple),
                Err(e) => {
                    let msg = e
                        .downcast_ref::<String>()
                        .map(String::as_str)
                        .or_else(|| e.downcast_ref::<&str>().copied())
                        .unwrap_or("<non-string panic>");
                    panic!("rank {rank} panicked: {msg}");
                }
            }
        }
    });

    let mut per_rank = Vec::with_capacity(cfg.nranks);
    let mut final_times = Vec::with_capacity(cfg.nranks);
    let mut stats = Vec::with_capacity(cfg.nranks);
    let mut metrics = cfg.metrics.then(|| Vec::with_capacity(cfg.nranks));
    for (rank, slot) in outputs.into_iter().enumerate() {
        let (out, t, mut s, m) = slot.expect("every rank produced output");
        // The matching engine's hot-path counters live in the rank's
        // mailbox; fold them in now that all threads are quiescent.
        s.absorb_mailbox(&fabric.mailbox(rank).hot_stats());
        if let Some(san) = &sanitizer {
            let (checks, conflicts) = san.rank_counters(rank);
            s.race_checks = checks as usize;
            s.conflicts_found = conflicts as usize;
        }
        per_rank.push(out);
        final_times.push(t);
        stats.push(s);
        if let Some(v) = &mut metrics {
            v.push(*m.expect("metrics enabled on every rank"));
        }
    }
    // All ranks have quiesced: stop the watchdog, then take the final
    // (deterministic) snapshot.
    watch_stop.store(true, std::sync::atomic::Ordering::Relaxed);
    if let Some(h) = watcher {
        let _ = h.join();
    }
    let sched_stats = sched.map(|s| s.stats());
    let progress = board.map(|b| b.snapshot(sched_stats));

    SimResult {
        per_rank,
        final_times,
        stats,
        metrics,
        sched: sched_stats,
        trace: sink.map(|s| s.take()),
        sanitize: sanitizer.map(|s| {
            Arc::into_inner(s)
                .expect("all rank threads joined")
                .into_report()
        }),
        progress,
    }
}

/// Deterministic per-message jitter source (splitmix64 over the message
/// identity) — reproducible non-uniform latencies.
fn deterministic_jitter(a: u64, b: u64, c: u64, d: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(b.rotate_left(17))
        .wrapping_add(c.rotate_left(33))
        .wrapping_add(d.rotate_left(49));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Per-rank execution context: identity, virtual clock, fabric access, and
/// clock-charging policy helpers.
pub struct RankCtx {
    rank: usize,
    nranks: usize,
    clock: Time,
    fabric: Arc<Fabric>,
    machine: MachineModel,
    outstanding_puts: Vec<Time>,
    /// Operation counters for this rank.
    pub stats: RankStats,
    sink: Option<Arc<TraceSink>>,
    cur_site: Option<SiteId>,
    metrics: Option<Box<RankMetrics>>,
    san: Option<Arc<Sanitizer>>,
    progress: Option<Arc<ProgressBoard>>,
}

impl RankCtx {
    /// This rank's global id.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total ranks in the job.
    #[inline]
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// The machine's library cost models.
    #[inline]
    pub fn machine(&self) -> &MachineModel {
        &self.machine
    }

    /// Current virtual clock.
    #[inline]
    pub fn now(&self) -> Time {
        self.clock
    }

    /// The shared fabric (escape hatch for substrate layers).
    pub fn fabric(&self) -> &Arc<Fabric> {
        &self.fabric
    }

    /// Report the current clock to the bounded scheduler (slot-queue
    /// priority hint) ahead of an operation that may physically park.
    #[inline]
    fn note_block(&self) {
        crate::sched::note_clock(self.clock);
        if let Some(p) = &self.progress {
            p.on_block(
                self.rank,
                self.clock.as_nanos(),
                self.outstanding_puts.len(),
            );
        }
    }

    fn trace(&self, start: Time, kind: EventKind) {
        if let Some(sink) = &self.sink {
            sink.record(TraceEvent {
                rank: self.rank,
                time: self.clock,
                start,
                site: self.cur_site,
                kind,
            });
        }
    }

    /// Emit a free-form trace marker at the current clock.
    pub fn marker(&self, label: impl Into<String>) {
        self.trace(self.clock, EventKind::Marker(label.into()));
    }

    // -- observability --------------------------------------------------------

    /// Attribute subsequent operations to the directive call site `site`
    /// (or clear the attribution with `None`). Returns the previous value
    /// so nested scopes can restore it.
    #[inline]
    pub fn set_site(&mut self, site: Option<SiteId>) -> Option<SiteId> {
        std::mem::replace(&mut self.cur_site, site)
    }

    /// The current site attribution, if any.
    #[inline]
    pub fn current_site(&self) -> Option<SiteId> {
        self.cur_site
    }

    /// Record a trace event on behalf of a higher layer spanning
    /// `start..end` in virtual time, without touching the clock. Substrate
    /// engines that implement their own charging policies use this to keep
    /// the trace complete (e.g. the directive layer's region sync).
    pub fn emit_event(&self, start: Time, end: Time, kind: EventKind) {
        if let Some(sink) = &self.sink {
            sink.record(TraceEvent {
                rank: self.rank,
                time: end,
                start,
                site: self.cur_site,
                kind,
            });
        }
    }

    /// Record a synchronization span `start..end` in the metrics registry
    /// on behalf of a higher layer (no clock change).
    #[inline]
    pub fn note_sync_span(&mut self, start: Time, end: Time) {
        if let Some(m) = &mut self.metrics {
            m.on_sync(start, end);
        }
    }

    /// Record a consolidated completion of width `n` in the metrics
    /// registry on behalf of a higher layer.
    #[inline]
    pub fn note_waitall_width(&mut self, n: usize) {
        if let Some(m) = &mut self.metrics {
            m.on_waitall(n);
        }
    }

    /// Record the completion of a receive whose physical wait was performed
    /// by a higher layer (the directive engine completes receives eagerly
    /// and defers the clock charge): emits the `RecvDone` trace event and
    /// feeds the metrics registry. No clock change.
    pub fn note_recv_completion(&mut self, req: &RecvRequest, done: &RecvDone) {
        self.trace(
            self.clock,
            EventKind::RecvDone {
                src: done.src,
                tag: done.tag,
                bytes: done.payload.len(),
                unexpected: done.unexpected,
                completion: done.completion,
            },
        );
        if let Some(m) = &mut self.metrics {
            m.on_recv_complete(
                done.payload.len(),
                req.posted,
                done.completion,
                self.cur_site,
            );
        }
    }

    // -- computation --------------------------------------------------------

    /// Model a block of local computation costing `t` of virtual time.
    pub fn compute(&mut self, t: Time) {
        let t0 = self.clock;
        self.clock += t;
        self.trace(t0, EventKind::Compute { ns: t.as_nanos() });
        if let Some(p) = &self.progress {
            p.on_advance(self.rank, self.clock.as_nanos());
        }
    }

    /// Charge an arbitrary local overhead without a trace event.
    pub fn charge(&mut self, t: Time) {
        self.clock += t;
    }

    /// Force the clock forward to at least `t` (used by substrate layers for
    /// custom reconciliation). Never moves the clock backwards.
    pub fn advance_to(&mut self, t: Time) {
        self.clock = self.clock.max(t);
    }

    // -- two-sided ----------------------------------------------------------

    /// Initiate a non-blocking send of `payload` to `dst` under `model`.
    /// Charges `o_send` and departs at the resulting clock.
    pub fn isend(
        &mut self,
        dst: usize,
        tag: i32,
        payload: &[u8],
        model: &CostModel,
    ) -> SendRequest {
        self.isend_bytes(dst, tag, Bytes::copy_from_slice(payload), model)
    }

    /// Like [`RankCtx::isend`] but takes ownership of the payload without a
    /// copy.
    pub fn isend_bytes(
        &mut self,
        dst: usize,
        tag: i32,
        payload: Bytes,
        model: &CostModel,
    ) -> SendRequest {
        let t0 = self.clock;
        self.clock += Time::from_nanos(model.o_send);
        let bytes = payload.len();
        self.stats.sends += 1;
        self.stats.bytes_sent += bytes;
        self.trace(t0, EventKind::SendPost { dst, tag, bytes });
        if let Some(m) = &mut self.metrics {
            m.on_send(bytes, self.cur_site);
        }
        let mut costs = WireCosts::for_message(model, bytes);
        if model.latency_jitter_ns > 0 {
            costs.latency += deterministic_jitter(
                self.rank as u64,
                dst as u64,
                tag as u64,
                self.stats.sends as u64,
            ) % (model.latency_jitter_ns + 1);
        }
        self.fabric
            .send(self.rank, dst, tag, payload, self.clock, costs)
    }

    /// Post a non-blocking receive. Charges `o_recv`; the post time is the
    /// resulting clock.
    pub fn irecv(&mut self, src: SrcSel, tag: TagSel, model: &CostModel) -> RecvRequest {
        let t0 = self.clock;
        self.clock += Time::from_nanos(model.o_recv);
        self.stats.recvs += 1;
        self.trace(
            t0,
            EventKind::RecvPost {
                src: match src {
                    SrcSel::Exact(r) => Some(r),
                    SrcSel::Any => None,
                },
                tag: match tag {
                    TagSel::Exact(t) => Some(t),
                    TagSel::Range { .. } | TagSel::Any => None,
                },
            },
        );
        self.fabric.recv(self.rank, src, tag, self.clock)
    }

    /// Blocking send: initiate and wait with a single-request charge.
    pub fn send(&mut self, dst: usize, tag: i32, payload: &[u8], model: &CostModel) {
        let req = self.isend(dst, tag, payload, model);
        self.wait_send(&req, model);
    }

    /// Blocking receive: post and wait with a single-request charge.
    pub fn recv(&mut self, src: SrcSel, tag: TagSel, model: &CostModel) -> RecvDone {
        let req = self.irecv(src, tag, model);
        self.wait_recv(&req, model)
    }

    /// Wait for a single send request, charging `o_wait` (the expensive
    /// per-call pattern).
    pub fn wait_send(&mut self, req: &SendRequest, model: &CostModel) {
        self.note_block();
        let t0 = self.clock;
        let done = req.wait_raw();
        self.clock = self.clock.max(done) + Time::from_nanos(model.o_wait);
        self.stats.waits += 1;
        self.trace(t0, EventKind::Wait { horizon: done });
        if let Some(m) = &mut self.metrics {
            m.on_sync(t0, self.clock);
        }
    }

    /// Wait for a single receive request, charging `o_wait`.
    pub fn wait_recv(&mut self, req: &RecvRequest, model: &CostModel) -> RecvDone {
        self.note_block();
        let t0 = self.clock;
        let done = req.wait_raw();
        self.clock = self.clock.max(done.completion) + Time::from_nanos(model.o_wait);
        self.stats.waits += 1;
        self.trace(
            t0,
            EventKind::Wait {
                horizon: done.completion,
            },
        );
        self.trace(
            self.clock,
            EventKind::RecvDone {
                src: done.src,
                tag: done.tag,
                bytes: done.payload.len(),
                unexpected: done.unexpected,
                completion: done.completion,
            },
        );
        if let Some(m) = &mut self.metrics {
            m.on_sync(t0, self.clock);
            m.on_recv_complete(
                done.payload.len(),
                req.posted,
                done.completion,
                self.cur_site,
            );
        }
        done
    }

    /// Consolidated completion over a mixed set of requests (`MPI_Waitall`):
    /// the clock advances to the max completion plus one amortized charge.
    /// Returns the receive results in request order.
    pub fn waitall(
        &mut self,
        sends: &[SendRequest],
        recvs: &[RecvRequest],
        model: &CostModel,
    ) -> Vec<RecvDone> {
        self.note_block();
        let t0 = self.clock;
        let mut max_t = self.clock;
        for s in sends {
            max_t = max_t.max(s.wait_raw());
        }
        let mut dones = Vec::with_capacity(recvs.len());
        for r in recvs {
            let d = r.wait_raw();
            max_t = max_t.max(d.completion);
            dones.push(d);
        }
        let n = sends.len() + recvs.len();
        // User-level Waitall fills per-request status objects.
        self.clock = max_t + model.waitall_cost(n) + Time::from_nanos(model.o_status * n as u64);
        self.stats.waitalls += 1;
        for (r, d) in recvs.iter().zip(&dones) {
            self.trace(
                self.clock,
                EventKind::RecvDone {
                    src: d.src,
                    tag: d.tag,
                    bytes: d.payload.len(),
                    unexpected: d.unexpected,
                    completion: d.completion,
                },
            );
            if let Some(m) = &mut self.metrics {
                m.on_recv_complete(d.payload.len(), r.posted, d.completion, self.cur_site);
            }
        }
        self.trace(t0, EventKind::Waitall { n, horizon: max_t });
        if let Some(m) = &mut self.metrics {
            m.on_sync(t0, self.clock);
            m.on_waitall(n);
        }
        dones
    }

    /// Fold a set of pre-collected virtual completion times into the clock
    /// as one consolidated sync (the directive layer's deferred region
    /// sync). `n` is the number of requests covered.
    pub fn charge_consolidated(&mut self, completions: &[Time], n: usize, model: &CostModel) {
        let t0 = self.clock;
        let max_t = completions.iter().copied().fold(self.clock, Time::max);
        self.clock = max_t + model.waitall_cost(n);
        self.stats.waitalls += 1;
        self.trace(t0, EventKind::Waitall { n, horizon: max_t });
        if let Some(m) = &mut self.metrics {
            m.on_sync(t0, self.clock);
            m.on_waitall(n);
        }
    }

    // -- one-sided -----------------------------------------------------------

    /// Collective symmetric allocation over `group` (ascending global
    /// ranks; must include this rank). Synchronizes the group like
    /// `shmalloc` does.
    pub fn sym_alloc(&mut self, group: &[usize], bytes: usize, model: &CostModel) -> SegId {
        self.sym_alloc_windowed(group, bytes, u64::MAX, model)
    }

    /// [`RankCtx::sym_alloc`] with a flow-control window: a signalled put
    /// physically blocks while `window` deliveries are unconsumed at the
    /// destination (staging-slot reuse safety for layered engines).
    pub fn sym_alloc_windowed(
        &mut self,
        group: &[usize],
        bytes: usize,
        window: u64,
        model: &CostModel,
    ) -> SegId {
        self.note_block();
        let id = self.fabric.segments().alloc(group, bytes, window);
        // shmalloc implies a barrier across the participants.
        self.barrier_group(group, model);
        id
    }

    /// Release flow-controlled senders: mark `count` signalled deliveries
    /// into this rank's copy of `seg` as consumed.
    pub fn mark_consumed(&self, seg: SegId, count: u64) {
        self.fabric.segments().mark_consumed(seg, self.rank, count);
        if let Some(san) = &self.san {
            san.on_consumed(self.rank, seg, count);
        }
    }

    /// One-sided put of `data` into `target`'s copy of segment `seg` at
    /// `offset`. Charges `o_put`; the remote data is signalled with its
    /// virtual arrival time so receivers can (physically) wait for it.
    /// Returns the arrival time; it is also recorded as an outstanding put
    /// for [`RankCtx::quiet`].
    pub fn put(
        &mut self,
        seg: SegId,
        target: usize,
        offset: usize,
        data: &[u8],
        model: &CostModel,
        signal: bool,
    ) -> Time {
        let t0 = self.clock;
        self.clock += Time::from_nanos(model.o_put);
        self.note_block(); // a signalled put may park on flow control
        let mut arrival = self.clock + model.wire_time(data.len());
        if model.latency_jitter_ns > 0 {
            arrival += Time::from_nanos(
                deterministic_jitter(
                    self.rank as u64,
                    target as u64,
                    seg.0 as u64,
                    self.stats.puts as u64,
                ) % (model.latency_jitter_ns + 1),
            );
        }
        let ordinal =
            self.fabric
                .segments()
                .put(seg, target, offset, data, signal.then_some(arrival));
        if let Some(san) = &self.san {
            let window = self.fabric.segments().window_of(seg);
            san.on_put_data(
                self.rank,
                seg,
                window,
                target,
                offset,
                data.len(),
                ordinal,
                self.cur_site,
            );
        }
        self.outstanding_puts.push(arrival);
        self.stats.puts += 1;
        self.stats.bytes_put += data.len();
        self.trace(
            t0,
            EventKind::Put {
                dst: target,
                bytes: data.len(),
            },
        );
        if let Some(m) = &mut self.metrics {
            m.on_put(data.len(), self.cur_site);
        }
        arrival
    }

    /// [`RankCtx::put`] whose source bytes come from this rank's own copy
    /// of `seg` at `src_offset` (the staged-slot idiom). The sanitizer
    /// additionally tracks the source read so reuse of the source region
    /// before a `quiet` is diagnosed (CI011).
    #[allow(clippy::too_many_arguments)]
    pub fn put_from(
        &mut self,
        seg: SegId,
        target: usize,
        offset: usize,
        src_offset: usize,
        len: usize,
        model: &CostModel,
        signal: bool,
    ) -> Time {
        let mut data = vec![0u8; len];
        self.fabric
            .segments()
            .read(seg, self.rank, src_offset, &mut data);
        if let Some(san) = &self.san {
            let window = self.fabric.segments().window_of(seg);
            san.on_put_src(self.rank, seg, window, src_offset, len, self.cur_site);
        }
        self.put(seg, target, offset, &data, model, signal)
    }

    /// Blocking one-sided get from `target`'s copy of `seg` into `out`.
    /// Charges the full software + wire round trip.
    pub fn get(
        &mut self,
        seg: SegId,
        target: usize,
        offset: usize,
        out: &mut [u8],
        model: &CostModel,
    ) {
        self.fabric.segments().read(seg, target, offset, out);
        if let Some(san) = &self.san {
            let window = self.fabric.segments().window_of(seg);
            san.on_get(
                self.rank,
                seg,
                window,
                target,
                offset,
                out.len(),
                self.cur_site,
            );
        }
        let t0 = self.clock;
        self.clock += Time::from_nanos(model.o_get)
            + Time::from_nanos(model.latency)
            + model.wire_time(out.len());
        self.stats.gets += 1;
        self.trace(
            t0,
            EventKind::Get {
                src: target,
                bytes: out.len(),
            },
        );
    }

    /// Read this rank's own copy of a segment (free: local load).
    pub fn read_local(&self, seg: SegId, offset: usize, out: &mut [u8]) {
        self.fabric.segments().read(seg, self.rank, offset, out);
        if let Some(san) = &self.san {
            let window = self.fabric.segments().window_of(seg);
            san.on_local_read(self.rank, seg, window, offset, out.len(), self.cur_site);
        }
    }

    /// Write this rank's own copy of a segment (free: local store).
    pub fn write_local(&self, seg: SegId, offset: usize, data: &[u8]) {
        self.fabric
            .segments()
            .put(seg, self.rank, offset, data, None);
        if let Some(san) = &self.san {
            let window = self.fabric.segments().window_of(seg);
            san.on_local_write(self.rank, seg, window, offset, data.len(), self.cur_site);
        }
    }

    /// Physically wait until at least `count` signalled deliveries landed in
    /// this rank's copy of `seg`; returns the `count`-th arrival time.
    /// Does **not** advance the clock — pair with [`RankCtx::advance_to`] or
    /// a consolidated charge.
    pub fn wait_signals_raw(&self, seg: SegId, count: usize) -> Time {
        self.note_block();
        let t = self.fabric.segments().wait_signals(seg, self.rank, count);
        if let Some(san) = &self.san {
            san.on_wait(self.rank, seg, count as u64);
        }
        t
    }

    /// Complete all outstanding puts (`shmem_quiet`): clock advances to the
    /// latest arrival plus `o_quiet`.
    pub fn quiet(&mut self, model: &CostModel) {
        let t0 = self.clock;
        let outstanding = self.outstanding_puts.len();
        let max_arrival = self.outstanding_puts.drain(..).fold(self.clock, Time::max);
        self.clock = max_arrival + Time::from_nanos(model.o_quiet);
        if let Some(san) = &self.san {
            san.on_quiet(self.rank);
        }
        self.stats.quiets += 1;
        self.trace(
            t0,
            EventKind::Quiet {
                outstanding,
                horizon: max_arrival,
            },
        );
        if let Some(m) = &mut self.metrics {
            m.on_sync(t0, self.clock);
        }
    }

    /// Completion time of the latest outstanding put without charging
    /// (used by the directive engine for deferred syncs).
    pub fn outstanding_put_horizon(&self) -> Option<Time> {
        self.outstanding_puts.iter().copied().max()
    }

    /// Drain the outstanding-put list, returning the arrival times.
    pub fn take_outstanding_puts(&mut self) -> Vec<Time> {
        std::mem::take(&mut self.outstanding_puts)
    }

    // -- collectives ----------------------------------------------------------

    /// Barrier over all ranks.
    pub fn barrier(&mut self, model: &CostModel) {
        let group: Vec<usize> = (0..self.nranks).collect();
        self.barrier_group(&group, model);
    }

    /// Barrier over an arbitrary ascending group containing this rank.
    pub fn barrier_group(&mut self, group: &[usize], model: &CostModel) {
        debug_assert!(group.contains(&self.rank), "barrier group excludes caller");
        self.note_block();
        let t0 = self.clock;
        let cost = model.barrier_cost(group.len());
        let exit = self.fabric.barrier(group, self.clock, cost);
        self.clock = exit;
        if group.len() == self.nranks {
            if let Some(san) = &self.san {
                san.on_full_barrier(self.rank);
            }
        }
        self.stats.barriers += 1;
        self.trace(
            t0,
            EventKind::Barrier {
                group_len: group.len(),
            },
        );
        if let Some(m) = &mut self.metrics {
            m.on_sync(t0, self.clock);
        }
    }

    // -- explicit data handling costs ----------------------------------------

    /// Charge an explicit pack/unpack copy of `bytes` (`MPI_Pack` path).
    pub fn charge_pack(&mut self, bytes: usize, model: &CostModel) {
        let t0 = self.clock;
        self.clock += model.byte_cost(model.pack_per_byte, bytes);
        self.stats.packed_bytes += bytes;
        self.trace(t0, EventKind::Pack { bytes });
    }

    /// Charge a derived-datatype build + commit.
    pub fn charge_datatype_commit(&mut self, model: &CostModel) {
        let t0 = self.clock;
        self.clock += Time::from_nanos(model.datatype_commit);
        self.stats.datatype_commits += 1;
        self.trace(t0, EventKind::DatatypeCommit);
    }

    /// Record a datatype-cache hit: the layout was already committed, so the
    /// commit cost is elided. Counter only — the virtual clock does not move.
    pub fn note_dtype_cache_hit(&mut self) {
        self.stats.dtype_cache_hits += 1;
    }

    /// Charge a local staging copy of `bytes`.
    pub fn charge_memcpy(&mut self, bytes: usize, model: &CostModel) {
        self.clock += model.byte_cost(model.memcpy_per_byte, bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MachineModel;

    fn uniform_cfg(n: usize) -> SimConfig {
        SimConfig::new(n).with_machine(MachineModel::uniform(1_000, 1.0))
    }

    #[test]
    fn single_rank_compute() {
        let res = run(uniform_cfg(1), |ctx| {
            ctx.compute(Time::from_micros(5));
            ctx.now()
        });
        assert_eq!(res.per_rank[0], Time::from_micros(5));
        assert_eq!(res.makespan(), Time::from_micros(5));
    }

    #[test]
    fn ping_message_clock_charges() {
        let res = run(uniform_cfg(2), |ctx| {
            let m = ctx.machine().mpi;
            if ctx.rank() == 0 {
                ctx.send(1, 0, &[7u8; 100], &m);
            } else {
                let d = ctx.recv(SrcSel::Exact(0), TagSel::Exact(0), &m);
                assert_eq!(d.payload.len(), 100);
            }
            ctx.now()
        });
        // Sender: o_send(100) + wait: completion=depart(100) => max(100,100)+o_wait(100)=200
        assert_eq!(res.per_rank[0], Time(200));
        // Receiver: o_recv(100) posts at 100; arrival = 100 + 1000 + 100 = 1200;
        // wait => max(100,1200)+100 = 1300.
        assert_eq!(res.per_rank[1], Time(1300));
        assert_eq!(res.total_stats().sends, 1);
        assert_eq!(res.total_stats().recvs, 1);
    }

    #[test]
    fn waitall_vs_wait_loop_ordering() {
        // With n requests, a wait loop charges n*o_wait while waitall charges
        // o_waitall + n*o_req_poll; verify end-to-end through the runtime.
        let n_msgs = 8usize;
        let run_one = |consolidated: bool| {
            let res = run(SimConfig::new(2), move |ctx| {
                let m = ctx.machine().mpi;
                if ctx.rank() == 0 {
                    let reqs: Vec<_> = (0..n_msgs)
                        .map(|i| ctx.isend(1, i as i32, &[0u8; 24], &m))
                        .collect();
                    if consolidated {
                        ctx.waitall(&reqs, &[], &m);
                    } else {
                        for r in &reqs {
                            ctx.wait_send(r, &m);
                        }
                    }
                } else {
                    let reqs: Vec<_> = (0..n_msgs)
                        .map(|i| ctx.irecv(SrcSel::Exact(0), TagSel::Exact(i as i32), &m))
                        .collect();
                    if consolidated {
                        ctx.waitall(&[], &reqs, &m);
                    } else {
                        for r in &reqs {
                            ctx.wait_recv(r, &m);
                        }
                    }
                }
                ctx.now()
            });
            res.makespan()
        };
        let loop_time = run_one(false);
        let all_time = run_one(true);
        assert!(
            all_time < loop_time,
            "waitall ({all_time}) should beat wait loop ({loop_time})"
        );
    }

    #[test]
    fn barrier_all_ranks_same_exit() {
        let res = run(uniform_cfg(4), |ctx| {
            ctx.compute(Time::from_nanos(100 * (ctx.rank() as u64 + 1)));
            let m = ctx.machine().mpi;
            ctx.barrier(&m);
            ctx.now()
        });
        let t0 = res.per_rank[0];
        assert!(res.per_rank.iter().all(|&t| t == t0));
        assert!(t0 > Time(400));
    }

    #[test]
    fn one_sided_put_and_signal() {
        let res = run(uniform_cfg(2), |ctx| {
            let m = ctx.machine().shmem;
            let seg = ctx.sym_alloc(&[0, 1], 64, &m);
            if ctx.rank() == 0 {
                let arrival = ctx.put(seg, 1, 0, &[42u8; 8], &m, true);
                ctx.quiet(&m);
                assert!(ctx.now() >= arrival);
            } else {
                let arrival = ctx.wait_signals_raw(seg, 1);
                ctx.advance_to(arrival);
                let mut out = [0u8; 8];
                ctx.read_local(seg, 0, &mut out);
                assert_eq!(out, [42u8; 8]);
            }
            ctx.now()
        });
        assert!(res.per_rank[1] > Time::ZERO);
        assert_eq!(res.total_stats().puts, 1);
    }

    #[test]
    fn sanitizer_clean_on_signalled_put_wait_read() {
        let res = run(uniform_cfg(2).with_sanitize(), |ctx| {
            let m = ctx.machine().shmem;
            let seg = ctx.sym_alloc(&[0, 1], 64, &m);
            if ctx.rank() == 0 {
                ctx.put(seg, 1, 0, &[42u8; 8], &m, true);
                ctx.quiet(&m);
            } else {
                let arrival = ctx.wait_signals_raw(seg, 1);
                ctx.advance_to(arrival);
                let mut out = [0u8; 8];
                ctx.read_local(seg, 0, &mut out);
            }
        });
        let report = res.sanitize.as_ref().expect("sanitizer enabled");
        assert_eq!(report.conflicts_found(), 0);
        assert!(report.race_checks >= 2, "put + read were both checked");
        assert_eq!(res.total_stats().conflicts_found, 0);
        assert_eq!(res.total_stats().race_checks, report.race_checks as usize);
        report.assert_clean();
    }

    #[test]
    fn sanitizer_flags_overlapping_unordered_puts() {
        let res = run(uniform_cfg(3).with_sanitize(), |ctx| {
            let m = ctx.machine().shmem;
            let seg = ctx.sym_alloc(&[0, 1, 2], 64, &m);
            if ctx.rank() < 2 {
                // Both rank 0 and rank 1 blindly put into rank 2's window.
                ctx.put(seg, 2, 0, &[ctx.rank() as u8; 8], &m, false);
                ctx.quiet(&m);
            }
            ctx.barrier(&m);
        });
        let report = res.sanitize.as_ref().expect("sanitizer enabled");
        assert_eq!(report.conflicts_found(), 1);
        assert!(
            report.codes().contains("CI009"),
            "codes: {:?}",
            report.codes()
        );
        assert_eq!(res.total_stats().conflicts_found, 1);
        let c = &report.conflicts[0];
        assert_eq!(c.owner, 2);
        assert_eq!(c.ranks, (0, 1));
    }

    #[test]
    fn sanitizer_flags_unwaited_read_and_put_from_source_reuse() {
        // Rank 0 rewrites its staged source before quiet (CI011); rank 1
        // reads the landing zone without waiting for the signal (CI012).
        let res = run(uniform_cfg(2).with_sanitize(), |ctx| {
            let m = ctx.machine().shmem;
            let seg = ctx.sym_alloc(&[0, 1], 64, &m);
            if ctx.rank() == 0 {
                ctx.write_local(seg, 32, &[7u8; 8]);
                ctx.put_from(seg, 1, 0, 32, 8, &m, true);
                ctx.write_local(seg, 32, &[9u8; 8]); // before quiet: CI011
                ctx.quiet(&m);
            } else {
                let mut out = [0u8; 8];
                ctx.read_local(seg, 0, &mut out); // no wait: CI012
                ctx.wait_signals_raw(seg, 1);
            }
        });
        let report = res.sanitize.as_ref().expect("sanitizer enabled");
        let codes = report.codes();
        assert!(codes.contains("CI011"), "codes: {codes:?}");
        assert!(codes.contains("CI012"), "codes: {codes:?}");
    }

    #[test]
    fn trace_records_events() {
        let res = run(uniform_cfg(2).with_trace(), |ctx| {
            let m = ctx.machine().mpi;
            if ctx.rank() == 0 {
                ctx.send(1, 0, b"x", &m);
            } else {
                ctx.recv(SrcSel::Exact(0), TagSel::Exact(0), &m);
            }
        });
        let trace = res.trace.expect("trace enabled");
        assert!(trace
            .iter()
            .any(|e| matches!(e.kind, EventKind::SendPost { dst: 1, .. })));
        assert!(trace
            .iter()
            .any(|e| matches!(e.kind, EventKind::RecvDone { src: 0, .. })));
    }

    #[test]
    #[should_panic(expected = "rank 1 panicked")]
    fn rank_panic_propagates_with_id() {
        run(uniform_cfg(2), |ctx| {
            if ctx.rank() == 1 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn pack_and_datatype_charges() {
        let res = run(SimConfig::new(1), |ctx| {
            let m = ctx.machine().mpi;
            let before = ctx.now();
            ctx.charge_pack(1_000, &m);
            let after_pack = ctx.now();
            ctx.charge_datatype_commit(&m);
            (before, after_pack, ctx.now())
        });
        let (a, b, c) = res.per_rank[0];
        assert!(b > a);
        assert!(c > b);
        assert_eq!(res.stats[0].packed_bytes, 1_000);
        assert_eq!(res.stats[0].datatype_commits, 1);
    }

    #[test]
    fn charge_consolidated_folds_completions() {
        let res = run(SimConfig::new(1), |ctx| {
            let m = ctx.machine().mpi;
            ctx.compute(Time(500));
            ctx.charge_consolidated(&[Time(10_000), Time(2_000)], 2, &m);
            ctx.now()
        });
        let m = crate::model::CostModel::gemini_mpi();
        assert_eq!(res.per_rank[0], Time(10_000) + m.waitall_cost(2));
    }

    #[test]
    fn bounded_engine_matches_thread_per_rank() {
        // A mixed workload (p2p, barrier, one-sided put/signal) must produce
        // bit-identical results under every engine and worker count.
        let body = |ctx: &mut RankCtx| {
            let m = ctx.machine().mpi;
            let shm = ctx.machine().shmem;
            let n = ctx.nranks();
            let right = (ctx.rank() + 1) % n;
            let left = (ctx.rank() + n - 1) % n;
            let s = ctx.isend(right, 1, &[ctx.rank() as u8; 64], &m);
            let r = ctx.irecv(SrcSel::Exact(left), TagSel::Exact(1), &m);
            ctx.waitall(&[s], &[r], &m);
            ctx.barrier(&m);
            let group: Vec<usize> = (0..n).collect();
            let seg = ctx.sym_alloc(&group, 16, &shm);
            ctx.put(seg, right, 0, &[7u8; 16], &shm, true);
            ctx.quiet(&shm);
            let arrival = ctx.wait_signals_raw(seg, 1);
            ctx.advance_to(arrival);
            ctx.barrier(&m);
            ctx.now()
        };
        let reference = run(uniform_cfg(6), body);
        for workers in [1usize, 2, 5, 64] {
            let res = run(uniform_cfg(6).with_workers(workers), body);
            assert_eq!(res.final_times, reference.final_times, "workers={workers}");
            assert_eq!(res.per_rank, reference.per_rank, "workers={workers}");
        }
    }

    #[test]
    fn bounded_engine_single_worker_no_deadlock_rendezvous() {
        // Rendezvous sends block until matched; with one worker slot the
        // sender must yield so the receiver can run.
        let mut machine = MachineModel::default();
        machine.mpi.eager_threshold = 0; // force rendezvous for every message
        let cfg = SimConfig::new(4).with_machine(machine).with_workers(1);
        let res = run(cfg, |ctx| {
            let m = ctx.machine().mpi;
            if ctx.rank() == 0 {
                for dst in 1..ctx.nranks() {
                    ctx.send(dst, 0, &[1u8; 4096], &m);
                }
            } else {
                ctx.recv(SrcSel::Exact(0), TagSel::Exact(0), &m);
            }
            ctx.now()
        });
        assert!(res.makespan() > Time::ZERO);
    }

    #[test]
    fn eager_threshold_config_overrides_model() {
        // The same 4 KiB message is eager under the default Gemini model
        // (threshold 8 KiB) and pays the rendezvous handshake once the
        // SimConfig knob pulls the threshold below the message size.
        let elapsed = |cfg: SimConfig| {
            run(cfg, |ctx| {
                let m = ctx.machine().mpi;
                if ctx.rank() == 0 {
                    ctx.send(1, 0, &[9u8; 4096], &m);
                } else {
                    ctx.recv(SrcSel::Exact(0), TagSel::Exact(0), &m);
                }
                ctx.now()
            })
            .makespan()
        };
        let eager = elapsed(SimConfig::new(2));
        let rdv = elapsed(SimConfig::new(2).with_eager_threshold(1024));
        assert!(
            rdv > eager,
            "rendezvous {rdv:?} must cost more than {eager:?}"
        );
        // ExecPolicy carries the knob through with_exec unchanged.
        let via_exec =
            elapsed(SimConfig::new(2).with_exec(ExecPolicy::threads().with_eager_threshold(1024)));
        assert_eq!(via_exec, rdv);
    }

    #[test]
    #[should_panic(expected = "rank 1 panicked")]
    fn bounded_engine_panic_releases_slot() {
        // The panicking rank's slot must be released so the others finish
        // and the panic propagates instead of deadlocking the pool.
        run(uniform_cfg(4).with_workers(1), |ctx| {
            let m = ctx.machine().mpi;
            ctx.barrier(&m);
            if ctx.rank() == 1 {
                panic!("boom");
            }
            ctx.barrier_group(&[0, 2, 3], &m);
        });
    }

    #[test]
    fn many_ranks_scale() {
        // Smoke test that the thread-per-rank runtime handles Fig-3-scale
        // rank counts.
        let res = run(SimConfig::new(97), |ctx| {
            let m = ctx.machine().mpi;
            ctx.barrier(&m);
            ctx.rank()
        });
        assert_eq!(res.per_rank.len(), 97);
        assert!(res.per_rank.iter().enumerate().all(|(i, &r)| i == r));
    }
}
