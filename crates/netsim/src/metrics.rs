//! The metrics registry: per-rank and per-site counters and histograms,
//! collected inside the rank runtime when enabled via
//! [`crate::SimConfig::with_metrics`].
//!
//! Two design rules, both load-bearing:
//!
//! * **Near-zero overhead when disabled.** Each rank context holds an
//!   `Option<Box<RankMetrics>>`; every hook is a single branch on `None`.
//!   No locks, no allocation, no atomic traffic on the hot path.
//! * **Deterministic when enabled.** Every recorded quantity is a pure
//!   function of *virtual* time and workload structure (post/completion
//!   clocks, message sizes, waitall widths), never of thread interleaving —
//!   so a metrics dump is bit-identical across `ExecPolicy::threads()`,
//!   `ExecPolicy::bounded(w)` for any `w`, and any sweep-pool width. The
//!   interleaving-dependent *physical* counters (unexpected-queue high
//!   water, matcher scan steps, mailbox locks, scheduler slot occupancy)
//!   live in [`crate::RankStats`] / [`SchedStats`] instead and are never
//!   folded into metric dumps that promise byte equality.

use crate::time::Time;
use crate::trace::SiteId;

/// Number of power-of-two buckets in a [`Hist`]. Bucket `i` counts values
/// `v` with `2^(i-1) < v <= 2^i` (bucket 0 counts zero).
pub const HIST_BUCKETS: usize = 40;

/// A deterministic log2 histogram over `u64` samples, with exact count,
/// sum, and max so means are reconstructible without bucket error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hist {
    /// Power-of-two buckets; see [`HIST_BUCKETS`].
    pub buckets: [u64; HIST_BUCKETS],
    /// Number of recorded samples.
    pub count: u64,
    /// Exact sum of all samples.
    pub sum: u64,
    /// Largest recorded sample.
    pub max: u64,
}

impl Default for Hist {
    fn default() -> Self {
        Hist {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Hist {
    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        let b = (64 - v.leading_zeros() as usize).min(HIST_BUCKETS - 1);
        self.buckets[b] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// The `p`-th percentile (0–100), resolved at bucket granularity: the
    /// upper bound of the first bucket whose cumulative count covers the
    /// percentile rank, clamped to the exact recorded max. A pure function
    /// of the (deterministic) bucket counts, so it is byte-stable across
    /// execution engines. Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (((p / 100.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                let upper = if i == 0 { 0 } else { 1u64 << i.min(63) };
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Hist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

/// Per-directive-site counters on one rank. Sites appear in first-touch
/// (program) order, which is deterministic per rank.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SiteMetrics {
    /// The directive call site.
    pub site: SiteId,
    /// Two-sided messages initiated at this site.
    pub msgs_sent: u64,
    /// Bytes moved by sends and puts at this site.
    pub bytes_sent: u64,
    /// Receives completed at this site.
    pub msgs_recvd: u64,
    /// Bytes received at this site.
    pub bytes_recvd: u64,
    /// Total posted-receive dwell (completion - post) at this site, ns.
    pub dwell_ns: u64,
}

/// Per-rank metrics, owned by the rank thread (no synchronization) and
/// collected into [`crate::SimResult::metrics`] after the run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RankMetrics {
    /// Two-sided messages initiated.
    pub msgs_sent: u64,
    /// Bytes moved by two-sided sends.
    pub bytes_sent: u64,
    /// Receives completed.
    pub msgs_recvd: u64,
    /// Bytes delivered to this rank's receives.
    pub bytes_recvd: u64,
    /// One-sided puts initiated / bytes put.
    pub puts: u64,
    /// Bytes moved by puts.
    pub bytes_put: u64,
    /// Virtual ns spent in synchronization operations (wait, waitall,
    /// barrier, quiet), including their software overhead.
    pub wait_ns: u64,
    /// Posted-receive dwell times (completion - post), ns.
    pub recv_dwell: Hist,
    /// Widths of consolidated completions (waitall / region sync).
    pub waitall_width: Hist,
    /// Per-site breakdown, first-touch order.
    pub sites: Vec<SiteMetrics>,
}

impl RankMetrics {
    /// The per-site slot for `site`, created on first touch.
    #[inline]
    pub fn site_mut(&mut self, site: SiteId) -> &mut SiteMetrics {
        // Linear scan: directive programs have a handful of sites, and the
        // vec stays cache-resident (same shape as the engine's site tables).
        let idx = match self.sites.iter().position(|s| s.site == site) {
            Some(i) => i,
            None => {
                self.sites.push(SiteMetrics {
                    site,
                    ..Default::default()
                });
                self.sites.len() - 1
            }
        };
        &mut self.sites[idx]
    }

    /// Record a send of `bytes` attributed to `site` (if any).
    #[inline]
    pub fn on_send(&mut self, bytes: usize, site: Option<SiteId>) {
        self.msgs_sent += 1;
        self.bytes_sent += bytes as u64;
        if let Some(s) = site {
            let sm = self.site_mut(s);
            sm.msgs_sent += 1;
            sm.bytes_sent += bytes as u64;
        }
    }

    /// Record a put of `bytes` attributed to `site` (if any).
    #[inline]
    pub fn on_put(&mut self, bytes: usize, site: Option<SiteId>) {
        self.puts += 1;
        self.bytes_put += bytes as u64;
        if let Some(s) = site {
            let sm = self.site_mut(s);
            sm.msgs_sent += 1;
            sm.bytes_sent += bytes as u64;
        }
    }

    /// Record a completed receive: `bytes` delivered, posted at `posted`,
    /// complete at `completion` (both virtual).
    #[inline]
    pub fn on_recv_complete(
        &mut self,
        bytes: usize,
        posted: Time,
        completion: Time,
        site: Option<SiteId>,
    ) {
        self.msgs_recvd += 1;
        self.bytes_recvd += bytes as u64;
        let dwell = completion.saturating_sub(posted).as_nanos();
        self.recv_dwell.record(dwell);
        if let Some(s) = site {
            let sm = self.site_mut(s);
            sm.msgs_recvd += 1;
            sm.bytes_recvd += bytes as u64;
            sm.dwell_ns += dwell;
        }
    }

    /// Record a synchronization span `start..end` (virtual).
    #[inline]
    pub fn on_sync(&mut self, start: Time, end: Time) {
        self.wait_ns += end.saturating_sub(start).as_nanos();
    }

    /// Record a consolidated completion over `n` requests.
    #[inline]
    pub fn on_waitall(&mut self, n: usize) {
        self.waitall_width.record(n as u64);
    }

    /// Merge another rank's metrics (for whole-job aggregates). Per-site
    /// entries merge by site id; the union keeps the callee's first-touch
    /// order, then the other's unseen sites.
    pub fn merge(&mut self, other: &RankMetrics) {
        self.msgs_sent += other.msgs_sent;
        self.bytes_sent += other.bytes_sent;
        self.msgs_recvd += other.msgs_recvd;
        self.bytes_recvd += other.bytes_recvd;
        self.puts += other.puts;
        self.bytes_put += other.bytes_put;
        self.wait_ns += other.wait_ns;
        self.recv_dwell.merge(&other.recv_dwell);
        self.waitall_width.merge(&other.waitall_width);
        for os in &other.sites {
            let sm = self.site_mut(os.site);
            sm.msgs_sent += os.msgs_sent;
            sm.bytes_sent += os.bytes_sent;
            sm.msgs_recvd += os.msgs_recvd;
            sm.bytes_recvd += os.bytes_recvd;
            sm.dwell_ns += os.dwell_ns;
        }
    }
}

/// Physical occupancy counters from the bounded scheduler. These depend on
/// wall-clock interleaving and are reported for tuning only — never part of
/// deterministic profile output.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Configured worker slots.
    pub slots: usize,
    /// Peak number of simultaneously held slots.
    pub max_occupied: usize,
    /// Total slot grants (initial acquisitions + wakeups with handoff).
    pub grants: u64,
    /// Times a rank parked waiting for a slot.
    pub parks: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hist_buckets_and_moments() {
        let mut h = Hist::default();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(1024);
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 1027);
        assert_eq!(h.max, 1024);
        assert_eq!(h.buckets[0], 1); // zero
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[2], 1); // 2
        assert_eq!(h.buckets[11], 1); // 1024 = 2^10, ceil bucket
        assert!((h.mean() - 1027.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn site_attribution_first_touch_order() {
        let mut m = RankMetrics::default();
        m.on_send(10, Some(7));
        m.on_send(20, Some(3));
        m.on_recv_complete(5, Time(100), Time(400), Some(7));
        assert_eq!(m.sites.len(), 2);
        assert_eq!(m.sites[0].site, 7);
        assert_eq!(m.sites[1].site, 3);
        assert_eq!(m.sites[0].bytes_sent, 10);
        assert_eq!(m.sites[0].dwell_ns, 300);
        assert_eq!(m.msgs_sent, 2);
        assert_eq!(m.bytes_recvd, 5);
    }

    #[test]
    fn merge_folds_sites_by_id() {
        let mut a = RankMetrics::default();
        a.on_send(10, Some(1));
        a.on_sync(Time(0), Time(50));
        let mut b = RankMetrics::default();
        b.on_send(30, Some(1));
        b.on_put(4, Some(9));
        a.merge(&b);
        assert_eq!(a.sites.len(), 2);
        assert_eq!(a.sites[0].bytes_sent, 40);
        assert_eq!(a.wait_ns, 50);
        assert_eq!(a.puts, 1);
    }
}
