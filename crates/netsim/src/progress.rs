//! Live progress telemetry: an opt-in snapshot channel over the running
//! simulation, driving the `--watch` stall watchdog on long bounded-engine
//! runs.
//!
//! Design rules, mirroring the metrics registry:
//!
//! * **Single branch when disabled.** Each rank context holds an
//!   `Option<Arc<ProgressBoard>>`; every hook is one branch plus (when
//!   enabled) a handful of `Relaxed` atomic stores. No locks, no
//!   allocation.
//! * **Snapshots read state, they never write it.** The watcher thread only
//!   loads atomics (and the bounded scheduler's stats, which take a mutex
//!   the rank threads also take — but only around *physical* bookkeeping).
//!   Virtual time is owned by the rank threads and never touched from the
//!   watcher, so enabling `--watch` cannot perturb any virtual-time
//!   quantity: traces, profiles, and bench outputs stay bit-identical.
//! * **The final snapshot is deterministic.** Every cell field is a pure
//!   function of program structure and virtual time once the ranks have
//!   quiesced: `lvt_ns` is the rank's final clock, `blocks` counts the
//!   blocking-operation *entries* (a property of the program, not of the
//!   interleaving), and `puts_inflight` is the flow-control queue depth at
//!   the last blocking entry. [`Snapshot`]s taken *mid-run* by the watchdog
//!   are physical observations and go to stderr only.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

use crate::metrics::SchedStats;

/// Rank execution state as last observed by the hooks.
pub const STATE_RUNNING: u8 = 0;
/// The rank entered an operation that may physically park.
pub const STATE_BLOCKED: u8 = 1;
/// The rank's body returned.
pub const STATE_DONE: u8 = 2;

/// Watchdog configuration, carried on [`crate::ExecPolicy`] (hence `Copy`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WatchCfg {
    /// Wall-clock milliseconds between progress lines.
    pub interval_ms: u64,
    /// Flag a rank as stalled when its LVT has not advanced for this many
    /// wall-clock milliseconds.
    pub stall_ms: u64,
}

impl WatchCfg {
    /// A watchdog that prints every second and flags ranks stalled for
    /// `secs` wall-seconds (the `--watch <secs>` CLI form).
    pub fn stall_secs(secs: u64) -> Self {
        WatchCfg {
            interval_ms: 1000,
            stall_ms: secs.max(1) * 1000,
        }
    }
}

struct Cell {
    /// Last virtual clock reported by this rank, ns.
    lvt: AtomicU64,
    /// Number of blocking-operation entries so far.
    blocks: AtomicU64,
    /// Outstanding-put queue depth at the last blocking entry.
    puts_inflight: AtomicU64,
    /// One of the `STATE_*` constants.
    state: AtomicU8,
}

/// Shared progress table: one cell per rank, written by the rank threads
/// through the hooks below and read by the watchdog / final snapshot.
pub struct ProgressBoard {
    cells: Vec<Cell>,
}

impl ProgressBoard {
    pub fn new(nranks: usize) -> Self {
        ProgressBoard {
            cells: (0..nranks)
                .map(|_| Cell {
                    lvt: AtomicU64::new(0),
                    blocks: AtomicU64::new(0),
                    puts_inflight: AtomicU64::new(0),
                    state: AtomicU8::new(STATE_RUNNING),
                })
                .collect(),
        }
    }

    /// Hook: rank `rank` is entering an operation that may physically park,
    /// with virtual clock `lvt_ns` and `puts` outstanding puts.
    #[inline]
    pub fn on_block(&self, rank: usize, lvt_ns: u64, puts: usize) {
        let c = &self.cells[rank];
        c.lvt.store(lvt_ns, Ordering::Relaxed);
        c.blocks.fetch_add(1, Ordering::Relaxed);
        c.puts_inflight.store(puts as u64, Ordering::Relaxed);
        c.state.store(STATE_BLOCKED, Ordering::Relaxed);
    }

    /// Hook: rank `rank` advanced its clock locally (compute).
    #[inline]
    pub fn on_advance(&self, rank: usize, lvt_ns: u64) {
        let c = &self.cells[rank];
        c.lvt.store(lvt_ns, Ordering::Relaxed);
        c.state.store(STATE_RUNNING, Ordering::Relaxed);
    }

    /// Hook: rank `rank`'s body returned with final clock `lvt_ns`.
    #[inline]
    pub fn on_finish(&self, rank: usize, lvt_ns: u64) {
        let c = &self.cells[rank];
        c.lvt.store(lvt_ns, Ordering::Relaxed);
        c.state.store(STATE_DONE, Ordering::Relaxed);
    }

    /// Read a consistent-enough snapshot (per-cell loads are individually
    /// atomic; cross-rank skew is inherent and fine for a watchdog).
    pub fn snapshot(&self, sched: Option<SchedStats>) -> Snapshot {
        Snapshot {
            ranks: self
                .cells
                .iter()
                .enumerate()
                .map(|(rank, c)| RankProgress {
                    rank,
                    lvt_ns: c.lvt.load(Ordering::Relaxed),
                    blocks: c.blocks.load(Ordering::Relaxed),
                    puts_inflight: c.puts_inflight.load(Ordering::Relaxed),
                    state: c.state.load(Ordering::Relaxed),
                })
                .collect(),
            sched,
        }
    }
}

/// One rank's progress observation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RankProgress {
    pub rank: usize,
    /// Last reported virtual clock, ns. Equals the rank's final clock in
    /// the post-run snapshot.
    pub lvt_ns: u64,
    /// Blocking-operation entries so far (deterministic: one per blocking
    /// call in the program).
    pub blocks: u64,
    /// Outstanding puts at the last blocking entry.
    pub puts_inflight: u64,
    /// `STATE_RUNNING` / `STATE_BLOCKED` / `STATE_DONE`.
    pub state: u8,
}

/// A progress snapshot: per-rank observations plus (under the bounded
/// engine) the scheduler's physical slot-occupancy counters. The `ranks`
/// vector of the post-run snapshot is deterministic and engine-invariant;
/// `sched` is physical and excluded from any determinism claim.
#[derive(Clone, Debug)]
pub struct Snapshot {
    pub ranks: Vec<RankProgress>,
    pub sched: Option<SchedStats>,
}

impl Snapshot {
    /// Lowest LVT over unfinished ranks, or over all ranks when done.
    pub fn min_lvt(&self) -> (usize, u64) {
        self.ranks
            .iter()
            .filter(|r| r.state != STATE_DONE)
            .chain(self.ranks.iter())
            .map(|r| (r.rank, r.lvt_ns))
            .min_by_key(|&(_, t)| t)
            .unwrap_or((0, 0))
    }
}

/// The `--watch` stall watchdog. Runs on its own thread for the duration of
/// a simulation; call [`WatchState::tick`] periodically with a fresh
/// snapshot. All output goes to **stderr** — stdout is reserved for the
/// deterministic artifacts.
pub struct WatchState {
    cfg: WatchCfg,
    started: std::time::Instant,
    /// Per rank: (last seen LVT, wall time it last changed).
    last: Vec<(u64, std::time::Instant)>,
    /// Ranks already reported as stalled (report once per stall episode).
    flagged: Vec<bool>,
}

impl WatchState {
    pub fn new(nranks: usize, cfg: WatchCfg) -> Self {
        let now = std::time::Instant::now();
        WatchState {
            cfg,
            started: now,
            last: vec![(0, now); nranks],
            flagged: vec![false; nranks],
        }
    }

    /// Ingest a snapshot: print one progress line and flag newly stalled
    /// ranks (LVT unchanged for longer than the configured stall window).
    pub fn tick(&mut self, snap: &Snapshot) {
        let now = std::time::Instant::now();
        let mut done = 0usize;
        let mut blocked = 0usize;
        for r in &snap.ranks {
            match r.state {
                STATE_DONE => done += 1,
                STATE_BLOCKED => blocked += 1,
                _ => {}
            }
            let cell = &mut self.last[r.rank];
            if r.lvt_ns != cell.0 {
                *cell = (r.lvt_ns, now);
                self.flagged[r.rank] = false;
            }
        }
        let (min_rank, min_lvt) = snap.min_lvt();
        let max_lvt = snap.ranks.iter().map(|r| r.lvt_ns).max().unwrap_or(0);
        let sched = match snap.sched {
            Some(s) => format!(" slots={}/{} parks={}", s.max_occupied, s.slots, s.parks),
            None => String::new(),
        };
        eprintln!(
            "[watch {:6.1}s] lvt min={}ns (rank {}) max={}ns done={}/{} blocked={}{}",
            self.started.elapsed().as_secs_f64(),
            min_lvt,
            min_rank,
            max_lvt,
            done,
            snap.ranks.len(),
            blocked,
            sched,
        );
        for r in &snap.ranks {
            if r.state == STATE_DONE || self.flagged[r.rank] {
                continue;
            }
            let since = now.duration_since(self.last[r.rank].1);
            if since.as_millis() as u64 >= self.cfg.stall_ms {
                self.flagged[r.rank] = true;
                eprintln!(
                    "[watch] STALL rank {}: lvt={}ns unchanged for {:.1}s (blocks={}, puts_inflight={})",
                    r.rank,
                    r.lvt_ns,
                    since.as_secs_f64(),
                    r.blocks,
                    r.puts_inflight,
                );
            }
        }
    }
}

/// Spawn the watchdog loop (used by [`crate::run`]); returns a handle the
/// caller signals through `stop` and then joins.
pub(crate) fn spawn_watcher(
    board: Arc<ProgressBoard>,
    sched: Option<Arc<crate::sched::Scheduler>>,
    cfg: WatchCfg,
    stop: Arc<std::sync::atomic::AtomicBool>,
) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name("netsim-watch".into())
        .spawn(move || {
            let mut state = WatchState::new(board.cells.len(), cfg);
            let tick = std::time::Duration::from_millis(50.min(cfg.interval_ms.max(1)));
            let mut since_line = std::time::Duration::ZERO;
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(tick);
                since_line += tick;
                if since_line.as_millis() as u64 >= cfg.interval_ms {
                    since_line = std::time::Duration::ZERO;
                    state.tick(&board.snapshot(sched.as_ref().map(|s| s.stats())));
                }
            }
        })
        .expect("failed to spawn watch thread")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn board_tracks_hooks_and_final_state() {
        let b = ProgressBoard::new(2);
        b.on_block(0, 100, 3);
        b.on_advance(1, 50);
        b.on_block(0, 200, 0);
        b.on_finish(0, 250);
        b.on_finish(1, 80);
        let s = b.snapshot(None);
        assert_eq!(s.ranks[0].lvt_ns, 250);
        assert_eq!(s.ranks[0].blocks, 2);
        assert_eq!(s.ranks[0].state, STATE_DONE);
        assert_eq!(s.ranks[1].lvt_ns, 80);
        assert_eq!(s.ranks[1].blocks, 0);
        assert_eq!(s.min_lvt(), (1, 80));
    }

    #[test]
    fn watch_state_flags_stalls_once() {
        let b = ProgressBoard::new(1);
        b.on_block(0, 10, 0);
        let mut w = WatchState::new(
            1,
            WatchCfg {
                interval_ms: 1,
                stall_ms: 0,
            },
        );
        // stall_ms=0: the rank is immediately "stalled"; the flag latches.
        w.tick(&b.snapshot(None));
        assert!(w.flagged[0]);
        // LVT advance clears the flag.
        b.on_block(0, 20, 0);
        w.tick(&b.snapshot(None));
        assert!(w.flagged[0], "re-flagged at stall_ms=0 after reset");
    }
}
