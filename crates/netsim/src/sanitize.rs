//! Shadow-state race sanitizer for one-sided communication (the dynamic
//! half of commrace).
//!
//! Opt-in like metrics ([`crate::SimConfig::with_sanitize`]): every access
//! to a symmetric-segment byte range — put delivery, put source read, get,
//! local load/store — is tagged with the accessor's rank, epoch
//! (full-barrier count), site, and synchronization snapshots, and checked
//! against every prior access to the same owner's copy under the
//! happens-before rules of `commint::race`. A conflicting unordered pair is
//! recorded with enough context to print a span-carrying diagnostic
//! ([`SanitizeReport::assert_clean`] aborts with it).
//!
//! ## Happens-before rules (mirror of the static analyzer)
//!
//! Two accesses to the same owner's copy are ordered iff
//!
//! 1. same accessor rank — program order — **except** a put's source read
//!    vs. a later local store by the same rank, which stays racy until a
//!    quiet retires the source read (CI011);
//! 2. different accessor epochs: a full barrier separates them;
//! 3. a signalled delivery with ordinal `o` vs. an owner-local access that
//!    has waited ≥ `o` signals (the signal-wait edge), or whose consumed
//!    count keeps the delivery flow-controlled behind it
//!    (`o > consumed + window`);
//! 4. two signalled deliveries at least one flow-control window apart.
//!
//! Everything the rules read is a deterministic function of per-rank
//! program state plus signal ordinals; ordinal assignment is the one
//! physically-ordered input, and it only permutes *which* delivery a
//! conflict names, never *how many* conflicting pairs exist — so
//! `race_checks` and `conflicts_found` are bit-stable across engines and
//! interleavings, and the CI cross-engine equality gate covers them.
//!
//! Records are kept for the whole run (no purging): pair-counting must not
//! depend on when a purge raced a late delivery. Shadow memory is
//! proportional to the number of segment accesses, which is fine for the
//! shipped workloads and the differential corpus.

use std::collections::BTreeSet;
use std::collections::HashMap;

use parking_lot::Mutex;

use crate::fabric::SegId;
use crate::trace::SiteId;

/// Lint-catalog code strings for conflict classes. `netsim` sits below
/// `commint`, so the sanitizer reports codes as strings; the differential
/// harness joins them against `commint::LintCode` by code.
pub const CODE_OVERLAPPING_PUTS: &str = "CI009";
/// See [`CODE_OVERLAPPING_PUTS`].
pub const CODE_GET_PUT_CONFLICT: &str = "CI010";
/// See [`CODE_OVERLAPPING_PUTS`].
pub const CODE_SOURCE_REUSE: &str = "CI011";
/// See [`CODE_OVERLAPPING_PUTS`].
pub const CODE_READ_BEFORE_WAIT: &str = "CI012";

/// How a shadow record touches the owner's bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    /// A remote delivery (writes); `ordinal` numbers signalled deliveries
    /// into this owner's copy, `None` for unsignalled puts.
    PutData { ordinal: Option<u64> },
    /// The origin-side source read of a put (on the origin's own copy),
    /// live until the origin's `quiet_seq`-th quiet.
    PutSrc { quiet_seq: u64 },
    /// A remote get (reads).
    Get,
    /// Owner-local load.
    LocalRead,
    /// Owner-local store.
    LocalWrite,
}

impl Kind {
    fn writes(self) -> bool {
        matches!(self, Kind::PutData { .. } | Kind::LocalWrite)
    }
}

/// One shadow record: who touched which bytes of whose copy, and under
/// which synchronization state.
#[derive(Clone, Copy, Debug)]
struct Record {
    lo: usize,
    hi: usize,
    /// Accessing rank.
    rank: usize,
    /// Accessor's full-barrier count at the access.
    epoch: u64,
    /// Accessor's per-rank insertion index (program order within a rank).
    seq: u64,
    /// Accessor's cumulative signal wait on this segment (local accesses).
    waited: u64,
    /// Accessor's consumed-delivery count on this segment (flow control).
    consumed: u64,
    /// Accessor's quiet count (retires `PutSrc`).
    quiets: u64,
    site: Option<SiteId>,
    kind: Kind,
}

/// One conflicting unordered pair, with diagnostic context.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Conflict {
    /// `CI009`–`CI012` code string.
    pub code: &'static str,
    /// The symmetric segment.
    pub seg: SegId,
    /// Rank whose copy holds the conflicting bytes.
    pub owner: usize,
    /// Overlap start (byte offset into the segment).
    pub lo: usize,
    /// Overlap end (exclusive).
    pub hi: usize,
    /// The two accessing ranks (sorted).
    pub ranks: (usize, usize),
    /// Directive sites of the two accesses, if known.
    pub sites: (Option<SiteId>, Option<SiteId>),
    /// Epoch the conflict occurred in.
    pub epoch: u64,
}

impl std::fmt::Display for Conflict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: ranks {} and {} touch bytes [{}, {}) of rank {}'s copy of segment {} \
             concurrently in epoch {} (sites {:?}/{:?})",
            self.code,
            self.ranks.0,
            self.ranks.1,
            self.lo,
            self.hi,
            self.owner,
            self.seg.0,
            self.epoch,
            self.sites.0,
            self.sites.1,
        )
    }
}

/// Per-rank synchronization state the happens-before rules snapshot.
#[derive(Default)]
struct RankState {
    epoch: u64,
    seq: u64,
    quiets: u64,
    /// Cumulative signals waited per segment.
    waited: HashMap<usize, u64>,
    /// Cumulative deliveries consumed per segment.
    consumed: HashMap<usize, u64>,
    /// Accesses recorded by this rank.
    race_checks: u64,
    /// Conflicts detected at this rank's accesses.
    conflicts_found: u64,
}

/// Per-(segment, owner) shadow memory.
#[derive(Default)]
struct SlotShadow {
    window: u64,
    records: Vec<Record>,
}

/// The sanitizer: shared shadow state across all ranks of one run.
pub struct Sanitizer {
    ranks: Vec<Mutex<RankState>>,
    slots: Mutex<HashMap<(usize, usize), SlotShadow>>,
    conflicts: Mutex<Vec<Conflict>>,
}

impl Sanitizer {
    /// Shadow state for `nranks` ranks.
    pub fn new(nranks: usize) -> Sanitizer {
        Sanitizer {
            ranks: (0..nranks).map(|_| Mutex::default()).collect(),
            slots: Mutex::default(),
            conflicts: Mutex::default(),
        }
    }

    // -- rank-state hooks (called by RankCtx) -------------------------------

    /// A full barrier bumps the rank's epoch.
    pub(crate) fn on_full_barrier(&self, rank: usize) {
        self.ranks[rank].lock().epoch += 1;
    }

    /// `quiet` retires the rank's outstanding put source reads.
    pub(crate) fn on_quiet(&self, rank: usize) {
        self.ranks[rank].lock().quiets += 1;
    }

    /// The rank has now waited for `count` cumulative signals on `seg`.
    pub(crate) fn on_wait(&self, rank: usize, seg: SegId, count: u64) {
        let mut st = self.ranks[rank].lock();
        let w = st.waited.entry(seg.0).or_insert(0);
        *w = (*w).max(count);
    }

    /// The rank consumed `count` more deliveries on `seg`.
    pub(crate) fn on_consumed(&self, rank: usize, seg: SegId, count: u64) {
        *self.ranks[rank].lock().consumed.entry(seg.0).or_insert(0) += count;
    }

    // -- access hooks -------------------------------------------------------

    /// A put delivery into `target`'s copy. `ordinal` is the signal ordinal
    /// the fabric assigned (None for unsignalled).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_put_data(
        &self,
        origin: usize,
        seg: SegId,
        window: u64,
        target: usize,
        offset: usize,
        len: usize,
        ordinal: Option<u64>,
        site: Option<SiteId>,
    ) {
        self.record(
            origin,
            seg,
            window,
            target,
            offset,
            len,
            site,
            Kind::PutData { ordinal },
        );
    }

    /// The origin-side source read of a put from the origin's own copy.
    pub(crate) fn on_put_src(
        &self,
        origin: usize,
        seg: SegId,
        window: u64,
        offset: usize,
        len: usize,
        site: Option<SiteId>,
    ) {
        let quiet_seq = self.ranks[origin].lock().quiets;
        self.record(
            origin,
            seg,
            window,
            origin,
            offset,
            len,
            site,
            Kind::PutSrc { quiet_seq },
        );
    }

    /// A get from `target`'s copy.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_get(
        &self,
        origin: usize,
        seg: SegId,
        window: u64,
        target: usize,
        offset: usize,
        len: usize,
        site: Option<SiteId>,
    ) {
        self.record(origin, seg, window, target, offset, len, site, Kind::Get);
    }

    /// An owner-local load.
    pub(crate) fn on_local_read(
        &self,
        rank: usize,
        seg: SegId,
        window: u64,
        offset: usize,
        len: usize,
        site: Option<SiteId>,
    ) {
        self.record(rank, seg, window, rank, offset, len, site, Kind::LocalRead);
    }

    /// An owner-local store.
    pub(crate) fn on_local_write(
        &self,
        rank: usize,
        seg: SegId,
        window: u64,
        offset: usize,
        len: usize,
        site: Option<SiteId>,
    ) {
        self.record(rank, seg, window, rank, offset, len, site, Kind::LocalWrite);
    }

    #[allow(clippy::too_many_arguments)]
    fn record(
        &self,
        rank: usize,
        seg: SegId,
        window: u64,
        owner: usize,
        offset: usize,
        len: usize,
        site: Option<SiteId>,
        kind: Kind,
    ) {
        if len == 0 {
            return;
        }
        let rec = {
            let mut st = self.ranks[rank].lock();
            st.race_checks += 1;
            st.seq += 1;
            Record {
                lo: offset,
                hi: offset + len,
                rank,
                epoch: st.epoch,
                seq: st.seq,
                waited: st.waited.get(&seg.0).copied().unwrap_or(0),
                consumed: st.consumed.get(&seg.0).copied().unwrap_or(0),
                quiets: st.quiets,
                site,
                kind,
            }
        };
        let mut found = Vec::new();
        {
            let mut slots = self.slots.lock();
            let shadow = slots.entry((seg.0, owner)).or_default();
            shadow.window = window;
            for old in &shadow.records {
                if old.hi.min(rec.hi) <= old.lo.max(rec.lo) {
                    continue;
                }
                if !(old.kind.writes() || rec.kind.writes()) {
                    continue;
                }
                if ordered(old, &rec, owner, window) {
                    continue;
                }
                found.push(Conflict {
                    code: classify(old, &rec),
                    seg,
                    owner,
                    lo: old.lo.max(rec.lo),
                    hi: old.hi.min(rec.hi),
                    ranks: (old.rank.min(rec.rank), old.rank.max(rec.rank)),
                    sites: (old.site, rec.site),
                    epoch: rec.epoch,
                });
            }
            shadow.records.push(rec);
        }
        if !found.is_empty() {
            self.ranks[rank].lock().conflicts_found += found.len() as u64;
            self.conflicts.lock().extend(found);
        }
    }

    /// Per-rank `(race_checks, conflicts_found)` counters.
    pub(crate) fn rank_counters(&self, rank: usize) -> (u64, u64) {
        let st = self.ranks[rank].lock();
        (st.race_checks, st.conflicts_found)
    }

    /// Consume the sanitizer into its report.
    pub(crate) fn into_report(self) -> SanitizeReport {
        let race_checks = self.ranks.iter().map(|r| r.lock().race_checks).sum::<u64>();
        let mut conflicts = self.conflicts.into_inner();
        // Stable order for diffing across engines and interleavings.
        conflicts.sort_by_key(|c| (c.code, c.seg.0, c.owner, c.lo, c.hi, c.ranks, c.epoch));
        SanitizeReport {
            race_checks,
            conflicts,
        }
    }
}

/// Happens-before on two records over the same owner's copy. Must match
/// `commint::race::analyze_ops` — the differential harness enforces it.
fn ordered(a: &Record, b: &Record, owner: usize, window: u64) -> bool {
    if a.rank == b.rank {
        // CI011: the NIC's source read escapes program order until a quiet
        // retires it. `seq` is per-rank program order.
        let pair = match (a.kind, b.kind) {
            (Kind::PutSrc { quiet_seq }, Kind::LocalWrite) => Some((quiet_seq, a.seq, b)),
            (Kind::LocalWrite, Kind::PutSrc { quiet_seq }) => Some((quiet_seq, b.seq, a)),
            _ => None,
        };
        if let Some((quiet_seq, src_seq, wr)) = pair {
            return wr.seq < src_seq || wr.quiets > quiet_seq;
        }
        return true;
    }
    if a.epoch != b.epoch {
        return true;
    }
    // Signal-wait and flow-control edges between a delivery and an
    // owner-local access. A remote getter's `waited` concerns its own
    // copy, so the edge exists only when the non-delivery side IS the
    // owner.
    let sig = |del: &Record, loc: &Record| -> bool {
        if loc.rank != owner {
            return false;
        }
        match del.kind {
            Kind::PutData { ordinal: Some(o) } => {
                loc.waited >= o || o > loc.consumed.saturating_add(window)
            }
            _ => false,
        }
    };
    if matches!(a.kind, Kind::PutData { .. })
        && !matches!(b.kind, Kind::PutData { .. })
        && sig(a, b)
    {
        return true;
    }
    if matches!(b.kind, Kind::PutData { .. })
        && !matches!(a.kind, Kind::PutData { .. })
        && sig(b, a)
    {
        return true;
    }
    // Two signalled deliveries a full flow-control window apart.
    if let (Kind::PutData { ordinal: Some(x) }, Kind::PutData { ordinal: Some(y) }) =
        (a.kind, b.kind)
    {
        return x.abs_diff(y) >= window;
    }
    false
}

/// Conflict classification, mirroring `commint::race`.
fn classify(a: &Record, b: &Record) -> &'static str {
    use Kind::*;
    match (a.kind, b.kind) {
        (PutData { .. }, PutData { .. })
        | (PutData { .. }, LocalWrite)
        | (LocalWrite, PutData { .. }) => CODE_OVERLAPPING_PUTS,
        (PutData { .. }, Get) | (Get, PutData { .. }) | (Get, LocalWrite) | (LocalWrite, Get) => {
            CODE_GET_PUT_CONFLICT
        }
        (PutSrc { .. }, LocalWrite) | (LocalWrite, PutSrc { .. }) => CODE_SOURCE_REUSE,
        _ => CODE_READ_BEFORE_WAIT,
    }
}

/// The sanitizer's verdict for one run.
#[derive(Clone, Debug, Default)]
pub struct SanitizeReport {
    /// Total accesses recorded (deterministic).
    pub race_checks: u64,
    /// Every conflicting unordered pair, in stable order.
    pub conflicts: Vec<Conflict>,
}

impl SanitizeReport {
    /// Number of conflicting pairs found.
    pub fn conflicts_found(&self) -> usize {
        self.conflicts.len()
    }

    /// The distinct conflict codes, for differential comparison against the
    /// static analyzer's verdict.
    pub fn codes(&self) -> BTreeSet<&'static str> {
        self.conflicts.iter().map(|c| c.code).collect()
    }

    /// Abort with a full diagnostic if any conflict was recorded.
    pub fn assert_clean(&self) {
        if self.conflicts.is_empty() {
            return;
        }
        let mut msg = format!(
            "one-sided race sanitizer found {} conflicting access pair(s):\n",
            self.conflicts.len()
        );
        for c in &self.conflicts {
            msg.push_str(&format!("  {c}\n"));
        }
        panic!("{msg}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(rank: usize, kind: Kind) -> Record {
        Record {
            lo: 0,
            hi: 8,
            rank,
            epoch: 0,
            seq: 1,
            waited: 0,
            consumed: 0,
            quiets: 0,
            site: None,
            kind,
        }
    }

    #[test]
    fn epoch_and_program_order_dominate() {
        let a = rec(0, Kind::PutData { ordinal: Some(1) });
        let mut b = rec(1, Kind::LocalRead);
        assert!(!ordered(&a, &b, 1, u64::MAX), "unwaited read races");
        b.waited = 1;
        assert!(ordered(&a, &b, 1, u64::MAX), "signal wait orders");
        b.waited = 0;
        b.epoch = 1;
        assert!(ordered(&a, &b, 1, u64::MAX), "barrier orders");
        let same = rec(0, Kind::LocalWrite);
        assert!(ordered(&a, &same, 1, u64::MAX), "program order");
    }

    #[test]
    fn put_src_outlives_program_order_until_quiet() {
        let src = rec(0, Kind::PutSrc { quiet_seq: 0 });
        let mut wr = rec(0, Kind::LocalWrite);
        wr.seq = 2;
        assert!(!ordered(&src, &wr, 0, u64::MAX), "write-before-quiet races");
        wr.quiets = 1;
        assert!(ordered(&src, &wr, 0, u64::MAX), "quiet retires the source");
        let mut early = rec(0, Kind::LocalWrite);
        early.seq = 0;
        assert!(ordered(&src, &early, 0, u64::MAX), "write before the put");
    }

    #[test]
    fn flow_control_window_orders_distant_deliveries() {
        let a = rec(0, Kind::PutData { ordinal: Some(1) });
        let b = rec(1, Kind::PutData { ordinal: Some(3) });
        assert!(!ordered(&a, &b, 2, u64::MAX));
        assert!(ordered(&a, &b, 2, 2), "a full window apart");
        assert!(!ordered(&a, &b, 2, 3));
    }

    #[test]
    fn report_classifies_and_aborts() {
        let san = Sanitizer::new(2);
        san.on_put_data(0, SegId(0), u64::MAX, 1, 0, 8, Some(1), Some(7));
        san.on_local_read(1, SegId(0), u64::MAX, 4, 8, None);
        let report = san.into_report();
        assert_eq!(report.race_checks, 2);
        assert_eq!(report.conflicts_found(), 1);
        assert_eq!(
            report.codes().into_iter().collect::<Vec<_>>(),
            vec![CODE_READ_BEFORE_WAIT]
        );
        let c = &report.conflicts[0];
        assert_eq!((c.lo, c.hi), (4, 8));
        assert_eq!(c.ranks, (0, 1));
        let result = std::panic::catch_unwind(|| report.assert_clean());
        assert!(result.is_err(), "assert_clean aborts on conflicts");
    }
}
