//! The shared machine state: per-rank mailboxes (tag matching), group
//! barriers with clock reconciliation, and the one-sided symmetric segment
//! store with per-delivery signals.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::{Condvar, Mutex, RwLock};

use crate::msg::{
    match_timing, Completion, Envelope, RecvDone, RecvRequest, RecvSlot, SendRequest, SrcSel,
    TagSel, WireCosts,
};
use crate::time::Time;
use crate::trace::MailboxHotStats;

// ---------------------------------------------------------------------------
// Mailboxes / tag matching
// ---------------------------------------------------------------------------

struct PostedRecv {
    tag: TagSel,
    post_time: Time,
    /// Global posting-order stamp across both lanes; MPI requires receives
    /// to match in posting order regardless of selector shape.
    post_seq: u64,
    slot: Arc<RecvSlot>,
}

/// Indexed matching state. Instead of one flat unexpected queue scanned (and
/// a `HashMap` rebuilt) on every post, both sides of the match are indexed by
/// source rank:
///
/// * `unexpected[src]` — parked envelopes from `src`, in arrival order. A
///   source's messages enter the mailbox in program order, so the front-most
///   tag match in its lane *is* that source's oldest eligible candidate
///   (MPI non-overtaking), found without touching other sources' traffic.
/// * `posted_exact[src]` — posted receives pinned to `SrcSel::Exact(src)`.
/// * `posted_any` — the wildcard lane (`SrcSel::Any` receives).
///
/// The exact-source/exact-tag fast path is O(1); wildcard posts are
/// O(active sources); deliveries scan one exact lane plus the wildcard lane.
/// `active_srcs` keeps the set of non-empty unexpected lanes sorted so
/// wildcard scans are deterministic and skip idle sources.
struct MailboxInner {
    unexpected: Vec<VecDeque<Envelope>>,
    /// Sources with a non-empty `unexpected` lane, ascending.
    active_srcs: Vec<usize>,
    unexpected_total: usize,
    posted_exact: Vec<VecDeque<PostedRecv>>,
    posted_any: VecDeque<PostedRecv>,
    posted_total: usize,
    stats: MailboxHotStats,
}

/// One rank's incoming-message matching engine.
pub struct Mailbox {
    inner: Mutex<MailboxInner>,
    /// Posting-order stamp, taken outside the matching lock. Only the owning
    /// rank posts receives to its own mailbox, so an atomic fetch-add
    /// preserves program order exactly.
    post_seq: AtomicU64,
}

impl MailboxInner {
    fn note_parked(&mut self, src: usize) {
        if self.unexpected[src].len() == 1 {
            // Lane just became non-empty.
            let pos = self.active_srcs.partition_point(|&s| s < src);
            self.active_srcs.insert(pos, src);
        }
        self.unexpected_total += 1;
        if self.unexpected_total > self.stats.uq_high_water {
            self.stats.uq_high_water = self.unexpected_total;
        }
    }

    fn take_unexpected(&mut self, src: usize, idx: usize) -> Envelope {
        let env = self.unexpected[src].remove(idx).expect("index valid");
        if self.unexpected[src].is_empty() {
            if let Ok(pos) = self.active_srcs.binary_search(&src) {
                self.active_srcs.remove(pos);
            }
        }
        self.unexpected_total -= 1;
        env
    }

    /// Front-most tag match in `src`'s unexpected lane: the oldest eligible
    /// candidate from that source under non-overtaking.
    fn oldest_match(&mut self, src: usize, tag: TagSel) -> Option<usize> {
        let mut steps = 0;
        let mut hit = None;
        for (i, e) in self.unexpected[src].iter().enumerate() {
            steps += 1;
            if tag.matches(e.tag) {
                hit = Some(i);
                break;
            }
        }
        self.stats.match_scan_steps += steps;
        hit
    }
}

impl Mailbox {
    fn new(nranks: usize) -> Self {
        Mailbox {
            inner: Mutex::new(MailboxInner {
                unexpected: (0..nranks).map(|_| VecDeque::new()).collect(),
                active_srcs: Vec::new(),
                unexpected_total: 0,
                posted_exact: (0..nranks).map(|_| VecDeque::new()).collect(),
                posted_any: VecDeque::new(),
                posted_total: 0,
                stats: MailboxHotStats::default(),
            }),
            post_seq: AtomicU64::new(0),
        }
    }

    /// Deliver an envelope: match against posted receives (in posting order)
    /// or park it in the per-source unexpected lane.
    fn deliver(&self, env: Envelope) {
        let mut g = self.inner.lock();
        g.stats.lock_acquisitions += 1;
        // Earliest-posted matching receive: the front-most tag match in the
        // sender's exact lane vs. the front-most match in the wildcard
        // lane, whichever was posted first. Each lane is in posting order,
        // so the two lane-firsts bracket every candidate.
        let mut steps = 0;
        let mut exact_hit: Option<(usize, u64)> = None;
        for (i, p) in g.posted_exact[env.src].iter().enumerate() {
            steps += 1;
            if p.tag.matches(env.tag) {
                exact_hit = Some((i, p.post_seq));
                break;
            }
        }
        let mut any_hit: Option<(usize, u64)> = None;
        for (i, p) in g.posted_any.iter().enumerate() {
            steps += 1;
            if p.tag.matches(env.tag) {
                any_hit = Some((i, p.post_seq));
                break;
            }
        }
        g.stats.match_scan_steps += steps;
        let winner = match (exact_hit, any_hit) {
            (Some((i, a)), Some((_, b))) if a < b => Some((true, i)),
            (Some(_), Some((j, _))) => Some((false, j)),
            (Some((i, _)), None) => Some((true, i)),
            (None, Some((j, _))) => Some((false, j)),
            (None, None) => None,
        };
        match winner {
            Some((in_exact, idx)) => {
                let posted = if in_exact {
                    g.posted_exact[env.src].remove(idx).expect("index valid")
                } else {
                    g.posted_any.remove(idx).expect("index valid")
                };
                g.posted_total -= 1;
                drop(g);
                complete_match(env, posted.post_time, &posted.slot);
            }
            None => {
                // Eager messages complete the sender immediately; rendezvous
                // sends stay pending until matched.
                if env.costs.eager {
                    env.send_done.set(env.depart);
                }
                let src = env.src;
                g.unexpected[src].push_back(env);
                g.note_parked(src);
            }
        }
    }

    /// Post a receive at virtual time `post_time`. If a matching message is
    /// already parked, the receive completes immediately; otherwise it is
    /// queued for the next matching delivery.
    fn post(&self, src: SrcSel, tag: TagSel, post_time: Time, slot: Arc<RecvSlot>) {
        let seq = self.post_seq.fetch_add(1, Ordering::Relaxed);
        let mut g = self.inner.lock();
        g.stats.lock_acquisitions += 1;
        // MPI non-overtaking: per source, messages match in send order, so
        // only each source's *oldest* parked candidate is eligible — the
        // front-most tag match in its lane. Among eligible candidates from
        // different sources, pick the earliest virtual arrival, tie-broken
        // by source rank. Both key components are virtual quantities, so the
        // choice is independent of the physical order in which the parked
        // messages were delivered — and therefore of the execution engine.
        let best: Option<(usize, usize)> = match src {
            SrcSel::Exact(s) => g.oldest_match(s, tag).map(|i| (s, i)),
            SrcSel::Any => {
                let active = std::mem::take(&mut g.active_srcs);
                let mut best: Option<(usize, usize, (Time, usize))> = None;
                for &s in &active {
                    if let Some(i) = g.oldest_match(s, tag) {
                        let e = &g.unexpected[s][i];
                        let key = (e.costs.eager_arrival(e.depart, e.payload.len()), s);
                        if best.map(|(_, _, k)| key < k).unwrap_or(true) {
                            best = Some((s, i, key));
                        }
                    }
                }
                g.active_srcs = active;
                best.map(|(s, i, _)| (s, i))
            }
        };
        match best {
            Some((s, i)) => {
                let env = g.take_unexpected(s, i);
                drop(g);
                complete_match(env, post_time, &slot);
            }
            None => {
                let posted = PostedRecv {
                    tag,
                    post_time,
                    post_seq: seq,
                    slot,
                };
                match src {
                    SrcSel::Exact(s) => g.posted_exact[s].push_back(posted),
                    SrcSel::Any => g.posted_any.push_back(posted),
                }
                g.posted_total += 1;
            }
        }
    }

    /// Number of parked unexpected messages (diagnostics).
    pub fn unexpected_len(&self) -> usize {
        self.inner.lock().unexpected_total
    }

    /// Number of outstanding posted receives (diagnostics).
    pub fn posted_len(&self) -> usize {
        self.inner.lock().posted_total
    }

    /// Snapshot of the hot-path contention counters.
    pub fn hot_stats(&self) -> MailboxHotStats {
        self.inner.lock().stats
    }
}

fn complete_match(env: Envelope, post_time: Time, slot: &RecvSlot) {
    let bytes = env.payload.len();
    let timing = match_timing(&env.costs, bytes, env.depart, post_time);
    env.send_done.set(timing.send_complete);
    slot.set(RecvDone {
        payload: env.payload,
        completion: timing.recv_complete,
        unexpected: timing.unexpected,
        src: env.src,
        tag: env.tag,
    });
}

// ---------------------------------------------------------------------------
// Group barriers with clock reconciliation
// ---------------------------------------------------------------------------

#[derive(Default)]
struct BarrierInner {
    generation: u64,
    arrived: usize,
    max_entry: Time,
    exit_time: Time,
    /// Bounded-engine single-wake registrations: ranks parked in this
    /// generation, woken through the scheduler by the last arriver.
    waiters: Vec<crate::sched::Waiter>,
}

/// A reusable barrier over a fixed group size that also reconciles virtual
/// clocks: every participant leaves with `max(entry clocks) + cost`.
pub struct GroupBarrier {
    size: usize,
    inner: Mutex<BarrierInner>,
    cv: Condvar,
}

impl GroupBarrier {
    fn new(size: usize) -> Self {
        GroupBarrier {
            size,
            inner: Mutex::new(BarrierInner::default()),
            cv: Condvar::new(),
        }
    }

    /// Enter with local clock `entry`; returns the reconciled exit clock.
    /// `cost` is charged once on top of the max entry time (the last
    /// arriver's model decides it; all participants pass the same value in
    /// practice since they use the same library for the barrier).
    pub fn enter(&self, entry: Time, cost: Time) -> Time {
        let mut g = self.inner.lock();
        let gen = g.generation;
        g.max_entry = g.max_entry.max(entry);
        g.arrived += 1;
        if g.arrived == self.size {
            let exit = g.max_entry + cost;
            g.exit_time = exit;
            g.arrived = 0;
            g.max_entry = Time::ZERO;
            g.generation += 1;
            let waiters = std::mem::take(&mut g.waiters);
            self.cv.notify_all();
            drop(g);
            // Wake parked ranks through the scheduler: each is queued at the
            // reconciled exit clock and granted a slot LVT-first (no
            // condvar broadcast storm).
            for w in waiters {
                w.wake(exit);
            }
            exit
        } else if let Some(w) = crate::sched::yield_slot() {
            g.waiters.push(w);
            drop(g);
            crate::sched::park_self();
            // Woken ⇒ our generation completed. The next generation cannot
            // finish (and overwrite `exit_time`) before we re-enter.
            self.inner.lock().exit_time
        } else {
            while g.generation == gen {
                self.cv.wait(&mut g);
            }
            g.exit_time
        }
    }
}

// ---------------------------------------------------------------------------
// Sharded group-keyed registries
// ---------------------------------------------------------------------------

/// Shard count for group-keyed registry maps (power of two).
const MAP_SHARDS: usize = 16;

/// A group-keyed registry (`group: Vec<usize>` → shared state) split over
/// fixed shards, so concurrent lookups for unrelated groups — e.g. disjoint
/// subcommunicator barriers entered from many rank threads at once — do not
/// serialize on one global mutex. Entries are never removed: groups are
/// stable for a simulation's lifetime.
struct ShardedMap<V> {
    shards: Vec<Mutex<HashMap<Vec<usize>, V>>>,
}

impl<V> Default for ShardedMap<V> {
    fn default() -> Self {
        ShardedMap {
            shards: (0..MAP_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }
}

impl<V: Clone> ShardedMap<V> {
    fn shard_of(key: &[usize]) -> usize {
        // FNV-1a over the group members; cheap and stable.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &k in key {
            h ^= k as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        (h as usize) & (MAP_SHARDS - 1)
    }

    fn get_or_insert_with(&self, key: &[usize], make: impl FnOnce() -> V) -> V {
        let mut g = self.shards[Self::shard_of(key)].lock();
        g.entry(key.to_vec()).or_insert_with(make).clone()
    }
}

// ---------------------------------------------------------------------------
// Symmetric segments (one-sided memory)
// ---------------------------------------------------------------------------

/// Identifier of a symmetric segment, valid on every participating rank.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SegId(pub usize);

struct SlotInner {
    data: Vec<u8>,
    /// Virtual arrival times of signalled deliveries, in delivery order.
    signals: Vec<Time>,
    /// Number of signalled deliveries the owner has consumed (flow control).
    consumed: u64,
    /// Bounded-engine single-wake registration: the owner parked until the
    /// `.0`-th (1-based) signal lands; the delivering put wakes it through
    /// the scheduler.
    waiting: Option<(usize, crate::sched::Waiter)>,
}

struct Slot {
    inner: Mutex<SlotInner>,
    cv: Condvar,
}

/// A symmetric allocation: `bytes` of memory on each rank of `group`.
pub struct Segment {
    bytes: usize,
    /// Participating global ranks, ascending.
    group: Vec<usize>,
    /// One slot per participating rank, indexed by position in `group`.
    slots: Vec<Slot>,
    /// Flow-control window: a signalled put physically blocks while
    /// `signals - consumed >= window` (staging-slot reuse safety).
    window: u64,
}

impl Segment {
    fn slot_of(&self, rank: usize) -> &Slot {
        let idx = self
            .group
            .binary_search(&rank)
            .unwrap_or_else(|_| panic!("rank {rank} not in segment group {:?}", self.group));
        &self.slots[idx]
    }

    /// Size in bytes of the per-rank allocation.
    pub fn len(&self) -> usize {
        self.bytes
    }

    /// Whether the allocation is zero-sized.
    pub fn is_empty(&self) -> bool {
        self.bytes == 0
    }
}

#[derive(Default)]
struct AllocRendezvous {
    generation: u64,
    arrived: usize,
    bytes: usize,
    window: u64,
    result: Option<SegId>,
}

struct AllocState {
    inner: Mutex<AllocRendezvous>,
    cv: Condvar,
}

/// The one-sided memory store: symmetric segments plus the collective
/// allocation rendezvous per group.
#[derive(Default)]
pub struct SegmentStore {
    segments: RwLock<Vec<Arc<Segment>>>,
    allocs: ShardedMap<Arc<AllocState>>,
}

impl SegmentStore {
    /// Collective symmetric allocation over `group` (ascending global
    /// ranks). Every rank in the group must call with identical arguments;
    /// all receive the same [`SegId`]. Mirrors `shmalloc` semantics (which
    /// synchronizes all PEs). `window` bounds outstanding signalled
    /// deliveries per destination (use `u64::MAX` for none).
    pub fn alloc(&self, group: &[usize], bytes: usize, window: u64) -> SegId {
        debug_assert!(
            group.windows(2).all(|w| w[0] < w[1]),
            "group must be sorted"
        );
        let state = self.allocs.get_or_insert_with(group, || {
            Arc::new(AllocState {
                inner: Mutex::new(AllocRendezvous::default()),
                cv: Condvar::new(),
            })
        });
        let mut g = state.inner.lock();
        let gen = g.generation;
        if g.arrived == 0 {
            g.bytes = bytes;
            g.window = window;
            g.result = None;
        } else {
            assert_eq!(
                g.bytes, bytes,
                "symmetric alloc size mismatch across ranks in group {group:?}"
            );
            assert_eq!(
                g.window, window,
                "symmetric alloc window mismatch across ranks in group {group:?}"
            );
        }
        g.arrived += 1;
        if g.arrived == group.len() {
            let seg = Arc::new(Segment {
                bytes,
                group: group.to_vec(),
                window,
                slots: group
                    .iter()
                    .map(|_| Slot {
                        inner: Mutex::new(SlotInner {
                            data: vec![0u8; bytes],
                            signals: Vec::new(),
                            consumed: 0,
                            waiting: None,
                        }),
                        cv: Condvar::new(),
                    })
                    .collect(),
            });
            let id = {
                let mut segs = self.segments.write();
                segs.push(seg);
                SegId(segs.len() - 1)
            };
            g.result = Some(id);
            g.arrived = 0;
            g.generation += 1;
            self.cv_notify(&state);
            id
        } else {
            crate::sched::pre_block();
            while g.generation == gen {
                state.cv.wait(&mut g);
            }
            let id = g.result.expect("alloc result set by last arriver");
            drop(g);
            crate::sched::post_block();
            id
        }
    }

    fn cv_notify(&self, state: &AllocState) {
        state.cv.notify_all();
    }

    fn seg(&self, id: SegId) -> Arc<Segment> {
        Arc::clone(&self.segments.read()[id.0])
    }

    /// Flow-control window of a segment (deliveries that may be in flight
    /// before the owner consumes; `u64::MAX` = unbounded).
    pub fn window_of(&self, id: SegId) -> u64 {
        self.seg(id).window
    }

    /// Write `data` into `target`'s copy of the segment at `offset`.
    /// If `signal_arrival` is set, appends a delivery signal with that
    /// virtual arrival time and wakes waiters; returns the signal's
    /// 1-based ordinal on the target's copy (the race sanitizer keys its
    /// signal-wait edge on it).
    pub fn put(
        &self,
        id: SegId,
        target: usize,
        offset: usize,
        data: &[u8],
        signal_arrival: Option<Time>,
    ) -> Option<u64> {
        let seg = self.seg(id);
        let slot = seg.slot_of(target);
        let mut g = slot.inner.lock();
        let mut yielded = false;
        if signal_arrival.is_some() {
            // Flow control: do not overwrite a staging slot the owner has
            // not consumed yet. Purely physical (no virtual-time charge):
            // models adequately-sized staging on the critical path.
            while (g.signals.len() as u64).saturating_sub(g.consumed) >= seg.window {
                if !yielded {
                    crate::sched::pre_block();
                    yielded = true;
                }
                slot.cv.wait(&mut g);
            }
        }
        assert!(
            offset + data.len() <= g.data.len(),
            "put out of bounds: {}+{} > {}",
            offset,
            data.len(),
            g.data.len()
        );
        g.data[offset..offset + data.len()].copy_from_slice(data);
        let mut waker = None;
        let mut ordinal = None;
        if let Some(t) = signal_arrival {
            g.signals.push(t);
            ordinal = Some(g.signals.len() as u64);
            if let Some((need, _)) = g.waiting.as_ref() {
                if g.signals.len() >= *need {
                    let (need, w) = g.waiting.take().unwrap();
                    waker = Some((w, g.signals[need - 1]));
                }
            }
            slot.cv.notify_all();
        }
        drop(g);
        if let Some((w, t)) = waker {
            // Single-wake handoff to the parked owner, queued at the
            // virtual arrival time of the signal it was waiting for.
            w.wake(t);
        }
        if yielded {
            // The write above ran slot-less (bounded, lock-holding work);
            // reacquire only after the slot mutex is released so the owner's
            // `mark_consumed` can never be blocked by a parked sender.
            crate::sched::post_block();
        }
        ordinal
    }

    /// Mark `count` additional signalled deliveries as consumed by `rank`
    /// (releases flow-controlled senders).
    pub fn mark_consumed(&self, id: SegId, rank: usize, count: u64) {
        let seg = self.seg(id);
        let slot = seg.slot_of(rank);
        let mut g = slot.inner.lock();
        g.consumed += count;
        slot.cv.notify_all();
    }

    /// Read `out.len()` bytes from `target`'s copy at `offset`.
    pub fn read(&self, id: SegId, target: usize, offset: usize, out: &mut [u8]) {
        let seg = self.seg(id);
        let slot = seg.slot_of(target);
        let g = slot.inner.lock();
        assert!(
            offset + out.len() <= g.data.len(),
            "read out of bounds: {}+{} > {}",
            offset,
            out.len(),
            g.data.len()
        );
        out.copy_from_slice(&g.data[offset..offset + out.len()]);
    }

    /// Physically block until at least `count` signalled deliveries have
    /// landed in `rank`'s copy of the segment; returns the virtual arrival
    /// time of the `count`-th (1-based) delivery.
    pub fn wait_signals(&self, id: SegId, rank: usize, count: usize) -> Time {
        assert!(count >= 1, "must wait for at least one signal");
        let seg = self.seg(id);
        let slot = seg.slot_of(rank);
        let mut g = slot.inner.lock();
        if g.signals.len() >= count {
            return g.signals[count - 1];
        }
        if let Some(w) = crate::sched::yield_slot() {
            debug_assert!(g.waiting.is_none(), "two waiters on one slot");
            g.waiting = Some((count, w));
            drop(g);
            crate::sched::park_self();
            // Woken ⇒ the count-th signal landed (signals only grow).
            slot.inner.lock().signals[count - 1]
        } else {
            while g.signals.len() < count {
                slot.cv.wait(&mut g);
            }
            g.signals[count - 1]
        }
    }

    /// Number of signalled deliveries so far on `rank`'s copy.
    pub fn signal_count(&self, id: SegId, rank: usize) -> usize {
        let seg = self.seg(id);
        let slot = seg.slot_of(rank);
        let n = slot.inner.lock().signals.len();
        n
    }
}

// ---------------------------------------------------------------------------
// Fabric: everything a rank reaches through
// ---------------------------------------------------------------------------

/// The shared interconnect + memory fabric of one simulated machine.
pub struct Fabric {
    nranks: usize,
    mailboxes: Vec<Mailbox>,
    barriers: ShardedMap<Arc<GroupBarrier>>,
    segments: SegmentStore,
}

impl Fabric {
    pub fn new(nranks: usize) -> Arc<Self> {
        Arc::new(Fabric {
            nranks,
            mailboxes: (0..nranks).map(|_| Mailbox::new(nranks)).collect(),
            barriers: ShardedMap::default(),
            segments: SegmentStore::default(),
        })
    }

    /// Total number of ranks on the machine.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// The one-sided segment store.
    pub fn segments(&self) -> &SegmentStore {
        &self.segments
    }

    /// Mailbox of `rank` (diagnostics).
    pub fn mailbox(&self, rank: usize) -> &Mailbox {
        &self.mailboxes[rank]
    }

    /// Initiate a non-blocking two-sided send. `depart` is the sender's
    /// clock after charging `o_send`.
    pub fn send(
        &self,
        src: usize,
        dst: usize,
        tag: i32,
        payload: Bytes,
        depart: Time,
        costs: WireCosts,
    ) -> SendRequest {
        assert!(dst < self.nranks, "send to nonexistent rank {dst}");
        let done = Completion::new();
        let bytes = payload.len();
        let env = Envelope {
            src,
            dst,
            tag,
            payload,
            depart,
            costs,
            send_done: Arc::clone(&done),
        };
        self.mailboxes[dst].deliver(env);
        SendRequest { done, bytes }
    }

    /// Post a non-blocking receive on `rank`'s mailbox. `post_time` is the
    /// receiver's clock after charging `o_recv`.
    pub fn recv(&self, rank: usize, src: SrcSel, tag: TagSel, post_time: Time) -> RecvRequest {
        let slot = RecvSlot::new();
        self.mailboxes[rank].post(src, tag, post_time, Arc::clone(&slot));
        RecvRequest {
            slot,
            posted: post_time,
        }
    }

    /// Barrier over `group` (ascending global ranks), reconciling clocks.
    pub fn barrier(&self, group: &[usize], entry: Time, cost: Time) -> Time {
        debug_assert!(
            group.windows(2).all(|w| w[0] < w[1]),
            "group must be sorted"
        );
        let b = self
            .barriers
            .get_or_insert_with(group, || Arc::new(GroupBarrier::new(group.len())));
        b.enter(entry, cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn eager_costs() -> WireCosts {
        WireCosts {
            latency: 1_000,
            byte_time_ns: 1.0,
            handshake: 0,
            unexpected_per_byte: 0.5,
            eager: true,
        }
    }

    #[test]
    fn send_then_recv_matches() {
        let f = Fabric::new(2);
        let req = f.send(
            0,
            1,
            7,
            Bytes::from_static(b"abcd"),
            Time(100),
            eager_costs(),
        );
        assert_eq!(f.mailbox(1).unexpected_len(), 1);
        let r = f.recv(1, SrcSel::Exact(0), TagSel::Exact(7), Time(0));
        let done = r.wait_raw();
        assert_eq!(&done.payload[..], b"abcd");
        // depart 100 + L 1000 + 4 bytes = 1104; post at 0 => arrival wins.
        assert_eq!(done.completion, Time(1_104));
        // Virtual arrival (1104) is after the post (0), so even though the
        // message physically sat in the unexpected queue, no copy is charged.
        assert!(!done.unexpected);
        assert_eq!(req.wait_raw(), Time(100));
    }

    #[test]
    fn recv_then_send_matches() {
        let f = Fabric::new(2);
        let r = f.recv(1, SrcSel::Exact(0), TagSel::Exact(3), Time(50));
        assert_eq!(f.mailbox(1).posted_len(), 1);
        f.send(0, 1, 3, Bytes::from_static(b"xy"), Time(0), eager_costs());
        let done = r.wait_raw();
        assert_eq!(&done.payload[..], b"xy");
        assert!(!done.unexpected);
        assert_eq!(done.completion, Time(1_002)); // max(50, 0+1000+2)
    }

    #[test]
    fn unexpected_flag_on_late_post() {
        let f = Fabric::new(2);
        f.send(0, 1, 1, Bytes::from_static(b"zz"), Time(0), eager_costs());
        // Virtual arrival = 1002; post at 10_000 => unexpected.
        let r = f.recv(1, SrcSel::Exact(0), TagSel::Exact(1), Time(10_000));
        let done = r.wait_raw();
        assert!(done.unexpected);
        assert_eq!(done.completion, Time(10_001)); // 10_000 + 0.5*2
    }

    #[test]
    fn tag_and_source_selective_matching() {
        let f = Fabric::new(3);
        f.send(0, 2, 5, Bytes::from_static(b"A"), Time(0), eager_costs());
        f.send(1, 2, 6, Bytes::from_static(b"B"), Time(0), eager_costs());
        let r6 = f.recv(2, SrcSel::Any, TagSel::Exact(6), Time(0));
        assert_eq!(&r6.wait_raw().payload[..], b"B");
        let r5 = f.recv(2, SrcSel::Exact(0), TagSel::Any, Time(0));
        let d5 = r5.wait_raw();
        assert_eq!(&d5.payload[..], b"A");
        assert_eq!(d5.src, 0);
        assert_eq!(d5.tag, 5);
    }

    #[test]
    fn wildcard_prefers_earliest_virtual_arrival() {
        let f = Fabric::new(3);
        // Physically delivered first but departs later virtually.
        f.send(
            0,
            2,
            1,
            Bytes::from_static(b"late"),
            Time(9_000),
            eager_costs(),
        );
        f.send(
            1,
            2,
            1,
            Bytes::from_static(b"early"),
            Time(0),
            eager_costs(),
        );
        let r = f.recv(2, SrcSel::Any, TagSel::Exact(1), Time(20_000));
        assert_eq!(&r.wait_raw().payload[..], b"early");
    }

    #[test]
    fn same_source_fifo_order() {
        let f = Fabric::new(2);
        for (i, t) in [(0u8, 0u64), (1, 10), (2, 20)] {
            f.send(
                0,
                1,
                9,
                Bytes::copy_from_slice(&[i]),
                Time(t),
                eager_costs(),
            );
        }
        for expect in 0u8..3 {
            let r = f.recv(1, SrcSel::Exact(0), TagSel::Exact(9), Time(0));
            assert_eq!(r.wait_raw().payload[0], expect);
        }
    }

    #[test]
    fn rendezvous_send_completion_requires_match() {
        let mut costs = eager_costs();
        costs.eager = false;
        costs.handshake = 500;
        let f = Fabric::new(2);
        let s = f.send(0, 1, 2, Bytes::from_static(&[0u8; 16]), Time(0), costs);
        assert!(s.poll().is_none(), "rendezvous send pending until matched");
        let r = f.recv(1, SrcSel::Exact(0), TagSel::Exact(2), Time(4_000));
        let d = r.wait_raw();
        // xfer_start = max(0+1000, 4000) + 500 = 4500; arrival = +1000+16
        assert_eq!(d.completion, Time(5_516));
        assert_eq!(s.wait_raw(), d.completion);
    }

    #[test]
    fn cross_thread_blocking_wait() {
        let f = Fabric::new(2);
        let f2 = Arc::clone(&f);
        let h = thread::spawn(move || {
            let r = f2.recv(1, SrcSel::Exact(0), TagSel::Exact(0), Time(0));
            r.wait_raw().payload.to_vec()
        });
        thread::sleep(std::time::Duration::from_millis(20));
        f.send(0, 1, 0, Bytes::from_static(b"ping"), Time(5), eager_costs());
        assert_eq!(h.join().unwrap(), b"ping");
    }

    #[test]
    fn barrier_reconciles_clocks() {
        let f = Fabric::new(4);
        let group = [0usize, 1, 2, 3];
        let mut handles = Vec::new();
        for r in 0..4usize {
            let f = Arc::clone(&f);
            handles.push(thread::spawn(move || {
                f.barrier(&group[..], Time(100 * (r as u64 + 1)), Time(50))
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), Time(450)); // max entry 400 + 50
        }
    }

    #[test]
    fn barrier_reusable_across_generations() {
        let f = Fabric::new(2);
        let group = [0usize, 1];
        for round in 0..3u64 {
            let f0 = Arc::clone(&f);
            let g = group;
            let h = thread::spawn(move || f0.barrier(&g[..], Time(round * 10), Time(1)));
            let me = f.barrier(&group[..], Time(round * 10 + 5), Time(1));
            assert_eq!(me, Time(round * 10 + 6));
            assert_eq!(h.join().unwrap(), me);
        }
    }

    #[test]
    fn subgroup_barriers_are_independent() {
        let f = Fabric::new(4);
        let a = [0usize, 1];
        let b = [2usize, 3];
        let fa = Arc::clone(&f);
        let ha = thread::spawn(move || fa.barrier(&a[..], Time(10), Time(1)));
        let fb = Arc::clone(&f);
        let hb = thread::spawn(move || fb.barrier(&b[..], Time(100), Time(1)));
        assert_eq!(f.barrier(&a[..], Time(20), Time(1)), Time(21));
        assert_eq!(f.barrier(&b[..], Time(200), Time(1)), Time(201));
        ha.join().unwrap();
        hb.join().unwrap();
    }

    #[test]
    fn symmetric_alloc_and_put_get() {
        let f = Fabric::new(2);
        let group = [0usize, 1];
        let f2 = Arc::clone(&f);
        let h = thread::spawn(move || f2.segments().alloc(&[0, 1], 64, u64::MAX));
        let id = f.segments().alloc(&group[..], 64, u64::MAX);
        assert_eq!(h.join().unwrap(), id);

        f.segments().put(id, 1, 8, b"hello", None);
        let mut out = [0u8; 5];
        f.segments().read(id, 1, 8, &mut out);
        assert_eq!(&out, b"hello");
        // Rank 0's copy untouched.
        f.segments().read(id, 0, 8, &mut out);
        assert_eq!(&out, &[0u8; 5]);
    }

    #[test]
    fn signalled_puts_wake_waiters_in_order() {
        let f = Fabric::new(2);
        let f2 = Arc::clone(&f);
        let ha = thread::spawn(move || f2.segments().alloc(&[0, 1], 16, u64::MAX));
        let id = f.segments().alloc(&[0, 1], 16, u64::MAX);
        ha.join().unwrap();

        let f3 = Arc::clone(&f);
        let waiter = thread::spawn(move || {
            let t1 = f3.segments().wait_signals(id, 1, 1);
            let t2 = f3.segments().wait_signals(id, 1, 2);
            (t1, t2)
        });
        thread::sleep(std::time::Duration::from_millis(10));
        f.segments().put(id, 1, 0, &[1u8; 4], Some(Time(111)));
        f.segments().put(id, 1, 4, &[2u8; 4], Some(Time(222)));
        let (t1, t2) = waiter.join().unwrap();
        assert_eq!((t1, t2), (Time(111), Time(222)));
        assert_eq!(f.segments().signal_count(id, 1), 2);
        assert_eq!(f.segments().signal_count(id, 0), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn put_out_of_bounds_panics() {
        let f = Fabric::new(1);
        let id = f.segments().alloc(&[0], 4, u64::MAX);
        f.segments().put(id, 0, 2, &[0u8; 4], None);
    }

    #[test]
    fn flow_control_blocks_until_consumed() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let f = Fabric::new(2);
        let fa = Arc::clone(&f);
        let h = thread::spawn(move || fa.segments().alloc(&[0, 1], 8, 2));
        let id = f.segments().alloc(&[0, 1], 8, 2);
        h.join().unwrap();

        let done = Arc::new(AtomicUsize::new(0));
        let f2 = Arc::clone(&f);
        let d2 = Arc::clone(&done);
        let sender = thread::spawn(move || {
            for k in 0..4u8 {
                f2.segments().put(id, 1, 0, &[k], Some(Time(k as u64)));
                d2.fetch_add(1, Ordering::SeqCst);
            }
        });
        // Window = 2: the third put must block until a consumption.
        thread::sleep(std::time::Duration::from_millis(30));
        assert_eq!(done.load(Ordering::SeqCst), 2, "third put blocked");
        f.segments().mark_consumed(id, 1, 1);
        thread::sleep(std::time::Duration::from_millis(30));
        assert_eq!(done.load(Ordering::SeqCst), 3, "one slot freed one put");
        f.segments().mark_consumed(id, 1, 3);
        sender.join().unwrap();
        assert_eq!(done.load(Ordering::SeqCst), 4);
        assert_eq!(f.segments().signal_count(id, 1), 4);
    }

    #[test]
    fn unsignalled_puts_ignore_flow_control() {
        let f = Fabric::new(1);
        let id = f.segments().alloc(&[0], 8, 1);
        // Plain memory writes (no signal) never block.
        for k in 0..10u8 {
            f.segments().put(id, 0, 0, &[k], None);
        }
        let mut out = [0u8; 1];
        f.segments().read(id, 0, 0, &mut out);
        assert_eq!(out[0], 9);
    }
}
