//! The shared machine state: per-rank mailboxes (tag matching), group
//! barriers with clock reconciliation, and the one-sided symmetric segment
//! store with per-delivery signals.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::{Condvar, Mutex, RwLock};

use crate::msg::{
    match_timing, Completion, Envelope, RecvDone, RecvRequest, RecvSlot, SendRequest, SrcSel,
    TagSel, WireCosts,
};
use crate::time::Time;

// ---------------------------------------------------------------------------
// Mailboxes / tag matching
// ---------------------------------------------------------------------------

struct PostedRecv {
    src: SrcSel,
    tag: TagSel,
    post_time: Time,
    slot: Arc<RecvSlot>,
}

#[derive(Default)]
struct MailboxInner {
    unexpected: VecDeque<Envelope>,
    posted: VecDeque<PostedRecv>,
    arrival_seq: u64,
}

/// One rank's incoming-message matching engine.
#[derive(Default)]
pub struct Mailbox {
    inner: Mutex<MailboxInner>,
}

impl Mailbox {
    /// Deliver an envelope: match against posted receives (in posting order)
    /// or park it in the unexpected queue.
    fn deliver(&self, mut env: Envelope) {
        let mut g = self.inner.lock();
        env.arrival_seq = g.arrival_seq;
        g.arrival_seq += 1;
        if let Some(idx) = g
            .posted
            .iter()
            .position(|p| p.src.matches(env.src) && p.tag.matches(env.tag))
        {
            let posted = g.posted.remove(idx).expect("index valid");
            drop(g);
            complete_match(env, posted.post_time, &posted.slot);
        } else {
            // Eager messages complete the sender immediately; rendezvous
            // sends stay pending until matched.
            if env.costs.eager {
                env.send_done.set(env.depart);
            }
            g.unexpected.push_back(env);
        }
    }

    /// Post a receive at virtual time `post_time`. If a matching message is
    /// already parked, the receive completes immediately; otherwise it is
    /// queued for the next matching delivery.
    fn post(&self, src: SrcSel, tag: TagSel, post_time: Time, slot: Arc<RecvSlot>) {
        let mut g = self.inner.lock();
        // MPI non-overtaking: per source, messages match in send order, so
        // only each source's *oldest* parked candidate is eligible (a
        // source's messages hit the mailbox in program order, making
        // arrival_seq the per-source send order). Among eligible
        // candidates from different sources, pick the earliest virtual
        // arrival (deterministic), tie-broken by arrival order.
        let mut oldest_per_src: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::new();
        for (i, e) in g.unexpected.iter().enumerate() {
            if src.matches(e.src) && tag.matches(e.tag) {
                let entry = oldest_per_src.entry(e.src).or_insert(i);
                if g.unexpected[*entry].arrival_seq > e.arrival_seq {
                    *entry = i;
                }
            }
        }
        let best = oldest_per_src
            .into_values()
            .min_by_key(|&i| {
                let e = &g.unexpected[i];
                (
                    e.costs.eager_arrival(e.depart, e.payload.len()),
                    e.arrival_seq,
                )
            });
        match best {
            Some(i) => {
                let env = g.unexpected.remove(i).expect("index valid");
                drop(g);
                complete_match(env, post_time, &slot);
            }
            None => g.posted.push_back(PostedRecv {
                src,
                tag,
                post_time,
                slot,
            }),
        }
    }

    /// Number of parked unexpected messages (diagnostics).
    pub fn unexpected_len(&self) -> usize {
        self.inner.lock().unexpected.len()
    }

    /// Number of outstanding posted receives (diagnostics).
    pub fn posted_len(&self) -> usize {
        self.inner.lock().posted.len()
    }
}

fn complete_match(env: Envelope, post_time: Time, slot: &RecvSlot) {
    let bytes = env.payload.len();
    let timing = match_timing(&env.costs, bytes, env.depart, post_time);
    env.send_done.set(timing.send_complete);
    slot.set(RecvDone {
        payload: env.payload,
        completion: timing.recv_complete,
        unexpected: timing.unexpected,
        src: env.src,
        tag: env.tag,
    });
}

// ---------------------------------------------------------------------------
// Group barriers with clock reconciliation
// ---------------------------------------------------------------------------

#[derive(Default)]
struct BarrierInner {
    generation: u64,
    arrived: usize,
    max_entry: Time,
    exit_time: Time,
}

/// A reusable barrier over a fixed group size that also reconciles virtual
/// clocks: every participant leaves with `max(entry clocks) + cost`.
pub struct GroupBarrier {
    size: usize,
    inner: Mutex<BarrierInner>,
    cv: Condvar,
}

impl GroupBarrier {
    fn new(size: usize) -> Self {
        GroupBarrier {
            size,
            inner: Mutex::new(BarrierInner::default()),
            cv: Condvar::new(),
        }
    }

    /// Enter with local clock `entry`; returns the reconciled exit clock.
    /// `cost` is charged once on top of the max entry time (the last
    /// arriver's model decides it; all participants pass the same value in
    /// practice since they use the same library for the barrier).
    pub fn enter(&self, entry: Time, cost: Time) -> Time {
        let mut g = self.inner.lock();
        let gen = g.generation;
        g.max_entry = g.max_entry.max(entry);
        g.arrived += 1;
        if g.arrived == self.size {
            g.exit_time = g.max_entry + cost;
            g.arrived = 0;
            g.max_entry = Time::ZERO;
            g.generation += 1;
            self.cv.notify_all();
            g.exit_time
        } else {
            while g.generation == gen {
                self.cv.wait(&mut g);
            }
            g.exit_time
        }
    }
}

// ---------------------------------------------------------------------------
// Symmetric segments (one-sided memory)
// ---------------------------------------------------------------------------

/// Identifier of a symmetric segment, valid on every participating rank.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SegId(pub usize);

struct SlotInner {
    data: Vec<u8>,
    /// Virtual arrival times of signalled deliveries, in delivery order.
    signals: Vec<Time>,
    /// Number of signalled deliveries the owner has consumed (flow control).
    consumed: u64,
}

struct Slot {
    inner: Mutex<SlotInner>,
    cv: Condvar,
}

/// A symmetric allocation: `bytes` of memory on each rank of `group`.
pub struct Segment {
    bytes: usize,
    /// Participating global ranks, ascending.
    group: Vec<usize>,
    /// One slot per participating rank, indexed by position in `group`.
    slots: Vec<Slot>,
    /// Flow-control window: a signalled put physically blocks while
    /// `signals - consumed >= window` (staging-slot reuse safety).
    window: u64,
}

impl Segment {
    fn slot_of(&self, rank: usize) -> &Slot {
        let idx = self
            .group
            .binary_search(&rank)
            .unwrap_or_else(|_| panic!("rank {rank} not in segment group {:?}", self.group));
        &self.slots[idx]
    }

    /// Size in bytes of the per-rank allocation.
    pub fn len(&self) -> usize {
        self.bytes
    }

    /// Whether the allocation is zero-sized.
    pub fn is_empty(&self) -> bool {
        self.bytes == 0
    }
}

#[derive(Default)]
struct AllocRendezvous {
    generation: u64,
    arrived: usize,
    bytes: usize,
    window: u64,
    result: Option<SegId>,
}

struct AllocState {
    inner: Mutex<AllocRendezvous>,
    cv: Condvar,
}

/// The one-sided memory store: symmetric segments plus the collective
/// allocation rendezvous per group.
#[derive(Default)]
pub struct SegmentStore {
    segments: RwLock<Vec<Arc<Segment>>>,
    allocs: Mutex<HashMap<Vec<usize>, Arc<AllocState>>>,
}

impl SegmentStore {
    /// Collective symmetric allocation over `group` (ascending global
    /// ranks). Every rank in the group must call with identical arguments;
    /// all receive the same [`SegId`]. Mirrors `shmalloc` semantics (which
    /// synchronizes all PEs). `window` bounds outstanding signalled
    /// deliveries per destination (use `u64::MAX` for none).
    pub fn alloc(&self, group: &[usize], bytes: usize, window: u64) -> SegId {
        debug_assert!(group.windows(2).all(|w| w[0] < w[1]), "group must be sorted");
        let state = {
            let mut g = self.allocs.lock();
            Arc::clone(
                g.entry(group.to_vec())
                    .or_insert_with(|| {
                        Arc::new(AllocState {
                            inner: Mutex::new(AllocRendezvous::default()),
                            cv: Condvar::new(),
                        })
                    }),
            )
        };
        let mut g = state.inner.lock();
        let gen = g.generation;
        if g.arrived == 0 {
            g.bytes = bytes;
            g.window = window;
            g.result = None;
        } else {
            assert_eq!(
                g.bytes, bytes,
                "symmetric alloc size mismatch across ranks in group {group:?}"
            );
            assert_eq!(
                g.window, window,
                "symmetric alloc window mismatch across ranks in group {group:?}"
            );
        }
        g.arrived += 1;
        if g.arrived == group.len() {
            let seg = Arc::new(Segment {
                bytes,
                group: group.to_vec(),
                window,
                slots: group
                    .iter()
                    .map(|_| Slot {
                        inner: Mutex::new(SlotInner {
                            data: vec![0u8; bytes],
                            signals: Vec::new(),
                            consumed: 0,
                        }),
                        cv: Condvar::new(),
                    })
                    .collect(),
            });
            let id = {
                let mut segs = self.segments.write();
                segs.push(seg);
                SegId(segs.len() - 1)
            };
            g.result = Some(id);
            g.arrived = 0;
            g.generation += 1;
            self.cv_notify(&state);
            id
        } else {
            while g.generation == gen {
                state.cv.wait(&mut g);
            }
            g.result.expect("alloc result set by last arriver")
        }
    }

    fn cv_notify(&self, state: &AllocState) {
        state.cv.notify_all();
    }

    fn seg(&self, id: SegId) -> Arc<Segment> {
        Arc::clone(&self.segments.read()[id.0])
    }

    /// Write `data` into `target`'s copy of the segment at `offset`.
    /// If `signal_arrival` is set, appends a delivery signal with that
    /// virtual arrival time and wakes waiters.
    pub fn put(
        &self,
        id: SegId,
        target: usize,
        offset: usize,
        data: &[u8],
        signal_arrival: Option<Time>,
    ) {
        let seg = self.seg(id);
        let slot = seg.slot_of(target);
        let mut g = slot.inner.lock();
        if signal_arrival.is_some() {
            // Flow control: do not overwrite a staging slot the owner has
            // not consumed yet. Purely physical (no virtual-time charge):
            // models adequately-sized staging on the critical path.
            while (g.signals.len() as u64).saturating_sub(g.consumed) >= seg.window {
                slot.cv.wait(&mut g);
            }
        }
        assert!(
            offset + data.len() <= g.data.len(),
            "put out of bounds: {}+{} > {}",
            offset,
            data.len(),
            g.data.len()
        );
        g.data[offset..offset + data.len()].copy_from_slice(data);
        if let Some(t) = signal_arrival {
            g.signals.push(t);
            slot.cv.notify_all();
        }
    }

    /// Mark `count` additional signalled deliveries as consumed by `rank`
    /// (releases flow-controlled senders).
    pub fn mark_consumed(&self, id: SegId, rank: usize, count: u64) {
        let seg = self.seg(id);
        let slot = seg.slot_of(rank);
        let mut g = slot.inner.lock();
        g.consumed += count;
        slot.cv.notify_all();
    }

    /// Read `out.len()` bytes from `target`'s copy at `offset`.
    pub fn read(&self, id: SegId, target: usize, offset: usize, out: &mut [u8]) {
        let seg = self.seg(id);
        let slot = seg.slot_of(target);
        let g = slot.inner.lock();
        assert!(
            offset + out.len() <= g.data.len(),
            "read out of bounds: {}+{} > {}",
            offset,
            out.len(),
            g.data.len()
        );
        out.copy_from_slice(&g.data[offset..offset + out.len()]);
    }

    /// Physically block until at least `count` signalled deliveries have
    /// landed in `rank`'s copy of the segment; returns the virtual arrival
    /// time of the `count`-th (1-based) delivery.
    pub fn wait_signals(&self, id: SegId, rank: usize, count: usize) -> Time {
        assert!(count >= 1, "must wait for at least one signal");
        let seg = self.seg(id);
        let slot = seg.slot_of(rank);
        let mut g = slot.inner.lock();
        while g.signals.len() < count {
            slot.cv.wait(&mut g);
        }
        g.signals[count - 1]
    }

    /// Number of signalled deliveries so far on `rank`'s copy.
    pub fn signal_count(&self, id: SegId, rank: usize) -> usize {
        let seg = self.seg(id);
        let slot = seg.slot_of(rank);
        let n = slot.inner.lock().signals.len();
        n
    }
}

// ---------------------------------------------------------------------------
// Fabric: everything a rank reaches through
// ---------------------------------------------------------------------------

/// The shared interconnect + memory fabric of one simulated machine.
pub struct Fabric {
    nranks: usize,
    mailboxes: Vec<Mailbox>,
    barriers: Mutex<HashMap<Vec<usize>, Arc<GroupBarrier>>>,
    segments: SegmentStore,
}

impl Fabric {
    pub fn new(nranks: usize) -> Arc<Self> {
        Arc::new(Fabric {
            nranks,
            mailboxes: (0..nranks).map(|_| Mailbox::default()).collect(),
            barriers: Mutex::new(HashMap::new()),
            segments: SegmentStore::default(),
        })
    }

    /// Total number of ranks on the machine.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// The one-sided segment store.
    pub fn segments(&self) -> &SegmentStore {
        &self.segments
    }

    /// Mailbox of `rank` (diagnostics).
    pub fn mailbox(&self, rank: usize) -> &Mailbox {
        &self.mailboxes[rank]
    }

    /// Initiate a non-blocking two-sided send. `depart` is the sender's
    /// clock after charging `o_send`.
    pub fn send(
        &self,
        src: usize,
        dst: usize,
        tag: i32,
        payload: Bytes,
        depart: Time,
        costs: WireCosts,
    ) -> SendRequest {
        assert!(dst < self.nranks, "send to nonexistent rank {dst}");
        let done = Completion::new();
        let bytes = payload.len();
        let env = Envelope {
            src,
            dst,
            tag,
            payload,
            depart,
            costs,
            arrival_seq: 0,
            send_done: Arc::clone(&done),
        };
        self.mailboxes[dst].deliver(env);
        SendRequest { done, bytes }
    }

    /// Post a non-blocking receive on `rank`'s mailbox. `post_time` is the
    /// receiver's clock after charging `o_recv`.
    pub fn recv(&self, rank: usize, src: SrcSel, tag: TagSel, post_time: Time) -> RecvRequest {
        let slot = RecvSlot::new();
        self.mailboxes[rank].post(src, tag, post_time, Arc::clone(&slot));
        RecvRequest { slot }
    }

    /// Barrier over `group` (ascending global ranks), reconciling clocks.
    pub fn barrier(&self, group: &[usize], entry: Time, cost: Time) -> Time {
        debug_assert!(group.windows(2).all(|w| w[0] < w[1]), "group must be sorted");
        let b = {
            let mut g = self.barriers.lock();
            Arc::clone(
                g.entry(group.to_vec())
                    .or_insert_with(|| Arc::new(GroupBarrier::new(group.len()))),
            )
        };
        b.enter(entry, cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn eager_costs() -> WireCosts {
        WireCosts {
            latency: 1_000,
            byte_time_ns: 1.0,
            handshake: 0,
            unexpected_per_byte: 0.5,
            eager: true,
        }
    }

    #[test]
    fn send_then_recv_matches() {
        let f = Fabric::new(2);
        let req = f.send(
            0,
            1,
            7,
            Bytes::from_static(b"abcd"),
            Time(100),
            eager_costs(),
        );
        assert_eq!(f.mailbox(1).unexpected_len(), 1);
        let r = f.recv(1, SrcSel::Exact(0), TagSel::Exact(7), Time(0));
        let done = r.wait_raw();
        assert_eq!(&done.payload[..], b"abcd");
        // depart 100 + L 1000 + 4 bytes = 1104; post at 0 => arrival wins.
        assert_eq!(done.completion, Time(1_104));
        // Virtual arrival (1104) is after the post (0), so even though the
        // message physically sat in the unexpected queue, no copy is charged.
        assert!(!done.unexpected);
        assert_eq!(req.wait_raw(), Time(100));
    }

    #[test]
    fn recv_then_send_matches() {
        let f = Fabric::new(2);
        let r = f.recv(1, SrcSel::Exact(0), TagSel::Exact(3), Time(50));
        assert_eq!(f.mailbox(1).posted_len(), 1);
        f.send(0, 1, 3, Bytes::from_static(b"xy"), Time(0), eager_costs());
        let done = r.wait_raw();
        assert_eq!(&done.payload[..], b"xy");
        assert!(!done.unexpected);
        assert_eq!(done.completion, Time(1_002)); // max(50, 0+1000+2)
    }

    #[test]
    fn unexpected_flag_on_late_post() {
        let f = Fabric::new(2);
        f.send(0, 1, 1, Bytes::from_static(b"zz"), Time(0), eager_costs());
        // Virtual arrival = 1002; post at 10_000 => unexpected.
        let r = f.recv(1, SrcSel::Exact(0), TagSel::Exact(1), Time(10_000));
        let done = r.wait_raw();
        assert!(done.unexpected);
        assert_eq!(done.completion, Time(10_001)); // 10_000 + 0.5*2
    }

    #[test]
    fn tag_and_source_selective_matching() {
        let f = Fabric::new(3);
        f.send(0, 2, 5, Bytes::from_static(b"A"), Time(0), eager_costs());
        f.send(1, 2, 6, Bytes::from_static(b"B"), Time(0), eager_costs());
        let r6 = f.recv(2, SrcSel::Any, TagSel::Exact(6), Time(0));
        assert_eq!(&r6.wait_raw().payload[..], b"B");
        let r5 = f.recv(2, SrcSel::Exact(0), TagSel::Any, Time(0));
        let d5 = r5.wait_raw();
        assert_eq!(&d5.payload[..], b"A");
        assert_eq!(d5.src, 0);
        assert_eq!(d5.tag, 5);
    }

    #[test]
    fn wildcard_prefers_earliest_virtual_arrival() {
        let f = Fabric::new(3);
        // Physically delivered first but departs later virtually.
        f.send(0, 2, 1, Bytes::from_static(b"late"), Time(9_000), eager_costs());
        f.send(1, 2, 1, Bytes::from_static(b"early"), Time(0), eager_costs());
        let r = f.recv(2, SrcSel::Any, TagSel::Exact(1), Time(20_000));
        assert_eq!(&r.wait_raw().payload[..], b"early");
    }

    #[test]
    fn same_source_fifo_order() {
        let f = Fabric::new(2);
        for (i, t) in [(0u8, 0u64), (1, 10), (2, 20)] {
            f.send(0, 1, 9, Bytes::copy_from_slice(&[i]), Time(t), eager_costs());
        }
        for expect in 0u8..3 {
            let r = f.recv(1, SrcSel::Exact(0), TagSel::Exact(9), Time(0));
            assert_eq!(r.wait_raw().payload[0], expect);
        }
    }

    #[test]
    fn rendezvous_send_completion_requires_match() {
        let mut costs = eager_costs();
        costs.eager = false;
        costs.handshake = 500;
        let f = Fabric::new(2);
        let s = f.send(0, 1, 2, Bytes::from_static(&[0u8; 16]), Time(0), costs);
        assert!(s.poll().is_none(), "rendezvous send pending until matched");
        let r = f.recv(1, SrcSel::Exact(0), TagSel::Exact(2), Time(4_000));
        let d = r.wait_raw();
        // xfer_start = max(0+1000, 4000) + 500 = 4500; arrival = +1000+16
        assert_eq!(d.completion, Time(5_516));
        assert_eq!(s.wait_raw(), d.completion);
    }

    #[test]
    fn cross_thread_blocking_wait() {
        let f = Fabric::new(2);
        let f2 = Arc::clone(&f);
        let h = thread::spawn(move || {
            let r = f2.recv(1, SrcSel::Exact(0), TagSel::Exact(0), Time(0));
            r.wait_raw().payload.to_vec()
        });
        thread::sleep(std::time::Duration::from_millis(20));
        f.send(0, 1, 0, Bytes::from_static(b"ping"), Time(5), eager_costs());
        assert_eq!(h.join().unwrap(), b"ping");
    }

    #[test]
    fn barrier_reconciles_clocks() {
        let f = Fabric::new(4);
        let group = [0usize, 1, 2, 3];
        let mut handles = Vec::new();
        for r in 0..4usize {
            let f = Arc::clone(&f);
            handles.push(thread::spawn(move || {
                f.barrier(&group[..], Time(100 * (r as u64 + 1)), Time(50))
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), Time(450)); // max entry 400 + 50
        }
    }

    #[test]
    fn barrier_reusable_across_generations() {
        let f = Fabric::new(2);
        let group = [0usize, 1];
        for round in 0..3u64 {
            let f0 = Arc::clone(&f);
            let g = group;
            let h = thread::spawn(move || f0.barrier(&g[..], Time(round * 10), Time(1)));
            let me = f.barrier(&group[..], Time(round * 10 + 5), Time(1));
            assert_eq!(me, Time(round * 10 + 6));
            assert_eq!(h.join().unwrap(), me);
        }
    }

    #[test]
    fn subgroup_barriers_are_independent() {
        let f = Fabric::new(4);
        let a = [0usize, 1];
        let b = [2usize, 3];
        let fa = Arc::clone(&f);
        let ha = thread::spawn(move || fa.barrier(&a[..], Time(10), Time(1)));
        let fb = Arc::clone(&f);
        let hb = thread::spawn(move || fb.barrier(&b[..], Time(100), Time(1)));
        assert_eq!(f.barrier(&a[..], Time(20), Time(1)), Time(21));
        assert_eq!(f.barrier(&b[..], Time(200), Time(1)), Time(201));
        ha.join().unwrap();
        hb.join().unwrap();
    }

    #[test]
    fn symmetric_alloc_and_put_get() {
        let f = Fabric::new(2);
        let group = [0usize, 1];
        let f2 = Arc::clone(&f);
        let h = thread::spawn(move || f2.segments().alloc(&[0, 1], 64, u64::MAX));
        let id = f.segments().alloc(&group[..], 64, u64::MAX);
        assert_eq!(h.join().unwrap(), id);

        f.segments().put(id, 1, 8, b"hello", None);
        let mut out = [0u8; 5];
        f.segments().read(id, 1, 8, &mut out);
        assert_eq!(&out, b"hello");
        // Rank 0's copy untouched.
        f.segments().read(id, 0, 8, &mut out);
        assert_eq!(&out, &[0u8; 5]);
    }

    #[test]
    fn signalled_puts_wake_waiters_in_order() {
        let f = Fabric::new(2);
        let f2 = Arc::clone(&f);
        let ha = thread::spawn(move || f2.segments().alloc(&[0, 1], 16, u64::MAX));
        let id = f.segments().alloc(&[0, 1], 16, u64::MAX);
        ha.join().unwrap();

        let f3 = Arc::clone(&f);
        let waiter = thread::spawn(move || {
            let t1 = f3.segments().wait_signals(id, 1, 1);
            let t2 = f3.segments().wait_signals(id, 1, 2);
            (t1, t2)
        });
        thread::sleep(std::time::Duration::from_millis(10));
        f.segments().put(id, 1, 0, &[1u8; 4], Some(Time(111)));
        f.segments().put(id, 1, 4, &[2u8; 4], Some(Time(222)));
        let (t1, t2) = waiter.join().unwrap();
        assert_eq!((t1, t2), (Time(111), Time(222)));
        assert_eq!(f.segments().signal_count(id, 1), 2);
        assert_eq!(f.segments().signal_count(id, 0), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn put_out_of_bounds_panics() {
        let f = Fabric::new(1);
        let id = f.segments().alloc(&[0], 4, u64::MAX);
        f.segments().put(id, 0, 2, &[0u8; 4], None);
    }

    #[test]
    fn flow_control_blocks_until_consumed() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let f = Fabric::new(2);
        let fa = Arc::clone(&f);
        let h = thread::spawn(move || fa.segments().alloc(&[0, 1], 8, 2));
        let id = f.segments().alloc(&[0, 1], 8, 2);
        h.join().unwrap();

        let done = Arc::new(AtomicUsize::new(0));
        let f2 = Arc::clone(&f);
        let d2 = Arc::clone(&done);
        let sender = thread::spawn(move || {
            for k in 0..4u8 {
                f2.segments().put(id, 1, 0, &[k], Some(Time(k as u64)));
                d2.fetch_add(1, Ordering::SeqCst);
            }
        });
        // Window = 2: the third put must block until a consumption.
        thread::sleep(std::time::Duration::from_millis(30));
        assert_eq!(done.load(Ordering::SeqCst), 2, "third put blocked");
        f.segments().mark_consumed(id, 1, 1);
        thread::sleep(std::time::Duration::from_millis(30));
        assert_eq!(done.load(Ordering::SeqCst), 3, "one slot freed one put");
        f.segments().mark_consumed(id, 1, 3);
        sender.join().unwrap();
        assert_eq!(done.load(Ordering::SeqCst), 4);
        assert_eq!(f.segments().signal_count(id, 1), 4);
    }

    #[test]
    fn unsignalled_puts_ignore_flow_control() {
        let f = Fabric::new(1);
        let id = f.segments().alloc(&[0], 8, 1);
        // Plain memory writes (no signal) never block.
        for k in 0..10u8 {
            f.segments().put(id, 0, 0, &[k], None);
        }
        let mut out = [0u8; 1];
        f.segments().read(id, 0, 0, &mut out);
        assert_eq!(out[0], 9);
    }
}
