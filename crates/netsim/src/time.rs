//! Virtual time: the unit of measurement for every experiment in this
//! workspace.
//!
//! Wall-clock time on a development machine cannot reproduce the relative
//! costs of MPI vs. SHMEM calls on a Cray XK7 Gemini interconnect, which is
//! what the paper's figures plot. Instead, every rank in the simulated SPMD
//! program owns a logical clock measured in [`Time`] (nanoseconds), advanced
//! by the interconnect cost model. Virtual time is deterministic for a fixed
//! program and model, machine-independent, and directly comparable across
//! communication-library targets.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in (or span of) virtual time, in nanoseconds.
///
/// `Time` is used both as an absolute per-rank clock value and as a duration;
/// the arithmetic is saturating on subtraction so that model parameter abuse
/// cannot panic deep inside the transport.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

impl Time {
    /// The zero instant (program start on every rank).
    pub const ZERO: Time = Time(0);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        Time(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Time(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Time(ms * 1_000_000)
    }

    /// Construct from a floating-point number of seconds (rounded to ns).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "negative virtual time");
        Time((s * 1e9).round() as u64)
    }

    /// Construct from a floating-point number of nanoseconds (rounded).
    #[inline]
    pub fn from_nanos_f64(ns: f64) -> Self {
        debug_assert!(ns >= 0.0, "negative virtual time");
        Time(ns.round() as u64)
    }

    /// Nanoseconds since the epoch / span length in nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This time as floating-point microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This time as floating-point milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This time as floating-point seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        Time(self.0.min(other.0))
    }

    /// Saturating difference between two instants.
    #[inline]
    pub fn saturating_sub(self, other: Time) -> Time {
        Time(self.0.saturating_sub(other.0))
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Time) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        Time(iter.map(|t| t.0).sum())
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Time::from_micros(3), Time::from_nanos(3_000));
        assert_eq!(Time::from_millis(2), Time::from_nanos(2_000_000));
        assert_eq!(Time::from_secs_f64(1.5), Time::from_nanos(1_500_000_000));
        assert_eq!(Time::from_nanos_f64(2.6), Time::from_nanos(3));
    }

    #[test]
    fn arithmetic() {
        let a = Time::from_nanos(100);
        let b = Time::from_nanos(40);
        assert_eq!(a + b, Time::from_nanos(140));
        assert_eq!(a - b, Time::from_nanos(60));
        // subtraction saturates instead of panicking
        assert_eq!(b - a, Time::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn accumulate() {
        let mut t = Time::ZERO;
        t += Time::from_nanos(5);
        t += Time::from_nanos(7);
        assert_eq!(t.as_nanos(), 12);
        let total: Time = [Time(1), Time(2), Time(3)].into_iter().sum();
        assert_eq!(total, Time(6));
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(format!("{}", Time::from_nanos(999)), "999ns");
        assert_eq!(format!("{}", Time::from_nanos(1500)), "1.500us");
        assert_eq!(format!("{}", Time::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", Time::from_secs_f64(2.0)), "2.000s");
    }

    #[test]
    fn conversions_roundtrip() {
        let t = Time::from_nanos(1_234_567_890);
        assert!((t.as_secs_f64() - 1.23456789).abs() < 1e-12);
        assert_eq!(Time::from_secs_f64(t.as_secs_f64()), t);
    }
}
