//! # netsim — a virtual-time SPMD rank runtime
//!
//! The measurement substrate for the `commint` workspace (a reproduction of
//! *"Toward Abstracting the Communication Intent in Applications to Improve
//! Portability and Productivity"*, IPDPSW 2013).
//!
//! The paper's evaluation compares the communication generated from
//! intent-level directives against hand-written MPI on a Cray XK7: the
//! interesting quantities are the *relative* costs of call sequences
//! (per-call wait overhead vs. consolidated waitall, MPI two-sided vs.
//! SHMEM one-sided small-message paths, pack copies vs. derived datatypes).
//! This crate reproduces those quantities with:
//!
//! * one OS thread per simulated rank, real shared-memory data movement, so
//!   programs are *functionally* executed, not just modeled;
//! * a per-rank **virtual clock** advanced by a parametric [`model::CostModel`]
//!   (Hockney/LogGP superset with library software overheads, eager/rendezvous
//!   protocols and unexpected-message costs), so *timing* is deterministic,
//!   machine-independent and calibrated to the paper's platform;
//! * MPI-style tag matching, group barriers with clock reconciliation, and a
//!   symmetric-heap segment store with signalled deliveries for one-sided
//!   libraries.
//!
//! Substrate crates [`mpisim`](../mpisim) and [`shmemsim`](../shmemsim) wrap
//! this runtime in library-shaped APIs; the `commint` core lowers
//! communication directives onto either.
//!
//! ## Example
//!
//! ```
//! use netsim::{run, SimConfig, SrcSel, TagSel, Time};
//!
//! let res = run(SimConfig::new(2), |ctx| {
//!     let mpi = ctx.machine().mpi;
//!     if ctx.rank() == 0 {
//!         ctx.send(1, 0, b"hello", &mpi);
//!     } else {
//!         let msg = ctx.recv(SrcSel::Exact(0), TagSel::Exact(0), &mpi);
//!         assert_eq!(&msg.payload[..], b"hello");
//!     }
//!     ctx.now()
//! });
//! assert!(res.makespan() > Time::ZERO);
//! ```

pub mod fabric;
pub mod metrics;
pub mod model;
pub mod msg;
pub mod progress;
pub mod runtime;
pub mod sanitize;
pub mod sched;
pub mod time;
pub mod trace;

pub use fabric::{Fabric, SegId};
pub use metrics::{Hist, RankMetrics, SchedStats, SiteMetrics};
pub use model::{CostModel, MachineModel};
pub use msg::{
    match_timing, MatchTiming, RecvDone, RecvRequest, SendRequest, SrcSel, TagSel, WireCosts,
};
pub use progress::{ProgressBoard, RankProgress, Snapshot, WatchCfg};
pub use runtime::{run, ExecPolicy, RankCtx, SimConfig, SimResult};
pub use sanitize::{Conflict, SanitizeReport, Sanitizer};
pub use sched::Scheduler;
pub use time::Time;
pub use trace::{EventKind, MailboxHotStats, RankStats, SiteId, TraceEvent, TraceSink};
