//! Bounded cooperative scheduling: an admission gate that multiplexes rank
//! bodies over a fixed pool of execution slots.
//!
//! The thread-per-rank engine makes every rank OS-runnable at once; past a
//! few hundred ranks the kernel scheduler round-robins threads that mostly
//! just contend fabric locks and park again. The bounded engine keeps one OS
//! thread per rank (each rank body needs its own stack — it may block
//! anywhere inside user code), but gates *execution*: at most `workers` ranks
//! hold a slot at any instant. Every physically-blocking primitive in the
//! fabric brackets its sleep with [`pre_block`]/[`post_block`], so a rank
//! that is about to park on a condvar first yields its slot, and on wake
//! re-queues for one. Slots are granted least-virtual-time-first, the
//! conservative-PDES order: the rank whose clock is furthest behind is the
//! one most likely to unblock others.
//!
//! Hot-path waits use the stronger *single-wake* protocol: the waiter
//! yields its slot ([`yield_slot`]), registers the returned [`Waiter`]
//! handle in the fabric object it is waiting on, and parks once
//! ([`park_self`]). The completing rank hands the handle back to the
//! scheduler ([`Waiter::wake`]) with the completion's virtual time, which
//! marks the rank runnable LVT-first. The parked thread wakes exactly once,
//! already holding an execution slot — instead of waking on the fabric
//! condvar only to park again on the admission gate (two kernel round-trips
//! and a transient extra runnable thread per blocking op).
//!
//! Two invariants make this safe and deterministic:
//!
//! * **Runnable-set invariant**: `free > 0` implies the ready-queue is
//!   empty. A releasing rank hands its slot directly to the lowest-clock
//!   waiter (no thundering herd); the free count only grows when nobody is
//!   waiting. Both transitions happen under one lock, so a rank can never
//!   park while a slot sits idle.
//! * **Lock discipline**: [`pre_block`]/[`yield_slot`] (slot release —
//!   never blocks) may be called while holding a fabric lock, but
//!   [`post_block`]/[`park_self`] (slot acquire — may park) must only be
//!   called with no fabric lock held. Condvar waits release their mutex
//!   while parked, and plain mutex holders never park, so a slot-holder can
//!   always make progress: no cycle between the admission gate and fabric
//!   locks is possible.
//!
//! Determinism is *not* a property of the schedule: completion times are
//! computed from virtual quantities only (see `msg::match_timing`), so any
//! interleaving — thread-per-rank, one worker, or many — produces
//! bit-identical results. LVT-first is purely a wall-clock optimization.

use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::metrics::SchedStats;
use crate::time::Time;

struct SchedInner {
    /// Unheld execution slots. Invariant: `free > 0` ⇒ `ready` is empty.
    free: usize,
    /// Ranks waiting for a slot, ordered by (virtual clock, rank).
    ready: BinaryHeap<Reverse<(Time, usize)>>,
    /// Peak simultaneous slot holders (physical; for tuning reports only).
    max_occupied: usize,
    /// Total slot grants (fast-path acquisitions + handoffs + wakeups).
    grants: u64,
    /// Times a rank queued for a slot.
    parks: u64,
}

impl SchedInner {
    /// Account one slot assignment out of the free pool (caller already
    /// decremented `free`). Must run under the inner lock.
    #[inline]
    fn on_grant_from_free(&mut self, workers: usize) {
        self.grants += 1;
        self.max_occupied = self.max_occupied.max(workers - self.free);
    }
}

/// Per-rank wakeup cell: a dedicated condvar per rank avoids waking the
/// whole pool to grant one slot.
#[derive(Default)]
struct Parker {
    granted: Mutex<bool>,
    cv: Condvar,
}

/// The admission gate: `workers` execution slots over `nranks` rank threads.
pub struct Scheduler {
    inner: Mutex<SchedInner>,
    parkers: Vec<Parker>,
    workers: usize,
}

impl Scheduler {
    /// A gate with `workers` slots (clamped to `1..=nranks`).
    pub fn new(nranks: usize, workers: usize) -> Arc<Self> {
        let workers = workers.clamp(1, nranks.max(1));
        Arc::new(Scheduler {
            inner: Mutex::new(SchedInner {
                free: workers,
                ready: BinaryHeap::new(),
                max_occupied: 0,
                grants: 0,
                parks: 0,
            }),
            parkers: (0..nranks).map(|_| Parker::default()).collect(),
            workers,
        })
    }

    /// Number of execution slots.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Snapshot of the occupancy counters. Physical (wall-clock
    /// interleaving dependent) — reported for tuning, never folded into
    /// deterministic profile output.
    pub fn stats(&self) -> SchedStats {
        let g = self.inner.lock();
        SchedStats {
            slots: self.workers,
            max_occupied: g.max_occupied,
            grants: g.grants,
            parks: g.parks,
        }
    }

    /// Acquire an execution slot for `rank`, parking LVT-first if the pool
    /// is saturated. Must not be called while holding any fabric lock.
    pub fn acquire(&self, rank: usize, clock: Time) {
        {
            let mut g = self.inner.lock();
            if g.free > 0 {
                g.free -= 1;
                g.on_grant_from_free(self.workers);
                return;
            }
            g.parks += 1;
            g.ready.push(Reverse((clock, rank)));
        }
        self.park(rank);
    }

    /// Release the caller's slot, handing it directly to the waiting rank
    /// with the lowest virtual clock (if any). Never blocks.
    pub fn release(&self) {
        let next = {
            let mut g = self.inner.lock();
            match g.ready.pop() {
                Some(Reverse((_, rank))) => {
                    // Direct handoff: occupancy unchanged, one more grant.
                    g.grants += 1;
                    Some(rank)
                }
                None => {
                    g.free += 1;
                    None
                }
            }
        };
        if let Some(rank) = next {
            self.grant(rank);
        }
    }

    /// Mark `rank` runnable at virtual time `clock` after it yielded its
    /// slot and parked: grant a free slot directly, else queue LVT-first.
    /// Called from the *completing* thread; never blocks, and safe to call
    /// with fabric locks held.
    fn make_ready(&self, rank: usize, clock: Time) {
        let grant = {
            let mut g = self.inner.lock();
            if g.free > 0 {
                debug_assert!(g.ready.is_empty(), "free slot with queued ranks");
                g.free -= 1;
                g.on_grant_from_free(self.workers);
                true
            } else {
                g.parks += 1;
                g.ready.push(Reverse((clock, rank)));
                false
            }
        };
        if grant {
            self.grant(rank);
        }
    }

    /// Wake `rank`'s parker with a slot grant.
    fn grant(&self, rank: usize) {
        let p = &self.parkers[rank];
        let mut granted = p.granted.lock();
        *granted = true;
        p.cv.notify_one();
    }

    /// Park the calling rank thread until a slot grant arrives (a grant may
    /// already be pending, in which case this returns immediately).
    fn park(&self, rank: usize) {
        let p = &self.parkers[rank];
        let mut granted = p.granted.lock();
        while !*granted {
            p.cv.wait(&mut granted);
        }
        *granted = false;
    }
}

/// Identity of a gated rank that yielded its slot to wait for a completion.
/// The completing thread hands it back to the scheduler via [`Waiter::wake`]
/// so the parked rank wakes exactly once — already holding a slot.
pub(crate) struct Waiter {
    sched: Arc<Scheduler>,
    rank: usize,
}

impl Waiter {
    /// Completer side: mark the parked rank runnable at virtual time
    /// `clock` (its slot-queue priority). Never blocks.
    pub(crate) fn wake(self, clock: Time) {
        self.sched.make_ready(self.rank, clock);
    }
}

impl std::fmt::Debug for Waiter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Waiter(rank {})", self.rank)
    }
}

/// Thread-local identity of the rank driving this OS thread, when it runs
/// under a bounded scheduler. Blocking primitives anywhere in the crate
/// consult this to yield/reacquire their slot — including raw request waits
/// issued by layers above `RankCtx`.
struct Current {
    sched: Arc<Scheduler>,
    rank: usize,
    /// Latest virtual clock reported by the rank (slot-queue priority hint;
    /// staleness affects only wall-clock order, never results).
    clock: Cell<Time>,
}

thread_local! {
    static CURRENT: RefCell<Option<Current>> = const { RefCell::new(None) };
}

/// RAII registration of a rank thread with its scheduler: acquires the
/// initial slot, installs the thread-local gate, and on drop (including
/// unwinds) releases the slot so a panicking rank never strands the pool.
pub(crate) struct RankSlot;

impl RankSlot {
    pub(crate) fn enter(sched: Arc<Scheduler>, rank: usize) -> RankSlot {
        sched.acquire(rank, Time::ZERO);
        CURRENT.with(|c| {
            *c.borrow_mut() = Some(Current {
                sched,
                rank,
                clock: Cell::new(Time::ZERO),
            })
        });
        RankSlot
    }
}

impl Drop for RankSlot {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            if let Some(cur) = c.borrow_mut().take() {
                cur.sched.release();
            }
        });
    }
}

/// Record the rank's current virtual clock for slot-queue priority.
#[inline]
pub(crate) fn note_clock(t: Time) {
    CURRENT.with(|c| {
        if let Some(cur) = &*c.borrow() {
            cur.clock.set(t);
        }
    });
}

/// About to park on a condvar: yield the execution slot. No-op outside a
/// bounded-scheduler rank thread. Safe to call with fabric locks held.
#[inline]
pub(crate) fn pre_block() {
    CURRENT.with(|c| {
        if let Some(cur) = &*c.borrow() {
            cur.sched.release();
        }
    });
}

/// Woke from a condvar park: reacquire an execution slot. No-op outside a
/// bounded-scheduler rank thread. Must be called with **no** fabric lock
/// held (it may park on the admission gate).
#[inline]
pub(crate) fn post_block() {
    CURRENT.with(|c| {
        if let Some(cur) = &*c.borrow() {
            cur.sched.acquire(cur.rank, cur.clock.get());
        }
    });
}

/// Begin a single-wake wait: yield the caller's slot and return the handle
/// a completer must later [`Waiter::wake`]. Safe to call with fabric locks
/// held (never blocks). Returns `None` outside a bounded-scheduler rank
/// thread — callers fall back to a plain condvar wait.
///
/// The caller must register the handle (under the same lock hold that
/// established the wait predicate is false), drop its locks, and then
/// [`park_self`]. Registering under one continuous lock hold is what makes
/// the protocol race-free: the completer cannot observe-and-miss the waiter.
#[inline]
pub(crate) fn yield_slot() -> Option<Waiter> {
    CURRENT.with(|c| {
        c.borrow().as_ref().map(|cur| {
            cur.sched.release();
            Waiter {
                sched: Arc::clone(&cur.sched),
                rank: cur.rank,
            }
        })
    })
}

/// Complete a single-wake wait: park until a completer wakes this rank via
/// [`Waiter::wake`]. On return the rank holds an execution slot and the
/// awaited predicate is true. Must be called with **no** fabric lock held.
#[inline]
pub(crate) fn park_self() {
    CURRENT.with(|c| {
        if let Some(cur) = &*c.borrow() {
            cur.sched.park(cur.rank);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread;

    #[test]
    fn slots_bound_concurrency() {
        let sched = Scheduler::new(8, 2);
        let running = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        thread::scope(|s| {
            for rank in 0..8 {
                let sched = Arc::clone(&sched);
                let running = Arc::clone(&running);
                let peak = Arc::clone(&peak);
                s.spawn(move || {
                    sched.acquire(rank, Time(rank as u64));
                    let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    thread::sleep(std::time::Duration::from_millis(2));
                    running.fetch_sub(1, Ordering::SeqCst);
                    sched.release();
                });
            }
        });
        assert!(peak.load(Ordering::SeqCst) <= 2);
    }

    #[test]
    fn release_hands_off_to_lowest_clock() {
        let sched = Scheduler::new(3, 1);
        sched.acquire(0, Time(0));
        let order = Arc::new(Mutex::new(Vec::new()));
        thread::scope(|s| {
            for (rank, clock) in [(1usize, Time(500)), (2usize, Time(100))] {
                let sched = Arc::clone(&sched);
                let order = Arc::clone(&order);
                s.spawn(move || {
                    sched.acquire(rank, clock);
                    order.lock().push(rank);
                    sched.release();
                });
            }
            // Let both waiters queue before releasing the only slot.
            thread::sleep(std::time::Duration::from_millis(20));
            sched.release();
        });
        // Rank 2 (clock 100) must be granted before rank 1 (clock 500).
        assert_eq!(*order.lock(), vec![2, 1]);
    }

    #[test]
    fn workers_clamped() {
        assert_eq!(Scheduler::new(4, 0).workers(), 1);
        assert_eq!(Scheduler::new(4, 99).workers(), 4);
    }
}
