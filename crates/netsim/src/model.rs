//! Parametric interconnect cost models.
//!
//! Every communication operation in the runtime charges virtual time
//! according to a [`CostModel`]. The model is a superset of the classic
//! Hockney (`t = L + m/B`) and LogGP (`L`, `o`, `g`, `G`) models, extended
//! with the per-call *software* overheads that the paper's evaluation hinges
//! on: the cost of an `MPI_Wait` call vs. amortized `MPI_Waitall` polling,
//! `MPI_Pack` copy costs, derived-datatype commit costs, and the
//! eager/rendezvous protocol switch with its unexpected-message copy penalty.
//!
//! Two presets, [`CostModel::gemini_mpi`] and [`CostModel::gemini_shmem`],
//! encode the relative characteristics of MPI and SHMEM on the Cray Gemini
//! interconnect as described by the paper's references [13] (Shan & Singh)
//! and [14] (Apex-MAP): the libraries share wire bandwidth, but SHMEM's
//! one-sided put path has roughly an order of magnitude lower per-call
//! software overhead and latency for small (8-256 byte) transfers, and needs
//! no tag matching or request bookkeeping.

use crate::time::Time;

/// Cost parameters for one communication library on one interconnect.
///
/// All `o_*` fields are per-call CPU overheads in nanoseconds; `latency` is
/// the wire latency `L`; `byte_time_ns` is the inverse bandwidth `G`
/// (ns per byte). Fractional per-byte costs are `f64` so that sub-ns/byte
/// rates (multi-GB/s links) are representable.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Software overhead of initiating a (non-blocking) send.
    pub o_send: u64,
    /// Software overhead of posting a receive.
    pub o_recv: u64,
    /// Software overhead of one blocking wait call on a single request
    /// (`MPI_Wait`). A loop of these is the expensive pattern the paper's
    /// directive translation eliminates.
    pub o_wait: u64,
    /// Base software overhead of a `Waitall`-style consolidated completion.
    pub o_waitall: u64,
    /// Per-request polling cost inside a consolidated completion; this is
    /// much smaller than `o_wait` (amortized progress-engine entry).
    pub o_req_poll: u64,
    /// Per-request `MPI_Status` handling cost paid by user-level completion
    /// calls that fill status objects (`MPI_Wait(&req,&status)` loops,
    /// `MPI_Waitall(n,reqs,statuses)`); compiler-generated completion uses
    /// `MPI_STATUSES_IGNORE` and preallocated request tables and skips it.
    pub o_status: u64,
    /// Software overhead of initiating a one-sided put.
    pub o_put: u64,
    /// Software overhead of a (blocking) one-sided get, excluding the wire
    /// round trip.
    pub o_get: u64,
    /// Cost of a memory-ordering quiet/flush for outstanding puts.
    pub o_quiet: u64,
    /// Per-participant base cost of a barrier (the `L * ceil(log2 n)` tree
    /// term is added on top by the runtime).
    pub o_barrier: u64,
    /// Wire latency `L` in nanoseconds.
    pub latency: u64,
    /// Inverse bandwidth `G` in nanoseconds per byte.
    pub byte_time_ns: f64,
    /// Messages at or below this payload size use the eager protocol;
    /// larger ones pay a rendezvous handshake and depart only once the
    /// receive is posted.
    pub eager_threshold: usize,
    /// Extra handshake latency charged to a rendezvous transfer.
    pub rendezvous_handshake: u64,
    /// Per-byte copy cost charged when an eager message arrives (in virtual
    /// time) before its receive is posted and must be buffered and copied.
    pub unexpected_copy_per_byte: f64,
    /// Per-byte cost of an explicit `MPI_Pack`/`MPI_Unpack` copy.
    pub pack_per_byte: f64,
    /// One-time cost of building and committing a derived datatype.
    pub datatype_commit: u64,
    /// Per-byte gather/scatter cost when sending through a derived datatype
    /// (cheaper than an explicit pack copy: the NIC/library pipeline does it).
    pub datatype_per_byte: f64,
    /// Per-byte cost of a local memory copy (staging buffers, unpack of a
    /// contiguous payload into a user buffer).
    pub memcpy_per_byte: f64,
    /// Maximum deterministic per-message latency jitter in ns (0 = ideal
    /// network). Jitter is a hash of the message identity, so runs remain
    /// reproducible while exercising non-uniform arrival orders.
    pub latency_jitter_ns: u64,
}

impl CostModel {
    /// Pure Hockney model: `t = latency + bytes / bandwidth`, with small
    /// uniform software overheads. Useful for tests and analytic baselines.
    pub fn hockney(latency_ns: u64, bandwidth_gbps: f64) -> Self {
        let byte_time_ns = 1.0 / bandwidth_gbps; // GB/s => ns per byte
        CostModel {
            o_send: 100,
            o_recv: 100,
            o_wait: 100,
            o_waitall: 100,
            o_req_poll: 10,
            o_status: 0,
            o_put: 100,
            o_get: 100,
            o_quiet: 100,
            o_barrier: 100,
            latency: latency_ns,
            byte_time_ns,
            eager_threshold: usize::MAX,
            rendezvous_handshake: 0,
            unexpected_copy_per_byte: 0.0,
            pack_per_byte: 0.0,
            datatype_commit: 0,
            datatype_per_byte: 0.0,
            memcpy_per_byte: 0.0,
            latency_jitter_ns: 0,
        }
    }

    /// LogGP model with explicit `L`, `o`, `G` (the gap-per-message `g` is
    /// subsumed into the per-call overheads in this runtime).
    pub fn loggp(l_ns: u64, o_ns: u64, big_g_ns_per_byte: f64) -> Self {
        CostModel {
            o_send: o_ns,
            o_recv: o_ns,
            o_wait: o_ns,
            o_waitall: o_ns,
            o_req_poll: o_ns / 10 + 1,
            o_status: 0,
            o_put: o_ns,
            o_get: o_ns,
            o_quiet: o_ns,
            o_barrier: o_ns,
            latency: l_ns,
            byte_time_ns: big_g_ns_per_byte,
            eager_threshold: 4096,
            rendezvous_handshake: l_ns,
            unexpected_copy_per_byte: 0.2,
            pack_per_byte: 0.25,
            datatype_commit: 2_000,
            datatype_per_byte: 0.1,
            memcpy_per_byte: 0.1,
            latency_jitter_ns: 0,
        }
    }

    /// MPI over the Cray Gemini interconnect (XK7-era), calibrated so the
    /// relative shapes of the paper's figures reproduce:
    /// small-message send/recv software path in the microsecond range,
    /// `MPI_Wait` comparable to a send, cheap amortized `Waitall` polling.
    pub fn gemini_mpi() -> Self {
        CostModel {
            o_send: 600,
            o_recv: 500,
            o_wait: 1_950,
            o_waitall: 1_200,
            o_req_poll: 60,
            o_status: 280,
            o_put: 900, // MPI_Put on XK7 goes through the same software stack
            o_get: 900,
            o_quiet: 800,
            o_barrier: 1_500,
            latency: 1_500,
            byte_time_ns: 0.19, // ~5.2 GB/s effective per-link
            eager_threshold: 8 * 1024,
            rendezvous_handshake: 1_500,
            unexpected_copy_per_byte: 0.3,
            pack_per_byte: 0.30,
            datatype_commit: 3_500,
            datatype_per_byte: 0.12,
            memcpy_per_byte: 0.08,
            latency_jitter_ns: 0,
        }
    }

    /// SHMEM over Gemini: thin one-sided put path mapped nearly directly to
    /// the NIC's block-transfer engine / FMA. Roughly an order of magnitude
    /// lower per-call overhead and latency than the MPI two-sided path for
    /// small transfers (paper refs [13], [14]); identical wire bandwidth.
    pub fn gemini_shmem() -> Self {
        CostModel {
            o_send: 80, // shmem has no two-sided send, used only if forced
            o_recv: 80,
            o_wait: 150,
            o_waitall: 150,
            o_req_poll: 15,
            o_status: 0,
            o_put: 50,
            o_get: 80,
            o_quiet: 400,
            o_barrier: 1_200,
            latency: 700,
            byte_time_ns: 0.19,
            eager_threshold: usize::MAX, // puts never rendezvous
            rendezvous_handshake: 0,
            unexpected_copy_per_byte: 0.0, // no matching, no unexpected queue
            pack_per_byte: 0.30,
            datatype_per_byte: 0.0, // typed puts are contiguous
            datatype_commit: 0,
            memcpy_per_byte: 0.08,
            latency_jitter_ns: 0,
        }
    }

    /// Wire transfer time for a payload of `bytes`: `L + bytes * G`.
    #[inline]
    pub fn wire_time(&self, bytes: usize) -> Time {
        Time::from_nanos(self.latency) + self.byte_cost(self.byte_time_ns, bytes)
    }

    /// Helper: a per-byte rate applied to a byte count, rounded to ns.
    #[inline]
    pub fn byte_cost(&self, per_byte_ns: f64, bytes: usize) -> Time {
        Time::from_nanos_f64(per_byte_ns * bytes as f64)
    }

    /// Cost of a consolidated completion over `n` requests.
    #[inline]
    pub fn waitall_cost(&self, n: usize) -> Time {
        Time::from_nanos(self.o_waitall + self.o_req_poll * n as u64)
    }

    /// Tree-barrier cost among `n` participants: per-call overhead plus a
    /// `ceil(log2 n)` chain of wire latencies.
    #[inline]
    pub fn barrier_cost(&self, n: usize) -> Time {
        let rounds = usize::BITS - n.next_power_of_two().leading_zeros() - 1;
        Time::from_nanos(self.o_barrier + self.latency * u64::from(rounds.max(1)))
    }

    /// Whether a payload of this size travels eagerly.
    #[inline]
    pub fn is_eager(&self, bytes: usize) -> bool {
        bytes <= self.eager_threshold
    }
}

/// The pair of library models available on one simulated machine.
#[derive(Clone, Copy, Debug)]
pub struct MachineModel {
    /// Cost model for the MPI library (two-sided and `MPI_Put` paths).
    pub mpi: CostModel,
    /// Cost model for the SHMEM library.
    pub shmem: CostModel,
}

impl MachineModel {
    /// Add deterministic per-message latency jitter (up to `ns`) to both
    /// libraries — a robustness knob: results must hold on a non-ideal
    /// network too.
    pub fn with_jitter(mut self, ns: u64) -> Self {
        self.mpi.latency_jitter_ns = ns;
        self.shmem.latency_jitter_ns = ns;
        self
    }

    /// The Cray XK7 / Gemini machine the paper evaluates on.
    pub fn gemini() -> Self {
        MachineModel {
            mpi: CostModel::gemini_mpi(),
            shmem: CostModel::gemini_shmem(),
        }
    }

    /// A featureless uniform machine (both libraries identical); useful for
    /// correctness tests where timing must not differ between targets.
    pub fn uniform(latency_ns: u64, bandwidth_gbps: f64) -> Self {
        let m = CostModel::hockney(latency_ns, bandwidth_gbps);
        MachineModel { mpi: m, shmem: m }
    }
}

impl Default for MachineModel {
    fn default() -> Self {
        MachineModel::gemini()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hockney_wire_time() {
        let m = CostModel::hockney(1_000, 1.0); // 1 GB/s => 1 ns/byte
        assert_eq!(m.wire_time(0), Time::from_nanos(1_000));
        assert_eq!(m.wire_time(500), Time::from_nanos(1_500));
    }

    #[test]
    fn wire_time_monotone_in_size() {
        let m = CostModel::gemini_mpi();
        let mut prev = Time::ZERO;
        for bytes in [0usize, 8, 64, 256, 4096, 1 << 20] {
            let t = m.wire_time(bytes);
            assert!(t >= prev, "wire time must not decrease with size");
            prev = t;
        }
    }

    #[test]
    fn waitall_cheaper_than_wait_loop() {
        // The asymmetry Fig. 4 depends on: waiting on n requests one call at
        // a time must cost more than one consolidated waitall.
        let m = CostModel::gemini_mpi();
        for n in [2usize, 8, 16, 64] {
            let loop_cost = Time::from_nanos(m.o_wait * n as u64);
            assert!(
                m.waitall_cost(n) < loop_cost,
                "waitall({n}) should beat a loop of {n} waits"
            );
        }
    }

    #[test]
    fn shmem_small_message_advantage() {
        // SHMEM put initiation + wire must be much cheaper than the MPI
        // send+recv+wait path for small payloads (8-256 bytes), per the
        // paper's discussion of refs [13][14].
        let mpi = CostModel::gemini_mpi();
        let shmem = CostModel::gemini_shmem();
        for bytes in [8usize, 24, 64, 256] {
            let mpi_path =
                Time::from_nanos(mpi.o_send + mpi.o_recv + mpi.o_wait) + mpi.wire_time(bytes);
            let shmem_path = Time::from_nanos(shmem.o_put) + shmem.wire_time(bytes);
            let ratio = mpi_path.as_nanos() as f64 / shmem_path.as_nanos() as f64;
            assert!(
                ratio > 4.0,
                "expected a pronounced SHMEM advantage at {bytes}B, got {ratio:.2}x"
            );
        }
    }

    #[test]
    fn bandwidth_term_shared() {
        let m = MachineModel::gemini();
        assert_eq!(m.mpi.byte_time_ns, m.shmem.byte_time_ns);
    }

    #[test]
    fn barrier_cost_grows_with_participants() {
        let m = CostModel::gemini_mpi();
        assert!(m.barrier_cost(64) > m.barrier_cost(4));
        assert!(m.barrier_cost(2) >= Time::from_nanos(m.o_barrier));
    }

    #[test]
    fn eager_threshold_respected() {
        let m = CostModel::gemini_mpi();
        assert!(m.is_eager(8 * 1024));
        assert!(!m.is_eager(8 * 1024 + 1));
        assert!(CostModel::gemini_shmem().is_eager(usize::MAX));
    }
}
