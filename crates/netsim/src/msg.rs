//! Two-sided message envelopes, match selectors, and completion plumbing.
//!
//! The matching rules mirror MPI semantics: receives match on `(source, tag)`
//! with wildcards, in posting order; messages from one source arrive in
//! program order. Completion *times* are computed purely from virtual
//! quantities (sender departure clock, receiver posting clock, payload size
//! and the wire cost parameters riding in the envelope), so the measured
//! timings are deterministic even though the simulator's threads interleave
//! nondeterministically in wall-clock time.

use std::sync::Arc;

use bytes::Bytes;
use parking_lot::{Condvar, Mutex};

use crate::model::CostModel;
use crate::time::Time;

/// Source selector for a receive: a specific rank or any sender.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SrcSel {
    /// Match only messages from this global rank.
    Exact(usize),
    /// Match a message from any rank (`MPI_ANY_SOURCE`).
    Any,
}

impl SrcSel {
    /// Whether a message from `src` satisfies this selector.
    #[inline]
    pub fn matches(self, src: usize) -> bool {
        match self {
            SrcSel::Exact(r) => r == src,
            SrcSel::Any => true,
        }
    }
}

/// Tag selector for a receive: a specific tag, a half-open range, or any tag.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TagSel {
    /// Match only this tag.
    Exact(i32),
    /// Match any tag in `lo..hi` (used by communicator layers to implement
    /// `MPI_ANY_TAG` within a per-communicator tag namespace).
    Range { lo: i32, hi: i32 },
    /// Match any tag (`MPI_ANY_TAG`).
    Any,
}

impl TagSel {
    /// Whether a message carrying `tag` satisfies this selector.
    #[inline]
    pub fn matches(self, tag: i32) -> bool {
        match self {
            TagSel::Exact(t) => t == tag,
            TagSel::Range { lo, hi } => lo <= tag && tag < hi,
            TagSel::Any => true,
        }
    }
}

/// The subset of [`CostModel`] parameters that travel with a message and
/// determine its transfer timing.
#[derive(Clone, Copy, Debug)]
pub struct WireCosts {
    /// Wire latency in ns.
    pub latency: u64,
    /// ns per byte.
    pub byte_time_ns: f64,
    /// Rendezvous handshake extra latency (ns).
    pub handshake: u64,
    /// Per-byte copy penalty for eagerly-arrived unexpected messages.
    pub unexpected_per_byte: f64,
    /// Whether this message uses the eager protocol.
    pub eager: bool,
}

impl WireCosts {
    /// Extract the wire parameters for a payload of `bytes` under `model`.
    pub fn for_message(model: &CostModel, bytes: usize) -> Self {
        WireCosts {
            latency: model.latency,
            byte_time_ns: model.byte_time_ns,
            handshake: model.rendezvous_handshake,
            unexpected_per_byte: model.unexpected_copy_per_byte,
            eager: model.is_eager(bytes),
        }
    }

    /// Virtual arrival time of an eager payload that departed at `depart`.
    #[inline]
    pub fn eager_arrival(&self, depart: Time, bytes: usize) -> Time {
        depart
            + Time::from_nanos(self.latency)
            + Time::from_nanos_f64(self.byte_time_ns * bytes as f64)
    }
}

/// Outcome of matching one envelope with one posted receive: the virtual
/// completion times on both sides.
#[derive(Clone, Copy, Debug)]
pub struct MatchTiming {
    /// When the receive completes (data available in the receive buffer).
    pub recv_complete: Time,
    /// When the send buffer becomes reusable.
    pub send_complete: Time,
    /// Whether the message (virtually) arrived before the receive was posted
    /// and paid the unexpected-message copy.
    pub unexpected: bool,
}

/// Compute the match timing for a message of `bytes` that departed the
/// sender's NIC at `depart`, matched by a receive posted at `post`.
///
/// Eager: the payload is in flight regardless of the receiver; if it arrives
/// (virtually) before the receive is posted it lands in the unexpected queue
/// and pays a copy. Rendezvous: the payload departs only after the
/// ready-to-send / clear-to-send exchange completes, which requires the
/// receive to be posted.
pub fn match_timing(costs: &WireCosts, bytes: usize, depart: Time, post: Time) -> MatchTiming {
    if costs.eager {
        let arrival = costs.eager_arrival(depart, bytes);
        let unexpected = arrival < post;
        let copy = if unexpected {
            Time::from_nanos_f64(costs.unexpected_per_byte * bytes as f64)
        } else {
            Time::ZERO
        };
        MatchTiming {
            recv_complete: arrival.max(post) + copy,
            // The eager protocol copies the payload out immediately; the send
            // buffer is reusable as soon as the call returns.
            send_complete: depart,
            unexpected,
        }
    } else {
        // RTS departs at `depart`, reaches the receiver after `latency`; the
        // transfer starts once both the RTS has arrived and the receive is
        // posted, plus the handshake round.
        let rts_arrival = depart + Time::from_nanos(costs.latency);
        let xfer_start = rts_arrival.max(post) + Time::from_nanos(costs.handshake);
        let arrival = xfer_start
            + Time::from_nanos(costs.latency)
            + Time::from_nanos_f64(costs.byte_time_ns * bytes as f64);
        MatchTiming {
            recv_complete: arrival,
            send_complete: arrival,
            unexpected: false,
        }
    }
}

/// A message in flight (or parked in the unexpected queue).
#[derive(Debug)]
pub struct Envelope {
    /// Global rank of the sender.
    pub src: usize,
    /// Global rank of the destination.
    pub dst: usize,
    /// Message tag (already namespaced by the communicator layer above).
    pub tag: i32,
    /// The payload bytes. Cheap to clone (refcounted).
    pub payload: Bytes,
    /// Sender's virtual clock when the message departed.
    pub depart: Time,
    /// Wire-cost parameters for this message.
    pub costs: WireCosts,
    /// Send-side completion cell, shared with the sender's [`SendRequest`].
    pub send_done: Arc<Completion>,
}

/// A one-shot completion cell carrying a virtual completion time.
#[derive(Debug, Default)]
pub struct Completion {
    state: Mutex<CompletionState>,
    cv: Condvar,
}

#[derive(Debug, Default)]
struct CompletionState {
    done: Option<Time>,
    /// Bounded-engine single-wake registration: the rank parked on this
    /// cell, woken through the scheduler with a slot already granted.
    waiter: Option<crate::sched::Waiter>,
}

impl Completion {
    pub fn new() -> Arc<Self> {
        Arc::new(Completion::default())
    }

    /// Mark complete at `t`. Idempotent (keeps the first value).
    pub fn set(&self, t: Time) {
        let mut g = self.state.lock();
        if g.done.is_some() {
            return;
        }
        g.done = Some(t);
        let waiter = g.waiter.take();
        if waiter.is_none() {
            self.cv.notify_all();
        }
        drop(g);
        if let Some(w) = waiter {
            w.wake(t);
        }
    }

    /// Physically block until complete; returns the virtual completion time.
    /// Under a bounded scheduler the caller's execution slot is yielded
    /// while parked and handed back with the wake (single-wake protocol,
    /// see [`crate::sched`]).
    pub fn wait(&self) -> Time {
        let mut g = self.state.lock();
        if let Some(t) = g.done {
            return t;
        }
        if let Some(w) = crate::sched::yield_slot() {
            debug_assert!(g.waiter.is_none(), "two ranks waiting one completion");
            g.waiter = Some(w);
            drop(g);
            crate::sched::park_self();
            self.state
                .lock()
                .done
                .expect("rank woken before completion")
        } else {
            while g.done.is_none() {
                self.cv.wait(&mut g);
            }
            g.done.unwrap()
        }
    }

    /// Non-blocking poll.
    pub fn poll(&self) -> Option<Time> {
        self.state.lock().done
    }
}

/// Everything the receiver learns when its receive completes.
#[derive(Debug, Clone)]
pub struct RecvDone {
    /// The payload.
    pub payload: Bytes,
    /// Virtual time at which the receive completed.
    pub completion: Time,
    /// Whether the unexpected-message copy was paid.
    pub unexpected: bool,
    /// Actual source rank (useful with [`SrcSel::Any`]).
    pub src: usize,
    /// Actual tag (useful with [`TagSel::Any`]).
    pub tag: i32,
}

/// Receive-side completion cell.
#[derive(Debug, Default)]
pub struct RecvSlot {
    state: Mutex<RecvState>,
    cv: Condvar,
}

#[derive(Debug, Default)]
struct RecvState {
    done: Option<RecvDone>,
    /// Bounded-engine single-wake registration (see [`Completion`]).
    waiter: Option<crate::sched::Waiter>,
}

impl RecvSlot {
    pub fn new() -> Arc<Self> {
        Arc::new(RecvSlot::default())
    }

    pub fn set(&self, done: RecvDone) {
        let mut g = self.state.lock();
        debug_assert!(g.done.is_none(), "receive completed twice");
        let t = done.completion;
        g.done = Some(done);
        let waiter = g.waiter.take();
        if waiter.is_none() {
            self.cv.notify_all();
        }
        drop(g);
        if let Some(w) = waiter {
            w.wake(t);
        }
    }

    /// Physically block until the matching message has been delivered.
    /// Under a bounded scheduler the caller's execution slot is yielded
    /// while parked and handed back with the wake (single-wake protocol,
    /// see [`crate::sched`]).
    pub fn wait(&self) -> RecvDone {
        let mut g = self.state.lock();
        if let Some(done) = g.done.clone() {
            return done;
        }
        if let Some(w) = crate::sched::yield_slot() {
            debug_assert!(g.waiter.is_none(), "two ranks waiting one receive");
            g.waiter = Some(w);
            drop(g);
            crate::sched::park_self();
            self.state
                .lock()
                .done
                .clone()
                .expect("rank woken before delivery")
        } else {
            while g.done.is_none() {
                self.cv.wait(&mut g);
            }
            g.done.clone().unwrap()
        }
    }

    pub fn poll(&self) -> Option<RecvDone> {
        self.state.lock().done.clone()
    }
}

/// Handle for a pending (or complete) non-blocking send.
#[derive(Debug, Clone)]
pub struct SendRequest {
    pub(crate) done: Arc<Completion>,
    /// Payload size, for bookkeeping/stats.
    pub bytes: usize,
}

impl SendRequest {
    /// Physically block until the send buffer is (virtually) reusable;
    /// returns the completion time. Does **not** advance any clock — the
    /// caller decides how to charge the wait (per-call `o_wait` vs.
    /// consolidated `waitall`), which is the whole point of the paper.
    pub fn wait_raw(&self) -> Time {
        self.done.wait()
    }

    /// Non-blocking completion poll.
    pub fn poll(&self) -> Option<Time> {
        self.done.poll()
    }
}

/// Handle for a pending (or complete) non-blocking receive.
#[derive(Debug, Clone)]
pub struct RecvRequest {
    pub(crate) slot: Arc<RecvSlot>,
    /// Virtual time the receive was posted (receiver clock after `o_recv`);
    /// `completion - posted` is the posted-receive dwell.
    pub posted: Time,
}

impl RecvRequest {
    /// Physically block until the message is delivered; returns payload and
    /// virtual completion time. Does **not** advance any clock.
    pub fn wait_raw(&self) -> RecvDone {
        self.slot.wait()
    }

    /// Non-blocking completion poll.
    pub fn poll(&self) -> Option<RecvDone> {
        self.slot.poll()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn costs(eager: bool) -> WireCosts {
        WireCosts {
            latency: 1_000,
            byte_time_ns: 1.0,
            handshake: 500,
            unexpected_per_byte: 0.5,
            eager,
        }
    }

    #[test]
    fn eager_expected_message() {
        // Receive posted before arrival: completes at arrival, no copy.
        let t = match_timing(&costs(true), 100, Time(0), Time(0));
        assert_eq!(t.recv_complete, Time(1_100));
        assert_eq!(t.send_complete, Time(0));
        assert!(!t.unexpected);
    }

    #[test]
    fn eager_unexpected_pays_copy() {
        // Receive posted long after arrival: completes at post + copy.
        let t = match_timing(&costs(true), 100, Time(0), Time(5_000));
        assert!(t.unexpected);
        assert_eq!(t.recv_complete, Time(5_000 + 50));
    }

    #[test]
    fn eager_boundary_not_unexpected() {
        // Arrival exactly at post time counts as expected.
        let t = match_timing(&costs(true), 100, Time(0), Time(1_100));
        assert!(!t.unexpected);
        assert_eq!(t.recv_complete, Time(1_100));
    }

    #[test]
    fn rendezvous_waits_for_post() {
        // depart=0, RTS arrives at 1000; post at 10_000 dominates.
        let t = match_timing(&costs(false), 1_000, Time(0), Time(10_000));
        // xfer_start = 10_000 + 500, arrival = +1_000 + 1_000 bytes
        assert_eq!(t.recv_complete, Time(12_500));
        assert_eq!(t.send_complete, t.recv_complete);
        assert!(!t.unexpected);
    }

    #[test]
    fn rendezvous_waits_for_rts() {
        // post long before depart: RTS arrival dominates.
        let t = match_timing(&costs(false), 1_000, Time(50_000), Time(0));
        assert_eq!(t.recv_complete, Time(50_000 + 1_000 + 500 + 1_000 + 1_000));
    }

    #[test]
    fn completion_cell_roundtrip() {
        let c = Completion::new();
        assert!(c.poll().is_none());
        c.set(Time(42));
        assert_eq!(c.poll(), Some(Time(42)));
        assert_eq!(c.wait(), Time(42));
        // Idempotent: second set keeps the first value.
        c.set(Time(99));
        assert_eq!(c.wait(), Time(42));
    }

    #[test]
    fn recv_slot_roundtrip() {
        let s = RecvSlot::new();
        assert!(s.poll().is_none());
        s.set(RecvDone {
            payload: Bytes::from_static(b"hi"),
            completion: Time(7),
            unexpected: false,
            src: 3,
            tag: 9,
        });
        let d = s.wait();
        assert_eq!(&d.payload[..], b"hi");
        assert_eq!(d.completion, Time(7));
        assert_eq!((d.src, d.tag), (3, 9));
    }

    #[test]
    fn selectors() {
        assert!(SrcSel::Any.matches(5));
        assert!(SrcSel::Exact(5).matches(5));
        assert!(!SrcSel::Exact(5).matches(4));
        assert!(TagSel::Any.matches(-1));
        assert!(TagSel::Exact(2).matches(2));
        assert!(!TagSel::Exact(2).matches(3));
    }
}
