//! Per-primitive wall-cost microbenchmark for the two execution engines.
//!
//! Usage: `microbench [--workers W]` (omit `--workers` for thread-per-rank).
//! Prints wall time per simulated operation for a few synthetic workloads;
//! used to attribute engine overhead, not to produce paper figures.

use std::time::Instant;

use netsim::{run, ExecPolicy, SimConfig, SrcSel, TagSel};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let exec = match args
        .iter()
        .position(|a| a == "--workers")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
    {
        Some(w) => ExecPolicy::bounded(w),
        None => ExecPolicy::threads(),
    };

    // (a) spawn/teardown only: n ranks that do nothing.
    for n in [64usize, 337] {
        let t0 = Instant::now();
        let reps = 20;
        for _ in 0..reps {
            run(SimConfig::new(n).with_exec(exec), |_ctx| ());
        }
        let dt = t0.elapsed();
        println!(
            "spawn-only        n={n:4}  {:8.1} us/run  ({reps} runs in {dt:?})",
            dt.as_secs_f64() * 1e6 / reps as f64
        );
    }

    // (b) ping-pong: 2 ranks, K round trips (4K blocking ops total).
    {
        let k = 20_000usize;
        let t0 = Instant::now();
        run(SimConfig::new(2).with_exec(exec), move |ctx| {
            let mpi = ctx.machine().mpi;
            let peer = 1 - ctx.rank();
            for _ in 0..k {
                if ctx.rank() == 0 {
                    ctx.send(peer, 0, b"x", &mpi);
                    ctx.recv(SrcSel::Exact(peer), TagSel::Exact(0), &mpi);
                } else {
                    ctx.recv(SrcSel::Exact(peer), TagSel::Exact(0), &mpi);
                    ctx.send(peer, 0, b"x", &mpi);
                }
            }
        });
        let dt = t0.elapsed();
        println!(
            "ping-pong         2 ranks  {:8.0} ns/msg   ({} msgs in {dt:?})",
            dt.as_secs_f64() * 1e9 / (2 * k) as f64,
            2 * k
        );
    }

    // (c) fan-in: master posts n-1 receives, walkers send (the fig4 shape).
    for n in [64usize, 337] {
        let reps = 40usize;
        let t0 = Instant::now();
        run(SimConfig::new(n).with_exec(exec), move |ctx| {
            let mpi = ctx.machine().mpi;
            for _ in 0..reps {
                if ctx.rank() == 0 {
                    for _ in 1..n {
                        ctx.recv(SrcSel::Any, TagSel::Exact(0), &mpi);
                    }
                } else {
                    ctx.send(0, 0, b"spin-mesg-24-bytes-here!", &mpi);
                }
                ctx.barrier(&mpi);
            }
        });
        let dt = t0.elapsed();
        let msgs = reps * (n - 1);
        println!(
            "fan-in+barrier    n={n:4}  {:8.0} ns/msg   ({msgs} msgs in {dt:?})",
            dt.as_secs_f64() * 1e9 / msgs as f64
        );
    }

    // (d) barrier storm: n ranks, K group barriers, no messages.
    for n in [64usize, 337] {
        let k = 200usize;
        let t0 = Instant::now();
        run(SimConfig::new(n).with_exec(exec), move |ctx| {
            let mpi = ctx.machine().mpi;
            for _ in 0..k {
                ctx.barrier(&mpi);
            }
        });
        let dt = t0.elapsed();
        println!(
            "barrier           n={n:4}  {:8.0} ns/rank-entry ({k} barriers in {dt:?})",
            dt.as_secs_f64() * 1e9 / (k * n) as f64
        );
    }
}
