//! The daemon front ends: a Unix-domain-socket listener and a stdio
//! mode.
//!
//! Each accepted connection gets its own thread; all threads share one
//! [`Engine`] behind an `Arc`. Concurrency safety comes from the
//! content-addressed store's single-flight builds — two clients asking
//! for the same artifact version block on one build and receive the same
//! entry, so concurrent identical requests cost one analysis — and from
//! the byte-identity of assembly: whichever interleaving wins, each
//! response is assembled from the same artifacts into the same bytes.

use std::io::{self, BufReader, BufWriter, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::Arc;

use crate::engine::Engine;
use crate::proto::{handle, read_frame, write_frame};

/// Serve one already-connected byte stream until EOF.
pub fn serve_stream(engine: &Engine, r: &mut impl Read, w: &mut impl Write) -> io::Result<()> {
    while let Some(frame) = read_frame(r)? {
        let response = handle(engine, &frame);
        write_frame(w, response.as_bytes())?;
    }
    Ok(())
}

fn serve_conn(engine: Arc<Engine>, stream: UnixStream) {
    let mut r = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut w = BufWriter::new(stream);
    // A client dropping the connection mid-frame is routine; the engine
    // and every other connection are unaffected.
    let _ = serve_stream(&engine, &mut r, &mut w);
}

/// Bind a Unix-domain socket and serve until the process is killed. A
/// stale socket file from a previous run is removed first.
pub fn serve_unix(engine: Arc<Engine>, path: &Path) -> io::Result<()> {
    if path.exists() {
        std::fs::remove_file(path)?;
    }
    let listener = UnixListener::bind(path)?;
    for stream in listener.incoming() {
        let stream = stream?;
        let engine = Arc::clone(&engine);
        std::thread::spawn(move || serve_conn(engine, stream));
    }
    Ok(())
}

/// Serve stdin/stdout (one client, e.g. an editor plugin spawning the
/// daemon as a child process).
pub fn serve_stdio(engine: &Engine) -> io::Result<()> {
    let stdin = io::stdin();
    let stdout = io::stdout();
    let mut r = stdin.lock();
    let mut w = BufWriter::new(stdout.lock());
    serve_stream(engine, &mut r, &mut w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::request_json;
    use commlint::LintOptions;
    use pragma_front::SymbolTable;

    #[test]
    fn stream_serves_frames_in_order() {
        let engine = Engine::new(SymbolTable::new(), LintOptions::default(), None);
        let src = "// @decl a: double[4]\n#pragma comm_p2p sender(rank) \
                   receiver((rank+1)%nprocs) sbuf(a) rbuf(a) count(4)";
        let mut input = Vec::new();
        write_frame(
            &mut input,
            request_json("analyze", 1, "s.comm", src).as_bytes(),
        )
        .unwrap();
        write_frame(&mut input, request_json("stats", 2, "", "").as_bytes()).unwrap();
        let mut out = Vec::new();
        serve_stream(&engine, &mut &input[..], &mut out).unwrap();
        let mut r = &out[..];
        let first = String::from_utf8(read_frame(&mut r).unwrap().unwrap()).unwrap();
        assert!(
            first.contains("\"id\": 1") && first.contains("\"ok\": true"),
            "{first}"
        );
        let second = String::from_utf8(read_frame(&mut r).unwrap().unwrap()).unwrap();
        assert!(second.contains("\"op\": \"stats\""), "{second}");
        assert!(read_frame(&mut r).unwrap().is_none());
    }
}
