//! Length-framed JSON protocol for the analysis daemon.
//!
//! Every frame is `[u32 little-endian byte length][JSON document]`.
//! Requests:
//!
//! ```json
//! { "v": 1, "op": "analyze", "id": 7, "file": "ring.comm", "src": "..." }
//! { "v": 1, "op": "prove",   "id": 8, "file": "ring.comm", "src": "..." }
//! { "v": 1, "op": "diag",    "id": 9, "file": "ring.comm", "src": "..." }
//! { "v": 1, "op": "stats",   "id": 10 }
//! ```
//!
//! Responses echo `id` and `op`, carry `"ok"`, and embed the batch CLIs'
//! documents as escaped JSON strings (`report`, `cert`) so the payloads
//! stay byte-identical to the CLI output — a client unescapes `report`
//! and has exactly `commlint --format json`'s bytes. `analyze`/`prove`
//! responses also carry incrementality telemetry: `dirty` (region
//! indexes re-analyzed), `reused`, and `evicted` (cache entries removed
//! by this update's invalidations); `prove` adds `disk_cert`.
//!
//! The golden fixtures under `tests/intd_golden/` pin this surface.

use std::io::{self, Read, Write};

use commlint::json::escape;
use commprove::jsonv::{self, JValue};

use crate::engine::Engine;

/// Protocol version (the request's `v` field must match).
pub const PROTO_VERSION: u64 = 1;

/// Largest accepted frame (a defensive bound, not a design limit).
pub const MAX_FRAME: usize = 64 << 20;

/// Read one length-framed message. `Ok(None)` is clean EOF at a frame
/// boundary.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "truncated frame header",
                ))
            }
            n => filled += n,
        }
    }
    let n = u32::from_le_bytes(len) as usize;
    if n > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {n} bytes exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut body = vec![0u8; n];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

/// Write one length-framed message.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// A parsed request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Verb: `analyze`, `prove`, `diag` or `stats`.
    pub op: String,
    /// Client-chosen correlation id, echoed in the response.
    pub id: Option<i64>,
    /// Source path (the name analyses report under).
    pub file: String,
    /// Source text.
    pub src: String,
}

/// Parse a request frame.
pub fn parse_request(bytes: &[u8]) -> Result<Request, String> {
    let text = std::str::from_utf8(bytes).map_err(|_| "request is not UTF-8".to_string())?;
    let v = jsonv::parse(text).map_err(|e| format!("bad request JSON: {e}"))?;
    let version = match v.get("v") {
        Some(JValue::Int(n)) => *n as u64,
        _ => return Err("missing protocol version `v`".to_string()),
    };
    if version != PROTO_VERSION {
        return Err(format!(
            "protocol version {version} unsupported (want {PROTO_VERSION})"
        ));
    }
    let op = v
        .get("op")
        .and_then(|o| o.as_str())
        .ok_or_else(|| "missing `op`".to_string())?
        .to_string();
    let id = match v.get("id") {
        Some(JValue::Int(n)) => Some(*n),
        Some(JValue::Null) | None => None,
        Some(_) => return Err("`id` must be an integer".to_string()),
    };
    let needs_src = op != "stats";
    let field = |name: &str| -> Result<String, String> {
        match v.get(name).and_then(|f| f.as_str()) {
            Some(s) => Ok(s.to_string()),
            None if !needs_src => Ok(String::new()),
            None => Err(format!("`{op}` needs `{name}`")),
        }
    };
    Ok(Request {
        file: field("file")?,
        src: field("src")?,
        op,
        id,
    })
}

fn id_json(id: Option<i64>) -> String {
    match id {
        Some(i) => i.to_string(),
        None => "null".to_string(),
    }
}

fn dirty_json(dirty: &[usize]) -> String {
    dirty
        .iter()
        .map(|i| i.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

/// Render an error response.
pub fn error_response(id: Option<i64>, msg: &str) -> String {
    format!(
        "{{ \"v\": {PROTO_VERSION}, \"id\": {}, \"ok\": false, \"error\": \"{}\" }}",
        id_json(id),
        escape(msg)
    )
}

/// Dispatch one request frame against the engine and render the response
/// document. Never panics on malformed input — errors become `ok: false`
/// responses.
pub fn handle(engine: &Engine, frame: &[u8]) -> String {
    let req = match parse_request(frame) {
        Ok(r) => r,
        Err(e) => return error_response(None, &e),
    };
    match req.op.as_str() {
        "analyze" => match engine.analyze(&req.file, &req.src) {
            Ok(a) => format!(
                "{{ \"v\": {PROTO_VERSION}, \"id\": {}, \"ok\": true, \"op\": \"analyze\", \
                 \"file\": \"{}\", \"gate_fails\": {}, \"regions\": {}, \"dirty\": [{}], \
                 \"reused\": {}, \"evicted\": {}, \"report\": \"{}\" }}",
                id_json(req.id),
                escape(&req.file),
                a.gate_fails,
                a.regions,
                dirty_json(&a.dirty),
                a.reused,
                a.evicted,
                escape(&a.report_json),
            ),
            Err(e) => error_response(req.id, &e),
        },
        "prove" => match engine.prove(&req.file, &req.src) {
            Ok(p) => format!(
                "{{ \"v\": {PROTO_VERSION}, \"id\": {}, \"ok\": true, \"op\": \"prove\", \
                 \"file\": \"{}\", \"gate_fails\": {}, \"regions\": {}, \"dirty\": [{}], \
                 \"reused\": {}, \"evicted\": {}, \"disk_cert\": \"{}\", \
                 \"report\": \"{}\", \"cert\": \"{}\" }}",
                id_json(req.id),
                escape(&req.file),
                p.gate_fails,
                p.regions,
                dirty_json(&p.dirty),
                p.reused,
                p.evicted,
                p.disk_cert,
                escape(&p.report_json),
                escape(&p.cert_json),
            ),
            Err(e) => error_response(req.id, &e),
        },
        "diag" => match engine.diag(&req.file, &req.src) {
            Ok(body) => format!(
                "{{ \"v\": {PROTO_VERSION}, \"id\": {}, \"ok\": true, \"op\": \"diag\", \
                 \"file\": \"{}\", \"regions\": {body} }}",
                id_json(req.id),
                escape(&req.file),
            ),
            Err(e) => error_response(req.id, &e),
        },
        "stats" => {
            let s = engine.stats();
            let kinds = engine
                .population()
                .iter()
                .map(|(k, n)| format!("\"{}\": {n}", k.label()))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "{{ \"v\": {PROTO_VERSION}, \"id\": {}, \"ok\": true, \"op\": \"stats\", \
                 \"entries\": {}, \"hits\": {}, \"misses\": {}, \"waits\": {}, \
                 \"invalidations\": {}, \"hit_rate\": {:.4}, \"kinds\": {{ {kinds} }}, \
                 \"files\": {} }}",
                id_json(req.id),
                s.entries,
                s.hits,
                s.misses,
                s.waits,
                s.invalidations,
                s.hit_rate(),
                engine.files_seen(),
            )
        }
        other => error_response(req.id, &format!("unknown op `{other}`")),
    }
}

/// Render a request document (the client side of the protocol; tests and
/// the `fig_serve` bench use this).
pub fn request_json(op: &str, id: i64, file: &str, src: &str) -> String {
    if op == "stats" {
        format!("{{ \"v\": {PROTO_VERSION}, \"op\": \"stats\", \"id\": {id} }}")
    } else {
        format!(
            "{{ \"v\": {PROTO_VERSION}, \"op\": \"{}\", \"id\": {id}, \"file\": \"{}\", \
             \"src\": \"{}\" }}",
            escape(op),
            escape(file),
            escape(src)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn truncated_header_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(2);
        let mut r = &buf[..];
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn requests_parse_and_validate() {
        let req = parse_request(request_json("analyze", 3, "a.comm", "x\ny").as_bytes()).unwrap();
        assert_eq!(req.op, "analyze");
        assert_eq!(req.id, Some(3));
        assert_eq!(req.src, "x\ny");
        assert!(parse_request(b"{ \"op\": \"analyze\" }").is_err());
        assert!(parse_request(b"{ \"v\": 2, \"op\": \"analyze\" }").is_err());
        assert!(parse_request(b"{ \"v\": 1, \"op\": \"analyze\" }").is_err());
        assert!(parse_request(b"not json").is_err());
        let stats = parse_request(b"{ \"v\": 1, \"op\": \"stats\" }").unwrap();
        assert_eq!(stats.op, "stats");
    }
}
