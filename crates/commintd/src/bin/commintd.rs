//! `commintd` — the incremental analysis daemon.
//!
//! ```text
//! commintd [--ranks LO..=HI] [--var name=value]... [--buf name:type:len]...
//!          [--cert-dir DIR] (--socket PATH | --stdio)
//! commintd --selfcheck FILE...
//! ```
//!
//! Exit status: 0 clean shutdown (or selfcheck pass), 1 selfcheck
//! mismatch, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use commintd::server::{serve_stdio, serve_unix};
use commintd::Engine;
use commlint::json::render_json;
use commlint::{basic_type_of, lint_source, LintOptions, RankRange};
use commprove::prove_source;
use pragma_front::SymbolTable;

const USAGE: &str = "usage: commintd [--ranks LO..=HI] [--var name=value]... \
[--buf name:type:len]... [--cert-dir DIR] (--socket PATH | --stdio | --selfcheck FILE...)";

const HELP: &str = "\
commintd — incremental, content-addressed analysis daemon.

usage: commintd [--ranks LO..=HI] [--var name=value]... [--buf name:type:len]...
                [--cert-dir DIR] (--socket PATH | --stdio)
       commintd --selfcheck FILE...

Serves commlint reports and commprove certificates over a length-framed
JSON protocol ([u32 LE length][document]; ops: analyze, prove, diag,
stats). Responses are byte-identical to the batch CLIs' output for the
same flags, but re-analysis after an edit costs O(changed regions):
artifacts are cached under structural region hashes, so untouched
regions — and formatting-only edits anywhere — are served from cache.

flags:
  --ranks, --var, --buf   analysis configuration, exactly as commlint
  --cert-dir DIR          persist one <stem>.cert.json per proved file;
                          existing entries are byte-compared, validated
                          with the certificate checker when stale, and
                          rewritten (the store self-heals corruption)
  --socket PATH           listen on a Unix-domain socket (thread per
                          connection; a stale socket file is replaced)
  --stdio                 serve one client over stdin/stdout
  --selfcheck FILE...     no daemon: run each file through the engine
                          twice (cold, then warm) and byte-compare both
                          passes against the batch commlint/commprove
                          library output — the CI identity gate

exit status:
  0  clean shutdown / selfcheck passed
  1  selfcheck mismatch
  2  usage error or I/O failure";

fn fail(msg: &str) -> ExitCode {
    eprintln!("commintd: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn selfcheck(
    engine: &Engine,
    symbols: &SymbolTable,
    opts: &LintOptions,
    files: &[String],
) -> ExitCode {
    let mut failed = false;
    for path in files {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => return fail(&format!("cannot read `{path}`: {e}")),
        };
        let want_lint = match lint_source(&src, symbols, opts) {
            Ok(r) => render_json(&[(path.clone(), r)]),
            Err(e) => return fail(&format!("{path}: {e}")),
        };
        let prove = match prove_source(path, &src, symbols, opts) {
            Ok(r) => r,
            Err(e) => return fail(&format!("{path}: {e}")),
        };
        let want_report = render_json(&[(path.clone(), prove.report)]);
        let want_cert = prove.certificate.to_json();
        for pass in ["cold", "warm"] {
            let a = match engine.analyze(path, &src) {
                Ok(a) => a,
                Err(e) => return fail(&format!("{path}: {e}")),
            };
            let p = match engine.prove(path, &src) {
                Ok(p) => p,
                Err(e) => return fail(&format!("{path}: {e}")),
            };
            let mut bad = Vec::new();
            if a.report_json != want_lint {
                bad.push("analyze report");
            }
            if p.report_json != want_report {
                bad.push("prove report");
            }
            if p.cert_json != want_cert {
                bad.push("certificate");
            }
            if bad.is_empty() {
                println!(
                    "commintd: {path}: {pass} pass byte-identical to batch \
                     ({} region(s), {} reused)",
                    a.regions, a.reused
                );
            } else {
                failed = true;
                for what in bad {
                    eprintln!("commintd: {path}: {pass} pass {what} differs from batch output");
                }
            }
        }
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let mut opts = LintOptions::default();
    let mut symbols = SymbolTable::new();
    let mut cert_dir: Option<PathBuf> = None;
    let mut socket: Option<PathBuf> = None;
    let mut stdio = false;
    let mut check = false;
    let mut files: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--ranks" => {
                let Some(spec) = args.next() else {
                    return fail("--ranks needs a value");
                };
                let Some(r) = RankRange::parse(&spec) else {
                    return fail(&format!("bad --ranks `{spec}` (want LO..=HI, LO>=1)"));
                };
                opts.ranks = r;
            }
            "--var" => {
                let Some(spec) = args.next() else {
                    return fail("--var needs name=value");
                };
                let Some((name, value)) = spec.split_once('=') else {
                    return fail(&format!("bad --var `{spec}` (want name=value)"));
                };
                let Ok(value) = value.trim().parse::<i64>() else {
                    return fail(&format!("bad --var value in `{spec}`"));
                };
                opts.vars.insert(name.trim().to_string(), value);
            }
            "--buf" => {
                let Some(spec) = args.next() else {
                    return fail("--buf needs name:type:len");
                };
                let parts: Vec<&str> = spec.split(':').collect();
                let [name, ty, len] = parts.as_slice() else {
                    return fail(&format!("bad --buf `{spec}` (want name:type:len)"));
                };
                let Some(bt) = basic_type_of(ty) else {
                    return fail(&format!("unknown --buf type `{ty}`"));
                };
                let Ok(len) = len.parse::<usize>() else {
                    return fail(&format!("bad --buf length in `{spec}`"));
                };
                symbols.declare_prim(name, bt, len);
            }
            "--cert-dir" => {
                let Some(dir) = args.next() else {
                    return fail("--cert-dir needs a directory");
                };
                cert_dir = Some(PathBuf::from(dir));
            }
            "--socket" => {
                let Some(p) = args.next() else {
                    return fail("--socket needs a path");
                };
                socket = Some(PathBuf::from(p));
            }
            "--stdio" => stdio = true,
            "--selfcheck" => check = true,
            "--help" | "-h" => {
                println!("{HELP}");
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with("--") => {
                return fail(&format!("unknown flag `{arg}`"));
            }
            _ => files.push(arg),
        }
    }

    let engine = Engine::new(symbols.clone(), opts.clone(), cert_dir);
    if check {
        if files.is_empty() {
            return fail("--selfcheck needs input files");
        }
        return selfcheck(&engine, &symbols, &opts, &files);
    }
    if !files.is_empty() {
        return fail("file arguments need --selfcheck");
    }
    match (socket, stdio) {
        (Some(path), false) => match serve_unix(Arc::new(engine), &path) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => fail(&format!("cannot serve `{}`: {e}", path.display())),
        },
        (None, true) => match serve_stdio(&engine) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => fail(&format!("stdio serve failed: {e}")),
        },
        (Some(_), true) => fail("--socket and --stdio are exclusive"),
        (None, false) => fail("pick a front end: --socket PATH, --stdio, or --selfcheck"),
    }
}
