//! # commintd — incremental, content-addressed analysis service
//!
//! The batch CLIs (`commlint`, `commprove`) re-analyze a whole file on
//! every invocation. This crate hosts the same analyses behind a
//! long-running daemon whose cost is `O(changed regions)`: every parsed
//! region is keyed by its structural hash ([`commlint::hash`]) and the
//! derived artifacts — per-rank-count lint stripes, merged sweeps,
//! commprove certificates, normal forms, race summaries — live in a
//! content-addressed store ([`commint::cas`]) with explicit dependency
//! edges back to a per-region anchor entry. An edit invalidates exactly
//! the anchors whose hashes vanished; everything else is served from
//! cache.
//!
//! The non-negotiable invariant is **byte identity**: a daemon-served
//! report or certificate is the same bytes the batch CLI would print for
//! the same source and flags, whether the cache is cold, warm, or was
//! partially invalidated in any order. The engine earns this by reusing
//! the CLIs' own library code paths ([`commlint::sweep_region`]'s
//! dedup/assembly contract, [`commprove::prove_region_with`]) and by
//! storing diagnostics in *relocatable* form — spans are recorded as
//! canonical-token ordinals and re-anchored against the current source on
//! every response, so a formatting-only edit reuses every artifact yet
//! still reports exact positions.
//!
//! Three layers:
//! * [`engine`] — the incremental core: hashing, delta → invalidation,
//!   artifact construction, re-anchoring, byte-identical assembly.
//! * [`proto`] — the length-framed JSON request/response protocol
//!   (`analyze` / `prove` / `diag` / `stats`).
//! * [`server`] — the front end: a Unix-domain-socket listener with one
//!   thread per connection (the store's single-flight builds make
//!   concurrent identical requests cheap), plus a `--stdio` mode.

pub mod engine;
pub mod proto;
pub mod server;

pub use engine::{Analysis, Engine, Proof};
