//! The incremental analysis core: content-addressed artifacts over
//! structural region hashes, with byte-identical batch-CLI output.
//!
//! ## Artifact graph
//!
//! Every region version (structural hash `h`) owns an **anchor** entry
//! `region:h`. Derived artifacts depend on it:
//!
//! ```text
//! region:h ──▶ stripe:h,N   one lint_region_at outcome per rank count
//!          ──▶ sweep:h      stripes merged in ascending-count order
//!          ──▶ cert:h       prove_region_with result (diags + RegionCert)
//!          ──▶ forms:h      clause normal forms + class parameters
//!          ──▶ race:h       race-code summary of the sweep
//! ```
//!
//! A file update diffs the old and new per-region hash vectors; hashes
//! that vanished have their anchors invalidated, which evicts the whole
//! cohort through the dependency edges. Hashes that persist keep every
//! artifact — including across files that happen to share a region.
//!
//! ## Relocatable diagnostics
//!
//! Cached artifacts must survive formatting-only edits (same hash,
//! different byte offsets), so spans are stored relative to the region's
//! canonical token stream: a span that starts at token `i` of the chunk
//! is recorded as `Tok(i)` and re-anchored against the *current* source's
//! token spans when a response is assembled. Within one request the
//! round-trip is exact, so the prover's injected `lint_at` closure
//! returns precisely what `lint_region_at` would.
//!
//! The race findings (CI009–CI012) are emitted by `lint_region_at`
//! itself, so they ride the stripe/sweep/cert entries like every other
//! code — the daemon unifies commlint, commprove and the race analysis
//! over one artifact store. The `race:h` summary only aggregates them
//! for the `diag` verb.
//!
//! ## Response cache
//!
//! Above the artifact store sits a per-file response cache keyed by the
//! FNV-1a hash of the exact source bytes. The engine's configuration is
//! fixed at construction and every verb is a deterministic function of
//! (configuration, source), so when a request repeats the last-seen
//! bytes the previously rendered response is replayed verbatim —
//! byte-identical by construction, at the cost of one hash of the
//! source. This is the editor steady state: most `analyze` round trips
//! after a save storm touch files that did not change. The disk
//! certificate store is still reconciled on every cached `prove` hit,
//! so external tampering is detected (and healed) even on the fast
//! path.

use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use commint::cas::{fnv1a64, ArtifactKind, Fnv64, Key, Stats, Store};
use commint::diag::{lint_region_at, Diag, LintCode, SrcSpan};
use commint::dir::ParamsSpec;
use commint::expr::VarTable;
use commlint::hash::{env_hash, split_regions_tokens, structural_hash_tokens, RegionChunk};
use commlint::json::{escape, render_json};
use commlint::{
    apply_decls, assemble_lint_report, lint_parsed, parse_diags, region_view, scan_annotations,
    LintOptions, LintReport, RankRange,
};
use commprove::cert::{Certificate, RegionCert, CERT_SCHEMA};
use commprove::check::check_cert_bytes;
use commprove::{prove_parsed, prove_region_with, region_forms};
use pragma_front::lex::{Tok, Token};
use pragma_front::{parse, Parsed, SymbolTable};

/// The lint codes the race analysis produces (all inside
/// `lint_region_at`, so they live in the same stripes as everything
/// else).
const RACE_CODES: [LintCode; 4] = [
    LintCode::OverlappingPuts,
    LintCode::GetPutConflict,
    LintCode::SourceReuseBeforeQuiet,
    LintCode::ReadBeforeSignalWait,
];

// ---------------------------------------------------------------------------
// Relocatable spans and diagnostics
// ---------------------------------------------------------------------------

/// A span stored relative to a region's canonical token stream.
#[derive(Clone, Debug, PartialEq, Eq)]
enum RelSpan {
    /// No span.
    None,
    /// Starts exactly at canonical token `i` of the chunk.
    Tok(u32),
    /// Did not start at a token (should not happen for clause spans);
    /// kept verbatim as a best-effort fallback.
    Raw(SrcSpan),
}

/// A [`Diag`] with its span in relocatable form.
#[derive(Clone, Debug)]
struct RelDiag {
    code: LintCode,
    severity: commint::clause::Severity,
    message: String,
    span: RelSpan,
    region: usize,
    site: Option<u32>,
    key: String,
    witness: Option<commint::diag::RankWitness>,
    verification: Option<commint::diag::Verification>,
}

/// Maps between absolute spans in the current source and token ordinals
/// of one region chunk.
struct Anchor {
    /// Absolute span of each canonical token, in stream order.
    spans: Vec<SrcSpan>,
    /// Absolute start offset → token ordinal. Only rel-mapping (artifact
    /// *builds*) needs the reverse index; warm requests that merely
    /// re-anchor cached diags never pay for it, so it is built on first
    /// use. `OnceCell` suffices: builders run on the requesting thread
    /// (waiters block on the store's condvar) and the anchor is a
    /// per-request local.
    by_offset: std::cell::OnceCell<HashMap<usize, u32>>,
}

impl Anchor {
    /// Build the anchor from the chunk's slice of the full-file lex
    /// (`split_regions_tokens`), whose spans are already file-absolute —
    /// no per-request re-lex, no span rebasing.
    fn of_tokens(tokens: &[Token]) -> Anchor {
        let spans = tokens
            .iter()
            .take_while(|t| t.tok != Tok::Eof)
            .map(|t| SrcSpan {
                offset: t.span.offset,
                line: t.span.line,
                col: t.span.col,
            })
            .collect();
        Anchor {
            spans,
            by_offset: std::cell::OnceCell::new(),
        }
    }

    fn rel(&self, span: Option<SrcSpan>) -> RelSpan {
        let by_offset = self.by_offset.get_or_init(|| {
            self.spans
                .iter()
                .enumerate()
                .map(|(i, sp)| (sp.offset, i as u32))
                .collect()
        });
        match span {
            None => RelSpan::None,
            Some(sp) => match by_offset.get(&sp.offset) {
                Some(&i) => RelSpan::Tok(i),
                None => RelSpan::Raw(sp),
            },
        }
    }

    fn abs(&self, span: &RelSpan) -> Option<SrcSpan> {
        match span {
            RelSpan::None => None,
            RelSpan::Tok(i) => self.spans.get(*i as usize).copied(),
            RelSpan::Raw(sp) => Some(*sp),
        }
    }

    fn rel_diag(&self, d: &Diag) -> RelDiag {
        RelDiag {
            code: d.code,
            severity: d.severity,
            message: d.message.clone(),
            span: self.rel(d.span),
            region: d.region,
            site: d.site,
            key: d.key.clone(),
            witness: d.witness.clone(),
            verification: d.verification.clone(),
        }
    }

    fn abs_diag(&self, d: &RelDiag) -> Diag {
        Diag {
            code: d.code,
            severity: d.severity,
            message: d.message.clone(),
            span: self.abs(&d.span),
            region: d.region,
            site: d.site,
            key: d.key.clone(),
            witness: d.witness.clone(),
            verification: d.verification.clone(),
        }
    }
}

// ---------------------------------------------------------------------------
// Artifacts
// ---------------------------------------------------------------------------

/// A cached prove result: relocatable diagnostics plus the certificate
/// with its site spans stripped (they are re-anchored per response).
struct CertArt {
    diags: Vec<RelDiag>,
    cert: RegionCert,
    /// `(site, rel span)` pairs to re-inject into `cert.sites`.
    spans: Vec<(u32, RelSpan)>,
}

/// Cached clause normal forms and class parameters for the `diag` verb.
struct FormsArt {
    eligible: bool,
    reason: Option<String>,
    lcm: u64,
    boundary: u64,
    sites: Vec<(u32, Vec<(String, String)>)>,
}

#[derive(Clone)]
enum Artifact {
    /// Per-region anchor: carries no data, exists so every derived entry
    /// has one dependency target whose invalidation evicts the cohort.
    Anchor,
    Stripe(Arc<Vec<RelDiag>>),
    Sweep(Arc<Vec<RelDiag>>),
    Cert(Arc<CertArt>),
    Forms(Arc<FormsArt>),
    /// `(code, count)` summary of race findings in the sweep.
    Race(Arc<Vec<(&'static str, usize)>>),
}

fn anchor_key(h: u64) -> Key {
    Key::new(ArtifactKind::Region, h)
}

fn stripe_key(h: u64, n: usize) -> Key {
    let mut f = Fnv64::new();
    f.write_str("stripe").write_u64(h).write_u64(n as u64);
    Key::new(ArtifactKind::Stripe, f.finish())
}

fn sweep_key(h: u64) -> Key {
    Key::new(ArtifactKind::Sweep, h)
}

fn cert_key(h: u64) -> Key {
    Key::new(ArtifactKind::Cert, h)
}

fn forms_key(h: u64) -> Key {
    Key::new(ArtifactKind::Forms, h)
}

fn race_key(h: u64) -> Key {
    Key::new(ArtifactKind::Race, h)
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

/// Result of an `analyze` request.
pub struct Analysis {
    /// The schema-2 lint report document, byte-identical to
    /// `commlint --format json FILE`.
    pub report_json: String,
    /// Whether the CI gate fails (any warning-or-above).
    pub gate_fails: bool,
    /// Regions in the file.
    pub regions: usize,
    /// Region indexes whose hash changed since the last request for this
    /// file (all of them on first contact).
    pub dirty: Vec<usize>,
    /// Regions whose artifacts were reusable.
    pub reused: usize,
    /// Cache entries evicted by this update's invalidations.
    pub evicted: usize,
}

/// Result of a `prove` request.
pub struct Proof {
    /// The schema-2 lint report document, byte-identical to
    /// `commprove --format json FILE`.
    pub report_json: String,
    /// The certificate document, byte-identical to the CLI's
    /// `--cert-dir` output.
    pub cert_json: String,
    /// Whether the CI gate fails.
    pub gate_fails: bool,
    /// Regions in the file.
    pub regions: usize,
    /// Dirty region indexes (as [`Analysis::dirty`]).
    pub dirty: Vec<usize>,
    /// Regions whose artifacts were reusable.
    pub reused: usize,
    /// Cache entries evicted by this update's invalidations.
    pub evicted: usize,
    /// Disk certificate store outcome: `written` (no file existed),
    /// `valid` (on-disk bytes already identical), `refreshed` (stale but
    /// checker-valid, rewritten), `healed` (corrupt — rejected by the
    /// checker — recomputed and rewritten), or `none` (no store).
    pub disk_cert: &'static str,
}

/// A cached fully-rendered analyze response body for one exact source
/// version.
struct AnalysisCache {
    report_json: String,
    gate_fails: bool,
    regions: usize,
}

/// A cached fully-rendered prove response body for one exact source
/// version.
struct ProofCache {
    report_json: String,
    cert_json: String,
    gate_fails: bool,
    regions: usize,
}

/// Per-file incremental state: the region hash vector of the last
/// request (for delta diffing) plus the response cache for the exact
/// last-seen source bytes. Identical bytes and identical engine
/// configuration make the batch output deterministic, so replaying the
/// cached rendering is byte-identical by construction — the daemon's
/// steady-state cost for an unchanged file is one hash of the source.
#[derive(Default)]
struct FileState {
    hashes: Vec<u64>,
    src_fnv: u64,
    analysis: Option<AnalysisCache>,
    proof: Option<ProofCache>,
}

/// Everything a request needs after parsing and hashing succeed.
struct FileCtx {
    ranks: RankRange,
    vars: HashMap<String, i64>,
    parsed: Parsed,
    regions: Vec<ParamsSpec>,
    site_spans: HashMap<u32, SrcSpan>,
    /// One entry per region, in region order: the chunk, its hash, and
    /// its tokens (file-absolute spans, from the single full-file lex).
    chunks: Vec<(RegionChunk, u64, Vec<Token>)>,
}

/// Outcome of preparation: the incremental fast path, or a direct batch
/// fallback when the splitter and parser disagree about region structure
/// (the batch path is always correct; the cache is an optimization).
enum Prep {
    Cached(FileCtx),
    Direct {
        ranks: RankRange,
        vars: HashMap<String, i64>,
        parsed: Parsed,
    },
}

/// The analysis engine: one per daemon, shared across connections.
pub struct Engine {
    symbols: SymbolTable,
    opts: LintOptions,
    cert_dir: Option<PathBuf>,
    store: Store<Artifact>,
    files: Mutex<HashMap<String, FileState>>,
}

impl Engine {
    /// Build an engine with the same configuration surface as the batch
    /// CLIs: base symbols (`--buf`), default options (`--ranks`,
    /// `--var`), and an optional certificate directory (`--cert-dir`).
    pub fn new(symbols: SymbolTable, opts: LintOptions, cert_dir: Option<PathBuf>) -> Engine {
        Engine {
            symbols,
            opts,
            cert_dir,
            store: Store::new(),
            files: Mutex::new(HashMap::new()),
        }
    }

    /// Store statistics snapshot.
    pub fn stats(&self) -> Stats {
        self.store.stats()
    }

    /// Resident artifact population per kind.
    pub fn population(&self) -> Vec<(ArtifactKind, usize)> {
        self.store.population()
    }

    /// Files the engine has seen.
    pub fn files_seen(&self) -> usize {
        self.files.lock().unwrap().len()
    }

    fn prepare(&self, src: &str) -> Result<Prep, pragma_front::ParseError> {
        let ann = scan_annotations(src);
        let mut symbols = self.symbols.clone();
        apply_decls(&mut symbols, &ann);
        let mut vars = self.opts.vars.clone();
        vars.extend(ann.vars.clone());
        let ranks = ann.ranks.unwrap_or(self.opts.ranks);
        let parsed = parse(src, &symbols)?;
        let regions: Vec<ParamsSpec> = parsed.items.iter().filter_map(region_view).collect();
        let site_spans: HashMap<u32, SrcSpan> = parsed
            .site_spans()
            .into_iter()
            .filter_map(|(site, span)| span.map(|sp| (site, sp)))
            .collect();
        let env = env_hash(&ann, &vars, ranks);
        let mut chunks = Vec::new();
        let mut region_index = 0usize;
        let mut site_base = 1u32;
        for (chunk, toks) in split_regions_tokens(src) {
            site_base += chunk.sites as u32;
            if chunk.is_region {
                let sites = chunk.sites as u32;
                let h = structural_hash_tokens(&toks, env, region_index, site_base - sites);
                chunks.push((chunk, h, toks));
                region_index += 1;
            }
        }
        if chunks.len() != regions.len() {
            // The splitter sees a different region structure than the
            // parser. Analyze directly — same bytes, no cache.
            return Ok(Prep::Direct {
                ranks,
                vars,
                parsed,
            });
        }
        Ok(Prep::Cached(FileCtx {
            ranks,
            vars,
            parsed,
            regions,
            site_spans,
            chunks,
        }))
    }

    /// Diff the file's region hashes against the previous request,
    /// invalidating anchors whose hashes vanished. Returns
    /// `(dirty region indexes, reused count, evicted entries)`. If the
    /// source bytes changed since the last request the cached rendered
    /// responses are dropped; otherwise they are preserved (so an
    /// `analyze` followed by a `prove` of the same bytes keeps both).
    fn delta(&self, file: &str, hashes: &[u64], src_fnv: u64) -> (Vec<usize>, usize, usize) {
        let mut files = self.files.lock().unwrap();
        let entry = files.entry(file.to_string()).or_default();
        let old = std::mem::replace(&mut entry.hashes, hashes.to_vec());
        if entry.src_fnv != src_fnv {
            entry.src_fnv = src_fnv;
            entry.analysis = None;
            entry.proof = None;
        }
        let mut dirty = Vec::new();
        for (i, h) in hashes.iter().enumerate() {
            if old.get(i) != Some(h) {
                dirty.push(i);
            }
        }
        let live: HashSet<u64> = hashes.iter().copied().collect();
        let mut evicted = 0;
        for h in &old {
            if !live.contains(h) {
                evicted += self.store.invalidate(anchor_key(*h));
            }
        }
        let reused = hashes.len() - dirty.len();
        (dirty, reused, evicted)
    }

    fn ensure_anchor(&self, h: u64) {
        self.store
            .get_or_build(anchor_key(h), &[], || Artifact::Anchor);
    }

    fn stripe(
        &self,
        h: u64,
        region: usize,
        spec: &ParamsSpec,
        n: usize,
        vars: &HashMap<String, i64>,
        anchor: &Anchor,
    ) -> Arc<Vec<RelDiag>> {
        let art = self
            .store
            .get_or_build(stripe_key(h, n), &[anchor_key(h)], || {
                Artifact::Stripe(Arc::new(
                    lint_region_at(region, spec, n, vars)
                        .iter()
                        .map(|d| anchor.rel_diag(d))
                        .collect(),
                ))
            });
        match art {
            Artifact::Stripe(v) => v,
            _ => unreachable!("stripe key holds a stripe"),
        }
    }

    /// The region's merged sweep: stripes in ascending-count order,
    /// deduplicated by identity keeping the first witness — exactly
    /// [`commlint::sweep_region`]'s contract.
    fn sweep(
        &self,
        h: u64,
        region: usize,
        spec: &ParamsSpec,
        ranks: RankRange,
        vars: &HashMap<String, i64>,
        anchor: &Anchor,
    ) -> Arc<Vec<RelDiag>> {
        let mut deps = vec![anchor_key(h)];
        deps.extend((ranks.min..=ranks.max).map(|n| stripe_key(h, n)));
        let art = self.store.get_or_build(sweep_key(h), &deps, || {
            let mut seen: HashSet<(LintCode, usize, Option<u32>, String)> = HashSet::new();
            let mut out = Vec::new();
            for n in ranks.min..=ranks.max {
                for d in self.stripe(h, region, spec, n, vars, anchor).iter() {
                    if seen.insert((d.code, d.region, d.site, d.key.clone())) {
                        out.push(d.clone());
                    }
                }
            }
            Artifact::Sweep(Arc::new(out))
        });
        match art {
            Artifact::Sweep(v) => v,
            _ => unreachable!("sweep key holds a sweep"),
        }
    }

    /// The region's prove result. The prover's concrete lint step is
    /// injected as a cache-backed closure, so a prove request reuses (and
    /// populates) the very stripes `analyze` uses; within one request the
    /// rel/abs round-trip is exact, so the prover sees precisely
    /// `lint_region_at`'s output and its result is byte-identical to the
    /// batch CLI's.
    #[allow(clippy::too_many_arguments)] // mirrors prove_region_with's surface
    fn cert(
        &self,
        h: u64,
        region: usize,
        spec: &ParamsSpec,
        site_spans: &HashMap<u32, SrcSpan>,
        ranks: RankRange,
        vars: &HashMap<String, i64>,
        anchor: &Anchor,
    ) -> Arc<CertArt> {
        let art = self.store.get_or_build(cert_key(h), &[anchor_key(h)], || {
            let lint_at = |n: usize| -> Vec<Diag> {
                self.stripe(h, region, spec, n, vars, anchor)
                    .iter()
                    .map(|d| anchor.abs_diag(d))
                    .collect()
            };
            let (diags, mut rc) =
                prove_region_with(region, spec, site_spans, ranks, vars, &lint_at);
            let spans = rc
                .sites
                .iter()
                .map(|s| (s.site, anchor.rel(s.span)))
                .collect();
            for s in &mut rc.sites {
                s.span = None;
            }
            Artifact::Cert(Arc::new(CertArt {
                diags: diags.iter().map(|d| anchor.rel_diag(d)).collect(),
                cert: rc,
                spans,
            }))
        });
        match art {
            Artifact::Cert(v) => v,
            _ => unreachable!("cert key holds a cert"),
        }
    }

    fn forms(&self, h: u64, spec: &ParamsSpec, vars: &HashMap<String, i64>) -> Arc<FormsArt> {
        let art = self.store.get_or_build(forms_key(h), &[anchor_key(h)], || {
            let vt: VarTable = vars.into();
            let built = match region_forms(spec, &HashMap::new(), &vt) {
                Ok((sites, params)) => FormsArt {
                    eligible: params.eligible(),
                    reason: None,
                    lcm: params.lcm,
                    boundary: params.boundary,
                    sites: sites.into_iter().map(|s| (s.site, s.forms)).collect(),
                },
                Err(reason) => FormsArt {
                    eligible: false,
                    reason: Some(reason),
                    lcm: 1,
                    boundary: 0,
                    sites: Vec::new(),
                },
            };
            Artifact::Forms(Arc::new(built))
        });
        match art {
            Artifact::Forms(v) => v,
            _ => unreachable!("forms key holds forms"),
        }
    }

    fn race_summary(
        &self,
        h: u64,
        region: usize,
        spec: &ParamsSpec,
        ranks: RankRange,
        vars: &HashMap<String, i64>,
        anchor: &Anchor,
    ) -> Arc<Vec<(&'static str, usize)>> {
        let art = self
            .store
            .get_or_build(race_key(h), &[anchor_key(h), sweep_key(h)], || {
                let sweep = self.sweep(h, region, spec, ranks, vars, anchor);
                let mut counts = Vec::new();
                for code in RACE_CODES {
                    let n = sweep.iter().filter(|d| d.code == code).count();
                    if n > 0 {
                        counts.push((code.code(), n));
                    }
                }
                Artifact::Race(Arc::new(counts))
            });
        match art {
            Artifact::Race(v) => v,
            _ => unreachable!("race key holds a race summary"),
        }
    }

    // -- verbs --------------------------------------------------------------

    /// Replay a cached analyze response if `src_fnv` matches the file's
    /// last-seen source bytes.
    fn replay_analysis(&self, file: &str, src_fnv: u64) -> Option<Analysis> {
        let files = self.files.lock().unwrap();
        let st = files.get(file)?;
        if st.src_fnv != src_fnv {
            return None;
        }
        let a = st.analysis.as_ref()?;
        Some(Analysis {
            report_json: a.report_json.clone(),
            gate_fails: a.gate_fails,
            regions: a.regions,
            dirty: Vec::new(),
            reused: a.regions,
            evicted: 0,
        })
    }

    /// Serve `commlint --format json` for one source.
    pub fn analyze(&self, file: &str, src: &str) -> Result<Analysis, String> {
        let src_fnv = fnv1a64(src.as_bytes());
        if let Some(hit) = self.replay_analysis(file, src_fnv) {
            return Ok(hit);
        }
        let report;
        let regions;
        let (dirty, reused, evicted);
        let mut cacheable = false;
        match self.prepare(src).map_err(|e| e.to_string())? {
            Prep::Cached(ctx) => {
                cacheable = true;
                let hashes: Vec<u64> = ctx.chunks.iter().map(|(_, h, _)| *h).collect();
                (dirty, reused, evicted) = self.delta(file, &hashes, src_fnv);
                let mut sweeps = Vec::new();
                for (i, (_, h, toks)) in ctx.chunks.iter().enumerate() {
                    self.ensure_anchor(*h);
                    let anchor = Anchor::of_tokens(toks);
                    let rel = self.sweep(*h, i, &ctx.regions[i], ctx.ranks, &ctx.vars, &anchor);
                    sweeps.push(rel.iter().map(|d| anchor.abs_diag(d)).collect());
                }
                regions = ctx.regions.len();
                report = assemble_lint_report(parse_diags(&ctx.parsed), sweeps, ctx.ranks);
            }
            Prep::Direct {
                ranks,
                vars,
                parsed,
            } => {
                regions = parsed.items.iter().filter_map(region_view).count();
                (dirty, reused, evicted) = ((0..regions).collect(), 0, 0);
                report = lint_parsed(&parsed, ranks, &vars);
            }
        }
        let gate_fails = report.gate_fails();
        let report_json = render_json(&[(file.to_string(), report)]);
        if cacheable {
            let mut files = self.files.lock().unwrap();
            if let Some(st) = files.get_mut(file) {
                if st.src_fnv == src_fnv {
                    st.analysis = Some(AnalysisCache {
                        report_json: report_json.clone(),
                        gate_fails,
                        regions,
                    });
                }
            }
        }
        Ok(Analysis {
            gate_fails,
            report_json,
            regions,
            dirty,
            reused,
            evicted,
        })
    }

    /// Replay a cached prove response if `src_fnv` matches. The disk
    /// certificate store is reconciled again on every replay, so a
    /// certificate corrupted between requests is still detected and
    /// healed.
    fn replay_proof(&self, file: &str, src_fnv: u64) -> Option<(String, String, bool, usize)> {
        let files = self.files.lock().unwrap();
        let st = files.get(file)?;
        if st.src_fnv != src_fnv {
            return None;
        }
        let p = st.proof.as_ref()?;
        Some((
            p.report_json.clone(),
            p.cert_json.clone(),
            p.gate_fails,
            p.regions,
        ))
    }

    /// Serve `commprove --format json --cert-dir …` for one source.
    pub fn prove(&self, file: &str, src: &str) -> Result<Proof, String> {
        let src_fnv = fnv1a64(src.as_bytes());
        if let Some((report_json, cert_json, gate_fails, regions)) =
            self.replay_proof(file, src_fnv)
        {
            let disk_cert = self.sync_disk_cert(file, src, &cert_json);
            return Ok(Proof {
                report_json,
                cert_json,
                gate_fails,
                regions,
                dirty: Vec::new(),
                reused: regions,
                evicted: 0,
                disk_cert,
            });
        }
        let report;
        let certificate;
        let regions;
        let (dirty, reused, evicted);
        let mut cacheable = false;
        match self.prepare(src).map_err(|e| e.to_string())? {
            Prep::Cached(ctx) => {
                cacheable = true;
                let hashes: Vec<u64> = ctx.chunks.iter().map(|(_, h, _)| *h).collect();
                (dirty, reused, evicted) = self.delta(file, &hashes, src_fnv);
                // Parse diagnostics exactly as `prove_parsed`: stamped
                // proved-from-minimum, deduplicated in order.
                let mut seen: HashSet<(LintCode, usize, Option<u32>, String)> = HashSet::new();
                let mut diags: Vec<Diag> = Vec::new();
                for mut d in parse_diags(&ctx.parsed) {
                    d.verification = Some(commint::diag::Verification::Proved {
                        from: ctx.ranks.min,
                    });
                    if seen.insert((d.code, d.region, d.site, d.key.clone())) {
                        diags.push(d);
                    }
                }
                let mut certs = Vec::new();
                for (i, (_, h, toks)) in ctx.chunks.iter().enumerate() {
                    self.ensure_anchor(*h);
                    let anchor = Anchor::of_tokens(toks);
                    let art = self.cert(
                        *h,
                        i,
                        &ctx.regions[i],
                        &ctx.site_spans,
                        ctx.ranks,
                        &ctx.vars,
                        &anchor,
                    );
                    diags.extend(art.diags.iter().map(|d| anchor.abs_diag(d)));
                    let mut rc = art.cert.clone();
                    for s in &mut rc.sites {
                        s.span = art
                            .spans
                            .iter()
                            .find(|(site, _)| *site == s.site)
                            .and_then(|(_, r)| anchor.abs(r));
                    }
                    certs.push(rc);
                }
                sort_report_diags(&mut diags);
                regions = certs.len();
                report = LintReport {
                    ranks: ctx.ranks,
                    diags,
                };
                certificate = Certificate {
                    schema: CERT_SCHEMA,
                    file: file.to_string(),
                    ranks: ctx.ranks,
                    regions: certs,
                };
            }
            Prep::Direct {
                ranks,
                vars,
                parsed,
            } => {
                let rep = prove_parsed(file, &parsed, ranks, &vars);
                regions = rep.certificate.regions.len();
                (dirty, reused, evicted) = ((0..regions).collect(), 0, 0);
                report = rep.report;
                certificate = rep.certificate;
            }
        }
        let cert_json = certificate.to_json();
        let disk_cert = self.sync_disk_cert(file, src, &cert_json);
        let gate_fails = report.gate_fails();
        let report_json = render_json(&[(file.to_string(), report)]);
        if cacheable {
            let mut files = self.files.lock().unwrap();
            if let Some(st) = files.get_mut(file) {
                if st.src_fnv == src_fnv {
                    st.proof = Some(ProofCache {
                        report_json: report_json.clone(),
                        cert_json: cert_json.clone(),
                        gate_fails,
                        regions,
                    });
                }
            }
        }
        Ok(Proof {
            gate_fails,
            report_json,
            cert_json,
            regions,
            dirty,
            reused,
            evicted,
            disk_cert,
        })
    }

    /// Reconcile the on-disk certificate store with a freshly assembled
    /// certificate. An existing file is accepted only if its bytes are
    /// already identical; otherwise it is validated with the library
    /// checker purely to classify the mismatch (stale vs corrupt) and
    /// then overwritten — the store self-heals.
    fn sync_disk_cert(&self, file: &str, src: &str, fresh: &str) -> &'static str {
        let Some(dir) = &self.cert_dir else {
            return "none";
        };
        if std::fs::create_dir_all(dir).is_err() {
            return "none";
        }
        let path = cert_path(dir, file);
        let outcome = match std::fs::read(&path) {
            Ok(bytes) if bytes == fresh.as_bytes() => return "valid",
            Ok(bytes) => match check_cert_bytes(src, &self.symbols, &self.opts, &bytes) {
                Ok(_) => "refreshed",
                Err(_) => "healed",
            },
            Err(_) => "written",
        };
        if std::fs::write(&path, fresh).is_err() {
            return "none";
        }
        outcome
    }

    /// Serve the `diag` verb: per-region cache keys, class parameters,
    /// clause normal forms and race summaries, as a JSON array body.
    pub fn diag(&self, file: &str, src: &str) -> Result<String, String> {
        let src_fnv = fnv1a64(src.as_bytes());
        let ctx = match self.prepare(src).map_err(|e| e.to_string())? {
            Prep::Cached(ctx) => ctx,
            Prep::Direct { .. } => return Ok("[]".to_string()),
        };
        let hashes: Vec<u64> = ctx.chunks.iter().map(|(_, h, _)| *h).collect();
        self.delta(file, &hashes, src_fnv);
        let mut out = String::from("[");
        let mut site_base = 1u32;
        for (i, (chunk, h, toks)) in ctx.chunks.iter().enumerate() {
            self.ensure_anchor(*h);
            let anchor = Anchor::of_tokens(toks);
            let forms = self.forms(*h, &ctx.regions[i], &ctx.vars);
            let races = self.race_summary(*h, i, &ctx.regions[i], ctx.ranks, &ctx.vars, &anchor);
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{ \"region\": {i}, \"hash\": \"{h:016x}\", \"site_base\": {site_base}, \
                 \"sites\": {}, \"eligible\": {}, \"reason\": {}, \"lcm\": {}, \
                 \"boundary\": {}, \"forms\": [{}], \"races\": [{}] }}",
                chunk.sites,
                forms.eligible,
                match &forms.reason {
                    Some(r) => format!("\"{}\"", escape(r)),
                    None => "null".to_string(),
                },
                forms.lcm,
                forms.boundary,
                forms
                    .sites
                    .iter()
                    .map(|(site, fs)| format!(
                        "{{ \"site\": {site}, \"forms\": [{}] }}",
                        fs.iter()
                            .map(|(kw, nf)| format!("[\"{}\", \"{}\"]", escape(kw), escape(nf)))
                            .collect::<Vec<_>>()
                            .join(", ")
                    ))
                    .collect::<Vec<_>>()
                    .join(", "),
                races
                    .iter()
                    .map(|(code, n)| format!("[\"{code}\", {n}]"))
                    .collect::<Vec<_>>()
                    .join(", "),
            ));
            site_base += chunk.sites as u32;
        }
        out.push(']');
        Ok(out)
    }
}

/// The report ordering both batch CLIs use: most severe first, then
/// stable identity order (the comparator extends the dedup identity, so
/// the sorted report is independent of assembly order).
fn sort_report_diags(diags: &mut [Diag]) {
    diags.sort_by(|a, b| {
        b.severity
            .cmp(&a.severity)
            .then(a.code.cmp(&b.code))
            .then(a.region.cmp(&b.region))
            .then(a.site.cmp(&b.site))
            .then(a.key.cmp(&b.key))
    });
}

/// Certificate path for a source file — mirrors the `commprove` CLI.
pub fn cert_path(dir: &Path, file: &str) -> PathBuf {
    let stem = Path::new(file)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "out".to_string());
    dir.join(format!("{stem}.cert.json"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use commlint::lint_source;
    use commprove::prove_source;

    const SRC: &str = "\
// @decl buf1: double[16]
// @decl buf2: double[16]
// @ranks 2..=12
#pragma comm_parameters sender((rank-1+nprocs)%nprocs) receiver((rank+1)%nprocs)
{
  #pragma comm_p2p sbuf(buf1) rbuf(buf2) count(16)
  { }
}
#pragma comm_parameters sender(rank) receiver((rank+2)%nprocs)
{
  #pragma comm_p2p sbuf(buf2) rbuf(buf1) count(8)
  { }
}
";

    fn batch_lint_json(file: &str, src: &str) -> String {
        let report = lint_source(src, &SymbolTable::new(), &LintOptions::default()).expect("lints");
        render_json(&[(file.to_string(), report)])
    }

    fn batch_prove(file: &str, src: &str) -> (String, String) {
        let rep =
            prove_source(file, src, &SymbolTable::new(), &LintOptions::default()).expect("proves");
        (
            render_json(&[(file.to_string(), rep.report.clone())]),
            rep.certificate.to_json(),
        )
    }

    #[test]
    fn analyze_is_byte_identical_cold_and_warm() {
        let engine = Engine::new(SymbolTable::new(), LintOptions::default(), None);
        let want = batch_lint_json("t.comm", SRC);
        let cold = engine.analyze("t.comm", SRC).unwrap();
        assert_eq!(cold.report_json, want);
        assert_eq!(cold.dirty, vec![0, 1]);
        let warm = engine.analyze("t.comm", SRC).unwrap();
        assert_eq!(warm.report_json, want);
        assert!(warm.dirty.is_empty());
        assert_eq!(warm.reused, 2);
    }

    #[test]
    fn prove_is_byte_identical_and_shares_stripes_with_analyze() {
        let engine = Engine::new(SymbolTable::new(), LintOptions::default(), None);
        let (want_report, want_cert) = batch_prove("t.comm", SRC);
        engine.analyze("t.comm", SRC).unwrap();
        let stripes_after_analyze = engine
            .population()
            .iter()
            .find(|(k, _)| *k == ArtifactKind::Stripe)
            .map(|(_, n)| *n)
            .unwrap_or(0);
        let proof = engine.prove("t.comm", SRC).unwrap();
        assert_eq!(proof.report_json, want_report);
        assert_eq!(proof.cert_json, want_cert);
        // Prove extends the stripe pool (its window reaches past the
        // sweep max) but reuses every stripe analyze populated.
        let stats = engine.stats();
        assert!(stats.hits > 0, "{stats:?}");
        let stripes_after_prove = engine
            .population()
            .iter()
            .find(|(k, _)| *k == ArtifactKind::Stripe)
            .map(|(_, n)| *n)
            .unwrap_or(0);
        assert!(stripes_after_prove >= stripes_after_analyze);
    }

    #[test]
    fn formatting_edit_reuses_everything_and_reanchors_spans() {
        let engine = Engine::new(SymbolTable::new(), LintOptions::default(), None);
        engine.analyze("t.comm", SRC).unwrap();
        // Insert a comment line before the first pragma: every span
        // shifts, every hash stays.
        let shifted = SRC.replace(
            "#pragma comm_parameters sender((rank-1+nprocs)%nprocs)",
            "// a comment\n#pragma comm_parameters sender((rank-1+nprocs)%nprocs)",
        );
        let warm = engine.analyze("t.comm", &shifted).unwrap();
        assert!(warm.dirty.is_empty(), "formatting edit must not dirty");
        assert_eq!(warm.report_json, batch_lint_json("t.comm", &shifted));
    }

    #[test]
    fn single_region_edit_invalidates_only_that_cohort() {
        let engine = Engine::new(SymbolTable::new(), LintOptions::default(), None);
        engine.analyze("t.comm", SRC).unwrap();
        let edited = SRC.replace("count(8)", "count(4)");
        let warm = engine.analyze("t.comm", &edited).unwrap();
        assert_eq!(warm.dirty, vec![1]);
        assert_eq!(warm.reused, 1);
        assert!(warm.evicted > 0, "old region-1 cohort must be evicted");
        assert_eq!(warm.report_json, batch_lint_json("t.comm", &edited));
    }

    #[test]
    fn exact_source_replay_costs_no_builds_and_survives_verb_mix() {
        let engine = Engine::new(SymbolTable::new(), LintOptions::default(), None);
        let cold = engine.analyze("t.comm", SRC).unwrap();
        let misses_cold = engine.stats().misses;
        let warm = engine.analyze("t.comm", SRC).unwrap();
        assert_eq!(warm.report_json, cold.report_json);
        assert_eq!(warm.reused, 2);
        assert_eq!(engine.stats().misses, misses_cold, "replay must not build");
        // A prove of the same bytes takes the full path once (preserving
        // the analyze replay), then both verbs replay.
        let proof = engine.prove("t.comm", SRC).unwrap();
        let misses_proved = engine.stats().misses;
        assert_eq!(
            engine.analyze("t.comm", SRC).unwrap().report_json,
            warm.report_json
        );
        assert_eq!(
            engine.prove("t.comm", SRC).unwrap().cert_json,
            proof.cert_json
        );
        assert_eq!(engine.stats().misses, misses_proved);
        // An edit drops the rendered responses and rebuilds only the
        // edited cohort.
        let edited = SRC.replace("count(8)", "count(4)");
        let after = engine.analyze("t.comm", &edited).unwrap();
        assert_eq!(after.dirty, vec![1]);
        assert_eq!(after.report_json, batch_lint_json("t.comm", &edited));
    }

    #[test]
    fn disk_cert_store_self_heals() {
        let dir = std::env::temp_dir().join(format!("commintd-heal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let engine = Engine::new(
            SymbolTable::new(),
            LintOptions::default(),
            Some(dir.clone()),
        );
        let first = engine.prove("t.comm", SRC).unwrap();
        assert_eq!(first.disk_cert, "written");
        let again = engine.prove("t.comm", SRC).unwrap();
        assert_eq!(again.disk_cert, "valid");
        // Corrupt the stored certificate: the checker rejects it, the
        // engine recomputes and rewrites.
        let path = cert_path(&dir, "t.comm");
        let bytes = std::fs::read_to_string(&path).unwrap();
        std::fs::write(
            &path,
            bytes.replace("\"eligible\": true", "\"eligible\": false"),
        )
        .unwrap();
        let healed = engine.prove("t.comm", SRC).unwrap();
        assert_eq!(healed.disk_cert, "healed");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), healed.cert_json);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
