//! `commtune` — decide a tuning overlay from a commscope profile.
//!
//! Usage:
//!   commtune --profile FILE [--out FILE] [--pins SRC]
//!            [--eager-threshold N] [--batch-cap N]
//!   commtune --validate OVERLAY
//!
//! Exit codes: 0 ok, 2 bad input, 3 stale overlay schema.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(commtune::cli_main(&args));
}
