//! # commtune — profile-guided communication tuning
//!
//! The paper's directives state *what* a program communicates; the system
//! chooses *how*. `commtune` closes the feedback loop: it ingests a
//! `commscope` profile JSON (wait-state decomposition with blame
//! attribution, per-site message metrics) and decides, per directive site,
//!
//! * **target selection** — 2-sided vs 1-sided vs SHMEM put,
//! * **sync-consolidation placement** — `place_sync` overrides,
//! * **small-message coalescing** — batch per-(source, destination, site)
//!   small sends into one packed message with a deterministic flush rule,
//! * plus a job-wide **eager-vs-rendezvous threshold** knob.
//!
//! Decisions come out as a versioned JSON *tuning overlay* (site →
//! decision + predicted-benefit rationale citing the blame taxonomy) that
//! the directive engine installs on the next run via
//! [`commint::Overlay`]. A stale-schema overlay is refused outright —
//! exit code 3 from the CLI — so an old decision file can never silently
//! drive a newer engine. Every decision must then survive the A/B bench
//! gate (`fig4 --ab --overlay …`), which runs baseline vs overlay and
//! exits nonzero if any decision regresses.
//!
//! Sites annotated `// @pin` in pragma source are off-limits: the tuner
//! emits `Keep` for them (`pinned: true`) regardless of what the profile
//! suggests.

use commint::clause::{PlaceSync, Target};
use commint::overlay::{Decision, Overlay, SiteDecision, OVERLAY_SCHEMA};
use commscope::Json;
use netsim::CostModel;

/// Tuning knobs (all have sensible defaults).
#[derive(Clone, Debug)]
pub struct TuneOptions {
    /// Hard cap on the coalescing batch factor.
    pub batch_cap: usize,
    /// Per-piece size (bytes) above which coalescing is not considered —
    /// large messages are bandwidth-bound, not overhead-bound.
    pub small_msg_bytes: usize,
    /// Job-wide eager threshold override to record in the overlay.
    pub eager_threshold: Option<usize>,
    /// Sites the tuner must leave alone (from `// @pin` annotations).
    pub pinned: Vec<u32>,
}

impl Default for TuneOptions {
    fn default() -> Self {
        TuneOptions {
            batch_cap: 64,
            small_msg_bytes: 512,
            eager_threshold: None,
            pinned: Vec::new(),
        }
    }
}

/// Aggregated per-site view extracted from the profile.
#[derive(Clone, Debug, Default)]
struct SiteStats {
    site: u32,
    msgs_sent_total: u64,
    bytes_sent_total: u64,
    /// Busiest single receiver's message count (per-rank maximum): the
    /// profile-level estimate of pieces per (source, destination) pair,
    /// since a receiver has one source per site (a sender may fan out to
    /// many destinations, so sender-side counts overestimate).
    msgs_recvd_max_rank: u64,
}

fn site_stats(profile: &Json) -> Vec<SiteStats> {
    let mut out: Vec<SiteStats> = Vec::new();
    let Some(ranks) = profile
        .get("metrics")
        .and_then(|m| m.get("per_rank"))
        .and_then(|v| v.as_arr())
    else {
        return out;
    };
    for rank in ranks {
        let Some(sites) = rank.get("sites").and_then(|v| v.as_arr()) else {
            continue;
        };
        for s in sites {
            let site = s.get("site").and_then(|v| v.as_i64()).unwrap_or(-1);
            if site < 0 {
                continue;
            }
            let sent = s.get("msgs_sent").and_then(|v| v.as_i64()).unwrap_or(0) as u64;
            let bytes = s.get("bytes_sent").and_then(|v| v.as_i64()).unwrap_or(0) as u64;
            let recvd = s.get("msgs_recvd").and_then(|v| v.as_i64()).unwrap_or(0) as u64;
            let entry = match out.iter_mut().find(|e| e.site == site as u32) {
                Some(e) => e,
                None => {
                    out.push(SiteStats {
                        site: site as u32,
                        ..SiteStats::default()
                    });
                    out.last_mut().expect("just pushed")
                }
            };
            entry.msgs_sent_total += sent;
            entry.bytes_sent_total += bytes;
            entry.msgs_recvd_max_rank = entry.msgs_recvd_max_rank.max(recvd);
        }
    }
    out.sort_by_key(|e| e.site);
    out
}

/// The dominant wait-blame category across all ranks, with its total ns —
/// the taxonomy entry decisions cite in their rationale.
fn dominant_blame(profile: &Json) -> (&'static str, i64) {
    let cats = [
        "late_sender_ns",
        "late_receiver_ns",
        "barrier_ns",
        "quiet_ns",
        "overhead_ns",
    ];
    let mut totals = [0i64; 5];
    if let Some(rows) = profile
        .get("wait")
        .and_then(|w| w.get("per_rank"))
        .and_then(|v| v.as_arr())
    {
        for row in rows {
            for (i, c) in cats.iter().enumerate() {
                totals[i] += row.get(c).and_then(|v| v.as_i64()).unwrap_or(0);
            }
        }
    }
    let best = (0..cats.len()).max_by_key(|&i| totals[i]).unwrap_or(4);
    let name = match cats[best] {
        "late_sender_ns" => "late_sender",
        "late_receiver_ns" => "late_receiver",
        "barrier_ns" => "barrier",
        "quiet_ns" => "quiet",
        _ => "overhead",
    };
    (name, totals[best])
}

/// Decide a tuning overlay from a commscope profile.
///
/// The coalescing heuristic: a site whose busiest receiver takes ≥ 2
/// messages per step window, each at most `small_msg_bytes` on average, is
/// overhead-bound — batch its pieces. The batch factor is the per-window
/// piece count, capped by `batch_cap` and by the eager threshold (a packed
/// message must still travel eagerly, or the rendezvous handshake eats the
/// saving). All other observed sites get an explicit `Keep`, so the
/// overlay documents that they were considered. Retarget/place-sync
/// decisions are supported by the schema and engine but not emitted by
/// default: the profile does not record which target a site currently
/// lowers to, so a retarget cannot be predicted non-regressing from one
/// profile alone (the A/B gate exists for exactly that reason).
pub fn tune(profile: &Json, opts: &TuneOptions) -> Result<Overlay, String> {
    let schema = profile
        .get("schema")
        .and_then(|v| v.as_i64())
        .ok_or("profile has no schema field")?;
    // Lenient old-version parse: every field tune() reads exists since
    // schema 1, so any schema up to the current one is accepted.
    if !(1..=commscope::PROFILE_SCHEMA).contains(&schema) {
        return Err(format!(
            "profile schema {schema} is not supported (this build reads 1..={})",
            commscope::PROFILE_SCHEMA
        ));
    }
    let steps = profile
        .get("args")
        .and_then(|a| a.get("steps"))
        .and_then(|v| v.as_i64())
        .unwrap_or(1)
        .max(1) as u64;
    // Figure workloads run one warmup step plus `steps` measured steps.
    let windows = steps + 1;
    let model = CostModel::gemini_mpi();
    let eager = opts.eager_threshold.unwrap_or(model.eager_threshold);
    let (blame_cat, blame_ns) = dominant_blame(profile);

    let mut overlay = Overlay {
        eager_threshold: opts.eager_threshold,
        decisions: Vec::new(),
    };
    for s in site_stats(profile) {
        if s.msgs_sent_total == 0 {
            continue;
        }
        if opts.pinned.contains(&s.site) {
            overlay.set(SiteDecision {
                site: s.site,
                decision: Decision::Keep,
                rationale: "pinned by source annotation (// @pin)".into(),
                predicted_saving_ns: 0,
                pinned: true,
            });
            continue;
        }
        let avg_bytes = s.bytes_sent_total / s.msgs_sent_total;
        let per_window = s.msgs_recvd_max_rank / windows;
        let mut batch = per_window.min(opts.batch_cap as u64) as usize;
        if avg_bytes > 0 {
            batch = batch.min(eager / avg_bytes as usize);
        }
        if per_window >= 2 && avg_bytes <= s.small_msg_cap(opts) && batch >= 2 {
            // Saving: every coalesced piece but one per flush skips its
            // o_send + o_recv and its share of the Waitall request poll.
            let elided = s
                .msgs_sent_total
                .saturating_sub(s.msgs_sent_total / batch as u64);
            let per_msg = model.o_send + model.o_recv + model.o_req_poll;
            let predicted = (elided * per_msg) as i64;
            overlay.set(SiteDecision {
                site: s.site,
                decision: Decision::Coalesce { batch },
                rationale: format!(
                    "site {} sends {} msgs of ~{}B (busiest rank: {} per step window); \
                     dominant wait blame is {} ({} ns total) — batching {} pieces per \
                     packed message elides ~{} sends of {} ns software overhead each",
                    s.site,
                    s.msgs_sent_total,
                    avg_bytes,
                    per_window,
                    blame_cat,
                    blame_ns,
                    batch,
                    elided,
                    per_msg,
                ),
                predicted_saving_ns: predicted,
                pinned: false,
            });
        } else {
            overlay.set(SiteDecision {
                site: s.site,
                decision: Decision::Keep,
                rationale: format!(
                    "site {} sends {} msgs of ~{}B ({} per step window): not \
                     overhead-bound, keep the written mechanism",
                    s.site, s.msgs_sent_total, avg_bytes, per_window
                ),
                predicted_saving_ns: 0,
                pinned: false,
            });
        }
    }
    Ok(overlay)
}

impl SiteStats {
    fn small_msg_cap(&self, opts: &TuneOptions) -> u64 {
        opts.small_msg_bytes as u64
    }
}

fn decision_kind(d: &Decision) -> &'static str {
    match d {
        Decision::Keep => "keep",
        Decision::Retarget(_) => "retarget",
        Decision::PlaceSync(_) => "place_sync",
        Decision::Coalesce { .. } => "coalesce",
    }
}

/// Render an overlay as its versioned JSON document.
pub fn overlay_to_json(overlay: &Overlay) -> Json {
    let decisions = overlay
        .decisions
        .iter()
        .map(|d| {
            let mut fields = vec![
                ("site".to_string(), Json::Int(d.site as i64)),
                (
                    "decision".to_string(),
                    Json::Str(decision_kind(&d.decision).into()),
                ),
            ];
            match d.decision {
                Decision::Retarget(t) => {
                    fields.push(("target".into(), Json::Str(t.keyword().into())));
                }
                Decision::PlaceSync(p) => {
                    fields.push(("place_sync".into(), Json::Str(p.keyword().into())));
                }
                Decision::Coalesce { batch } => {
                    fields.push(("batch".into(), Json::Int(batch as i64)));
                }
                Decision::Keep => {}
            }
            fields.push(("rationale".into(), Json::Str(d.rationale.clone())));
            fields.push((
                "predicted_saving_ns".into(),
                Json::Int(d.predicted_saving_ns),
            ));
            fields.push(("pinned".into(), Json::Bool(d.pinned)));
            Json::Obj(fields)
        })
        .collect();
    Json::Obj(vec![
        ("schema".into(), Json::Int(OVERLAY_SCHEMA)),
        ("generator".into(), Json::Str("commtune".into())),
        (
            "eager_threshold".into(),
            overlay
                .eager_threshold
                .map_or(Json::Null, |v| Json::Int(v as i64)),
        ),
        ("decisions".into(), Json::Arr(decisions)),
    ])
}

/// Parse an overlay document, enforcing the schema gate: a document whose
/// recorded schema disagrees with [`OVERLAY_SCHEMA`] is refused (the CLI
/// maps this to exit code 3).
pub fn overlay_from_json(doc: &Json) -> Result<Overlay, String> {
    let schema = doc
        .get("schema")
        .and_then(|v| v.as_i64())
        .ok_or("overlay has no schema field")?;
    if schema != OVERLAY_SCHEMA {
        return Err(format!(
            "stale overlay schema {schema}: this engine speaks schema {OVERLAY_SCHEMA}; \
             regenerate the overlay with commtune"
        ));
    }
    let mut overlay = Overlay {
        eager_threshold: doc
            .get("eager_threshold")
            .and_then(|v| v.as_i64())
            .map(|v| v.max(0) as usize),
        decisions: Vec::new(),
    };
    let rows = doc
        .get("decisions")
        .and_then(|v| v.as_arr())
        .ok_or("overlay has no decisions array")?;
    for row in rows {
        let site = row
            .get("site")
            .and_then(|v| v.as_i64())
            .ok_or("decision without site")?;
        let kind = row
            .get("decision")
            .and_then(|v| v.as_str())
            .ok_or("decision without kind")?;
        let decision = match kind {
            "keep" => Decision::Keep,
            "retarget" => {
                let kw = row
                    .get("target")
                    .and_then(|v| v.as_str())
                    .ok_or("retarget decision without target")?;
                Decision::Retarget(
                    Target::from_keyword(kw).ok_or_else(|| format!("unknown target {kw:?}"))?,
                )
            }
            "place_sync" => {
                let kw = row
                    .get("place_sync")
                    .and_then(|v| v.as_str())
                    .ok_or("place_sync decision without placement")?;
                Decision::PlaceSync(
                    PlaceSync::from_keyword(kw)
                        .ok_or_else(|| format!("unknown placement {kw:?}"))?,
                )
            }
            "coalesce" => Decision::Coalesce {
                batch: row
                    .get("batch")
                    .and_then(|v| v.as_i64())
                    .ok_or("coalesce decision without batch")?
                    .max(0) as usize,
            },
            other => return Err(format!("unknown decision kind {other:?}")),
        };
        overlay.decisions.push(SiteDecision {
            site: site as u32,
            decision,
            rationale: row
                .get("rationale")
                .and_then(|v| v.as_str())
                .unwrap_or("")
                .to_string(),
            predicted_saving_ns: row
                .get("predicted_saving_ns")
                .and_then(|v| v.as_i64())
                .unwrap_or(0),
            pinned: matches!(row.get("pinned"), Some(Json::Bool(true))),
        });
    }
    Ok(overlay)
}

/// Compact decision provenance for embedding in a profile document's
/// `tuning` section (what ran, not why — the full rationale lives in the
/// overlay file).
pub fn overlay_provenance(overlay: &Overlay) -> Json {
    Json::Obj(vec![
        ("generator".into(), Json::Str("commtune".into())),
        ("schema".into(), Json::Int(OVERLAY_SCHEMA)),
        (
            "eager_threshold".into(),
            overlay
                .eager_threshold
                .map_or(Json::Null, |v| Json::Int(v as i64)),
        ),
        (
            "decisions".into(),
            Json::Arr(
                overlay
                    .decisions
                    .iter()
                    .map(|d| {
                        let mut fields = vec![
                            ("site".to_string(), Json::Int(d.site as i64)),
                            (
                                "decision".to_string(),
                                Json::Str(decision_kind(&d.decision).into()),
                            ),
                        ];
                        if let Decision::Coalesce { batch } = d.decision {
                            fields.push(("batch".into(), Json::Int(batch as i64)));
                        }
                        Json::Obj(fields)
                    })
                    .collect(),
            ),
        ),
    ])
}

fn arg_str<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn arg_usize(args: &[String], name: &str) -> Option<usize> {
    arg_str(args, name).and_then(|v| v.parse().ok())
}

const USAGE: &str = "usage: commtune --profile FILE [--out FILE] [--pins SRC] \
                     [--eager-threshold N] [--batch-cap N]\n\
                     \x20      commtune --validate OVERLAY\n\
                     exit codes: 0 ok, 2 bad input, 3 stale overlay schema";

/// CLI entry point, exposed for tests (exit codes without process exit):
/// 0 success, 2 unreadable/invalid input, 3 stale overlay schema.
pub fn cli_main(args: &[String]) -> i32 {
    if let Some(path) = arg_str(args, "--validate") {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("commtune: cannot read {path}: {e}");
                return 2;
            }
        };
        let doc = match Json::parse(&text) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("commtune: {path} is not valid JSON: {e}");
                return 2;
            }
        };
        return match overlay_from_json(&doc) {
            Ok(ov) => {
                println!(
                    "overlay ok: {} decisions{}",
                    ov.decisions.len(),
                    if ov.is_noop() { " (all keep)" } else { "" }
                );
                0
            }
            Err(e) if e.contains("schema") => {
                eprintln!("commtune: {e}");
                3
            }
            Err(e) => {
                eprintln!("commtune: {e}");
                2
            }
        };
    }

    let Some(profile_path) = arg_str(args, "--profile") else {
        eprintln!("{USAGE}");
        return 2;
    };
    let text = match std::fs::read_to_string(profile_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("commtune: cannot read {profile_path}: {e}");
            return 2;
        }
    };
    let profile = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("commtune: {profile_path} is not valid JSON: {e}");
            return 2;
        }
    };

    let mut opts = TuneOptions {
        eager_threshold: arg_usize(args, "--eager-threshold"),
        ..TuneOptions::default()
    };
    if let Some(cap) = arg_usize(args, "--batch-cap") {
        opts.batch_cap = cap;
    }
    if let Some(pins_path) = arg_str(args, "--pins") {
        let src = match std::fs::read_to_string(pins_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("commtune: cannot read {pins_path}: {e}");
                return 2;
            }
        };
        match pinned_sites_from_source(&src) {
            Ok(pins) => opts.pinned = pins,
            Err(e) => {
                eprintln!("commtune: cannot parse {pins_path}: {e}");
                return 2;
            }
        }
    }

    let overlay = match tune(&profile, &opts) {
        Ok(ov) => ov,
        Err(e) => {
            eprintln!("commtune: {e}");
            return 2;
        }
    };
    for d in &overlay.decisions {
        eprintln!("  site {}: {}", d.site, d.rationale);
    }
    let doc = overlay_to_json(&overlay);
    let rendered = doc.render();
    match arg_str(args, "--out") {
        Some(out) => {
            if let Err(e) = std::fs::write(out, format!("{rendered}\n")) {
                eprintln!("commtune: cannot write {out}: {e}");
                return 2;
            }
            let n_coalesce = overlay
                .decisions
                .iter()
                .filter(|d| matches!(d.decision, Decision::Coalesce { .. }))
                .count();
            println!(
                "wrote {} decisions ({} coalesce) to {out}",
                overlay.decisions.len(),
                n_coalesce
            );
        }
        None => println!("{rendered}"),
    }
    0
}

/// Extract `// @pin` sites from pragma source, using the declarations the
/// file itself carries as `// @decl` / `// @var` annotations (the same
/// convention `commlint` scans).
pub fn pinned_sites_from_source(src: &str) -> Result<Vec<u32>, String> {
    let ann = commlint::scan_annotations(src);
    let mut syms = pragma_front::SymbolTable::new();
    commlint::apply_decls(&mut syms, &ann);
    let parsed = pragma_front::parse(src, &syms).map_err(|e| e.message)?;
    Ok(pragma_front::pinned_sites(src, &parsed))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal schema-1 profile: 2 ranks, a chatty small-message site
    /// (11) and a per-step site (12).
    fn demo_profile() -> Json {
        Json::parse(
            r#"{
  "schema": 1,
  "workload": "fig4_spin",
  "args": {"m": 2, "steps": 3},
  "ranks": 2,
  "makespan_ns": 1000000,
  "wait": {"per_rank": [
    {"rank": 0, "total_wait_ns": 100, "late_sender_ns": 80, "late_receiver_ns": 0,
     "barrier_ns": 10, "quiet_ns": 0, "overhead_ns": 10, "blame": [50, 50]},
    {"rank": 1, "total_wait_ns": 50, "late_sender_ns": 10, "late_receiver_ns": 20,
     "barrier_ns": 10, "quiet_ns": 0, "overhead_ns": 10, "blame": [25, 25]}
  ]},
  "metrics": {"per_rank": [
    {"msgs_sent": 68, "bytes_sent": 1632,
     "sites": [
       {"site": 11, "msgs_sent": 64, "bytes_sent": 1536, "msgs_recvd": 0, "bytes_recvd": 0, "dwell_ns": 0},
       {"site": 12, "msgs_sent": 4, "bytes_sent": 96, "msgs_recvd": 0, "bytes_recvd": 0, "dwell_ns": 0}
     ]},
    {"msgs_sent": 0, "bytes_sent": 0,
     "sites": [
       {"site": 11, "msgs_sent": 0, "bytes_sent": 0, "msgs_recvd": 64, "bytes_recvd": 1536, "dwell_ns": 10},
       {"site": 12, "msgs_sent": 0, "bytes_sent": 0, "msgs_recvd": 4, "bytes_recvd": 96, "dwell_ns": 10}
     ]}
  ], "total": {}},
  "critical_path": []
}"#,
        )
        .unwrap()
    }

    #[test]
    fn tunes_chatty_site_keeps_quiet_site() {
        let ov = tune(&demo_profile(), &TuneOptions::default()).unwrap();
        // Site 11: 64 msgs over 4 step windows = 16 pieces/window of 24B.
        assert_eq!(ov.coalesce_batch_for(11), Some(16));
        let d11 = ov.decision_for(11).unwrap();
        assert!(d11.rationale.contains("late_sender"), "{}", d11.rationale);
        assert!(d11.predicted_saving_ns > 0);
        // Site 12: 1 msg per window — nothing to batch.
        let d12 = ov.decision_for(12).unwrap();
        assert_eq!(d12.decision, Decision::Keep);
    }

    #[test]
    fn pinned_sites_are_kept() {
        let opts = TuneOptions {
            pinned: vec![11],
            ..TuneOptions::default()
        };
        let ov = tune(&demo_profile(), &opts).unwrap();
        let d = ov.decision_for(11).unwrap();
        assert_eq!(d.decision, Decision::Keep);
        assert!(d.pinned);
        assert!(d.rationale.contains("@pin"));
    }

    #[test]
    fn overlay_json_roundtrip() {
        let mut ov = tune(&demo_profile(), &TuneOptions::default()).unwrap();
        ov.eager_threshold = Some(4096);
        ov.set(SiteDecision::new(7, Decision::Retarget(Target::Shmem)));
        ov.set(SiteDecision::new(
            8,
            Decision::PlaceSync(PlaceSync::BeginNextParamRegion),
        ));
        let doc = overlay_to_json(&ov);
        let back = overlay_from_json(&doc).unwrap();
        assert_eq!(back, ov);
        // And through text.
        let reparsed = Json::parse(&doc.render()).unwrap();
        assert_eq!(overlay_from_json(&reparsed).unwrap(), ov);
    }

    #[test]
    fn stale_schema_refused() {
        let mut doc = overlay_to_json(&Overlay::default());
        if let Json::Obj(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k == "schema" {
                    *v = Json::Int(OVERLAY_SCHEMA + 1);
                }
            }
        }
        let err = overlay_from_json(&doc).unwrap_err();
        assert!(err.contains("stale overlay schema"), "{err}");
    }

    #[test]
    fn wrong_profile_schema_refused() {
        let mut doc = demo_profile();
        if let Json::Obj(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k == "schema" {
                    *v = Json::Int(99);
                }
            }
        }
        let err = tune(&doc, &TuneOptions::default()).unwrap_err();
        assert!(err.contains("schema"), "{err}");
    }

    #[test]
    fn batch_respects_eager_threshold() {
        let opts = TuneOptions {
            eager_threshold: Some(96), // 4 pieces of 24B fill the eager window
            ..TuneOptions::default()
        };
        let ov = tune(&demo_profile(), &opts).unwrap();
        assert_eq!(ov.coalesce_batch_for(11), Some(4));
        assert_eq!(ov.eager_threshold, Some(96));
    }

    #[test]
    fn provenance_is_compact() {
        let ov = tune(&demo_profile(), &TuneOptions::default()).unwrap();
        let prov = overlay_provenance(&ov);
        assert_eq!(
            prov.get("generator").and_then(|v| v.as_str()),
            Some("commtune")
        );
        let rows = prov.get("decisions").and_then(|v| v.as_arr()).unwrap();
        assert_eq!(rows.len(), ov.decisions.len());
        assert!(rows.iter().all(|r| r.get("rationale").is_none()));
    }

    #[test]
    fn pins_from_annotated_source() {
        let src = "\
// @decl buf1: f64[16]
// @decl buf2: f64[16]
// @pin
#pragma comm_p2p sender((rank-1+nprocs)%nprocs) receiver((rank+1)%nprocs) sbuf(buf1) rbuf(buf2)
";
        let pins = pinned_sites_from_source(src).unwrap();
        assert_eq!(pins.len(), 1);
    }
}
