//! Shared helpers for the workspace-level integration tests (the test
//! sources themselves live in `/tests` at the repository root and are wired
//! in through `[[test]]` path entries).

use commint::CommSession;
use mpisim::Comm;
use netsim::{run, RankCtx, SimConfig, SimResult};

/// Run an SPMD body with a ready-made world [`CommSession`] per rank,
/// flushing deferred synchronization afterwards.
pub fn with_world_session<T: Send>(
    nranks: usize,
    f: impl Fn(&mut CommSession<'_>) -> T + Sync,
) -> SimResult<T> {
    run(SimConfig::new(nranks), |ctx| {
        let comm = Comm::world(ctx);
        let mut session = CommSession::new(ctx, comm);
        let out = f(&mut session);
        session.flush();
        out
    })
}

/// Run a plain SPMD body.
pub fn with_ranks<T: Send>(nranks: usize, f: impl Fn(&mut RankCtx) -> T + Sync) -> SimResult<T> {
    run(SimConfig::new(nranks), f)
}

/// Like [`with_world_session`], but with the event trace and the metrics
/// registry enabled, for observability tests.
pub fn with_world_session_observed<T: Send>(
    nranks: usize,
    f: impl Fn(&mut CommSession<'_>) -> T + Sync,
) -> SimResult<T> {
    run(SimConfig::new(nranks).with_trace().with_metrics(), |ctx| {
        let comm = Comm::world(ctx);
        let mut session = CommSession::new(ctx, comm);
        let out = f(&mut session);
        session.flush();
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_run() {
        let res = with_ranks(3, |ctx| ctx.rank());
        assert_eq!(res.per_rank, vec![0, 1, 2]);
        let res = with_world_session(2, |s| s.size());
        assert_eq!(res.per_rank, vec![2, 2]);
    }
}
