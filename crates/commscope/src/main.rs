//! `commscope` — profile a figure workload and export its observability.
//!
//! Usage:
//!   commscope <fig3|fig4|fig5> [--m M] [--steps N] [--workers W]
//!             [--variant original|waitall|mpi|shmem]
//!             [--trace-out FILE] [--profile FILE] [--folded FILE] [--check]
//!   commscope diff <baseline.json> <candidate.json>
//!             [--json-out FILE] [--text-out FILE] [--check] [--expect-zero]
//!   commscope trend <LEDGER.jsonl> [--last K] [--tolerance PCT] [--check]
//!
//! The figure form runs the selected WL-LSMS workload at one sweep point
//! (`--m` LSMS instances) with tracing and metrics enabled, prints a
//! wait-state report, and optionally writes a Perfetto-loadable Chrome
//! trace (`--trace-out`), a stable profile JSON (`--profile`), and
//! flamegraph folded stacks (`--folded`). `--check` re-parses and
//! schema-validates everything that was produced (used by the CI smoke
//! job). All outputs are pure functions of virtual time: byte-identical
//! for any `--workers` setting.
//!
//! `diff` joins two profile JSONs on the SiteId namespace and reports
//! per-site deltas with exact accounting (see [`commscope::diff`]);
//! `--expect-zero` makes a nonzero diff fail (the identical-run CI gate).
//! `trend` renders the run-history trajectory from the bench ledger and
//! flags regressions against the mean of the last K prior entries.

use commscope::{
    analyze, chrome_trace, diff_is_zero, diff_profiles, folded_stacks, parse_ledger, profile_json,
    render_diff_text, render_trend_text, trend, validate_diff, validate_profile, Json,
};
use netsim::ExecPolicy;
use wl_lsms::{
    fig3_single_atom_observed, fig4_spin_observed, fig5_overlap_observed, AtomCommVariant,
    AtomSizes, CoreStateParams, Observed, SpinVariant, Topology,
};

fn arg_usize(args: &[String], name: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn arg_str<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn usage() -> ! {
    eprintln!(
        "usage: commscope <fig3|fig4|fig5> [--m M] [--steps N] [--workers W]\n\
         \x20                [--variant original|waitall|mpi|shmem]\n\
         \x20                [--trace-out FILE] [--profile FILE] [--folded FILE] [--check]\n\
         \x20      commscope diff <baseline.json> <candidate.json>\n\
         \x20                [--json-out FILE] [--text-out FILE] [--check] [--expect-zero]\n\
         \x20      commscope trend <LEDGER.jsonl> [--last K] [--tolerance PCT] [--check]"
    );
    std::process::exit(2);
}

fn read_json(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("{path}: invalid JSON: {e}");
        std::process::exit(2);
    })
}

/// `commscope diff <baseline.json> <candidate.json>`: returns the exit code.
fn cmd_diff(args: &[String]) -> i32 {
    let (Some(base_path), Some(cand_path)) = (args.get(2), args.get(3)) else {
        usage();
    };
    if base_path.starts_with("--") || cand_path.starts_with("--") {
        usage();
    }
    let baseline = read_json(base_path);
    let candidate = read_json(cand_path);
    let doc = match diff_profiles(&baseline, &candidate) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("diff failed: {e}");
            return 2;
        }
    };
    let text = render_diff_text(&doc);
    print!("{text}");
    if let Some(path) = arg_str(args, "--json-out") {
        std::fs::write(path, doc.render()).expect("write --json-out file");
        eprintln!("[diff] wrote {path}");
    }
    if let Some(path) = arg_str(args, "--text-out") {
        std::fs::write(path, &text).expect("write --text-out file");
        eprintln!("[diff] wrote {path}");
    }
    let mut failures = 0;
    if args.iter().any(|a| a == "--check") {
        let problems = validate_diff(&doc);
        for p in &problems {
            eprintln!("[check] diff: {p}");
        }
        failures += problems.len();
    }
    if args.iter().any(|a| a == "--expect-zero") && !diff_is_zero(&doc) {
        eprintln!("[check] diff is not zero (expected identical runs)");
        failures += 1;
    }
    if failures > 0 {
        eprintln!("[check] {failures} problem(s)");
        3
    } else {
        0
    }
}

/// `commscope trend <LEDGER.jsonl>`: returns the exit code.
fn cmd_trend(args: &[String]) -> i32 {
    let Some(path) = args.get(2).filter(|p| !p.starts_with("--")) else {
        usage();
    };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    let entries = match parse_ledger(&text) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("{path}: {e}");
            return 2;
        }
    };
    let last_k = arg_usize(args, "--last").unwrap_or(5);
    let tolerance = arg_str(args, "--tolerance")
        .and_then(|t| t.parse::<f64>().ok())
        .unwrap_or(10.0);
    let trends = trend(&entries, last_k, tolerance);
    print!("{}", render_trend_text(&trends, last_k, tolerance));
    if args.iter().any(|a| a == "--check") && trends.iter().any(|t| t.regressed) {
        return 3;
    }
    0
}

fn run_workload(
    workload: &str,
    variant: &str,
    m: usize,
    steps: usize,
    exec: ExecPolicy,
) -> Observed {
    let topo = Topology::paper(m);
    match workload {
        "fig3" => {
            let v = match variant {
                "original" => AtomCommVariant::Original,
                "mpi" => AtomCommVariant::DirectiveMpi2,
                "shmem" => AtomCommVariant::DirectiveShmem,
                other => {
                    eprintln!("fig3 has no variant '{other}' (original|mpi|shmem)");
                    std::process::exit(2);
                }
            };
            fig3_single_atom_observed(&topo, v, AtomSizes::default(), exec)
        }
        "fig4" => {
            let v = match variant {
                "original" => SpinVariant::Original,
                "waitall" => SpinVariant::OriginalWaitall,
                "mpi" => SpinVariant::DirectiveMpi2,
                "shmem" => SpinVariant::DirectiveShmem,
                other => {
                    eprintln!("fig4 has no variant '{other}' (original|waitall|mpi|shmem)");
                    std::process::exit(2);
                }
            };
            fig4_spin_observed(&topo, v, steps, exec)
        }
        "fig5" => {
            let directive = match variant {
                "original" => false,
                "mpi" => true,
                other => {
                    eprintln!("fig5 has no variant '{other}' (original|mpi)");
                    std::process::exit(2);
                }
            };
            let cparams = CoreStateParams {
                base_ns_per_atom: 200_000,
                speedup: 10.0,
                iterations: 2,
            };
            fig5_overlap_observed(&topo, directive, cparams, AtomSizes::default(), steps, exec)
        }
        _ => usage(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let workload = match args.get(1).map(String::as_str) {
        Some("diff") => std::process::exit(cmd_diff(&args)),
        Some("trend") => std::process::exit(cmd_trend(&args)),
        Some(w @ ("fig3" | "fig4" | "fig5")) => w,
        _ => usage(),
    };
    let m = arg_usize(&args, "--m").unwrap_or(2);
    let steps = arg_usize(&args, "--steps").unwrap_or(2);
    let variant = arg_str(&args, "--variant").unwrap_or("mpi");
    let workers = arg_usize(&args, "--workers");
    let exec = match workers {
        Some(w) => ExecPolicy::bounded(w),
        None => ExecPolicy::threads(),
    };
    let check = args.iter().any(|a| a == "--check");

    let obs = run_workload(workload, variant, m, steps, exec);
    let nranks = obs.final_times.len();
    let analysis = analyze(&obs.trace, nranks, &obs.final_times);

    // ---- human-readable report ------------------------------------------
    println!("# commscope {workload} --variant {variant} --m {m} ({nranks} ranks)");
    println!(
        "measured: {}   makespan: {}   events: {}",
        obs.measurement.time,
        analysis.makespan,
        obs.trace.len()
    );
    let total_wait: u64 = analysis.ranks.iter().map(|p| p.total_wait_ns).sum();
    let ls: u64 = analysis.ranks.iter().map(|p| p.late_sender_ns).sum();
    let lr: u64 = analysis.ranks.iter().map(|p| p.late_receiver_ns).sum();
    let ba: u64 = analysis.ranks.iter().map(|p| p.barrier_ns).sum();
    let qu: u64 = analysis.ranks.iter().map(|p| p.quiet_ns).sum();
    let ov: u64 = analysis.ranks.iter().map(|p| p.overhead_ns).sum();
    println!(
        "wait-state: total {total_wait}ns = late_sender {ls} + late_receiver {lr} \
         + barrier {ba} + quiet {qu} + overhead {ov}"
    );

    // Most-blamed ranks across the whole job.
    let mut blamed = vec![0u64; nranks];
    for p in &analysis.ranks {
        for (r, ns) in p.blame.iter().enumerate() {
            blamed[r] += ns;
        }
    }
    let mut order: Vec<usize> = (0..nranks).collect();
    order.sort_by_key(|&r| std::cmp::Reverse(blamed[r]));
    print!("most blamed:");
    for &r in order.iter().take(5).filter(|&&r| blamed[r] > 0) {
        print!(" rank {r} ({}ns)", blamed[r]);
    }
    println!();

    // Critical-path composition.
    let mut on_path: std::collections::BTreeMap<&str, u64> = Default::default();
    for s in &analysis.critical_path {
        *on_path.entry(s.label).or_insert(0) += s.end.saturating_sub(s.start).as_nanos();
    }
    print!(
        "critical path: {} segments, ends on rank {};",
        analysis.critical_path.len(),
        analysis.critical_path.last().map_or(0, |s| s.rank)
    );
    for (label, ns) in &on_path {
        print!(" {label}={ns}ns");
    }
    println!();

    // Per-site totals (merged over ranks).
    let mut site_totals = netsim::RankMetrics::default();
    for rm in &obs.metrics {
        site_totals.merge(rm);
    }
    for s in &site_totals.sites {
        println!(
            "site {:>3}: sent {} msgs / {} B, recvd {} msgs / {} B, dwell {}ns",
            s.site, s.msgs_sent, s.bytes_sent, s.msgs_recvd, s.bytes_recvd, s.dwell_ns
        );
    }

    // ---- exports ---------------------------------------------------------
    let cli_args = vec![
        ("m".to_string(), m as i64),
        ("steps".to_string(), steps as i64),
    ];
    let mut failures = 0;

    if let Some(path) = arg_str(&args, "--trace-out") {
        let text = chrome_trace(&obs.trace, nranks);
        if check {
            match Json::parse(&text) {
                Ok(doc) if doc.get("traceEvents").and_then(|v| v.as_arr()).is_some() => {}
                Ok(_) => {
                    eprintln!("[check] trace JSON missing traceEvents array");
                    failures += 1;
                }
                Err(e) => {
                    eprintln!("[check] trace JSON invalid: {e}");
                    failures += 1;
                }
            }
        }
        std::fs::write(path, &text).expect("write trace");
        eprintln!("[trace] wrote {path} ({} bytes)", text.len());
    }

    if let Some(path) = arg_str(&args, "--profile") {
        let doc = profile_json(workload, &cli_args, &analysis, &obs.metrics);
        if check {
            let problems = validate_profile(&doc);
            for p in &problems {
                eprintln!("[check] profile: {p}");
            }
            failures += problems.len();
        }
        let text = doc.render();
        std::fs::write(path, &text).expect("write profile");
        eprintln!("[profile] wrote {path} ({} bytes)", text.len());
    }

    if let Some(path) = arg_str(&args, "--folded") {
        let text = folded_stacks(&obs.trace);
        std::fs::write(path, &text).expect("write folded");
        eprintln!("[folded] wrote {path} ({} stacks)", text.lines().count());
    }

    if failures > 0 {
        eprintln!("[check] {failures} problem(s)");
        std::process::exit(3);
    }
}
