//! The stable profile JSON: per-rank and per-site metrics, the wait-state
//! decomposition with blame attribution, and the critical path, rendered
//! through [`crate::json::Json`] with exact integers only. Every value is a
//! pure function of virtual time, so profiles are byte-identical across
//! execution engines and sweep widths — CI diffs them directly.

use netsim::{Hist, RankMetrics};

use crate::analysis::{Analysis, WaitKind};
use crate::json::Json;

/// Schema version of the profile document.
///
/// History: schema 1 had per-rank wait rows only and no histogram
/// percentiles; schema 2 adds `p50`/`p99` to every histogram and the
/// `wait.per_site` section. Consumers (commtune, `commscope diff`) accept
/// both, treating missing schema-2 fields leniently — mirroring the
/// `--json` bench-stats precedent.
pub const PROFILE_SCHEMA: i64 = 2;

/// Pseudo-site id used for wait time, critical-path segments, and traffic
/// that carry no directive site attribution.
pub const UNATTRIBUTED_SITE: i64 = -1;

fn hist_json(h: &Hist) -> Json {
    // Trailing zero buckets are trimmed (deterministically) to keep
    // profiles compact; `count`/`sum`/`max` stay exact.
    let mut last = 0;
    for (i, &b) in h.buckets.iter().enumerate() {
        if b != 0 {
            last = i + 1;
        }
    }
    Json::Obj(vec![
        ("count".into(), Json::Int(h.count as i64)),
        ("sum".into(), Json::Int(h.sum as i64)),
        ("max".into(), Json::Int(h.max as i64)),
        ("p50".into(), Json::Int(h.percentile(50.0) as i64)),
        ("p99".into(), Json::Int(h.percentile(99.0) as i64)),
        (
            "buckets".into(),
            Json::Arr(
                h.buckets[..last]
                    .iter()
                    .map(|&b| Json::Int(b as i64))
                    .collect(),
            ),
        ),
    ])
}

fn rank_metrics_json(m: &RankMetrics) -> Json {
    Json::Obj(vec![
        ("msgs_sent".into(), Json::Int(m.msgs_sent as i64)),
        ("bytes_sent".into(), Json::Int(m.bytes_sent as i64)),
        ("msgs_recvd".into(), Json::Int(m.msgs_recvd as i64)),
        ("bytes_recvd".into(), Json::Int(m.bytes_recvd as i64)),
        ("puts".into(), Json::Int(m.puts as i64)),
        ("bytes_put".into(), Json::Int(m.bytes_put as i64)),
        ("wait_ns".into(), Json::Int(m.wait_ns as i64)),
        ("recv_dwell".into(), hist_json(&m.recv_dwell)),
        ("waitall_width".into(), hist_json(&m.waitall_width)),
        (
            "sites".into(),
            Json::Arr(
                m.sites
                    .iter()
                    .map(|s| {
                        Json::Obj(vec![
                            ("site".into(), Json::Int(s.site as i64)),
                            ("msgs_sent".into(), Json::Int(s.msgs_sent as i64)),
                            ("bytes_sent".into(), Json::Int(s.bytes_sent as i64)),
                            ("msgs_recvd".into(), Json::Int(s.msgs_recvd as i64)),
                            ("bytes_recvd".into(), Json::Int(s.bytes_recvd as i64)),
                            ("dwell_ns".into(), Json::Int(s.dwell_ns as i64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Aggregate the interval decomposition and the critical path by directive
/// site. Every wait interval lands in exactly one row (events with no site
/// attribution land on [`UNATTRIBUTED_SITE`]), so the per-site totals sum
/// exactly to the per-rank totals — the invariant `commscope diff` builds
/// its exact accounting on. Rows are ordered by site id (unattributed
/// first).
fn wait_per_site_json(analysis: &Analysis) -> Json {
    use std::collections::BTreeMap;
    #[derive(Default)]
    struct Row {
        total: u64,
        late_sender: u64,
        late_receiver: u64,
        barrier: u64,
        quiet: u64,
        overhead: u64,
        cp: u64,
    }
    let mut rows: BTreeMap<i64, Row> = BTreeMap::new();
    for iv in &analysis.intervals {
        let key = iv.site.map_or(UNATTRIBUTED_SITE, |s| s as i64);
        let r = rows.entry(key).or_default();
        r.total += iv.blocked_ns + iv.overhead_ns;
        match iv.kind {
            WaitKind::LateSender => r.late_sender += iv.blocked_ns,
            WaitKind::LateReceiver => r.late_receiver += iv.blocked_ns,
            WaitKind::Barrier => r.barrier += iv.blocked_ns,
            WaitKind::Quiet => r.quiet += iv.blocked_ns,
            WaitKind::Overhead => {}
        }
        r.overhead += iv.overhead_ns;
    }
    for seg in &analysis.critical_path {
        let key = seg.site.map_or(UNATTRIBUTED_SITE, |s| s as i64);
        rows.entry(key).or_default().cp += seg.end.saturating_sub(seg.start).as_nanos();
    }
    Json::Arr(
        rows.into_iter()
            .map(|(site, r)| {
                Json::Obj(vec![
                    ("site".into(), Json::Int(site)),
                    ("total_wait_ns".into(), Json::Int(r.total as i64)),
                    ("late_sender_ns".into(), Json::Int(r.late_sender as i64)),
                    ("late_receiver_ns".into(), Json::Int(r.late_receiver as i64)),
                    ("barrier_ns".into(), Json::Int(r.barrier as i64)),
                    ("quiet_ns".into(), Json::Int(r.quiet as i64)),
                    ("overhead_ns".into(), Json::Int(r.overhead as i64)),
                    ("critical_path_ns".into(), Json::Int(r.cp as i64)),
                ])
            })
            .collect(),
    )
}

/// Build the profile document for one observed run.
///
/// `args` are echoed verbatim (workload parameters); `metrics` is
/// `SimResult::metrics` and may be empty when metrics were not enabled.
pub fn profile_json(
    workload: &str,
    args: &[(String, i64)],
    analysis: &Analysis,
    metrics: &[RankMetrics],
) -> Json {
    profile_json_tuned(workload, args, analysis, metrics, None)
}

/// [`profile_json`] for a run executed under a tuning overlay: `tuning` is
/// the overlay's provenance document (generator, schema, decisions) and is
/// recorded under a `"tuning"` key so a profile says which decisions were
/// live when it was taken. `None` emits exactly the untuned document —
/// committed profile goldens are unaffected.
pub fn profile_json_tuned(
    workload: &str,
    args: &[(String, i64)],
    analysis: &Analysis,
    metrics: &[RankMetrics],
    tuning: Option<&Json>,
) -> Json {
    let wait_ranks: Vec<Json> = analysis
        .ranks
        .iter()
        .map(|p| {
            Json::Obj(vec![
                ("rank".into(), Json::Int(p.rank as i64)),
                ("total_wait_ns".into(), Json::Int(p.total_wait_ns as i64)),
                ("late_sender_ns".into(), Json::Int(p.late_sender_ns as i64)),
                (
                    "late_receiver_ns".into(),
                    Json::Int(p.late_receiver_ns as i64),
                ),
                ("barrier_ns".into(), Json::Int(p.barrier_ns as i64)),
                ("quiet_ns".into(), Json::Int(p.quiet_ns as i64)),
                ("overhead_ns".into(), Json::Int(p.overhead_ns as i64)),
                (
                    "blame".into(),
                    Json::Arr(p.blame.iter().map(|&b| Json::Int(b as i64)).collect()),
                ),
            ])
        })
        .collect();

    let mut total = RankMetrics::default();
    for m in metrics {
        total.merge(m);
    }

    let path: Vec<Json> = analysis
        .critical_path
        .iter()
        .map(|s| {
            Json::Obj(vec![
                ("rank".into(), Json::Int(s.rank as i64)),
                ("start_ns".into(), Json::Int(s.start.as_nanos() as i64)),
                ("end_ns".into(), Json::Int(s.end.as_nanos() as i64)),
                ("label".into(), Json::Str(s.label.to_string())),
                (
                    "site".into(),
                    s.site.map_or(Json::Null, |x| Json::Int(x as i64)),
                ),
            ])
        })
        .collect();

    let mut fields = vec![
        ("schema".into(), Json::Int(PROFILE_SCHEMA)),
        ("workload".into(), Json::Str(workload.to_string())),
        (
            "args".into(),
            Json::Obj(
                args.iter()
                    .map(|(k, v)| (k.clone(), Json::Int(*v)))
                    .collect(),
            ),
        ),
        ("ranks".into(), Json::Int(analysis.nranks as i64)),
        (
            "makespan_ns".into(),
            Json::Int(analysis.makespan.as_nanos() as i64),
        ),
        (
            "wait".into(),
            Json::Obj(vec![
                ("per_rank".into(), Json::Arr(wait_ranks)),
                ("per_site".into(), wait_per_site_json(analysis)),
            ]),
        ),
        (
            "metrics".into(),
            Json::Obj(vec![
                (
                    "per_rank".into(),
                    Json::Arr(metrics.iter().map(rank_metrics_json).collect()),
                ),
                ("total".into(), rank_metrics_json(&total)),
            ]),
        ),
        ("critical_path".into(), Json::Arr(path)),
    ];
    if let Some(t) = tuning {
        fields.push(("tuning".into(), t.clone()));
    }
    Json::Obj(fields)
}

/// Validate the shape of a profile document (used by `commscope --check`
/// and the CI smoke job). Returns a list of problems, empty when valid.
pub fn validate_profile(doc: &Json) -> Vec<String> {
    let mut problems = Vec::new();
    let mut need_int = |key: &str| {
        if doc.get(key).and_then(|v| v.as_i64()).is_none() {
            problems.push(format!("missing integer field '{key}'"));
        }
    };
    need_int("schema");
    need_int("ranks");
    need_int("makespan_ns");
    if doc.get("workload").and_then(|v| v.as_str()).is_none() {
        problems.push("missing string field 'workload'".into());
    }
    let nranks = doc.get("ranks").and_then(|v| v.as_i64()).unwrap_or(0) as usize;
    match doc
        .get("wait")
        .and_then(|w| w.get("per_rank"))
        .and_then(|v| v.as_arr())
    {
        None => problems.push("missing wait.per_rank".into()),
        Some(rows) => {
            if rows.len() != nranks {
                problems.push(format!(
                    "wait.per_rank has {} rows for {} ranks",
                    rows.len(),
                    nranks
                ));
            }
            for row in rows {
                let total = row.get("total_wait_ns").and_then(|v| v.as_i64());
                let blame_sum: Option<i64> = row
                    .get("blame")
                    .and_then(|v| v.as_arr())
                    .map(|b| b.iter().filter_map(|x| x.as_i64()).sum());
                if let (Some(t), Some(b)) = (total, blame_sum) {
                    if t != b {
                        problems.push(format!(
                            "rank {:?}: blame sums to {b}, total wait is {t}",
                            row.get("rank").and_then(|v| v.as_i64())
                        ));
                    }
                } else {
                    problems.push("wait row missing total_wait_ns or blame".into());
                }
            }
        }
    }
    // `wait.per_site` is schema ≥ 2; older documents stay valid without
    // it (lenient old-version parse). When present, its totals must sum
    // exactly to the per-rank totals — the diff accounting invariant.
    if let Some(site_rows) = doc
        .get("wait")
        .and_then(|w| w.get("per_site"))
        .and_then(|v| v.as_arr())
    {
        let rank_total: i64 = doc
            .get("wait")
            .and_then(|w| w.get("per_rank"))
            .and_then(|v| v.as_arr())
            .map(|rows| {
                rows.iter()
                    .filter_map(|r| r.get("total_wait_ns").and_then(|v| v.as_i64()))
                    .sum()
            })
            .unwrap_or(0);
        let site_total: i64 = site_rows
            .iter()
            .filter_map(|r| r.get("total_wait_ns").and_then(|v| v.as_i64()))
            .sum();
        if rank_total != site_total {
            problems.push(format!(
                "wait.per_site sums to {site_total}, wait.per_rank to {rank_total}"
            ));
        }
        for row in site_rows {
            let total = row.get("total_wait_ns").and_then(|v| v.as_i64());
            let buckets: Option<i64> = [
                "late_sender_ns",
                "late_receiver_ns",
                "barrier_ns",
                "quiet_ns",
                "overhead_ns",
            ]
            .iter()
            .map(|k| row.get(k).and_then(|v| v.as_i64()))
            .sum();
            if let (Some(t), Some(b)) = (total, buckets) {
                if t != b {
                    problems.push(format!(
                        "site {:?}: kind buckets sum to {b}, total wait is {t}",
                        row.get("site").and_then(|v| v.as_i64())
                    ));
                }
            } else {
                problems.push("wait.per_site row missing a taxonomy field".into());
            }
        }
    }
    if doc.get("critical_path").and_then(|v| v.as_arr()).is_none() {
        problems.push("missing critical_path".into());
    }
    if doc
        .get("metrics")
        .and_then(|m| m.get("per_rank"))
        .and_then(|v| v.as_arr())
        .is_none()
    {
        problems.push("missing metrics.per_rank".into());
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use netsim::trace::{EventKind, TraceEvent};
    use netsim::Time;

    #[test]
    fn profile_roundtrips_and_validates() {
        let evs = vec![TraceEvent {
            rank: 0,
            time: Time(50),
            start: Time(10),
            site: Some(1),
            kind: EventKind::Quiet {
                outstanding: 2,
                horizon: Time(45),
            },
        }];
        let a = analyze(&evs, 1, &[Time(50)]);
        let mut m = RankMetrics::default();
        m.on_put(32, Some(1));
        m.on_sync(Time(10), Time(50));
        let doc = profile_json("demo", &[("m".into(), 4)], &a, &[m]);
        let text = doc.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
        assert!(
            validate_profile(&back).is_empty(),
            "{:?}",
            validate_profile(&back)
        );
        assert_eq!(
            back.get("metrics")
                .unwrap()
                .get("total")
                .unwrap()
                .get("bytes_put")
                .unwrap()
                .as_i64(),
            Some(32)
        );
    }

    #[test]
    fn tuned_profile_carries_provenance_and_none_is_identical() {
        let a = analyze(&[], 1, &[Time(10)]);
        let plain = profile_json("demo", &[], &a, &[]);
        let none = profile_json_tuned("demo", &[], &a, &[], None);
        assert_eq!(plain.render(), none.render(), "None must not change bytes");
        let prov = Json::Obj(vec![("generator".into(), Json::Str("commtune".into()))]);
        let tuned = profile_json_tuned("demo", &[], &a, &[], Some(&prov));
        assert_eq!(
            tuned
                .get("tuning")
                .and_then(|t| t.get("generator"))
                .and_then(|g| g.as_str()),
            Some("commtune")
        );
        assert!(
            validate_profile(&tuned).is_empty(),
            "tuning key stays valid"
        );
    }

    #[test]
    fn validator_flags_blame_mismatch() {
        let doc = Json::parse(
            r#"{"schema": 1, "workload": "x", "args": {}, "ranks": 1,
                "makespan_ns": 10,
                "wait": {"per_rank": [{"rank": 0, "total_wait_ns": 5, "blame": [4]}]},
                "metrics": {"per_rank": [], "total": {}},
                "critical_path": []}"#,
        )
        .unwrap();
        let problems = validate_profile(&doc);
        assert!(problems.iter().any(|p| p.contains("blame")));
    }
}
